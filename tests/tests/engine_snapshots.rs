//! Snapshot pinning under concurrent writes: a query submitted against
//! version `v` must answer from `v` even when a writer has advanced the
//! graph to `v+2` by the time it executes, the version it observed must
//! be reported in its metrics, and eviction must never reclaim a pinned
//! snapshot's residency.

use std::sync::Arc;

use spbla_core::{Instance, Matrix};
use spbla_engine::{Catalog, Engine, EngineConfig, Query, QueryResult};
use spbla_graph::closure::closure_delta;
use spbla_graph::LabeledGraph;
use spbla_lang::{Symbol, SymbolTable};
use spbla_multidev::DeviceGrid;
use spbla_stream::UpdateBatch;

/// The engine's `Query::Closure` answer for one host graph, computed
/// with the plain library API.
fn closure_oracle(graph: &LabeledGraph, inst: &Instance) -> Vec<(u32, u32)> {
    let adj = Matrix::from_csr(inst, graph.adjacency_csr()).unwrap();
    let mut pairs = closure_delta(&adj).unwrap().read();
    pairs.sort_unstable();
    pairs
}

/// Base chain 0→1→2→3 on 5 vertices, plus the two update batches the
/// tests stream in: first extend the chain to 4, then close the cycle
/// back to 0 (which makes every ordered pair reachable).
fn fixture(a: Symbol) -> (LabeledGraph, [UpdateBatch; 2]) {
    let mut graph = LabeledGraph::new(5);
    for u in 0..3 {
        graph.add_edge(u, a, u + 1);
    }
    let mut b1 = UpdateBatch::new();
    b1.insert(3, a, 4);
    let mut b2 = UpdateBatch::new();
    b2.insert(4, a, 0);
    (graph, [b1, b2])
}

/// Oracle closure for every version 0..=2 of the fixture.
fn expected_per_version(a: Symbol) -> Vec<Vec<(u32, u32)>> {
    let inst = Instance::cuda_sim();
    let (mut mirror, batches) = fixture(a);
    let mut expected = vec![closure_oracle(&mirror, &inst)];
    for b in &batches {
        b.apply_to(&mut mirror);
        expected.push(closure_oracle(&mirror, &inst));
    }
    expected
}

/// Readers hammer `Closure` while a writer advances the graph two
/// versions. Every completed read must match the oracle *for the
/// version its metrics report* — never a torn in-between state — and
/// per reader the observed versions must be non-decreasing.
#[test]
fn concurrent_reads_are_version_consistent() {
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let expected = Arc::new(expected_per_version(a));

    for n_devices in [1usize, 2] {
        let engine = Engine::new(DeviceGrid::new(n_devices), EngineConfig::default());
        let (graph, batches) = fixture(a);
        engine.add_graph("g", graph);
        let engine = Arc::new(engine);

        let writer = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for b in batches {
                    let v = engine.apply_batch("g", b).expect("update lands");
                    assert!(v >= 1);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let expected = Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..12 {
                        let ticket = engine.submit("g", Query::Closure).unwrap();
                        let done = ticket.wait();
                        let got = done.result.expect("read completes");
                        let v = done.metrics.version;
                        assert!(v >= last, "versions went backwards: {last} → {v}");
                        last = v;
                        assert_eq!(
                            got,
                            QueryResult::Pairs(expected[v as usize].clone()),
                            "answer inconsistent with its own version v{v}"
                        );
                    }
                })
            })
            .collect();
        writer.join().expect("writer survives");
        for r in readers {
            r.join().expect("reader survives");
        }

        assert_eq!(engine.graph_version("g").unwrap(), 2);
        let done = engine.submit("g", Query::Closure).unwrap().wait();
        assert_eq!(done.metrics.version, 2);
        assert_eq!(
            done.result.unwrap(),
            QueryResult::Pairs(expected[2].clone())
        );
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("all clients done"))
            .shutdown();
    }
}

/// Deterministic pin plumbing: a ticket pinned at v0 answers from v0
/// and says so, even after two updates land behind it; a fresh query
/// then sees v2.
#[test]
fn pinned_read_survives_two_writes() {
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let expected = expected_per_version(a);

    let engine = Engine::new(DeviceGrid::new(1), EngineConfig::default());
    let (graph, [b1, b2]) = fixture(a);
    engine.add_graph("g", graph);

    let pinned = engine.submit("g", Query::Closure).unwrap();
    assert_eq!(engine.apply_batch("g", b1).unwrap(), 1);
    assert_eq!(engine.apply_batch("g", b2).unwrap(), 2);

    let done = pinned.wait();
    assert_eq!(done.metrics.version, 0, "read must observe its pin");
    assert_eq!(
        done.result.unwrap(),
        QueryResult::Pairs(expected[0].clone())
    );

    let fresh = engine.submit("g", Query::Closure).unwrap().wait();
    assert_eq!(fresh.metrics.version, 2);
    assert_eq!(
        fresh.result.unwrap(),
        QueryResult::Pairs(expected[2].clone())
    );
    engine.shutdown();
}

/// Catalog-level pin semantics under pressure: a pinned *historical*
/// version forced out by the budget is never lost — it is demoted to
/// the compressed k²-tree archive and rehydrated (as a counted miss)
/// on the next touch, its host snapshot stays retained — and releasing
/// the pin prunes it on the spot, archive included.
#[test]
fn eviction_never_reclaims_pinned_snapshot() {
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let (graph, [b1, b2]) = fixture(a);
    let inst = Instance::cuda_sim();

    // A 1-byte budget: every upload overflows, so anything evictable
    // *would* be evicted — only the pin keeps v0 recoverable.
    let cat = Catalog::new(1, 1);
    cat.add("g", graph);

    let v0 = cat.pin_latest("g").unwrap();
    assert_eq!(v0, 0);
    cat.resident_at("g", v0, 0, &inst).unwrap();

    assert_eq!(cat.apply_batch("g", &b1).unwrap(), 1);
    assert_eq!(cat.apply_batch("g", &b2).unwrap(), 2);
    // v1 was never pinned: superseded, it is pruned immediately.
    assert_eq!(cat.retained_versions("g"), 2);
    assert!(cat.host_graph_at("g", 1).is_err());

    // Uploading v2 overflows the budget; pinned v0 — now history — is
    // archived, not dropped.
    cat.resident_at("g", 2, 0, &inst).unwrap();
    let (archivals, _) = cat.archive_counters();
    assert!(archivals >= 1, "pinned v0 must be demoted to the archive");
    assert_eq!(cat.archived_count(0), 1);
    assert_eq!(
        cat.host_graph_at("g", v0).unwrap().n_edges(),
        3,
        "pinned host snapshot must still be the 3-edge chain"
    );

    // Touching v0 rehydrates it from the compressed bits: a counted
    // miss (the live slot was reclaimed) plus a rehydration, never a
    // rebuild-from-host of a version the budget already paid to keep.
    let (_, misses_before, _) = cat.counters();
    let (_, rehydrations_before) = cat.archive_counters();
    cat.resident_at("g", v0, 0, &inst).unwrap();
    let (_, misses_after, _) = cat.counters();
    let (_, rehydrations_after) = cat.archive_counters();
    assert_eq!(misses_after, misses_before + 1);
    assert_eq!(
        rehydrations_after,
        rehydrations_before + 1,
        "archived v0 must come back via the archive, not a host rebuild"
    );
    assert_eq!(
        cat.archived_count(0),
        0,
        "rehydration consumes the archive entry"
    );

    // Releasing the pin prunes the historical version host and device.
    cat.unpin("g", v0);
    assert_eq!(cat.retained_versions("g"), 1);
    assert!(cat.host_graph_at("g", v0).is_err());
    assert!(cat.resident_at("g", v0, 0, &inst).is_err());
    assert!(cat.host_graph_at("g", 2).is_ok());
}
