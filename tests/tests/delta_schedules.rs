//! The tentpole invariants of the semi-naïve rework: complemented-mask
//! SpGEMM must equal product-then-filter on every backend, and every
//! delta-driven fixpoint schedule must be bit-identical to the naive
//! schedule it replaces — on random inputs and on the bundled LUBM/RDF
//! fixtures — while doing strictly less kernel work.

use proptest::prelude::*;

use spbla_core::{Instance, Matrix};
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::rdf;
use spbla_gpu_sim::Device;
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::closure::{closure_delta, closure_masked, closure_squaring};
use spbla_graph::LabeledGraph;
use spbla_integration::{all_backends, pseudo_pairs};
use spbla_lang::{CnfGrammar, Grammar, SymbolTable};

fn pairs(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

/// Reference semantics: the unmasked product filtered on the host.
fn filtered_product(
    inst: &Instance,
    pa: &[(u32, u32)],
    pb: &[(u32, u32)],
    pm: &[(u32, u32)],
    keep_present: bool,
) -> Vec<(u32, u32)> {
    let a = Matrix::from_pairs(inst, 10, 10, pa).unwrap();
    let b = Matrix::from_pairs(inst, 10, 10, pb).unwrap();
    let in_mask: std::collections::HashSet<(u32, u32)> = pm.iter().copied().collect();
    a.mxm(&b)
        .unwrap()
        .read()
        .into_iter()
        .filter(|p| in_mask.contains(p) == keep_present)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `mxm_compmask(A,B,M)` ≡ `mxm(A,B)` followed by dropping entries
    /// of `M`, and `mxm_masked` ≡ keeping them — identically on the
    /// CSR, COO, dense-bit and CPU backends.
    #[test]
    fn compmask_equals_product_then_filter(
        pa in pairs(10, 40), pb in pairs(10, 40), pm in pairs(10, 40)
    ) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 10, 10, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 10, 10, &pb).unwrap();
            let m = Matrix::from_pairs(&inst, 10, 10, &pm).unwrap();
            prop_assert_eq!(
                a.mxm_compmask(&b, &m).unwrap().read(),
                filtered_product(&inst, &pa, &pb, &pm, false)
            );
            prop_assert_eq!(
                a.mxm_masked(&b, &m).unwrap().read(),
                filtered_product(&inst, &pa, &pb, &pm, true)
            );
        }
    }

    /// The masked and complement-masked products partition the plain
    /// product, on every backend.
    #[test]
    fn masked_and_compmask_partition(
        pa in pairs(10, 40), pb in pairs(10, 40), pm in pairs(10, 40)
    ) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 10, 10, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 10, 10, &pb).unwrap();
            let m = Matrix::from_pairs(&inst, 10, 10, &pm).unwrap();
            let kept = a.mxm_masked(&b, &m).unwrap();
            let dropped = a.mxm_compmask(&b, &m).unwrap();
            let merged = kept.ewise_add(&dropped).unwrap();
            prop_assert_eq!(merged.read(), a.mxm(&b).unwrap().read());
            prop_assert_eq!(kept.ewise_mult(&dropped).unwrap().nnz(), 0);
        }
    }

    /// Delta-driven and masked closure schedules are bit-identical to
    /// naive squaring on random graphs, on every backend.
    #[test]
    fn delta_closure_matches_naive_on_random_graphs(p in pairs(14, 60)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 14, 14, &p).unwrap();
            let naive = closure_squaring(&a).unwrap().read();
            prop_assert_eq!(closure_delta(&a).unwrap().read(), naive.clone());
            prop_assert_eq!(closure_masked(&a).unwrap().read(), naive.clone());
            prop_assert_eq!(a.transitive_closure().unwrap().read(), naive);
        }
    }
}

/// The LUBM rung the benches use (same generator, same seed).
fn lubm_fixture(table: &mut SymbolTable) -> LabeledGraph {
    lubm_like(2, &LubmConfig::default(), table, 0xCAFE)
}

#[test]
fn delta_closure_matches_naive_on_lubm_and_rdf_fixtures() {
    let mut table = SymbolTable::new();
    let fixtures: Vec<(&str, LabeledGraph)> = vec![
        ("lubm", lubm_fixture(&mut table)),
        ("geospecies", rdf::geospecies_like(0.01, &mut table, 4)),
        ("go", rdf::go_like(0.01, &mut table, 14)),
    ];
    for (name, graph) in &fixtures {
        let pairs = graph.adjacency_csr().to_pairs();
        let n = graph.n_vertices();
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let a = Matrix::from_pairs(&inst, n, n, &pairs).unwrap();
            let naive = closure_squaring(&a).unwrap().read();
            assert_eq!(
                closure_delta(&a).unwrap().read(),
                naive,
                "delta vs naive closure diverged on {name}"
            );
            assert_eq!(
                closure_masked(&a).unwrap().read(),
                naive,
                "masked vs naive closure diverged on {name}"
            );
        }
    }
}

/// Naive Azimov fixpoint (the pre-rework schedule): full products, no
/// masks, Gauss–Seidel updates — the ground truth the semi-naïve loop
/// must reproduce exactly.
fn naive_azimov(graph: &LabeledGraph, cnf: &CnfGrammar, inst: &Instance) -> Vec<Vec<(u32, u32)>> {
    let n = graph.n_vertices();
    let nnt = cnf.n_nonterminals();
    let mut matrices: Vec<Matrix> = Vec::with_capacity(nnt);
    for a in 0..nnt {
        let a_id = spbla_lang::cfg::NtId(a as u32);
        let mut m = Matrix::zeros(inst, n, n).unwrap();
        for &(lhs, t) in cnf.terminal_rules() {
            if lhs == a_id && graph.label_count(t) > 0 {
                m = m.ewise_add(&graph.label_matrix(inst, t).unwrap()).unwrap();
            }
        }
        if a_id == cnf.start() && cnf.start_nullable() {
            m = m.ewise_add(&Matrix::identity(inst, n).unwrap()).unwrap();
        }
        matrices.push(m);
    }
    loop {
        let mut changed = false;
        for &(a, b, c) in cnf.binary_rules() {
            let product = matrices[b.id()].mxm(&matrices[c.id()]).unwrap();
            let updated = matrices[a.id()].ewise_add(&product).unwrap();
            if updated.nnz() != matrices[a.id()].nnz() {
                changed = true;
                matrices[a.id()] = updated;
            }
        }
        if !changed {
            return matrices.iter().map(Matrix::read).collect();
        }
    }
}

#[test]
fn semi_naive_azimov_matches_naive_fixpoint() {
    let mut table = SymbolTable::new();
    let grammar = Grammar::parse("S -> a S b | a b", &mut table).unwrap();
    let cnf = CnfGrammar::from_grammar(&grammar);
    let a = table.get("a").unwrap();
    let b = table.get("b").unwrap();
    // Random bipartite-ish labeled graphs plus the two-cycles worst case.
    for seed in 0..3u64 {
        let n = 12;
        let ea = pseudo_pairs(n, 20, seed * 2 + 1);
        let eb = pseudo_pairs(n, 20, seed * 2 + 2);
        let mut g = LabeledGraph::new(n);
        for &(u, v) in &ea {
            g.add_edge(u, a, v);
        }
        for &(u, v) in &eb {
            g.add_edge(u, b, v);
        }
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let idx = AzimovIndex::build(&g, &cnf, &inst, &AzimovOptions::default()).unwrap();
            let naive = naive_azimov(&g, &cnf, &inst);
            for (nt, expected) in naive.iter().enumerate() {
                assert_eq!(
                    &idx.matrix(spbla_lang::cfg::NtId(nt as u32)).read(),
                    expected,
                    "nonterminal {nt} diverged (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn semi_naive_azimov_matches_naive_on_lubm_fixture() {
    let mut table = SymbolTable::new();
    let graph = lubm_fixture(&mut table);
    // A transitive query over the LUBM hierarchy labels.
    let grammar =
        Grammar::parse("S -> subOrganizationOf | subOrganizationOf S", &mut table).unwrap();
    let cnf = CnfGrammar::from_grammar(&grammar);
    for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
        let idx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
        let naive = naive_azimov(&graph, &cnf, &inst);
        assert_eq!(idx.matrix(cnf.start()).read(), naive[cnf.start().id()]);
    }
}

#[test]
fn delta_schedule_does_strictly_less_kernel_work_on_lubm() {
    let mut table = SymbolTable::new();
    let graph = lubm_fixture(&mut table);
    let pairs = graph.adjacency_csr().to_pairs();
    let n = graph.n_vertices();

    let run = |schedule: fn(&Matrix) -> spbla_core::Result<Matrix>| -> (Vec<(u32, u32)>, u64, u64) {
        let dev = Device::default();
        let inst = Instance::cuda_sim_on(dev.clone());
        let a = Matrix::from_pairs(&inst, n, n, &pairs).unwrap();
        let before = dev.stats();
        let closure = schedule(&a).unwrap().read();
        let after = dev.stats();
        (
            closure,
            after.launches - before.launches,
            after.accum_insertions - before.accum_insertions,
        )
    };

    let (naive, naive_launches, naive_insertions) = run(closure_squaring);
    let (delta, delta_launches, delta_insertions) = run(closure_delta);
    assert_eq!(delta, naive, "schedules must agree before comparing cost");
    assert!(
        delta_launches < naive_launches,
        "delta schedule must launch strictly fewer kernels ({delta_launches} vs {naive_launches})"
    );
    assert!(
        delta_insertions < naive_insertions,
        "delta schedule must perform strictly fewer accumulator insertions \
         ({delta_insertions} vs {naive_insertions})"
    );

    // The ESC backend saves expansion slots the same way.
    let run_cl = |schedule: fn(&Matrix) -> spbla_core::Result<Matrix>| -> (u64, u64) {
        let dev = Device::default();
        let inst = Instance::cl_sim_on(dev.clone());
        let a = Matrix::from_pairs(&inst, n, n, &pairs).unwrap();
        let before = dev.stats();
        schedule(&a).unwrap();
        let after = dev.stats();
        (
            after.launches - before.launches,
            after.accum_insertions - before.accum_insertions,
        )
    };
    let (cl_naive_launches, cl_naive_insertions) = run_cl(closure_squaring);
    let (cl_delta_launches, cl_delta_insertions) = run_cl(closure_delta);
    assert!(cl_delta_launches < cl_naive_launches);
    assert!(cl_delta_insertions < cl_naive_insertions);
}
