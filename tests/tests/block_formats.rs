//! Bit-identity of the adaptive tiled block storage (`Repr::Block`)
//! against the flat formats: closure, CFPQ, and RPQ must answer
//! identically — witnessed by FNV checksums — beneath every backend,
//! including runs whose fixpoint rounds densify tiles past the format
//! crossover and trigger mid-closure dense/CSR/COO switches.

use proptest::prelude::*;

use spbla_core::{Instance, Matrix};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::closure::closure_delta;
use spbla_graph::rpq_bfs::rpq_from_sources;
use spbla_graph::LabeledGraph;
use spbla_integration::{all_backends, pseudo_pairs};
use spbla_lang::{CnfGrammar, Grammar, Regex, SymbolTable};

/// FNV-1a over a sorted pair list — the cross-storage identity witness.
fn fnv(pairs: &[(u32, u32)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(r, c) in pairs {
        for b in r.to_le_bytes().into_iter().chain(c.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Each flat backend paired with a blocked-storage instance on the
/// same backend (and same simulated device, where there is one).
fn flat_and_blocked() -> Vec<(Instance, Instance)> {
    all_backends()
        .into_iter()
        .map(|flat| {
            let blocked = Instance::blocked_on(flat.backend(), flat.device().cloned());
            (flat, blocked)
        })
        .collect()
}

/// A ring through `0..ring` grafted onto random pairs: the ring's
/// closure saturates its vertex block to all-pairs, marching tiles
/// from COO through CSR to dense across the fixpoint rounds.
fn ring_plus_noise(n: u32, ring: u32, nnz: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(ring <= n);
    let mut pairs = pseudo_pairs(n, nnz, seed);
    for v in 0..ring {
        pairs.push((v, (v + 1) % ring));
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta-fixpoint closure: blocked storage answers bit-identically
    /// to the flat format on every backend, ring sizes chosen so the
    /// closure densifies across tile boundaries mid-run.
    #[test]
    fn closure_checksums_match_flat(seed in 0u64..256, ring in 1u32..130) {
        let n = 160u32;
        let pairs = ring_plus_noise(n, ring, 60, seed);
        let mut reference: Option<u64> = None;
        for (flat, blocked) in flat_and_blocked() {
            let mf = Matrix::from_pairs(&flat, n, n, &pairs).unwrap();
            let mb = Matrix::from_pairs(&blocked, n, n, &pairs).unwrap();
            prop_assert!(blocked.is_blocked() && mb.block_format_census().is_some());
            let cf = closure_delta(&mf).unwrap().read();
            let cb = closure_delta(&mb).unwrap().read();
            let (hf, hb) = (fnv(&cf), fnv(&cb));
            prop_assert_eq!(hf, hb, "blocked closure diverged on {:?}", flat.backend());
            match reference {
                None => reference = Some(hf),
                Some(expect) => prop_assert_eq!(hf, expect, "backends disagree"),
            }
        }
    }

    /// Fused accumulate + fresh extraction — the kernel the closure is
    /// made of — agrees entry-for-entry under mixed-format operands.
    #[test]
    fn fused_accum_matches_flat(pa in proptest::collection::vec((0..96u32, 0..96u32), 0..200),
                                pb in proptest::collection::vec((0..96u32, 0..96u32), 0..200)) {
        for (flat, blocked) in flat_and_blocked() {
            let af = Matrix::from_pairs(&flat, 96, 96, &pa).unwrap();
            let bf = Matrix::from_pairs(&flat, 96, 96, &pb).unwrap();
            let ab = Matrix::from_pairs(&blocked, 96, 96, &pa).unwrap();
            let bb = Matrix::from_pairs(&blocked, 96, 96, &pb).unwrap();
            let sf = bf.mxm_accum_compmask(&af, &bf, true).unwrap();
            let sb = bb.mxm_accum_compmask(&ab, &bb, true).unwrap();
            prop_assert_eq!(sf.fresh_nnz, sb.fresh_nnz);
            prop_assert_eq!(sf.acc.read(), sb.acc.read());
            prop_assert_eq!(
                sf.fresh.map(|m| m.read()),
                sb.fresh.map(|m| m.read())
            );
        }
    }
}

/// CFPQ: Azimov's semi-naive fixpoint uploads all its nonterminal
/// matrices through the instance, so a blocked instance runs the whole
/// grammar iteration on tiled storage. Answers must not move.
#[test]
fn cfpq_checksums_match_flat() {
    let mut table = SymbolTable::new();
    let grammar = Grammar::parse("S -> a S b | a b", &mut table).unwrap();
    let cnf = CnfGrammar::from_grammar(&grammar);
    let a = table.get("a").unwrap();
    let b = table.get("b").unwrap();
    for seed in 0..4u64 {
        let n = 80;
        let mut g = LabeledGraph::new(n);
        for &(u, v) in &ring_plus_noise(n, 40, 50, seed * 2 + 1) {
            g.add_edge(u, a, v);
        }
        for &(u, v) in &pseudo_pairs(n, 50, seed * 2 + 2) {
            g.add_edge(u, b, v);
        }
        for (flat, blocked) in flat_and_blocked() {
            let idx_f = AzimovIndex::build(&g, &cnf, &flat, &AzimovOptions::default()).unwrap();
            let idx_b = AzimovIndex::build(&g, &cnf, &blocked, &AzimovOptions::default()).unwrap();
            assert_eq!(
                fnv(&idx_f.reachable_pairs()),
                fnv(&idx_b.reachable_pairs()),
                "CFPQ diverged on {:?} (seed {seed})",
                flat.backend()
            );
        }
    }
}

/// RPQ: the frontier BFS over the labeled matrices, flat vs blocked,
/// same sources, same sorted answer sets.
#[test]
fn rpq_checksums_match_flat() {
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let b = table.intern("b");
    let regex = Regex::parse("a . b*", &mut table).unwrap();
    for seed in 0..4u64 {
        let n = 96;
        let mut g = LabeledGraph::new(n);
        for &(u, v) in &pseudo_pairs(n, 120, seed * 2 + 1) {
            g.add_edge(u, a, v);
        }
        for &(u, v) in &ring_plus_noise(n, 64, 40, seed * 2 + 2) {
            g.add_edge(u, b, v);
        }
        let sources: Vec<u32> = (0..8).map(|i| i * 11 % n).collect();
        for (flat, blocked) in flat_and_blocked() {
            let rf = rpq_from_sources(&g, &regex, &sources, &flat).unwrap();
            let rb = rpq_from_sources(&g, &regex, &sources, &blocked).unwrap();
            assert_eq!(rf, rb, "RPQ diverged on {:?} (seed {seed})", flat.backend());
        }
    }
}

/// `Instance::auto_for` on a real LUBM adjacency selects blocked CSR
/// storage, and the selected instance answers the closure bit-identically
/// to a flat instance on the same backend — the auto pick is a layout
/// decision, never a semantic one.
#[test]
fn auto_for_selects_blocked_on_lubm_and_stays_bit_identical() {
    use spbla_data::lubm::{lubm_like, LubmConfig};
    use spbla_gpu_sim::DeviceConfig;

    let mut table = SymbolTable::new();
    // Scale 4: enough universities that the adjacency spans well past
    // the eight-tile-row amortization floor.
    let graph = lubm_like(4, &LubmConfig::default(), &mut table, 0xCAFE);
    let n = graph.n_vertices();
    let adj = graph.adjacency_csr();
    let pairs = adj.to_pairs();

    let auto = Instance::auto_for(DeviceConfig::default(), n, pairs.len());
    assert_eq!(
        auto.backend(),
        spbla_core::Backend::CudaSim,
        "LUBM is ordinary-sparse: CSR territory"
    );
    assert!(
        auto.is_blocked(),
        "LUBM shape (n={n}, nnz={}) should pick tiled storage",
        pairs.len()
    );

    let flat = Instance::cuda_sim();
    let cf = closure_delta(&Matrix::from_pairs(&flat, n, n, &pairs).unwrap())
        .unwrap()
        .read();
    let cb = closure_delta(&Matrix::from_pairs(&auto, n, n, &pairs).unwrap())
        .unwrap()
        .read();
    assert_eq!(fnv(&cf), fnv(&cb), "auto-selected storage diverged");
}

/// A densifying closure must actually exercise the re-choosing path:
/// the global switch counter advances while the answers stay pinned to
/// the flat reference.
#[test]
fn mid_closure_format_switches_happen_and_preserve_answers() {
    let n = 128u32;
    let ring: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let counter = spbla_obs::metrics_global().counter("spbla_block_format_switches_total");
    let before = counter.get();
    let flat = Instance::cuda_sim();
    let blocked = Instance::blocked_on(flat.backend(), flat.device().cloned());
    let cf = closure_delta(&Matrix::from_pairs(&flat, n, n, &ring).unwrap())
        .unwrap()
        .read();
    let cb_mat = closure_delta(&Matrix::from_pairs(&blocked, n, n, &ring).unwrap()).unwrap();
    assert_eq!(fnv(&cf), fnv(&cb_mat.read()));
    // The ring's closure is all-pairs: every tile of the 128×128 block
    // square ends dense.
    assert_eq!(cb_mat.block_format_census(), Some((4, 0, 0)));
    assert!(
        counter.get() > before,
        "densifying closure re-chose no tile formats"
    );
}
