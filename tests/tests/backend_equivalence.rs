//! Property tests: every operation returns identical results on the CPU
//! reference, the cuBool-style CSR backend, and the clBool-style COO
//! backend — and matches the dense bit-matrix oracle.

use proptest::prelude::*;

use spbla_core::{DenseBool, Instance, Matrix};
use spbla_integration::all_backends;

fn pairs_strategy(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

fn build_all(n: u32, pairs: &[(u32, u32)]) -> Vec<(Instance, Matrix)> {
    all_backends()
        .into_iter()
        .map(|inst| {
            let m = Matrix::from_pairs(&inst, n, n, pairs).expect("in bounds");
            (inst, m)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mxm_equivalent(pa in pairs_strategy(12, 40), pb in pairs_strategy(12, 40)) {
        let da = DenseBool::from_pairs(12, 12, &pa);
        let db = DenseBool::from_pairs(12, 12, &pb);
        let expect = da.mxm(&db).to_pairs();
        for (inst, a) in build_all(12, &pa) {
            let b = Matrix::from_pairs(&inst, 12, 12, &pb).unwrap();
            prop_assert_eq!(a.mxm(&b).unwrap().read(), expect.clone(),
                "backend {:?}", inst.backend());
        }
    }

    #[test]
    fn ewise_add_and_mult_equivalent(pa in pairs_strategy(15, 60), pb in pairs_strategy(15, 60)) {
        let da = DenseBool::from_pairs(15, 15, &pa);
        let db = DenseBool::from_pairs(15, 15, &pb);
        let expect_add = da.ewise_add(&db).to_pairs();
        let mut expect_mult: Vec<(u32, u32)> =
            pa.iter().filter(|p| db.get(p.0, p.1) && da.get(p.0, p.1)).copied().collect();
        expect_mult.sort_unstable();
        expect_mult.dedup();
        for (inst, a) in build_all(15, &pa) {
            let b = Matrix::from_pairs(&inst, 15, 15, &pb).unwrap();
            prop_assert_eq!(a.ewise_add(&b).unwrap().read(), expect_add.clone());
            prop_assert_eq!(a.ewise_mult(&b).unwrap().read(), expect_mult.clone());
        }
    }

    #[test]
    fn kron_equivalent(pa in pairs_strategy(5, 10), pb in pairs_strategy(6, 12)) {
        let da = DenseBool::from_pairs(5, 5, &pa);
        let db = DenseBool::from_pairs(6, 6, &pb);
        let expect = da.kron(&db).to_pairs();
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 5, 5, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 6, 6, &pb).unwrap();
            prop_assert_eq!(a.kron(&b).unwrap().read(), expect.clone());
        }
    }

    #[test]
    fn transpose_and_submatrix_equivalent(pa in pairs_strategy(14, 50)) {
        let da = DenseBool::from_pairs(14, 14, &pa);
        let expect_t = da.transpose().to_pairs();
        for (inst, a) in build_all(14, &pa) {
            prop_assert_eq!(a.transpose().unwrap().read(), expect_t.clone());
            let sub = a.submatrix(3, 2, 8, 9).unwrap();
            let mut expect_sub = Vec::new();
            for i in 0..8u32 {
                for j in 0..9u32 {
                    if da.get(i + 3, j + 2) {
                        expect_sub.push((i, j));
                    }
                }
            }
            prop_assert_eq!(sub.read(), expect_sub, "backend {:?}", inst.backend());
        }
    }

    #[test]
    fn reductions_equivalent(pa in pairs_strategy(13, 40)) {
        let reference = Matrix::from_pairs(&Instance::cpu(), 13, 13, &pa).unwrap();
        let rows = reference.reduce_to_column().unwrap();
        let cols = reference.reduce_to_row().unwrap();
        for (_inst, a) in build_all(13, &pa) {
            let rc = a.reduce_to_column().unwrap();
            let rr = a.reduce_to_row().unwrap();
            prop_assert_eq!(rc.indices(), rows.indices());
            prop_assert_eq!(rr.indices(), cols.indices());
        }
    }

    #[test]
    fn transitive_closure_equivalent(pa in pairs_strategy(9, 20)) {
        let reference = Matrix::from_pairs(&Instance::cpu(), 9, 9, &pa).unwrap()
            .transitive_closure().unwrap().read();
        for (_inst, a) in build_all(9, &pa) {
            prop_assert_eq!(a.transitive_closure().unwrap().read(), reference.clone());
        }
    }
}

#[test]
fn large_random_mxm_matches_cpu() {
    // One big deterministic case (beyond proptest's small sizes).
    let pairs_a = spbla_integration::pseudo_pairs(300, 3000, 1);
    let pairs_b = spbla_integration::pseudo_pairs(300, 3000, 2);
    let cpu = Instance::cpu();
    let (a0, b0) = (
        Matrix::from_pairs(&cpu, 300, 300, &pairs_a).unwrap(),
        Matrix::from_pairs(&cpu, 300, 300, &pairs_b).unwrap(),
    );
    let expect = a0.mxm(&b0).unwrap().read();
    for inst in [Instance::cuda_sim(), Instance::cl_sim()] {
        let a = Matrix::from_pairs(&inst, 300, 300, &pairs_a).unwrap();
        let b = Matrix::from_pairs(&inst, 300, 300, &pairs_b).unwrap();
        assert_eq!(a.mxm(&b).unwrap().read(), expect);
    }
}
