//! Property tests of the algebraic identities the Boolean semiring
//! guarantees — these are the invariants the CFPQ/RPQ algorithms lean
//! on, so they are checked on every backend.

use proptest::prelude::*;

use spbla_core::{Instance, Matrix};
use spbla_integration::all_backends;

fn pairs(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ
    #[test]
    fn product_transpose_law(pa in pairs(10, 30), pb in pairs(10, 30)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 10, 10, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 10, 10, &pb).unwrap();
            let lhs = a.mxm(&b).unwrap().transpose().unwrap();
            let rhs = b.transpose().unwrap().mxm(&a.transpose().unwrap()).unwrap();
            prop_assert_eq!(lhs.read(), rhs.read());
        }
    }

    /// A·(B+C) = A·B + A·C (distributivity)
    #[test]
    fn distributivity(pa in pairs(9, 25), pb in pairs(9, 25), pc in pairs(9, 25)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 9, 9, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 9, 9, &pb).unwrap();
            let c = Matrix::from_pairs(&inst, 9, 9, &pc).unwrap();
            let lhs = a.mxm(&b.ewise_add(&c).unwrap()).unwrap();
            let rhs = a.mxm(&b).unwrap().ewise_add(&a.mxm(&c).unwrap()).unwrap();
            prop_assert_eq!(lhs.read(), rhs.read());
        }
    }

    /// (A·B)·C = A·(B·C) (associativity)
    #[test]
    fn mxm_associativity(pa in pairs(8, 20), pb in pairs(8, 20), pc in pairs(8, 20)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 8, 8, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 8, 8, &pb).unwrap();
            let c = Matrix::from_pairs(&inst, 8, 8, &pc).unwrap();
            let lhs = a.mxm(&b).unwrap().mxm(&c).unwrap();
            let rhs = a.mxm(&b.mxm(&c).unwrap()).unwrap();
            prop_assert_eq!(lhs.read(), rhs.read());
        }
    }

    /// Add is idempotent, commutative, associative over the Boolean
    /// semiring.
    #[test]
    fn add_laws(pa in pairs(12, 40), pb in pairs(12, 40), pc in pairs(12, 40)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 12, 12, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 12, 12, &pb).unwrap();
            let c = Matrix::from_pairs(&inst, 12, 12, &pc).unwrap();
            prop_assert_eq!(a.ewise_add(&a).unwrap().read(), a.read());
            prop_assert_eq!(
                a.ewise_add(&b).unwrap().read(),
                b.ewise_add(&a).unwrap().read()
            );
            let l = a.ewise_add(&b).unwrap().ewise_add(&c).unwrap();
            let r = a.ewise_add(&b.ewise_add(&c).unwrap()).unwrap();
            prop_assert_eq!(l.read(), r.read());
        }
    }

    /// Kronecker mixed-product: (A⊗B)·(C⊗D) = (A·C)⊗(B·D).
    #[test]
    fn kron_mixed_product(
        pa in pairs(4, 8), pb in pairs(4, 8), pc in pairs(4, 8), pd in pairs(4, 8)
    ) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 4, 4, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, 4, 4, &pb).unwrap();
            let c = Matrix::from_pairs(&inst, 4, 4, &pc).unwrap();
            let d = Matrix::from_pairs(&inst, 4, 4, &pd).unwrap();
            let lhs = a.kron(&b).unwrap().mxm(&c.kron(&d).unwrap()).unwrap();
            let rhs = a.mxm(&c).unwrap().kron(&b.mxm(&d).unwrap()).unwrap();
            prop_assert_eq!(lhs.read(), rhs.read());
        }
    }

    /// Closure is idempotent: (A⁺)⁺ = A⁺, and A ⊆ A⁺.
    #[test]
    fn closure_idempotent(pa in pairs(8, 16)) {
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 8, 8, &pa).unwrap();
        let c1 = a.transitive_closure().unwrap();
        let c2 = c1.transitive_closure().unwrap();
        prop_assert_eq!(c1.read(), c2.read());
        // A ⊆ A⁺
        let union = c1.ewise_add(&a).unwrap();
        prop_assert_eq!(union.read(), c1.read());
    }

    /// Identity behaves: I·A = A·I = A; A ⊗ I has nnz(A)·n entries.
    #[test]
    fn identity_laws(pa in pairs(7, 20)) {
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, 7, 7, &pa).unwrap();
            let i = Matrix::identity(&inst, 7).unwrap();
            prop_assert_eq!(i.mxm(&a).unwrap().read(), a.read());
            prop_assert_eq!(a.mxm(&i).unwrap().read(), a.read());
            prop_assert_eq!(a.kron(&i).unwrap().nnz(), a.nnz() * 7);
        }
    }
}
