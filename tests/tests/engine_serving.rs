//! Serving-layer stress: concurrent mixed RPQ/CFPQ workloads over
//! 1/2/4-device grids must return answers bit-identical to sequential
//! library execution, admission control must reject cleanly, deadlines
//! and cancellation must surface typed errors without poisoning the
//! device pool, and the whole thing must not deadlock (the tests
//! finishing *is* the deadlock check).

use std::sync::Arc;
use std::time::Duration;

use spbla_core::Instance;
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_engine::{Engine, EngineConfig, EngineError, Query, QueryResult};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::closure::closure_delta;
use spbla_graph::rpq_batch::rpq_from_each_source_nfa;
use spbla_graph::{LabeledGraph, RpqIndex, RpqOptions};
use spbla_lang::dfa::Dfa;
use spbla_lang::glushkov::glushkov;
use spbla_lang::minimize::minimize;
use spbla_lang::{CnfGrammar, Grammar, Regex, SymbolTable};
use spbla_multidev::DeviceGrid;

const RPQ_TEMPLATES: [&str; 3] = [
    "memberOf . subOrganizationOf",
    "headOf . subOrganizationOf | worksFor . subOrganizationOf",
    "advisor . worksFor",
];
const SRC_TEMPLATE: &str = "memberOf . subOrganizationOf*";
const CFPQ_GRAMMAR: &str =
    "S -> subOrganizationOf_r S subOrganizationOf | subOrganizationOf_r subOrganizationOf";

fn lubm_fixture(table: &mut SymbolTable) -> LabeledGraph {
    lubm_like(1, &LubmConfig::default(), table, 0xCAFE).with_inverses(table)
}

/// Sequential oracle: the same queries executed one at a time with the
/// plain library API on a fresh single instance.
struct Expected {
    rpq: Vec<Vec<(u32, u32)>>,
    reachable: Vec<Vec<u32>>,
    cfpq: Vec<(u32, u32)>,
    closure: Vec<(u32, u32)>,
    sources: Vec<u32>,
}

fn sequential_oracle() -> Expected {
    let mut table = SymbolTable::new();
    let graph = lubm_fixture(&mut table);
    let inst = Instance::cuda_sim();
    let rpq = RPQ_TEMPLATES
        .iter()
        .map(|q| {
            let r = Regex::parse(q, &mut table).unwrap();
            RpqIndex::build(&graph, &r, &inst, &RpqOptions::default())
                .unwrap()
                .reachable_pairs()
                .unwrap()
        })
        .collect();
    let sources: Vec<u32> = (0..24).map(|i| (i * 17) % graph.n_vertices()).collect();
    let r = Regex::parse(SRC_TEMPLATE, &mut table).unwrap();
    let nfa = minimize(&Dfa::from_nfa(&glushkov(&r)));
    let reachable = rpq_from_each_source_nfa(&graph, &nfa, &sources, &inst).unwrap();
    let g = Grammar::parse(CFPQ_GRAMMAR, &mut table).unwrap();
    let idx = AzimovIndex::build(
        &graph,
        &CnfGrammar::from_grammar(&g),
        &inst,
        &AzimovOptions::default(),
    )
    .unwrap();
    let mut cfpq = idx.reachable_pairs();
    cfpq.sort_unstable();
    cfpq.dedup();
    let adj = spbla_core::Matrix::from_csr(&inst, graph.adjacency_csr()).unwrap();
    let mut closure = closure_delta(&adj).unwrap().read();
    closure.sort_unstable();
    Expected {
        rpq,
        reachable,
        cfpq,
        closure,
        sources,
    }
}

fn engine_on(n_devices: usize, config: EngineConfig) -> Engine {
    let engine = Engine::new(DeviceGrid::new(n_devices), config);
    engine.add_graph_with("lubm", lubm_fixture);
    engine
}

/// ≥ 64 concurrent mixed requests from 8 client threads, on 1-, 2- and
/// 4-device grids, answers compared element-for-element against the
/// sequential oracle.
#[test]
fn concurrent_mixed_load_is_bit_identical_to_sequential() {
    let expected = Arc::new(sequential_oracle());
    for n_devices in [1usize, 2, 4] {
        let engine = Arc::new(engine_on(
            n_devices,
            EngineConfig {
                queue_capacity: 1024,
                ..EngineConfig::default()
            },
        ));

        // The workload: (query, expected result), ≥64 entries.
        let mut workload: Vec<(Query, QueryResult)> = Vec::new();
        for (i, src) in expected.sources.iter().enumerate() {
            workload.push((
                Query::RpqFromSource {
                    text: SRC_TEMPLATE.into(),
                    source: *src,
                },
                QueryResult::Reachable(expected.reachable[i].clone()),
            ));
        }
        for round in 0..10 {
            for (qi, q) in RPQ_TEMPLATES.iter().enumerate() {
                workload.push((
                    Query::Rpq((*q).into()),
                    QueryResult::Pairs(expected.rpq[qi].clone()),
                ));
            }
            workload.push((
                Query::Cfpq(CFPQ_GRAMMAR.into()),
                QueryResult::Pairs(expected.cfpq.clone()),
            ));
            if round % 2 == 0 {
                workload.push((Query::Closure, QueryResult::Pairs(expected.closure.clone())));
            }
        }
        assert!(workload.len() >= 64, "workload has {}", workload.len());

        let workload = Arc::new(workload);
        let n_clients = 8usize;
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || {
                    // Client c serves workload indices ≡ c (mod n_clients).
                    for (i, (query, want)) in workload.iter().enumerate() {
                        if i % n_clients != c {
                            continue;
                        }
                        let ticket = engine.submit("lubm", query.clone()).unwrap();
                        let done = ticket.wait();
                        let got = done
                            .result
                            .unwrap_or_else(|e| panic!("request {i} on {c} failed: {e}"));
                        assert_eq!(&got, want, "request {i} diverged from sequential");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread survives");
        }

        let stats = Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("all clients done"))
            .shutdown();
        assert_eq!(
            stats.completed,
            workload.len() as u64,
            "on {n_devices} devices"
        );
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
        assert!(stats.queue_depth_hwm >= 1);
        // On one device the queue necessarily backs up behind the
        // single worker, so the early same-plan single-source burst
        // must have coalesced. (On wider grids batching is
        // timing-dependent; the deterministic check lives in the
        // engine crate's own tests.)
        if n_devices == 1 {
            assert!(stats.batches >= 1, "no batching: {stats:?}");
        }
    }
}

/// `Query::ClosureCondensed` is a schedule, not a different answer: on
/// every grid width it must return exactly the pairs `Query::Closure`
/// returns, end to end through planner, catalog condensation cache and
/// worker execution.
#[test]
fn condensed_closure_serves_identical_answers() {
    for n_devices in [1usize, 2, 4] {
        let engine = engine_on(n_devices, EngineConfig::default());
        let read = |q: Query| {
            let done = engine.submit("lubm", q).unwrap().wait();
            match done.result.unwrap() {
                QueryResult::Pairs(p) => p,
                other => panic!("unexpected result {other:?}"),
            }
        };
        let direct = read(Query::Closure);
        let condensed = read(Query::ClosureCondensed);
        assert_eq!(
            direct, condensed,
            "condensed closure diverged on {n_devices} devices"
        );
        // A second condensed run hits the catalog's condensation cache.
        let again = read(Query::ClosureCondensed);
        assert_eq!(again, direct);
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.completed, 3);
    }
}

/// Tiered admission at its exact boundaries: with
/// `batch_admission_fraction` 0.75 the batch tier bounces at
/// ⌊0.75·capacity⌋ while interactive fills the whole queue; 0.0 clamps
/// to the documented one-slot floor; 1.0 makes the tiers identical.
/// Each rejection lands in its tier's
/// `spbla_engine_rejections_total{tier}` cell, which `EngineStats`
/// mirrors.
#[test]
fn tiered_admission_boundaries_are_exact() {
    use spbla_engine::QosTier;

    let launches =
        |engine: &Engine| -> u64 { engine.stats().devices.iter().map(|d| d.launches).sum() };
    // Submit a closure and wait until the single worker is provably
    // inside it (its first kernel launch landed): from then on the
    // queue holds exactly the requests submitted below, because every
    // filler is itself a slow closure.
    let occupy_worker = |engine: &Engine| {
        let before = launches(engine);
        let busy = engine.submit("lubm", Query::Closure).unwrap();
        while launches(engine) == before {
            std::thread::yield_now();
        }
        busy
    };
    let overloaded = |r: Result<spbla_engine::Ticket, EngineError>| match r {
        Err(EngineError::Overloaded {
            depth,
            capacity,
            tier,
        }) => (depth, capacity, tier),
        Ok(_) => panic!("expected Overloaded, request was admitted"),
        Err(other) => panic!("expected Overloaded, got {other}"),
    };

    // fraction 0.75, capacity 8: batch limit is 6.
    let engine = engine_on(
        1,
        EngineConfig {
            queue_capacity: 8,
            batch_admission_fraction: 0.75,
            batching: false,
            ..EngineConfig::default()
        },
    );
    let mut tickets = vec![occupy_worker(&engine)];
    for _ in 0..5 {
        tickets.push(engine.submit("lubm", Query::Closure).unwrap());
    }
    // Depth 5 < 6: the batch tier's last slot is still open.
    tickets.push(
        engine
            .submit_tiered("lubm", Query::Closure, QosTier::Batch, None)
            .unwrap(),
    );
    // Depth 6 = the batch limit: batch bounces, interactive continues.
    assert_eq!(
        overloaded(engine.submit_tiered("lubm", Query::Closure, QosTier::Batch, None)),
        (6, 6, QosTier::Batch)
    );
    tickets.push(engine.submit("lubm", Query::Closure).unwrap());
    tickets.push(engine.submit("lubm", Query::Closure).unwrap());
    // Depth 8 = full queue: now interactive bounces too.
    assert_eq!(
        overloaded(engine.submit("lubm", Query::Closure)),
        (8, 8, QosTier::Interactive)
    );
    for t in tickets {
        t.wait().result.expect("admitted requests complete");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.rejected_interactive, 1);
    assert_eq!(stats.rejected_batch, 1);
    assert_eq!(stats.completed, 9);

    // fraction 0.0: clamped to one batch slot, so an idle engine still
    // admits a lone batch request, and any queued work shuts the tier.
    let engine = engine_on(
        1,
        EngineConfig {
            queue_capacity: 4,
            batch_admission_fraction: 0.0,
            batching: false,
            ..EngineConfig::default()
        },
    );
    let lone = engine
        .submit_tiered("lubm", Query::Closure, QosTier::Batch, None)
        .expect("empty queue admits one batch request even at fraction 0.0");
    while launches(&engine) == 0 {
        std::thread::yield_now();
    }
    let filler = engine.submit("lubm", Query::Closure).unwrap();
    assert_eq!(
        overloaded(engine.submit_tiered("lubm", Query::Closure, QosTier::Batch, None)),
        (1, 1, QosTier::Batch)
    );
    lone.wait().result.unwrap();
    filler.wait().result.unwrap();
    let stats = engine.shutdown();
    assert_eq!(stats.rejected_batch, 1);
    assert_eq!(stats.rejected_interactive, 0);

    // fraction 1.0: the tiers are indistinguishable — batch fills the
    // queue to capacity and bounces exactly where interactive does.
    let engine = engine_on(
        1,
        EngineConfig {
            queue_capacity: 2,
            batch_admission_fraction: 1.0,
            batching: false,
            ..EngineConfig::default()
        },
    );
    let busy = occupy_worker(&engine);
    let t1 = engine
        .submit_tiered("lubm", Query::Closure, QosTier::Batch, None)
        .unwrap();
    let t2 = engine
        .submit_tiered("lubm", Query::Closure, QosTier::Batch, None)
        .unwrap();
    assert_eq!(
        overloaded(engine.submit_tiered("lubm", Query::Closure, QosTier::Batch, None)),
        (2, 2, QosTier::Batch)
    );
    assert_eq!(
        overloaded(engine.submit("lubm", Query::Closure)),
        (2, 2, QosTier::Interactive)
    );
    for t in [busy, t1, t2] {
        t.wait().result.unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected_batch, 1);
    assert_eq!(stats.rejected_interactive, 1);
}

/// A full admission queue rejects with typed `Overloaded`, nothing
/// blocks, and every admitted request still completes.
#[test]
fn overload_rejects_cleanly() {
    let engine = engine_on(
        1,
        EngineConfig {
            queue_capacity: 2,
            batching: false,
            ..EngineConfig::default()
        },
    );
    // Occupy the single worker with a slow request, then flood.
    let slow = engine.submit("lubm", Query::Closure).unwrap();
    let mut accepted = vec![slow];
    let mut rejected = 0u32;
    for i in 0..32 {
        match engine.submit(
            "lubm",
            Query::RpqFromSource {
                text: SRC_TEMPLATE.into(),
                source: i,
            },
        ) {
            Ok(t) => accepted.push(t),
            Err(EngineError::Overloaded {
                depth,
                capacity,
                tier,
            }) => {
                assert_eq!(capacity, 2);
                assert_eq!(depth, 2);
                assert_eq!(tier, spbla_engine::QosTier::Interactive);
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(rejected > 0, "queue of 2 never overflowed under 32 submits");
    for t in accepted {
        t.wait().result.expect("admitted requests complete");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.rejected as u32, rejected);
    assert_eq!(stats.failed, 0);
}

/// An expired deadline surfaces the typed error and the engine keeps
/// serving — the device pool is not poisoned.
#[test]
fn deadline_exceeded_is_typed_and_pool_survives() {
    let engine = engine_on(2, EngineConfig::default());
    let doomed = engine
        .submit_with_deadline("lubm", Query::Closure, Some(Duration::ZERO))
        .unwrap();
    match doomed.wait().result {
        Err(EngineError::DeadlineExceeded { budget_ms, .. }) => assert_eq!(budget_ms, 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // Same engine, same devices: a normal request succeeds afterwards.
    let ok = engine.submit("lubm", Query::Closure).unwrap();
    assert!(ok.wait().result.is_ok());
    let stats = engine.shutdown();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.completed, 1);
}

/// Cancelling a queued ticket yields typed `Cancelled`; later requests
/// are unaffected.
#[test]
fn cancellation_is_typed() {
    let engine = engine_on(
        1,
        EngineConfig {
            batching: false,
            ..EngineConfig::default()
        },
    );
    // Keep the only worker busy so the victim stays queued.
    let busy = engine.submit("lubm", Query::Closure).unwrap();
    let victim = engine
        .submit(
            "lubm",
            Query::RpqFromSource {
                text: SRC_TEMPLATE.into(),
                source: 0,
            },
        )
        .unwrap();
    victim.cancel();
    assert!(matches!(victim.wait().result, Err(EngineError::Cancelled)));
    assert!(busy.wait().result.is_ok());
    let after = engine.submit("lubm", Query::Closure).unwrap();
    assert!(after.wait().result.is_ok());
    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
}

/// Two clients submit coalescible same-plan single-source RPQs behind a
/// busy worker; one cancels while queued. The cancelled ticket must
/// finish typed `Cancelled` with *zero* launch/byte deltas, and the
/// surviving ticket's `RequestMetrics` must equal a solo reference run
/// — the batch sweep must not pull a cancelled request into the batch
/// and attribute the batch's work to it (or inflate the survivor's).
#[test]
fn cancelled_batch_member_does_not_skew_survivors() {
    let submit_src = |engine: &Engine, source: u32| {
        engine
            .submit(
                "lubm",
                Query::RpqFromSource {
                    text: SRC_TEMPLATE.into(),
                    source,
                },
            )
            .unwrap()
    };

    // Reference: the survivor's launches when served strictly solo,
    // with residency warmed the same way (closure first).
    let reference = {
        let engine = engine_on(
            1,
            EngineConfig {
                batching: false,
                ..EngineConfig::default()
            },
        );
        engine
            .submit("lubm", Query::Closure)
            .unwrap()
            .wait()
            .result
            .unwrap();
        let done = submit_src(&engine, 3).wait();
        done.result.unwrap();
        engine.shutdown();
        done.metrics.launches
    };
    assert!(reference > 0, "solo reference run launched nothing");

    // Race under batching: both requests queue behind the closure and
    // are coalescible (same graph, plan key, version, no deadline);
    // client B cancels while queued.
    let engine = engine_on(1, EngineConfig::default());
    let busy = engine.submit("lubm", Query::Closure).unwrap();
    let survivor = submit_src(&engine, 3); // client A
    let victim = submit_src(&engine, 7); // client B
    victim.cancel();

    assert!(busy.wait().result.is_ok());
    let cancelled = victim.wait();
    assert!(matches!(cancelled.result, Err(EngineError::Cancelled)));
    assert_eq!(
        cancelled.metrics.launches, 0,
        "cancelled member was charged for batch work"
    );
    assert_eq!(cancelled.metrics.h2d_bytes, 0);
    assert_eq!(cancelled.metrics.batch_size, 1);

    let served = survivor.wait();
    assert!(served.result.is_ok());
    assert_eq!(served.metrics.batch_size, 1);
    assert_eq!(
        served.metrics.launches, reference,
        "survivor's metrics skewed by a cancelled batch member"
    );

    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 2); // busy + survivor
    assert_eq!(stats.batches, 0, "a cancelled request was coalesced");
}

/// Unknown graphs and malformed queries fail fast at submit.
#[test]
fn submit_time_errors_are_typed() {
    let engine = engine_on(1, EngineConfig::default());
    assert!(matches!(
        engine.submit("nope", Query::Closure),
        Err(EngineError::UnknownGraph(_))
    ));
    assert!(matches!(
        engine.submit("lubm", Query::Rpq("((".into())),
        Err(EngineError::PlanError(_))
    ));
    assert!(matches!(
        engine.submit("lubm", Query::Cfpq("no arrow".into())),
        Err(EngineError::PlanError(_))
    ));
    engine.shutdown();
}
