//! k²-tree codec edge cases. The codec is the checkpoint serialization
//! format of the durability layer, so the round-trip
//! `CsrBool → K2Tree → bytes → K2Tree → CsrBool` must be exact on the
//! shapes real label matrices take: empty, fully dense within one tile,
//! dimensions off every power-of-two and multiple-of-64 boundary, and
//! arbitrary random sparsity.

use proptest::prelude::*;

use spbla_core::{CsrBool, K2Tree};
use spbla_integration::pseudo_pairs;

/// Full round-trip through the tree and its byte form; returns the
/// final CSR for comparison.
fn round_trip(m: &CsrBool) -> CsrBool {
    let tree = K2Tree::from_csr(m);
    assert_eq!(tree.nnz(), m.nnz());
    let bytes = tree.to_bytes();
    let back = K2Tree::from_bytes(&bytes).expect("encoded tree decodes");
    assert_eq!(back.nnz(), tree.nnz());
    back.to_csr()
}

fn assert_identical(a: &CsrBool, b: &CsrBool) {
    assert_eq!(a.shape(), b.shape());
    assert_eq!(a.to_pairs(), b.to_pairs());
}

#[test]
fn empty_label_matrix_round_trips() {
    for (r, c) in [(1, 1), (10, 10), (64, 64), (70, 3), (1000, 1)] {
        let m = CsrBool::zeros(r, c);
        let got = round_trip(&m);
        assert_identical(&m, &got);
        assert_eq!(got.nnz(), 0);
    }
}

#[test]
fn single_fully_dense_tile_round_trips() {
    // A fully dense 64×64 tile: every leaf of the k²-tree is set, the
    // worst case for the bitmap levels and the exact shape a saturated
    // closure block takes.
    let pairs: Vec<(u32, u32)> = (0..64u32)
        .flat_map(|r| (0..64u32).map(move |c| (r, c)))
        .collect();
    let m = CsrBool::from_pairs(64, 64, &pairs).unwrap();
    let got = round_trip(&m);
    assert_identical(&m, &got);
    assert_eq!(got.nnz(), 64 * 64);
    // The same tile embedded off-origin in a larger matrix.
    let shifted: Vec<(u32, u32)> = pairs.iter().map(|&(r, c)| (r + 5, c + 33)).collect();
    let m = CsrBool::from_pairs(100, 100, &shifted).unwrap();
    assert_identical(&m, &round_trip(&m));
}

#[test]
fn non_multiple_of_64_dimensions_round_trip() {
    for (r, c) in [(63, 63), (65, 65), (70, 70), (127, 129), (3, 191), (65, 1)] {
        let nnz = (r as usize * c as usize / 7).clamp(1, 300);
        let pairs = pseudo_pairs_rect(r, c, nnz, u64::from(r) * 1000 + u64::from(c));
        let m = CsrBool::from_pairs(r, c, &pairs).unwrap();
        assert_identical(&m, &round_trip(&m));
        // Boundary occupancy: the far corner cell is representable.
        let corner = CsrBool::from_pairs(r, c, &[(r - 1, c - 1), (0, 0)]).unwrap();
        assert_identical(&corner, &round_trip(&corner));
    }
}

/// Rectangular variant of the shared square-generator helper.
fn pseudo_pairs_rect(rows: u32, cols: u32, nnz: usize, seed: u64) -> Vec<(u32, u32)> {
    let side = rows.max(cols);
    pseudo_pairs(side, nnz * 2, seed)
        .into_iter()
        .filter(|&(r, c)| r < rows && c < cols)
        .take(nnz)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes and densities: `from_csr`/`to_csr` (through the
    /// byte codec) is the identity on canonical CSR.
    #[test]
    fn csr_round_trip_is_identity(
        rows in 1u32..200,
        cols in 1u32..200,
        nnz in 0usize..400,
        seed in 0u64..1024,
    ) {
        let pairs = pseudo_pairs_rect(rows, cols, nnz, seed);
        let m = CsrBool::from_pairs(rows, cols, &pairs).unwrap();
        let got = round_trip(&m);
        prop_assert_eq!(m.shape(), got.shape());
        prop_assert_eq!(m.to_pairs(), got.to_pairs());
    }
}
