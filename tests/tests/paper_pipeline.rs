//! End-to-end runs of the paper's evaluation pipelines at test scale:
//! generate each synthetic dataset, run the actual queries of the
//! evaluation (Table II templates, G1/G2/Geo/MA), and cross-check every
//! engine against the oracles. This is the "would the benchmark produce
//! a correct row" test.

use spbla_core::Instance;
use spbla_data::grammars::{grammar_g1, grammar_g2, grammar_geo, grammar_ma};
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::queries::generate_queries;
use spbla_data::{alias, rdf};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::oracle::cfpq_pairs;
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_graph::rpq_derivative::rpq_by_derivatives;
use spbla_lang::{CnfGrammar, SymbolTable};

#[test]
fn lubm_rpq_pipeline_consistent() {
    let mut table = SymbolTable::new();
    let graph = lubm_like(1, &LubmConfig::default(), &mut table, 5);
    let queries = generate_queries(&graph, &mut table, 4, 1, 99);
    assert_eq!(queries.len(), 28);
    let inst = Instance::cuda_sim();
    // Spot-check a representative subset against the derivative baseline.
    for (name, regex) in queries.iter().filter(|(n, _)| {
        n.starts_with("Q1#")
            || n.starts_with("Q2#")
            || n.starts_with("Q8#")
            || n.starts_with("Q12#")
    }) {
        let idx = RpqIndex::build(&graph, regex, &inst, &RpqOptions::default()).unwrap();
        let got = idx.reachable_pairs().unwrap();
        let expect = rpq_by_derivatives(&graph, regex);
        assert_eq!(got, expect, "query {name}");
    }
}

#[test]
fn same_generation_pipeline_consistent() {
    let mut table = SymbolTable::new();
    let g1 = grammar_g1(&mut table);
    let g2 = grammar_g2(&mut table);
    // Tiny eclass-like graph with inverse edges, as the suite builds it.
    let graph = rdf::eclass_like(0.0008, &mut table, 3).with_inverses(&mut table);
    let inst = Instance::cuda_sim();
    for (name, grammar) in [("G1", &g1), ("G2", &g2)] {
        let cnf = CnfGrammar::from_grammar(grammar);
        let expect = cfpq_pairs(&graph, &cnf, cnf.start());
        let tns = TnsIndex::build(&graph, grammar, &inst, &TnsOptions::default()).unwrap();
        assert_eq!(tns.reachable_pairs(), expect, "{name} Tns");
        let mtx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
        assert_eq!(mtx.reachable_pairs(), expect, "{name} Mtx");
        // Non-trivial workload: G1/G2 must actually answer something on
        // a subClassOf hierarchy.
        assert!(!expect.is_empty(), "{name} should have answers");
    }
}

#[test]
fn geospecies_geo_query_pipeline() {
    let mut table = SymbolTable::new();
    let geo = grammar_geo(&mut table);
    let graph = rdf::geospecies_like(0.0005, &mut table, 4).with_inverses(&mut table);
    let cnf = CnfGrammar::from_grammar(&geo);
    let expect = cfpq_pairs(&graph, &cnf, cnf.start());
    let inst = Instance::cpu();
    let tns = TnsIndex::build(&graph, &geo, &inst, &TnsOptions::default()).unwrap();
    assert_eq!(tns.reachable_pairs(), expect);
    assert!(!expect.is_empty(), "Geo finds same-taxon pairs");
    // And G2 on geospecies answers nothing (no subClassOf edges) — the
    // `0*` cell of Table IV.
    let g2 = grammar_g2(&mut table);
    let tns_g2 = TnsIndex::build(&graph, &g2, &inst, &TnsOptions::default()).unwrap();
    assert!(tns_g2.reachable_pairs().is_empty());
}

#[test]
fn memory_alias_pipeline_consistent() {
    let mut table = SymbolTable::new();
    let ma = grammar_ma(&mut table);
    let cfg = alias::AliasConfig {
        units: 2,
        vars_per_unit: 18,
        ..alias::AliasConfig::default()
    };
    let graph = alias::alias_graph(&cfg, &mut table, 8).with_inverses(&mut table);
    let cnf = CnfGrammar::from_grammar(&ma);
    let expect = cfpq_pairs(&graph, &cnf, cnf.start());
    for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
        let tns = TnsIndex::build(&graph, &ma, &inst, &TnsOptions::default()).unwrap();
        assert_eq!(tns.reachable_pairs(), expect, "{:?}", inst.backend());
        let mtx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
        assert_eq!(mtx.reachable_pairs(), expect);
    }
    assert!(!expect.is_empty(), "alias pairs exist");
}

#[test]
fn alias_single_path_witnesses_are_ma_words() {
    let mut table = SymbolTable::new();
    let ma = grammar_ma(&mut table);
    let cfg = alias::AliasConfig {
        units: 2,
        vars_per_unit: 15,
        ..alias::AliasConfig::default()
    };
    let graph = alias::alias_graph(&cfg, &mut table, 9).with_inverses(&mut table);
    let cnf = CnfGrammar::from_grammar(&ma);
    let idx = AzimovIndex::build(
        &graph,
        &cnf,
        &Instance::cpu(),
        &AzimovOptions {
            track_heights: true,
        },
    )
    .unwrap();
    let pairs = idx.reachable_pairs();
    let mut checked = 0;
    for &(u, v) in pairs.iter().take(12) {
        let p = idx.extract_single_path(u, v).expect("witness exists");
        assert!(spbla_graph::paths::is_well_formed(&p));
        // Verify the witness word against the grammar with string CYK.
        let word = spbla_graph::paths::word_of(&p);
        assert!(
            spbla_lang::cyk::cyk_accepts(&cnf, &word),
            "witness word not in L(MA): {word:?}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no alias pairs to check");
}
