//! Property tests: every distributed kernel on a [`DeviceGrid`] returns
//! results bit-identical to the same operation on one device, for every
//! grid size — including ragged partitions and grids with more devices
//! than matrix rows (all-empty trailing shards).

use proptest::prelude::*;

use spbla_core::{CsrBool, Instance, Matrix};
use spbla_graph::closure::{closure_delta, closure_delta_on_devices};
use spbla_lang::SymbolTable;
use spbla_multidev::{DeviceGrid, DistMatrix};

const GRIDS: [usize; 4] = [1, 2, 3, 7];

fn pairs_strategy(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

fn single(n: u32, pairs: &[(u32, u32)]) -> Matrix {
    let inst = Instance::cuda_sim();
    Matrix::from_pairs(&inst, n, n, pairs).expect("in bounds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dist_mxm_equivalent(pa in pairs_strategy(11, 40), pb in pairs_strategy(11, 40)) {
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 11, 11, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 11, 11, &pb).unwrap();
        let expect = a.mxm(&b).unwrap().read();
        for devices in GRIDS {
            let grid = DeviceGrid::new(devices);
            let da = DistMatrix::from_pairs(&grid, 11, 11, &pa).unwrap();
            let db = DistMatrix::from_pairs(&grid, 11, 11, &pb).unwrap();
            prop_assert_eq!(
                da.mxm(&db).unwrap().gather().to_pairs(),
                expect.clone(),
                "{} devices", devices
            );
        }
    }

    #[test]
    fn dist_masked_mxm_equivalent(
        pa in pairs_strategy(9, 30),
        pb in pairs_strategy(9, 30),
        pm in pairs_strategy(9, 25),
    ) {
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 9, 9, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 9, 9, &pb).unwrap();
        let m = Matrix::from_pairs(&inst, 9, 9, &pm).unwrap();
        let expect_keep = a.mxm_masked(&b, &m).unwrap().read();
        let expect_drop = a.mxm_compmask(&b, &m).unwrap().read();
        for devices in GRIDS {
            let grid = DeviceGrid::new(devices);
            let da = DistMatrix::from_pairs(&grid, 9, 9, &pa).unwrap();
            let db = DistMatrix::from_pairs(&grid, 9, 9, &pb).unwrap();
            let dm = DistMatrix::from_pairs(&grid, 9, 9, &pm).unwrap();
            prop_assert_eq!(
                da.mxm_masked(&db, &dm).unwrap().gather().to_pairs(),
                expect_keep.clone(), "{} devices", devices);
            prop_assert_eq!(
                da.mxm_compmask(&db, &dm).unwrap().gather().to_pairs(),
                expect_drop.clone(), "{} devices", devices);
        }
    }

    #[test]
    fn dist_ewise_equivalent_across_ragged_partitions(
        pa in pairs_strategy(10, 40),
        pb in pairs_strategy(10, 40),
        cut in 0u32..=10,
    ) {
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 10, 10, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 10, 10, &pb).unwrap();
        let expect_add = a.ewise_add(&b).unwrap().read();
        let expect_mult = a.ewise_mult(&b).unwrap().read();
        let grid = DeviceGrid::new(2);
        let da = DistMatrix::from_pairs(&grid, 10, 10, &pa).unwrap();
        // Deliberately misaligned partition: forces a metered reshard.
        let csr_b = CsrBool::from_pairs(10, 10, &pb).unwrap();
        let db = DistMatrix::from_csr_with_offsets(&grid, &csr_b, vec![0, cut, 10]).unwrap();
        prop_assert_eq!(da.ewise_add(&db).unwrap().gather().to_pairs(), expect_add);
        prop_assert_eq!(da.ewise_mult(&db).unwrap().gather().to_pairs(), expect_mult);
    }

    #[test]
    fn dist_kron_equivalent(pa in pairs_strategy(5, 10), pb in pairs_strategy(6, 12)) {
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 5, 5, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 6, 6, &pb).unwrap();
        let expect = a.kron(&b).unwrap().read();
        for devices in GRIDS {
            let grid = DeviceGrid::new(devices);
            let da = DistMatrix::from_pairs(&grid, 5, 5, &pa).unwrap();
            let db = DistMatrix::from_pairs(&grid, 6, 6, &pb).unwrap();
            prop_assert_eq!(
                da.kron(&db).unwrap().gather().to_pairs(),
                expect.clone(), "{} devices", devices);
        }
    }

    #[test]
    fn dist_reductions_equivalent(pairs in pairs_strategy(13, 50)) {
        let csr = CsrBool::from_pairs(13, 13, &pairs).unwrap();
        for devices in GRIDS {
            let grid = DeviceGrid::new(devices);
            let d = DistMatrix::from_csr(&grid, &csr).unwrap();
            prop_assert_eq!(d.reduce_to_column().unwrap(), csr.reduce_to_column());
            prop_assert_eq!(d.reduce_to_row().unwrap(), csr.reduce_to_row());
        }
    }

    #[test]
    fn dist_closure_equivalent(pairs in pairs_strategy(10, 30)) {
        let a = single(10, &pairs);
        let expect = closure_delta(&a).unwrap().read();
        for devices in GRIDS {
            let grid = DeviceGrid::new(devices);
            let d = DistMatrix::from_pairs(&grid, 10, 10, &pairs).unwrap();
            prop_assert_eq!(
                d.closure_delta().unwrap().gather().to_pairs(),
                expect.clone(), "{} devices", devices);
        }
    }
}

/// More devices than rows: the trailing shards own zero rows and every
/// kernel must still agree with the single-device result.
#[test]
fn more_devices_than_rows() {
    let pairs = [(0u32, 1u32), (1, 2), (2, 0), (3, 3)];
    let inst = Instance::cuda_sim();
    let a = Matrix::from_pairs(&inst, 4, 4, &pairs).unwrap();
    let grid = DeviceGrid::new(7);
    let d = DistMatrix::from_pairs(&grid, 4, 4, &pairs).unwrap();
    assert_eq!(d.shards()[6].nrows(), 0);
    assert_eq!(
        d.mxm(&d.duplicate().unwrap()).unwrap().gather().to_pairs(),
        a.mxm(&a).unwrap().read()
    );
    assert_eq!(
        d.closure_delta().unwrap().gather().to_pairs(),
        closure_delta(&a).unwrap().read()
    );
}

/// An all-empty matrix distributes, multiplies and closes without any
/// special-casing — and pays zero communication (nothing to fetch).
#[test]
fn all_empty_shards() {
    for devices in GRIDS {
        let grid = DeviceGrid::new(devices);
        let d = DistMatrix::zeros(&grid, 6, 6).unwrap();
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.mxm(&d.duplicate().unwrap()).unwrap().nnz(), 0);
        assert_eq!(d.closure_delta().unwrap().nnz(), 0);
        assert_eq!(d.gather(), CsrBool::zeros(6, 6));
        assert_eq!(
            grid.total_stats().d2d_bytes,
            0,
            "empty shards must never be fetched ({devices} devices)"
        );
    }
}

/// Zero-dimension matrices shard cleanly (the `LaunchCfg::cover(0, ..)`
/// regression surface, end to end).
#[test]
fn zero_row_matrix_distributes() {
    let grid = DeviceGrid::new(3);
    let d = DistMatrix::zeros(&grid, 0, 5).unwrap();
    assert_eq!(d.nrows(), 0);
    assert_eq!(d.gather(), CsrBool::zeros(0, 5));
}

/// The acceptance gate: distributed delta closure on the LUBM fixture is
/// bit-identical to the single-device schedule on 1, 2, 4 and 8 devices.
#[test]
fn lubm_closure_identical_on_1_2_4_8_devices() {
    let mut table = SymbolTable::new();
    let lubm = spbla_data::lubm::lubm_like(
        2,
        &spbla_data::lubm::LubmConfig::default(),
        &mut table,
        0xC0FFEE,
    );
    let csr = lubm.adjacency_csr();
    let inst = Instance::cuda_sim();
    let a = Matrix::from_csr(&inst, csr.clone()).unwrap();
    let expect = closure_delta(&a).unwrap().read();
    for devices in [1usize, 2, 4, 8] {
        let (closure, grid) = closure_delta_on_devices(&csr, devices).unwrap();
        assert_eq!(closure.to_pairs(), expect, "{devices} devices");
        if devices > 1 {
            assert!(grid.total_stats().d2d_bytes > 0, "rounds were not metered");
        }
    }
}
