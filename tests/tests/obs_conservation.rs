//! Metrics-conservation properties of the observability layer.
//!
//! The registry and the trace are two views of the same execution; they
//! must agree with each other and with the `DeviceStats` snapshot view:
//!
//! - every counted kernel launch on a device appears as exactly one
//!   `kernel` span on that device's trace track;
//! - the h2d/d2h byte counters equal the sum of the `bytes` args of the
//!   `xfer` spans on that track;
//! - the per-kernel profile histograms advance by exactly one
//!   observation per instrumented op, with sums matching actual shapes,
//!   on all four backends.
//!
//! The trace and registry are process-global, so every test here
//! serialises on one mutex — tests within this binary otherwise run on
//! parallel threads and would bleed spans into each other's windows.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use spbla_core::{Instance, Matrix};
use spbla_obs::{labeled, metrics_global, trace_global};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic sparse pair set (xorshift), `n`×`n`, ~`nnz` entries.
fn random_pairs(n: u32, nnz: usize, mut seed: u64) -> Vec<(u32, u32)> {
    seed |= 1;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    (0..nnz)
        .map(|_| ((next() % n as u64) as u32, (next() % n as u64) as u32))
        .collect()
}

/// A mixed workload touching SpGEMM, element-wise ops, transpose,
/// Kronecker and reductions — enough to exercise every primitive
/// (sort, scan, compaction, histogram) behind the launch counter.
fn run_workload(inst: &Instance, n: u32, seed: u64) {
    let a = Matrix::from_pairs(inst, n, n, &random_pairs(n, n as usize * 4, seed)).unwrap();
    let b =
        Matrix::from_pairs(inst, n, n, &random_pairs(n, n as usize * 4, seed ^ 0xABCD)).unwrap();
    let c = a.mxm(&b).unwrap();
    let d = a.ewise_add(&b).unwrap();
    let _ = d.ewise_mult(&c).unwrap();
    let _ = a.transpose().unwrap();
    let small = Matrix::from_pairs(inst, 4, 4, &[(0, 1), (1, 2), (3, 0)]).unwrap();
    let _ = small.kron(&small).unwrap();
    let _ = d.reduce_to_column().unwrap();
    let _ = a.mxm_compmask(&b, &d).unwrap();
    let _ = c.to_csr();
}

#[test]
fn every_launch_appears_as_one_kernel_span_on_its_track() {
    let _guard = obs_lock();
    let trace = trace_global();
    for inst in [Instance::cuda_sim(), Instance::cl_sim()] {
        trace.enable(1 << 18);
        run_workload(&inst, 96, 0xFEED);
        let device = inst.device().expect("device-backed backend");
        let stats = device.stats();
        let snap = trace.snapshot();
        trace.disable();
        assert_eq!(snap.dropped, 0, "ring sized for the workload");

        let track = device.ordinal();
        let kernel_spans = snap
            .spans
            .iter()
            .filter(|s| s.cat == "kernel" && s.track == track)
            .count() as u64;
        assert_eq!(
            kernel_spans,
            stats.launches,
            "{}: kernel spans vs launch counter",
            inst.backend()
        );

        // Transfer conservation: the byte counters are exactly the sums
        // of the spans' `bytes` args, per direction.
        let xfer_sum = |name: &str| -> u64 {
            snap.spans
                .iter()
                .filter(|s| s.cat == "xfer" && s.track == track && s.name == name)
                .map(|s| {
                    s.args
                        .iter()
                        .find(|(k, _)| *k == "bytes")
                        .map_or(0, |&(_, v)| v)
                })
                .sum()
        };
        assert_eq!(xfer_sum("h2d"), stats.h2d_bytes, "{}", inst.backend());
        assert_eq!(xfer_sum("d2h"), stats.d2h_bytes, "{}", inst.backend());
        assert_eq!(xfer_sum("d2d"), stats.d2d_bytes, "{}", inst.backend());
    }
}

#[test]
fn device_stats_view_equals_registry_cells() {
    let _guard = obs_lock();
    let inst = Instance::cuda_sim();
    run_workload(&inst, 64, 0xBEEF);
    let device = inst.device().expect("device-backed backend");
    let stats = device.stats();
    let dev = device.ordinal().to_string();
    let reg = metrics_global();
    let counter = |family: &str| reg.counter(&labeled(family, &[("dev", &dev)])).get();
    assert_eq!(stats.launches, counter("spbla_dev_launches_total"));
    assert_eq!(
        stats.blocks_executed,
        counter("spbla_dev_blocks_executed_total")
    );
    assert_eq!(stats.h2d_bytes, counter("spbla_dev_h2d_bytes_total"));
    assert_eq!(stats.d2h_bytes, counter("spbla_dev_d2h_bytes_total"));
    assert_eq!(stats.d2d_bytes, counter("spbla_dev_d2d_bytes_total"));
    assert_eq!(
        stats.accum_insertions,
        counter("spbla_dev_accum_insertions_total")
    );
    assert!(stats.launches > 0, "workload actually launched kernels");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On all four backends, each instrumented op adds exactly one
    /// observation to its kernel histograms, and the observed `rows` /
    /// `nnz_out` sums advance by the true matrix shapes.
    #[test]
    fn kernel_histograms_conserve_on_all_backends(
        n in 8u32..64,
        density in 1usize..6,
        seed in any::<u64>(),
    ) {
        let _guard = obs_lock();
        let reg = metrics_global();
        for inst in [
            Instance::cpu(),
            Instance::cpu_dense(),
            Instance::cuda_sim(),
            Instance::cl_sim(),
        ] {
            let labels = [("backend", inst.backend().label()), ("kernel", "mxm")];
            let rows_h = reg.histogram(&labeled("spbla_kernel_rows", &labels));
            let out_h = reg.histogram(&labeled("spbla_kernel_nnz_out", &labels));
            let (count0, rows_sum0, out_sum0) =
                (rows_h.count(), rows_h.sum(), out_h.sum());

            let a = Matrix::from_pairs(
                &inst, n, n, &random_pairs(n, n as usize * density, seed),
            ).unwrap();
            let b = Matrix::from_pairs(
                &inst, n, n, &random_pairs(n, n as usize * density, seed ^ 0x5A5A),
            ).unwrap();
            let c = a.mxm(&b).unwrap();

            prop_assert_eq!(rows_h.count(), count0 + 1, "{}", inst.backend());
            prop_assert_eq!(out_h.count(), count0 + 1, "{}", inst.backend());
            prop_assert_eq!(
                rows_h.sum(), rows_sum0 + n as u64, "{}", inst.backend()
            );
            prop_assert_eq!(
                out_h.sum(), out_sum0 + c.nnz() as u64, "{}", inst.backend()
            );
        }
    }
}
