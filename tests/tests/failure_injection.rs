//! Failure injection: device OOM, dimension mismatches, bounds errors —
//! everything must surface as typed errors, never panics or corruption.

use spbla_core::{Backend, CsrBool, Instance, Matrix, SpblaError};
use spbla_gpu_sim::{Device, DeviceConfig};
use spbla_multidev::{DeviceGrid, DistMatrix};

#[test]
fn device_oom_surfaces_as_error() {
    // 4 KiB device: uploading a few hundred entries must fail cleanly.
    let dev = Device::with_memory_limit(4 << 10);
    let inst = Instance::cuda_sim_on(dev.clone());
    let pairs: Vec<(u32, u32)> = (0..2000).map(|i| (i, (i * 7) % 2000)).collect();
    let err = Matrix::from_pairs(&inst, 2000, 2000, &pairs).unwrap_err();
    assert!(matches!(err, SpblaError::Device(_)), "got {err}");
    // The failed allocation must not leak accounting.
    assert_eq!(dev.stats().bytes_in_use, 0);
}

#[test]
fn oom_midway_through_mxm_releases_memory() {
    // Enough memory for the operands but not for the product temporaries.
    let dev = Device::with_memory_limit(64 << 10);
    let inst = Instance::cuda_sim_on(dev.clone());
    let n = 600u32;
    // Dense-ish band matrix: product of the band with itself needs room.
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| (0..12).map(move |d| (i, (i + d) % n)))
        .collect();
    let a = match Matrix::from_pairs(&inst, n, n, &pairs) {
        Ok(a) => a,
        Err(_) => return, // operands alone may not fit; acceptable
    };
    let before = dev.stats().bytes_in_use;
    match a.mxm(&a) {
        Ok(c) => {
            // If it fit, accounting must balance with the new matrix.
            assert!(dev.stats().bytes_in_use >= before);
            drop(c);
        }
        Err(e) => {
            assert!(matches!(e, SpblaError::Device(_)));
            // All temporaries must have been released on failure.
            assert_eq!(dev.stats().bytes_in_use, before);
        }
    }
}

#[test]
fn oom_in_clbool_merge_buffer() {
    let dev = Device::with_memory_limit(24 << 10);
    let inst = Instance::cl_sim_on(dev.clone());
    let pairs: Vec<(u32, u32)> = (0..1200).map(|i| (i % 300, (i * 13) % 300)).collect();
    let a = match Matrix::from_pairs(&inst, 300, 300, &pairs) {
        Ok(a) => a,
        Err(_) => return,
    };
    let b = match Matrix::from_pairs(&inst, 300, 300, &pairs) {
        Ok(b) => b,
        Err(_) => return,
    };
    let before = dev.stats().bytes_in_use;
    if let Err(e) = a.ewise_add(&b) {
        assert!(matches!(e, SpblaError::Device(_)));
        assert_eq!(dev.stats().bytes_in_use, before, "leaked temporaries");
    }
}

#[test]
fn dimension_errors_are_typed() {
    let inst = Instance::cuda_sim();
    let a = Matrix::zeros(&inst, 2, 3).unwrap();
    let b = Matrix::zeros(&inst, 2, 3).unwrap();
    assert!(matches!(
        a.mxm(&b),
        Err(SpblaError::DimensionMismatch { op: "mxm", .. })
    ));
    let c = Matrix::zeros(&inst, 3, 3).unwrap();
    assert!(matches!(
        a.ewise_add(&c),
        Err(SpblaError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        a.submatrix(0, 0, 3, 3),
        Err(SpblaError::InvalidDimension(_))
    ));
    assert!(matches!(
        a.transitive_closure(),
        Err(SpblaError::DimensionMismatch { .. })
    ));
}

#[test]
fn out_of_bounds_fill_rejected_on_all_backends() {
    for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
        let err = Matrix::from_pairs(&inst, 4, 4, &[(4, 0)]).unwrap_err();
        assert!(matches!(err, SpblaError::IndexOutOfBounds { row: 4, .. }));
    }
}

#[test]
fn kron_overflow_rejected() {
    let inst = Instance::cpu();
    let big = Matrix::zeros(&inst, 1 << 17, 1 << 17).unwrap();
    assert!(matches!(
        big.kron(&big),
        Err(SpblaError::InvalidDimension(_))
    ));
}

/// A grid where one device is far too small: sharding a matrix over it
/// must fail with the typed device error, and every shard uploaded
/// before the failure must be freed — no poisoned partial state.
#[test]
fn undersized_device_in_grid_fails_cleanly() {
    let grid = DeviceGrid::with_configs(
        Backend::CudaSim,
        vec![
            DeviceConfig::default(),
            DeviceConfig {
                memory_capacity: 256, // a few dozen entries at most
                ..DeviceConfig::default()
            },
            DeviceConfig::default(),
        ],
    )
    .unwrap();
    let n = 900u32;
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i * 7) % n)])
        .collect();
    let err = DistMatrix::from_pairs(&grid, n, n, &pairs).unwrap_err();
    assert!(matches!(err, SpblaError::Device(_)), "got {err}");
    for (i, s) in grid.stats().iter().enumerate() {
        assert_eq!(s.bytes_in_use, 0, "device {i} holds a poisoned shard");
    }
}

/// The operands fit the small device but the distributed closure's
/// intermediates do not: the error is typed, and afterwards each device
/// holds exactly what it held before the failed operation.
#[test]
fn grid_oom_mid_closure_releases_temporaries() {
    let grid = DeviceGrid::with_configs(
        Backend::CudaSim,
        vec![
            DeviceConfig::default(),
            DeviceConfig {
                memory_capacity: 24 << 10,
                ..DeviceConfig::default()
            },
        ],
    )
    .unwrap();
    // Dense-ish band: the closure is much denser than the input.
    let n = 700u32;
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| (1..6u32).map(move |d| (i, (i + d) % n)))
        .collect();
    let csr = CsrBool::from_pairs(n, n, &pairs).unwrap();
    let d = match DistMatrix::from_csr(&grid, &csr) {
        Ok(d) => d,
        Err(_) => return, // the shard alone may not fit; acceptable
    };
    let before: Vec<usize> = grid.stats().iter().map(|s| s.bytes_in_use).collect();
    match d.closure_delta() {
        Ok(c) => drop(c),
        Err(e) => {
            assert!(matches!(e, SpblaError::Device(_)), "got {e}");
            let after: Vec<usize> = grid.stats().iter().map(|s| s.bytes_in_use).collect();
            assert_eq!(after, before, "leaked distributed temporaries");
        }
    }
}

/// Cancellation mid-closure: arm a stop token, cancel it from another
/// thread partway through a fixpoint, and assert the typed error
/// surfaces, every temporary is released, and the device keeps serving
/// new work afterwards — the serving layer relies on exactly this.
#[test]
fn cancellation_mid_closure_leaves_device_usable() {
    use spbla_gpu_sim::StopToken;

    let dev = Device::new(DeviceConfig::default());
    let inst = Instance::cuda_sim_on(dev.clone());
    let n = 900u32;
    let pairs: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| (1..5u32).map(move |d| (i, (i + d) % n)))
        .collect();
    let a = Matrix::from_pairs(&inst, n, n, &pairs).unwrap();
    let before = dev.stats().bytes_in_use;

    let token = StopToken::new();
    token.cancel(); // trip at the very first launch boundary
    dev.install_stop_token(token);
    let err = a.transitive_closure().unwrap_err();
    assert!(
        matches!(
            err,
            SpblaError::Device(spbla_gpu_sim::DeviceError::Cancelled)
        ),
        "got {err}"
    );
    assert_eq!(
        dev.stats().bytes_in_use,
        before,
        "cancelled closure leaked temporaries"
    );

    // Disarm and verify the device pool is not poisoned: the same
    // operation now runs to completion.
    dev.clear_stop_token();
    let c = a.transitive_closure().unwrap();
    assert!(c.nnz() >= a.nnz());
}

/// An already-expired deadline surfaces the typed `DeadlineExceeded`
/// error and, like cancellation, leaves accounting balanced.
#[test]
fn expired_deadline_surfaces_typed_error() {
    use spbla_gpu_sim::StopToken;
    use std::time::Duration;

    let dev = Device::new(DeviceConfig::default());
    let inst = Instance::cl_sim_on(dev.clone());
    let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i, (i + 1) % 400)).collect();
    let a = Matrix::from_pairs(&inst, 400, 400, &pairs).unwrap();
    let before = dev.stats().bytes_in_use;

    let token = StopToken::with_deadline(Duration::from_millis(0));
    std::thread::sleep(Duration::from_millis(2));
    dev.install_stop_token(token);
    let err = a.mxm(&a).unwrap_err();
    assert!(
        matches!(
            err,
            SpblaError::Device(spbla_gpu_sim::DeviceError::DeadlineExceeded { .. })
        ),
        "got {err}"
    );
    assert_eq!(dev.stats().bytes_in_use, before);
    dev.clear_stop_token();
    assert!(a.mxm(&a).is_ok());
}

#[test]
fn shared_device_across_instances_accumulates_stats() {
    let dev = Device::default();
    let i1 = Instance::cuda_sim_on(dev.clone());
    let i2 = Instance::cl_sim_on(dev.clone());
    let a = Matrix::from_pairs(&i1, 10, 10, &[(0, 1)]).unwrap();
    let b = Matrix::from_pairs(&i2, 10, 10, &[(1, 2)]).unwrap();
    assert!(dev.stats().bytes_in_use >= a.memory_bytes() + b.memory_bytes());
    // Cross-instance ops still rejected even on the same device.
    assert!(matches!(a.mxm(&b), Err(SpblaError::BackendMismatch)));
}
