//! Crash-point recovery matrix: a durability directory is truncated at
//! *every byte* of its write-ahead log — every record boundary and
//! every torn mid-record position — and recovery must either rebuild
//! the exact surviving prefix (bit-identical closure checksums at every
//! live version) or fail with a clean typed error. Never a corrupt
//! catalog.

use std::fs;
use std::path::{Path, PathBuf};

use spbla_core::{Instance, Matrix};
use spbla_durable::{
    list_checkpoints, recover, recover_into_engine, wal, DurabilityConfig, DurableLog, ReplicaSet,
};
use spbla_engine::{Engine, EngineConfig, Query};
use spbla_graph::closure::closure_delta;
use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;
use spbla_multidev::DeviceGrid;
use spbla_stream::{checksum_pairs, UpdateBatch};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spbla-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Closure checksum of the union adjacency — the bit-identity witness
/// used across the whole suite.
fn closure_checksum(graph: &LabeledGraph) -> u64 {
    let inst = Instance::cuda_sim();
    let n = graph.n_vertices();
    let adj = graph.adjacency_csr();
    let m = Matrix::from_pairs(&inst, n, n, &adj.to_pairs()).unwrap();
    let mut pairs = closure_delta(&m).unwrap().read();
    pairs.sort_unstable();
    checksum_pairs(&pairs)
}

/// A deterministic batch stream: inserts marching around a ring plus
/// periodic deletes, touching two labels.
fn batch_stream(table: &mut SymbolTable, n: u32, count: usize) -> Vec<UpdateBatch> {
    let a = table.intern("a");
    let b = table.intern("b");
    (0..count as u32)
        .map(|k| {
            let mut batch = UpdateBatch::new();
            batch.insert(k % n, a, (k * 3 + 1) % n);
            batch.insert((k + 5) % n, b, (k * 7 + 2) % n);
            if k % 2 == 1 {
                batch.delete((k - 1) % n, a, ((k - 1) * 3 + 1) % n);
            }
            batch
        })
        .collect()
}

/// Copy checkpoints with version ≤ `max_version` and the WAL segments,
/// truncating the log's byte stream at `cut` (an offset into the
/// concatenation of all segment files).
fn crash_copy(src: &Path, dst: &Path, cut: usize) -> usize {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    let mut remaining = cut;
    let mut copied = 0usize;
    for seg in wal::list_segments(src).unwrap() {
        let bytes = fs::read(&seg).unwrap();
        if remaining == 0 {
            break;
        }
        let take = remaining.min(bytes.len());
        fs::write(dst.join(seg.file_name().unwrap()), &bytes[..take]).unwrap();
        copied += take;
        remaining -= take;
    }
    copied
}

/// Number of complete records in the truncated log plus whether the cut
/// tore a record, derived by walking the on-disk framing.
fn prefix_records(dir: &Path) -> (u64, bool) {
    match wal::replay(dir, 0) {
        Ok(replayed) => (
            replayed.records.last().map(|r| r.version).unwrap_or(0),
            replayed.torn_tail,
        ),
        Err(e) => panic!("crash prefix must replay cleanly: {e}"),
    }
}

#[test]
fn crash_at_every_byte_recovers_the_exact_prefix() {
    let dir = tmpdir("matrix");
    let mut table = SymbolTable::new();
    let n = 12u32;
    let batches = batch_stream(&mut table, n, 6);
    let a = table.get("a").unwrap();
    let mut graph = LabeledGraph::from_triples(n, [(0, a, 1), (1, a, 2)]);

    // No-crash run: per-version closure checksums, durably logged with
    // mid-history checkpoints and forced segment rotation.
    let config = DurabilityConfig {
        segment_bytes: 96,
        checkpoint_every: 2,
        // The matrix exercises fallback from *any* checkpoint, which
        // needs the full-depth log; compaction has its own test below.
        compact_on_checkpoint: false,
        ..DurabilityConfig::default()
    };
    let mut log = DurableLog::open(&dir, config, &graph, 0, &table).unwrap();
    let mut version_checksums = vec![closure_checksum(&graph)];
    for (k, batch) in batches.iter().enumerate() {
        batch.apply_to(&mut graph);
        log.append(k as u64 + 1, batch, &graph, &table).unwrap();
        version_checksums.push(closure_checksum(&graph));
    }
    let segments = wal::list_segments(&dir).unwrap();
    assert!(segments.len() > 1, "stream must span multiple segments");
    let total_bytes: usize = segments
        .iter()
        .map(|s| fs::metadata(s).unwrap().len() as usize)
        .sum();

    // The crash matrix: every byte offset of the whole log.
    let crash = tmpdir("matrix-crash");
    let mut seen_torn = false;
    let mut seen_clean = false;
    for cut in 20..=total_bytes {
        let copied = crash_copy(&dir, &crash, cut);
        assert_eq!(copied, cut);
        let (live_head, torn) = prefix_records(&crash);
        seen_torn |= torn;
        seen_clean |= !torn;
        // Checkpoints that existed by the time of the crash.
        for (v, path) in list_checkpoints(&dir).unwrap() {
            if v <= live_head {
                fs::copy(&path, crash.join(path.file_name().unwrap())).unwrap();
            }
        }
        let mut fresh = SymbolTable::new();
        let rec = recover(&crash, &mut fresh).unwrap();
        assert_eq!(rec.head_version, live_head, "cut at {cut}");
        assert_eq!(rec.torn_tail, torn);
        // Every live version reconstructs bit-identically.
        let mut rebuilt = rec.graph;
        assert_eq!(
            closure_checksum(&rebuilt),
            version_checksums[rec.checkpoint_version as usize],
            "checkpoint state diverged (cut {cut})"
        );
        for (version, batch) in &rec.tail {
            batch.apply_to(&mut rebuilt);
            assert_eq!(
                closure_checksum(&rebuilt),
                version_checksums[*version as usize],
                "version {version} diverged (cut {cut})"
            );
        }
    }
    assert!(seen_torn && seen_clean, "matrix must hit both cut kinds");
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

/// The crash matrix under group commit: fsyncs are batched across
/// appends, so the durability promise narrows to the *acknowledged*
/// prefix — versions covered by a flush ([`DurableLog::acked_version`]).
/// Truncating the log at every byte must (a) never lose an acknowledged
/// batch, (b) rebuild whatever prefix survives bit-identically, and
/// (c) actually lose part of the unacknowledged tail at some cuts —
/// the allowed loss, asserted distinctly so the ack frontier is shown
/// to be the real boundary and not a vacuous one.
#[test]
fn group_commit_crash_matrix_never_loses_acknowledged_batches() {
    let dir = tmpdir("group-matrix");
    let mut table = SymbolTable::new();
    let n = 12u32;
    let batches = batch_stream(&mut table, n, 8);
    let a = table.get("a").unwrap();
    let mut graph = LabeledGraph::from_triples(n, [(0, a, 1), (1, a, 2)]);
    // Single segment, no automatic checkpoints: every durability event
    // in this run is a group-commit flush, so the acked bookkeeping
    // below is exact.
    let config = DurabilityConfig {
        segment_bytes: 1 << 20,
        checkpoint_every: 0,
        compact_on_checkpoint: false,
        group_commit: true,
        flush_every: 3,
    };
    let mut log = DurableLog::open(&dir, config, &graph, 0, &table).unwrap();
    let log_bytes = |dir: &Path| -> usize {
        wal::list_segments(dir)
            .unwrap()
            .iter()
            .map(|s| fs::metadata(s).unwrap().len() as usize)
            .sum()
    };
    let mut version_checksums = vec![closure_checksum(&graph)];
    // (bytes on disk, acked version) at every covering fsync: a crash
    // keeping at least that many bytes must recover at least that
    // version.
    let mut acked_floors: Vec<(usize, u64)> = Vec::new();
    for (k, batch) in batches.iter().enumerate() {
        batch.apply_to(&mut graph);
        log.append(k as u64 + 1, batch, &graph, &table).unwrap();
        version_checksums.push(closure_checksum(&graph));
        if log.unacked() == 0 {
            acked_floors.push((log_bytes(&dir), log.acked_version()));
        }
    }
    let appended = batches.len() as u64;
    // 8 appends at flush_every=3 → 2 fsyncs (vs 8 on the always-fsync
    // path): the ≥3× fsync economy the batching exists for.
    assert_eq!(log.fsyncs(), 2);
    assert_eq!(log.acked_version(), 6);
    assert_eq!(
        log.unacked(),
        2,
        "the stream must end inside an open window"
    );

    let total_bytes = log_bytes(&dir);
    let crash = tmpdir("group-matrix-crash");
    let mut seen_tail_loss = false;
    for cut in 20..=total_bytes {
        crash_copy(&dir, &crash, cut);
        let (live_head, torn) = prefix_records(&crash);
        for (v, path) in list_checkpoints(&dir).unwrap() {
            if v <= live_head {
                fs::copy(&path, crash.join(path.file_name().unwrap())).unwrap();
            }
        }
        let mut fresh = SymbolTable::new();
        let rec = recover(&crash, &mut fresh).unwrap();
        assert_eq!(rec.head_version, live_head, "cut at {cut}");
        assert_eq!(rec.torn_tail, torn);
        // (a) The acknowledged prefix holds: whatever was covered by a
        // flush that fit inside the cut must be there.
        let floor = acked_floors
            .iter()
            .filter(|&&(bytes, _)| bytes <= cut)
            .map(|&(_, v)| v)
            .max()
            .unwrap_or(0);
        assert!(
            rec.head_version >= floor,
            "cut at {cut} lost acknowledged version {floor} (recovered {})",
            rec.head_version
        );
        // (c) Unacknowledged-tail loss is real at some cuts.
        seen_tail_loss |= rec.head_version >= floor && rec.head_version < appended;
        // (b) Every surviving version reconstructs bit-identically.
        let mut rebuilt = rec.graph;
        assert_eq!(
            closure_checksum(&rebuilt),
            version_checksums[rec.checkpoint_version as usize],
            "checkpoint state diverged (cut {cut})"
        );
        for (version, batch) in &rec.tail {
            batch.apply_to(&mut rebuilt);
            assert_eq!(
                closure_checksum(&rebuilt),
                version_checksums[*version as usize],
                "version {version} diverged (cut {cut})"
            );
        }
    }
    assert!(
        seen_tail_loss,
        "some cut must land inside the open group-commit window"
    );
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

/// The crash matrix, continued past the restart: after a crash at any
/// byte, re-opening the log must trim the torn tail so acknowledged
/// *post-restart* appends are replayed by the next recovery — never
/// stranded behind leftover garbage that replay stops at.
#[test]
fn restart_after_crash_keeps_post_restart_appends() {
    let dir = tmpdir("restart");
    let mut table = SymbolTable::new();
    let n = 12u32;
    let batches = batch_stream(&mut table, n, 6);
    let a = table.get("a").unwrap();
    let mut graph = LabeledGraph::from_triples(n, [(0, a, 1), (1, a, 2)]);
    let config = DurabilityConfig {
        segment_bytes: 96,
        checkpoint_every: 2,
        compact_on_checkpoint: false, // full-depth log, as above
        ..DurabilityConfig::default()
    };
    let mut log = DurableLog::open(&dir, config, &graph, 0, &table).unwrap();
    for (k, batch) in batches.iter().enumerate() {
        batch.apply_to(&mut graph);
        log.append(k as u64 + 1, batch, &graph, &table).unwrap();
    }
    let total_bytes: usize = wal::list_segments(&dir)
        .unwrap()
        .iter()
        .map(|s| fs::metadata(s).unwrap().len() as usize)
        .sum();

    let crash = tmpdir("restart-crash");
    for cut in 20..=total_bytes {
        crash_copy(&dir, &crash, cut);
        let (live_head, _) = prefix_records(&crash);
        for (v, path) in list_checkpoints(&dir).unwrap() {
            if v <= live_head {
                fs::copy(&path, crash.join(path.file_name().unwrap())).unwrap();
            }
        }
        // Restart: recover the surviving prefix, then keep writing
        // through a re-opened log.
        let mut fresh = SymbolTable::new();
        let rec = recover(&crash, &mut fresh).unwrap();
        let mut state = rec.graph;
        for (_, batch) in &rec.tail {
            batch.apply_to(&mut state);
        }
        let mut relog = DurableLog::open(&crash, config, &state, live_head, &fresh).unwrap();
        let mut post = UpdateBatch::new();
        post.insert(3, fresh.intern("post"), 4);
        post.apply_to(&mut state);
        relog.append(live_head + 1, &post, &state, &fresh).unwrap();
        // The next recovery must see the post-restart record, with the
        // tear gone.
        let rec2 = recover(&crash, &mut SymbolTable::new()).unwrap();
        assert_eq!(rec2.head_version, live_head + 1, "cut at {cut}");
        assert!(!rec2.torn_tail, "cut at {cut}");
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&crash);
}

/// Compaction on checkpoint success: segments folded into the newest
/// checkpoint are deleted, recovery stays bit-identical before and
/// after the sweep, and a fallback past the compaction horizon is a
/// typed error instead of a silently shortened history.
#[test]
fn compaction_preserves_recovery_bit_identity() {
    let dir = tmpdir("compact");
    let mut table = SymbolTable::new();
    let n = 12u32;
    let batches = batch_stream(&mut table, n, 9);
    let a = table.get("a").unwrap();
    let mut graph = LabeledGraph::from_triples(n, [(0, a, 1), (1, a, 2)]);
    // Manual checkpoints only: first grow a long multi-segment log.
    let config = DurabilityConfig {
        segment_bytes: 96,
        checkpoint_every: 0,
        compact_on_checkpoint: true,
        ..DurabilityConfig::default()
    };
    let mut log = DurableLog::open(&dir, config, &graph, 0, &table).unwrap();
    let mut graph_at_6 = graph.clone();
    for (k, batch) in batches.iter().enumerate() {
        batch.apply_to(&mut graph);
        log.append(k as u64 + 1, batch, &graph, &table).unwrap();
        if k as u64 + 1 == 6 {
            graph_at_6 = graph.clone();
        }
    }
    let before_segments = wal::list_segments(&dir).unwrap().len();
    assert!(before_segments > 2, "stream must span multiple segments");

    let recover_head_checksum = |dir: &Path| {
        let mut fresh = SymbolTable::new();
        let rec = recover(dir, &mut fresh).unwrap();
        let mut state = rec.graph;
        for (_, batch) in &rec.tail {
            batch.apply_to(&mut state);
        }
        (
            rec.checkpoint_version,
            rec.head_version,
            closure_checksum(&state),
        )
    };
    let (_, head_before, sum_before) = recover_head_checksum(&dir);
    assert_eq!(head_before, 9);
    assert_eq!(sum_before, closure_checksum(&graph));

    // Checkpoint mid-history: the sweep must drop the fully covered
    // prefix and leave recovery bit-identical.
    log.checkpoint_now(6, &graph_at_6, &table).unwrap();
    let after_segments = wal::list_segments(&dir).unwrap().len();
    assert!(
        after_segments < before_segments,
        "checkpoint at 6 should compact the log ({before_segments} -> {after_segments})"
    );
    let (ckpt, head_after, sum_after) = recover_head_checksum(&dir);
    assert_eq!(ckpt, 6);
    assert_eq!(head_after, head_before);
    assert_eq!(sum_after, sum_before, "compaction changed recovered state");

    // Post-compaction appends land and recover as usual.
    let mut extra = UpdateBatch::new();
    extra.insert(2, a, 7);
    extra.apply_to(&mut graph);
    log.append(10, &extra, &graph, &table).unwrap();
    let (_, head, sum) = recover_head_checksum(&dir);
    assert_eq!(head, 10);
    assert_eq!(sum, closure_checksum(&graph));

    // Damage the checkpoint the sweep was keyed to: the only fallback
    // checkpoints predate the compaction horizon, and recovery must
    // say so loudly.
    for (version, path) in list_checkpoints(&dir).unwrap() {
        if version == 6 {
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
        }
    }
    match recover(&dir, &mut SymbolTable::new()) {
        Err(spbla_durable::DurableError::Corrupt { reason, .. }) => {
            assert!(reason.contains("compacted"), "unexpected reason: {reason}");
        }
        other => panic!("expected Corrupt past the compaction horizon, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Kill-and-restart through the engine: a new engine recovered from the
/// durability directory serves the same closure answer at the same
/// version as the engine that died.
#[test]
fn engine_restart_reconstructs_the_served_state() {
    let dir = tmpdir("engine");
    let mut table = SymbolTable::new();
    let n = 12u32;
    let batches = batch_stream(&mut table, n, 5);

    let engine = Engine::new(DeviceGrid::new(2), EngineConfig::default());
    let (name_a, name_b) = ("a", "b");
    engine.with_symbols(|t| {
        t.intern(name_a);
        t.intern(name_b);
    });
    let a = engine.with_symbols(|t| t.intern(name_a));
    let base = LabeledGraph::from_triples(n, [(0, a, 1), (1, a, 2)]);
    engine.add_graph("g", base.clone());
    let config = DurabilityConfig {
        segment_bytes: 128,
        checkpoint_every: 3,
        compact_on_checkpoint: true,
        ..DurabilityConfig::default()
    };
    let mut log = engine.with_symbols(|t| DurableLog::open(&dir, config, &base, 0, t).unwrap());
    // Batches were built against a local table with the same intern
    // order ("a" then "b"), so symbols agree with the engine's.
    for batch in &batches {
        let version = engine.apply_batch("g", batch.clone()).unwrap();
        let after = engine.host_graph("g").unwrap();
        engine.with_symbols(|t| log.append(version, batch, &after, t).unwrap());
    }
    let pre_crash = {
        let done = engine.submit("g", Query::Closure).unwrap().wait();
        let pairs = match done.result.unwrap() {
            spbla_engine::QueryResult::Pairs(p) => p,
            other => panic!("unexpected result {other:?}"),
        };
        (engine.graph_version("g").unwrap(), checksum_pairs(&pairs))
    };
    engine.shutdown(); // the "crash" (all records are already flushed)

    let restarted = Engine::new(DeviceGrid::new(2), EngineConfig::default());
    let summary = recover_into_engine(&restarted, "g", &dir).unwrap();
    assert_eq!(summary.head_version, pre_crash.0);
    assert!(!summary.torn_tail);
    let done = restarted.submit("g", Query::Closure).unwrap().wait();
    let pairs = match done.result.unwrap() {
        spbla_engine::QueryResult::Pairs(p) => p,
        other => panic!("unexpected result {other:?}"),
    };
    assert_eq!(restarted.graph_version("g").unwrap(), pre_crash.0);
    assert_eq!(checksum_pairs(&pairs), pre_crash.1, "answers diverged");
    restarted.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Recovery composes with replication: a replica set stood up from the
/// recovered graph serves bit-identical checksums on every replica and
/// keeps doing so as post-recovery updates fan out.
#[test]
fn recovered_graph_replicates_bit_identically() {
    let dir = tmpdir("replicate");
    let mut table = SymbolTable::new();
    let n = 10u32;
    let batches = batch_stream(&mut table, n, 4);
    let a = table.get("a").unwrap();
    let mut graph = LabeledGraph::from_triples(n, [(0, a, 1)]);
    let mut log = DurableLog::open(&dir, DurabilityConfig::default(), &graph, 0, &table).unwrap();
    for (k, batch) in batches.iter().enumerate() {
        batch.apply_to(&mut graph);
        log.append(k as u64 + 1, batch, &graph, &table).unwrap();
    }

    let mut fresh = SymbolTable::new();
    let rec = recover(&dir, &mut fresh).unwrap();
    let mut recovered = rec.graph;
    for (_, batch) in &rec.tail {
        batch.apply_to(&mut recovered);
    }
    let set = ReplicaSet::new(&recovered, 3, 1).unwrap();
    let mut update = UpdateBatch::new();
    update.insert(9, fresh.get("a").unwrap(), 0);
    set.apply(&update).unwrap();
    let reads: Vec<u64> = (0..3)
        .map(|r| set.read_closure_on(r).unwrap().checksum)
        .collect();
    assert!(reads.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(reads[0], {
        update.apply_to(&mut recovered);
        closure_checksum(&recovered)
    });
    let _ = fs::remove_dir_all(&dir);
}
