//! The C API's global registry must be thread-safe: concurrent handle
//! creation, use, and destruction from many threads, with no lost or
//! cross-contaminated results (embedders call from arbitrary threads).

use spbla_capi::matrix_api::{
    spbla_EWiseAdd, spbla_Finalize, spbla_Initialize, spbla_Matrix_Build, spbla_Matrix_Free,
    spbla_Matrix_New, spbla_Matrix_Nvals, spbla_MxM, SpblaBackend,
};
use spbla_capi::SpblaStatus;

#[test]
fn concurrent_workflows_do_not_interfere() {
    let handles: Vec<_> = (0..8u32)
        .map(|t| {
            std::thread::spawn(move || {
                let backend = match t % 4 {
                    0 => SpblaBackend::Cpu,
                    1 => SpblaBackend::CpuDense,
                    2 => SpblaBackend::CudaSim,
                    _ => SpblaBackend::ClSim,
                };
                let mut inst = 0u64;
                assert_eq!(
                    unsafe { spbla_Initialize(backend, &mut inst) },
                    SpblaStatus::Ok
                );
                // Per-thread distinctive matrix: a cycle of length t+3.
                let n = t + 3;
                let rows: Vec<u32> = (0..n).collect();
                let cols: Vec<u32> = (0..n).map(|i| (i + 1) % n).collect();
                let mut a = 0u64;
                unsafe { spbla_Matrix_New(inst, n, n, &mut a) };
                assert_eq!(
                    unsafe { spbla_Matrix_Build(a, rows.as_ptr(), cols.as_ptr(), n as usize) },
                    SpblaStatus::Ok
                );
                for _ in 0..20 {
                    let mut sq = 0u64;
                    assert_eq!(unsafe { spbla_MxM(a, a, &mut sq) }, SpblaStatus::Ok);
                    let mut un = 0u64;
                    assert_eq!(unsafe { spbla_EWiseAdd(a, sq, &mut un) }, SpblaStatus::Ok);
                    let mut nv = 0usize;
                    assert_eq!(unsafe { spbla_Matrix_Nvals(un, &mut nv) }, SpblaStatus::Ok);
                    // Cycle ∪ cycle² has exactly 2n entries (n ≥ 3).
                    assert_eq!(nv, 2 * n as usize, "thread {t}");
                    assert_eq!(spbla_Matrix_Free(sq), SpblaStatus::Ok);
                    assert_eq!(spbla_Matrix_Free(un), SpblaStatus::Ok);
                }
                assert_eq!(spbla_Matrix_Free(a), SpblaStatus::Ok);
                assert_eq!(spbla_Finalize(inst), SpblaStatus::Ok);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked");
    }
}

#[test]
fn double_free_from_other_thread_is_invalid_handle() {
    let mut inst = 0u64;
    unsafe { spbla_Initialize(SpblaBackend::Cpu, &mut inst) };
    let mut m = 0u64;
    unsafe { spbla_Matrix_New(inst, 2, 2, &mut m) };
    let t = std::thread::spawn(move || spbla_Matrix_Free(m));
    assert_eq!(t.join().unwrap(), SpblaStatus::Ok);
    assert_eq!(spbla_Matrix_Free(m), SpblaStatus::InvalidHandle);
    spbla_Finalize(inst);
}
