//! CFPQ engine consistency: on random graphs and a pool of grammars, the
//! tensor algorithm (`Tns`, with and without incremental closure),
//! Azimov's matrix algorithm (`Mtx`), and the worklist graph-CYK oracle
//! must all produce the same reachable-pair sets.

use proptest::prelude::*;

use spbla_core::Instance;
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::oracle::cfpq_pairs;
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::LabeledGraph;
use spbla_lang::{CnfGrammar, Grammar, Symbol, SymbolTable};

fn grammar_pool(table: &mut SymbolTable, which: u8) -> Grammar {
    let texts = [
        // a^n b^n (classic)
        "S -> a S b | a b",
        // Dyck-like with ε
        "S -> a S b | S S | eps",
        // same-generation (G2 shape)
        "S -> a_r S a | a",
        // two nonterminals
        "S -> a V b\nV -> c V | eps",
        // right-linear (regular) grammar
        "S -> a S | b S | c",
        // nested alternation
        "S -> a S a | b S b | a | b",
    ];
    Grammar::parse(texts[which as usize % texts.len()], table).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engines_agree_with_oracle(
        edges in proptest::collection::vec((0u32..7, 0u8..4, 0u32..7), 0..20),
        which in 0u8..6,
    ) {
        let mut table = SymbolTable::new();
        let grammar = grammar_pool(&mut table, which);
        // Label pool covers the grammar's terminals.
        let terminals = grammar.terminals();
        let syms: Vec<Symbol> = (0..4)
            .map(|i| terminals.get(i).copied().unwrap_or_else(|| table.intern(&format!("pad{i}"))))
            .collect();
        let graph = LabeledGraph::from_triples(
            7,
            edges.iter().map(|&(u, l, v)| (u, syms[l as usize], v)),
        );
        let cnf = CnfGrammar::from_grammar(&grammar);
        let expect = cfpq_pairs(&graph, &cnf, cnf.start());

        let inst = Instance::cpu();
        let tns = TnsIndex::build(&graph, &grammar, &inst, &TnsOptions::default()).unwrap();
        prop_assert_eq!(tns.reachable_pairs(), expect.clone(), "Tns vs oracle, grammar {}", which);

        let tns_inc = TnsIndex::build(&graph, &grammar, &inst, &TnsOptions { incremental: true }).unwrap();
        prop_assert_eq!(tns_inc.reachable_pairs(), expect.clone(), "Tns(inc) vs oracle");

        let mtx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
        prop_assert_eq!(mtx.reachable_pairs(), expect, "Mtx vs oracle, grammar {}", which);
    }

    #[test]
    fn engines_agree_across_backends(
        edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..14),
    ) {
        let mut table = SymbolTable::new();
        let grammar = Grammar::parse("S -> a S b | a b", &mut table).unwrap();
        let a = table.get("a").unwrap();
        let b = table.get("b").unwrap();
        let syms = [a, b];
        let graph = LabeledGraph::from_triples(
            6,
            edges.iter().map(|&(u, l, v)| (u, syms[l as usize], v)),
        );
        let reference = TnsIndex::build(
            &graph, &grammar, &Instance::cpu(), &TnsOptions::default()
        ).unwrap().reachable_pairs();
        for inst in [Instance::cuda_sim(), Instance::cl_sim()] {
            let idx = TnsIndex::build(&graph, &grammar, &inst, &TnsOptions::default()).unwrap();
            prop_assert_eq!(idx.reachable_pairs(), reference.clone(), "{:?}", inst.backend());
        }
    }

    #[test]
    fn single_path_extraction_sound(
        edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..14),
    ) {
        let mut table = SymbolTable::new();
        let grammar = Grammar::parse("S -> a S b | a b", &mut table).unwrap();
        let a = table.get("a").unwrap();
        let b = table.get("b").unwrap();
        let syms = [a, b];
        let graph = LabeledGraph::from_triples(
            6,
            edges.iter().map(|&(u, l, v)| (u, syms[l as usize], v)),
        );
        let cnf = CnfGrammar::from_grammar(&grammar);
        let inst = Instance::cpu();
        let idx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions { track_heights: true })
            .unwrap();
        for (u, v) in idx.reachable_pairs().into_iter().take(8) {
            let p = idx.extract_single_path(u, v);
            prop_assert!(p.is_some(), "derivable pair ({u},{v}) must have a path");
            let p = p.unwrap();
            prop_assert!(spbla_graph::paths::is_well_formed(&p));
            if !p.is_empty() {
                prop_assert_eq!(p.first().unwrap().from, u);
                prop_assert_eq!(p.last().unwrap().to, v);
                // Word must be a^k b^k.
                let word = spbla_graph::paths::word_of(&p);
                let k = word.iter().filter(|&&s| s == a).count();
                prop_assert_eq!(word.len(), 2 * k);
                prop_assert!(word[..k].iter().all(|&s| s == a));
                prop_assert!(word[k..].iter().all(|&s| s == b));
            }
        }
    }
}
