//! The generic library instantiated at the Boolean semiring must produce
//! exactly the structural pattern of `spbla-core` — the semantic
//! foundation of the E8 performance comparison (same answers, different
//! representation costs).

use proptest::prelude::*;

use spbla_core::{Instance, Matrix};
use spbla_generic::{add, spgemm, transpose, BoolOrAnd, CsrMatrix, PlusTimesU64};

fn pairs(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

fn to_bool_triples(p: &[(u32, u32)]) -> Vec<(u32, u32, u8)> {
    p.iter().map(|&(i, j)| (i, j, 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generic_bool_mxm_matches_core(pa in pairs(12, 40), pb in pairs(12, 40)) {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 12, 12, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 12, 12, &pb).unwrap();
        let expect = a.mxm(&b).unwrap().read();

        let ga = CsrMatrix::<BoolOrAnd>::from_triples(12, 12, &to_bool_triples(&pa));
        let gb = CsrMatrix::<BoolOrAnd>::from_triples(12, 12, &to_bool_triples(&pb));
        prop_assert_eq!(spgemm::mxm(&ga, &gb).pattern(), expect);
    }

    #[test]
    fn generic_bool_add_and_transpose_match_core(pa in pairs(12, 40), pb in pairs(12, 40)) {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 12, 12, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 12, 12, &pb).unwrap();

        let ga = CsrMatrix::<BoolOrAnd>::from_triples(12, 12, &to_bool_triples(&pa));
        let gb = CsrMatrix::<BoolOrAnd>::from_triples(12, 12, &to_bool_triples(&pb));
        prop_assert_eq!(
            add::ewise_add(&ga, &gb).pattern(),
            a.ewise_add(&b).unwrap().read()
        );
        prop_assert_eq!(
            transpose::transpose(&ga).pattern(),
            a.transpose().unwrap().read()
        );
    }

    /// Path counting over (+,×) must dominate the Boolean pattern: a
    /// pair is Boolean-reachable iff its path count is nonzero.
    #[test]
    fn path_counts_support_boolean_pattern(pa in pairs(10, 25), pb in pairs(10, 25)) {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 10, 10, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 10, 10, &pb).unwrap();
        let bool_pattern = a.mxm(&b).unwrap().read();

        let ta: Vec<(u32, u32, u64)> = {
            let mut v: Vec<(u32,u32)> = pa.clone(); v.sort_unstable(); v.dedup();
            v.into_iter().map(|(i, j)| (i, j, 1u64)).collect()
        };
        let tb: Vec<(u32, u32, u64)> = {
            let mut v: Vec<(u32,u32)> = pb.clone(); v.sort_unstable(); v.dedup();
            v.into_iter().map(|(i, j)| (i, j, 1u64)).collect()
        };
        let ga = CsrMatrix::<PlusTimesU64>::from_triples(10, 10, &ta);
        let gb = CsrMatrix::<PlusTimesU64>::from_triples(10, 10, &tb);
        let counted = spgemm::mxm(&ga, &gb);
        // u64 wrapping cannot hit zero here (counts ≤ 10 per pair).
        prop_assert_eq!(counted.pattern(), bool_pattern);
        for (_, _, c) in counted.to_triples() {
            prop_assert!((1..=10).contains(&c));
        }
    }

    /// Memory: the Boolean representation is never larger than the
    /// valued one, and strictly smaller whenever entries exist.
    #[test]
    fn boolean_memory_dominates(pa in pairs(16, 60)) {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 16, 16, &pa).unwrap();
        let ga = CsrMatrix::<PlusTimesU64>::from_triples(
            16,
            16,
            &{
                let mut v: Vec<(u32,u32)> = pa.clone(); v.sort_unstable(); v.dedup();
                v.into_iter().map(|(i, j)| (i, j, 1u64)).collect::<Vec<_>>()
            },
        );
        prop_assert!(a.memory_bytes() <= ga.memory_bytes());
        if a.nnz() > 0 {
            prop_assert!(a.memory_bytes() < ga.memory_bytes());
        }
    }
}
