//! RPQ correctness: the Kronecker-index answers must equal a brute-force
//! product-automaton BFS that shares no code with the matrix pipeline.

use proptest::prelude::*;
use std::collections::HashSet;

use spbla_core::Instance;
use spbla_graph::rpq::{AutomatonKind, ClosureKind, RpqIndex, RpqOptions};
use spbla_graph::LabeledGraph;
use spbla_lang::glushkov::glushkov;
use spbla_lang::{Nfa, Regex, Symbol, SymbolTable};

/// Brute force: for every source vertex, BFS over (automaton state,
/// vertex) pairs reachable through ≥ 1 edge; plus the ε diagonal. This
/// matches the matrix index semantics (transitive closure = paths of
/// length ≥ 1, ε handled separately).
fn brute_force_pairs(graph: &LabeledGraph, nfa: &Nfa) -> Vec<(u32, u32)> {
    let mut result: HashSet<(u32, u32)> = HashSet::new();
    if nfa.accepts_epsilon() {
        for v in 0..graph.n_vertices() {
            result.insert((v, v));
        }
    }
    for src in 0..graph.n_vertices() {
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let push_steps =
            |q: u32, v: u32, seen: &mut HashSet<(u32, u32)>, stack: &mut Vec<(u32, u32)>| {
                for &(f, sym, t) in nfa.transitions() {
                    if f != q {
                        continue;
                    }
                    for &(a, b) in graph.edges_of(sym) {
                        if a == v && seen.insert((t, b)) {
                            stack.push((t, b));
                        }
                    }
                }
            };
        for &q0 in nfa.start_states() {
            push_steps(q0, src, &mut seen, &mut stack);
        }
        while let Some((q, v)) = stack.pop() {
            push_steps(q, v, &mut seen, &mut stack);
        }
        for (q, v) in seen {
            if nfa.final_states().binary_search(&q).is_ok() {
                result.insert((src, v));
            }
        }
    }
    let mut out: Vec<(u32, u32)> = result.into_iter().collect();
    out.sort_unstable();
    out
}

fn small_regex(table: &mut SymbolTable, which: u8) -> Regex {
    let texts = [
        "a*",
        "a . b*",
        "(a | b)+",
        "a . b* . c",
        "a? . b*",
        "(a . b)+ | (c . a)+",
        "(a | b)* . c",
        "a . (b | c)",
    ];
    Regex::parse(texts[which as usize % texts.len()], table).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rpq_matches_bruteforce(
        edges in proptest::collection::vec((0u32..8, 0u8..3, 0u32..8), 0..24),
        which in 0u8..8,
        closure_kind in 0u8..2,
        automaton_kind in 0u8..4,
    ) {
        let mut table = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|l| table.intern(l)).collect();
        let regex = small_regex(&mut table, which);
        let graph = LabeledGraph::from_triples(
            8,
            edges.iter().map(|&(u, l, v)| (u, syms[l as usize], v)),
        );
        let nfa = glushkov(&regex);
        let expect = brute_force_pairs(&graph, &nfa);
        let options = RpqOptions {
            closure: if closure_kind == 0 { ClosureKind::Squaring } else { ClosureKind::SingleStep },
            automaton: match automaton_kind {
                0 => AutomatonKind::Glushkov,
                1 => AutomatonKind::Thompson,
                2 => AutomatonKind::DerivativeDfa,
                _ => AutomatonKind::MinimizedDfa,
            },
        };
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let idx = RpqIndex::build(&graph, &regex, &inst, &options).unwrap();
            prop_assert_eq!(
                idx.reachable_pairs().unwrap(),
                expect.clone(),
                "query {:?} backend {:?}",
                which,
                inst.backend()
            );
        }
    }

    #[test]
    fn extracted_paths_always_match_query(
        edges in proptest::collection::vec((0u32..6, 0u8..2, 0u32..6), 1..16),
        which in 0u8..8,
    ) {
        let mut table = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b"].iter().map(|l| table.intern(l)).collect();
        let regex = small_regex(&mut table, which);
        let graph = LabeledGraph::from_triples(
            6,
            edges.iter().map(|&(u, l, v)| (u, syms[l as usize], v)),
        );
        let inst = Instance::cpu();
        let idx = RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default()).unwrap();
        for (u, v) in idx.reachable_pairs().unwrap().into_iter().take(6) {
            for p in idx.extract_paths(u, v, 6, 4) {
                prop_assert!(spbla_graph::paths::is_well_formed(&p));
                let word = spbla_graph::paths::word_of(&p);
                prop_assert!(regex.matches(&word), "word {word:?} for query {which}");
            }
        }
    }
}
