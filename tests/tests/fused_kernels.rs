//! Equivalence gate for the fused kernels: on every backend,
//! `mxm_accum_compmask` must be bit-identical to the unfused
//! `mxm_compmask` + `ewise_add` composition it replaces (and
//! `frontier_step`'s push/pull selection to plain `vxm`), and the
//! nnz cache must answer fixpoint termination probes without a single
//! extra device launch.

use proptest::prelude::*;

use spbla_core::{Instance, Matrix, Vector};
use spbla_integration::{all_backends, pseudo_pairs};

/// Clamp raw pairs into an `nr × nc` shape.
fn clamp(pairs: &[(u32, u32)], nr: u32, nc: u32) -> Vec<(u32, u32)> {
    pairs.iter().map(|&(r, c)| (r % nr, c % nc)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `C.mxm_accum_compmask(A, B)` ≡ `fresh = (A·B) ∧ ¬C; acc = C ∪ fresh`
    /// on all four backends, including ragged `A: m×k, B: k×n, C: m×n`
    /// shapes.
    #[test]
    fn fused_matches_unfused_composition(
        m in 1..12u32, k in 1..12u32, n in 1..12u32,
        ra in proptest::collection::vec((0..12u32, 0..12u32), 0..40),
        rb in proptest::collection::vec((0..12u32, 0..12u32), 0..40),
        rc in proptest::collection::vec((0..12u32, 0..12u32), 0..40)
    ) {
        let pa = clamp(&ra, m, k);
        let pb = clamp(&rb, k, n);
        let pc = clamp(&rc, m, n);
        for inst in all_backends() {
            let a = Matrix::from_pairs(&inst, m, k, &pa).unwrap();
            let b = Matrix::from_pairs(&inst, k, n, &pb).unwrap();
            let c = Matrix::from_pairs(&inst, m, n, &pc).unwrap();
            let fresh_ref = a.mxm_compmask(&b, &c).unwrap();
            let acc_ref = c.ewise_add(&fresh_ref).unwrap();
            let step = c.mxm_accum_compmask(&a, &b, true).unwrap();
            prop_assert_eq!(step.acc.read(), acc_ref.read(),
                "acc diverges on {:?}", inst.backend());
            let fresh = step.fresh.expect("fresh requested");
            prop_assert_eq!(fresh.read(), fresh_ref.read(),
                "fresh diverges on {:?}", inst.backend());
            prop_assert_eq!(step.fresh_nnz, fresh_ref.nnz());
            // The skip-fresh variant agrees on the accumulator and the
            // termination signal.
            let lean = c.mxm_accum_compmask(&a, &b, false).unwrap();
            prop_assert_eq!(lean.acc.read(), step.acc.read());
            prop_assert_eq!(lean.fresh_nnz, step.fresh_nnz);
            prop_assert!(lean.fresh.is_none());
        }
    }

    /// Direction-optimised `frontier_step` answers exactly like the push
    /// `vxm`, whichever side of the density crossover the frontier is on.
    #[test]
    fn frontier_step_matches_vxm(
        pairs in proptest::collection::vec((0..24u32, 0..24u32), 0..90),
        raw_frontier in proptest::collection::vec(0..24u32, 0..24)
    ) {
        let mut support: Vec<u32> = raw_frontier;
        support.sort_unstable();
        support.dedup();
        for inst in all_backends() {
            let m = Matrix::from_pairs(&inst, 24, 24, &pairs).unwrap();
            let v = Vector::from_indices(&inst, 24, &support).unwrap();
            let push = m.vxm(&v).unwrap();
            let stepped = m.frontier_step(&v).unwrap();
            prop_assert_eq!(stepped.indices(), push.indices(),
                "direction mismatch on {:?}", inst.backend());
        }
    }
}

/// Empty delta: the fused step reports zero fresh and hands back a
/// bit-identical accumulator.
#[test]
fn empty_delta_is_a_noop_with_zero_signal() {
    for inst in all_backends() {
        let c = Matrix::from_pairs(&inst, 6, 6, &pseudo_pairs(6, 12, 3)).unwrap();
        let empty = Matrix::zeros(&inst, 6, 6).unwrap();
        let step = c.mxm_accum_compmask(&c, &empty, true).unwrap();
        assert_eq!(step.fresh_nnz, 0, "{:?}", inst.backend());
        assert_eq!(step.acc.read(), c.read());
        assert_eq!(step.fresh.expect("fresh requested").nnz(), 0);
    }
}

/// All-dense accumulator: nothing can be fresh no matter the product.
#[test]
fn dense_accumulator_rejects_everything() {
    let full: Vec<(u32, u32)> = (0..5u32)
        .flat_map(|i| (0..5u32).map(move |j| (i, j)))
        .collect();
    for inst in all_backends() {
        let a = Matrix::from_pairs(&inst, 5, 5, &pseudo_pairs(5, 10, 5)).unwrap();
        let c = Matrix::from_pairs(&inst, 5, 5, &full).unwrap();
        let step = c.mxm_accum_compmask(&a, &a, true).unwrap();
        assert_eq!(step.fresh_nnz, 0, "{:?}", inst.backend());
        assert_eq!(step.acc.read(), full);
        assert_eq!(step.fresh.expect("fresh requested").nnz(), 0);
    }
}

/// The fused entry points prime the handle's nnz cache, so fixpoint
/// termination probes (`acc.nnz()`, `fresh.nnz()`, repeated) cost zero
/// device launches — the regression this pins down is the old
/// per-round `nnz` reduction kernel sneaking back in.
#[test]
fn nnz_probes_after_fused_ops_launch_nothing() {
    for inst in [Instance::cuda_sim(), Instance::cl_sim()] {
        let m = Matrix::from_pairs(&inst, 32, 32, &pseudo_pairs(32, 100, 9)).unwrap();
        let c = m.transitive_closure().unwrap();
        let step = c.mxm_accum_compmask(&c, &c, true).unwrap();
        let device = inst.device().expect("sim backends have a device");
        let before = device.stats().launches;
        for _ in 0..16 {
            assert_eq!(step.acc.nnz(), c.nnz());
            assert_eq!(step.fresh_nnz, 0);
            assert_eq!(step.fresh.as_ref().expect("fresh requested").nnz(), 0);
        }
        assert_eq!(
            device.stats().launches,
            before,
            "nnz probes must be cache hits on {:?}",
            inst.backend()
        );
    }
}

/// Push/pull decisions land in the `spbla_frontier_{push,pull}_total`
/// counters, one per `frontier_step` call.
#[test]
fn frontier_direction_counters_advance() {
    let inst = Instance::cpu();
    let n = 128u32;
    let chain: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let m = Matrix::from_pairs(&inst, n, n, &chain).unwrap();
    let read = |name: &str| {
        spbla_obs::metrics_global()
            .counter(&spbla_obs::labeled(name, &[("backend", "cpu")]))
            .get()
    };
    let (push0, pull0) = (
        read("spbla_frontier_push_total"),
        read("spbla_frontier_pull_total"),
    );
    // One vertex out of 128 is far under the 1/32 crossover: push.
    let sparse = Vector::from_indices(&inst, n, &[0]).unwrap();
    m.frontier_step(&sparse).unwrap();
    // Every vertex is far over it: pull.
    let all: Vec<u32> = (0..n).collect();
    let dense = Vector::from_indices(&inst, n, &all).unwrap();
    m.frontier_step(&dense).unwrap();
    assert!(read("spbla_frontier_push_total") > push0);
    assert!(read("spbla_frontier_pull_total") > pull0);
}
