//! Mid-scale deterministic stress: all four backends must produce
//! bit-identical results through a chained pipeline of every operation
//! on a few-thousand-nnz workload (large enough to hit the radix-sort
//! parallel path, multiple SpGEMM bins, and merge-path row splitting).

use spbla_core::{Instance, Matrix};
use spbla_integration::{all_backends, pseudo_pairs};

fn pipeline(inst: &Instance, pa: &[(u32, u32)], pb: &[(u32, u32)], n: u32) -> Vec<(u32, u32)> {
    let a = Matrix::from_pairs(inst, n, n, pa).unwrap();
    let b = Matrix::from_pairs(inst, n, n, pb).unwrap();
    // (AB + Bᵀ) ∧ (A + B), then a submatrix, then one more hop.
    let ab = a.mxm(&b).unwrap();
    let bt = b.transpose().unwrap();
    let left = ab.ewise_add(&bt).unwrap();
    let right = a.ewise_add(&b).unwrap();
    let masked = left.ewise_mult(&right).unwrap();
    let window = masked.submatrix(n / 8, n / 8, n / 2, n / 2).unwrap();
    let hop = window.mxm(&window).unwrap();
    hop.read()
}

#[test]
fn chained_pipeline_identical_across_backends() {
    let n = 600u32;
    let pa = pseudo_pairs(n, 7000, 0xA11CE);
    let pb = pseudo_pairs(n, 7000, 0xB0B);
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for inst in all_backends() {
        let got = pipeline(&inst, &pa, &pb, n);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(r, &got, "backend {:?} diverged", inst.backend()),
        }
    }
    let r = reference.unwrap();
    assert!(!r.is_empty(), "stress pipeline should produce output");
}

#[test]
fn closure_on_mid_size_graph_identical() {
    let n = 400u32;
    // Sparse DAG-ish graph (forward edges only) keeps the closure
    // non-trivial but bounded.
    let pairs: Vec<(u32, u32)> = pseudo_pairs(n, 1200, 7)
        .into_iter()
        .filter(|&(u, v)| u < v)
        .collect();
    let mut reference_pairs: Option<Vec<(u32, u32)>> = None;
    for inst in all_backends() {
        let a = Matrix::from_pairs(&inst, n, n, &pairs).unwrap();
        let c = a.transitive_closure().unwrap();
        let got = c.read();
        match &reference_pairs {
            None => reference_pairs = Some(got),
            Some(r) => assert_eq!(r, &got, "{:?}", inst.backend()),
        }
    }
    assert!(
        reference_pairs.unwrap().len() > pairs.len(),
        "closure must grow"
    );
}

#[test]
fn kron_chain_identical_across_backends() {
    let pa = pseudo_pairs(40, 200, 3);
    let pb = pseudo_pairs(25, 100, 4);
    let mut reference: Option<Vec<u32>> = None;
    for inst in all_backends() {
        let a = Matrix::from_pairs(&inst, 40, 40, &pa).unwrap();
        let b = Matrix::from_pairs(&inst, 25, 25, &pb).unwrap();
        let k = a.kron(&b).unwrap();
        assert_eq!(k.shape(), (1000, 1000));
        let kt = k.transpose().unwrap();
        let got = kt.reduce_to_column().unwrap().indices().to_vec();
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(r, &got, "{:?}", inst.backend()),
        }
    }
}
