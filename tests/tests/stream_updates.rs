//! Randomized update-stream equivalence: for random insert/delete batch
//! sequences — on random graphs and on LUBM — the incrementally
//! maintained closure and RPQ views must be bit-identical (checksummed)
//! to per-batch from-scratch recomputation at every version, on 1- and
//! 2-device grids. Maintenance-path coverage is steered through
//! `fallback_fraction`: a huge budget forces the semi-naïve insert and
//! DRed delete paths proper, a zero budget forces the fallback escape
//! hatch on every non-trivial batch, and both must agree with the
//! recompute baseline version by version.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_graph::LabeledGraph;
use spbla_lang::glushkov::glushkov;
use spbla_lang::{Nfa, Regex, Symbol, SymbolTable};
use spbla_multidev::DeviceGrid;
use spbla_stream::{GraphStream, MaintainConfig, MaintainMode, UpdateBatch};

/// Per-version (closure checksum, rpq checksum) trace of one replay.
fn replay(
    devices: usize,
    graph: &LabeledGraph,
    nfa: &Nfa,
    batches: &[UpdateBatch],
    config: MaintainConfig,
) -> (Vec<(u64, u64)>, spbla_stream::MaintainStats) {
    let grid = DeviceGrid::new(devices);
    let mut stream = GraphStream::new(&grid, graph).expect("store builds");
    stream.track_closure(config).expect("closure view builds");
    stream.track_rpq("q", nfa, config).expect("rpq view builds");
    let mut trace = Vec::with_capacity(batches.len());
    for batch in batches {
        stream.apply(batch.clone()).expect("batch applies");
        trace.push((
            stream.closure_view().expect("tracked").checksum(),
            stream.rpq_view("q").expect("tracked").checksum(),
        ));
    }
    (trace, stream.closure_view().expect("tracked").stats())
}

/// Random batch stream over `graph`'s vertex/label universe; deletes
/// target edges that exist at their version (tracked by a host mirror).
fn random_batches(
    graph: &LabeledGraph,
    labels: &[Symbol],
    count: usize,
    rng: &mut StdRng,
) -> Vec<UpdateBatch> {
    let n = graph.n_vertices();
    let mut mirror = graph.clone();
    let mut batches = Vec::with_capacity(count);
    for _ in 0..count {
        let mut batch = UpdateBatch::new();
        for _ in 0..rng.gen_range(1usize..=3) {
            let label = labels[rng.gen_range(0..labels.len())];
            let existing = mirror.edges_of(label);
            if !existing.is_empty() && rng.gen_bool(0.4) {
                let (u, v) = existing[rng.gen_range(0..existing.len())];
                batch.delete(u, label, v);
            } else {
                batch.insert(rng.gen_range(0..n), label, rng.gen_range(0..n));
            }
        }
        batch.apply_to(&mut mirror);
        batches.push(batch);
    }
    batches
}

fn configs() -> [(MaintainConfig, &'static str); 3] {
    [
        (
            // Huge budget: the incremental insert and DRed delete paths
            // proper, never the fallback.
            MaintainConfig {
                mode: MaintainMode::Incremental,
                fallback_fraction: 10.0,
            },
            "incremental",
        ),
        (
            // Zero budget: every batch with a non-empty frontier or
            // over-delete set falls back to a full recompute.
            MaintainConfig {
                mode: MaintainMode::Incremental,
                fallback_fraction: 0.0,
            },
            "fallback",
        ),
        (
            MaintainConfig {
                mode: MaintainMode::Recompute,
                fallback_fraction: 0.25,
            },
            "recompute",
        ),
    ]
}

#[test]
fn random_streams_match_recompute_at_every_version() {
    for seed in [7u64, 21, 1984] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let b = table.intern("b");
        let labels = [a, b];

        let n = 14;
        let mut graph = LabeledGraph::new(n);
        for _ in 0..22 {
            let label = labels[rng.gen_range(0usize..2)];
            graph.add_edge(rng.gen_range(0..n), label, rng.gen_range(0..n));
        }
        let regex = Regex::parse("a . b*", &mut table).unwrap();
        let nfa = glushkov(&regex);
        let batches = random_batches(&graph, &labels, 12, &mut rng);

        for devices in [1, 2] {
            let runs: Vec<_> = configs()
                .iter()
                .map(|(cfg, name)| {
                    let (trace, stats) = replay(devices, &graph, &nfa, &batches, *cfg);
                    (trace, stats, *name)
                })
                .collect();
            let (baseline, _, _) = &runs[runs.len() - 1];
            for (trace, _, name) in &runs {
                assert_eq!(
                    trace, baseline,
                    "{name} diverged from recompute (seed {seed}, {devices} devices)"
                );
            }
            // The steering knobs really selected distinct paths.
            let forced = &runs[0].1;
            assert_eq!(forced.fallbacks, 0, "huge budget must never fall back");
            let escape = &runs[1].1;
            assert!(
                escape.fallbacks > 0,
                "zero budget must fall back on some batch (seed {seed})"
            );
            let recompute = &runs[2].1;
            assert_eq!(recompute.incremental_inserts, 0);
            assert_eq!(recompute.dred_deletes, 0);
        }
    }
}

#[test]
fn dred_delete_path_is_exercised_and_agrees() {
    // A delete-heavy stream on a dense-ish graph: every batch removes
    // existing edges, so the forced-incremental run must absorb real
    // over-deletions through DRed and still match recompute.
    let mut rng = StdRng::seed_from_u64(0xD12ED);
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let n = 10;
    let mut graph = LabeledGraph::new(n);
    for u in 0..n {
        for d in 1..=3 {
            graph.add_edge(u, a, (u + d) % n);
        }
    }
    let regex = Regex::parse("a . a*", &mut table).unwrap();
    let nfa = glushkov(&regex);

    let mut mirror = graph.clone();
    let mut batches = Vec::new();
    for _ in 0..8 {
        let mut batch = UpdateBatch::new();
        let edges = mirror.edges_of(a);
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        batch.delete(u, a, v);
        batch.apply_to(&mut mirror);
        batches.push(batch);
    }

    for devices in [1, 2] {
        let forced = MaintainConfig {
            mode: MaintainMode::Incremental,
            fallback_fraction: 10.0,
        };
        let baseline = MaintainConfig {
            mode: MaintainMode::Recompute,
            fallback_fraction: 0.25,
        };
        let (inc, stats) = replay(devices, &graph, &nfa, &batches, forced);
        let (rec, _) = replay(devices, &graph, &nfa, &batches, baseline);
        assert_eq!(inc, rec, "DRed diverged on {devices} devices");
        assert!(stats.dred_deletes > 0, "stream must hit the DRed path");
        assert_eq!(stats.recomputes, 0, "huge budget must stay incremental");
    }
}

/// Satellite gate (ROADMAP item 1 remainder): re-answering a
/// single-source RPQ after a small update through the maintained view
/// — frontier seeded from the changed edges, answers extracted
/// host-side — must launch strictly fewer kernels than re-running the
/// full query from scratch, while agreeing answer-for-answer.
#[test]
fn seed_frontier_reanswer_launches_less_than_full_requery() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut table = SymbolTable::new();
    let a = table.intern("a");
    let b = table.intern("b");
    let labels = [a, b];
    let n = 14;
    let mut graph = LabeledGraph::new(n);
    for _ in 0..26 {
        let label = labels[rng.gen_range(0usize..2)];
        graph.add_edge(rng.gen_range(0..n), label, rng.gen_range(0..n));
    }
    let regex = Regex::parse("a . b*", &mut table).unwrap();
    let nfa = glushkov(&regex);

    // Maintained path: build once, then absorb one small batch and
    // re-answer every source.
    let grid = DeviceGrid::new(1);
    let mut stream = GraphStream::new(&grid, &graph).expect("store builds");
    stream
        .track_rpq(
            "q",
            &nfa,
            MaintainConfig {
                mode: MaintainMode::Incremental,
                fallback_fraction: 10.0,
            },
        )
        .expect("rpq view builds");
    let mut batch = UpdateBatch::new();
    batch.insert(rng.gen_range(0..n), a, rng.gen_range(0..n));
    let before = grid.total_stats().launches;
    stream.apply(batch.clone()).expect("batch applies");
    let view = stream.rpq_view("q").expect("tracked");
    let answers: Vec<Vec<u32>> = (0..n).map(|s| view.reachable_from(s)).collect();
    let incremental_launches = grid.total_stats().launches - before;

    // Full re-query at the same version, on a fresh device.
    let mut mirror = graph.clone();
    batch.apply_to(&mut mirror);
    let grid2 = DeviceGrid::new(1);
    let before2 = grid2.total_stats().launches;
    let index = spbla_graph::RpqIndex::build_from_nfa(
        &mirror,
        &nfa,
        grid2.instance(0),
        &spbla_graph::RpqOptions::default(),
    )
    .expect("full re-query builds");
    let full_pairs = index.reachable_pairs().expect("pairs extract");
    let full_launches = grid2.total_stats().launches - before2;

    for (source, got) in answers.iter().enumerate() {
        let want: Vec<u32> = full_pairs
            .iter()
            .filter(|&&(u, _)| u == source as u32)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(got, &want, "source {source}");
    }
    assert!(
        incremental_launches < full_launches,
        "seed-frontier re-answer must beat the full re-query: \
         {incremental_launches} vs {full_launches} launches"
    );
}

#[test]
fn lubm_stream_matches_recompute_at_every_version() {
    let mut table = SymbolTable::new();
    let config = LubmConfig {
        departments: 1,
        faculty: 3,
        students: 8,
        courses: 3,
        publications: 1,
    };
    let graph = lubm_like(1, &config, &mut table, 0xBEEF);
    let labels = graph.labels();
    let regex = Regex::parse("memberOf . subOrganizationOf*", &mut table).unwrap();
    let nfa = glushkov(&regex);

    let mut rng = StdRng::seed_from_u64(0x10B);
    let batches = random_batches(&graph, &labels, 10, &mut rng);

    for devices in [1, 2] {
        let traces: Vec<_> = configs()
            .iter()
            .map(|(cfg, name)| (replay(devices, &graph, &nfa, &batches, *cfg).0, *name))
            .collect();
        let (baseline, _) = &traces[traces.len() - 1];
        for (trace, name) in &traces {
            assert_eq!(
                trace, baseline,
                "{name} diverged from recompute on LUBM ({devices} devices)"
            );
        }
    }
}
