//! Shared fixtures for the cross-crate integration tests.

use spbla_core::Instance;

/// One instance per backend, for "all backends agree" tests.
pub fn all_backends() -> Vec<Instance> {
    vec![
        Instance::cpu(),
        Instance::cpu_dense(),
        Instance::cuda_sim(),
        Instance::cl_sim(),
    ]
}

/// Deterministic pseudo-random pair list (xorshift; no rand dependency
/// needed at this layer).
pub fn pseudo_pairs(n: u32, nnz: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut s = seed | 1;
    let mut step = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..nnz)
        .map(|_| {
            let a = step();
            ((a >> 32) as u32 % n, a as u32 % n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        assert_eq!(all_backends().len(), 4);
        let p = pseudo_pairs(10, 20, 7);
        assert_eq!(p.len(), 20);
        assert!(p.iter().all(|&(i, j)| i < 10 && j < 10));
        assert_eq!(p, pseudo_pairs(10, 20, 7));
    }
}
