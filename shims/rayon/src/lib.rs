//! Offline stand-in for the `rayon` crate.
//!
//! The simulated-GPU crate drives block execution through
//! `into_par_iter().for_each(..)` and the primitives use `par_iter` /
//! `par_chunks` adapter chains. This shim keeps the exact call-site API but
//! executes adapter chains sequentially (they delegate to `Iterator`) and
//! parallelises only the terminal `for_each` / `fold` on a direct parallel
//! iterator, using scoped OS threads. Nested parallel sections run
//! sequentially rather than spawning threads quadratically, mirroring how a
//! work-stealing pool would absorb nested work.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Width override installed by [`ThreadPool::install`].
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside parallel workers so nested `for_each` stays sequential.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel sections may use, matching
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    POOL_WIDTH.with(|w| w.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Run two closures and return both results (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A "parallel" iterator: wraps a sequential iterator, delegates the whole
/// `Iterator` vocabulary, and parallelises the terminal `for_each`.
pub struct Par<I> {
    inner: I,
}

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    /// Indexed variant that keeps the parallel `for_each` available.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            inner: self.inner.enumerate(),
        }
    }

    /// Mapping adapter that stays a parallel iterator, so rayon-only
    /// terminals (`reduce`, parallel `for_each`) remain reachable after it.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par {
            inner: self.inner.map(f),
        }
    }

    /// Rayon-style identity-plus-operator reduction.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        let mut acc = identity();
        for item in self.inner {
            acc = op(acc, item);
        }
        acc
    }

    /// Parallel consumption: items are collected and dispatched to scoped
    /// worker threads (sequential when nested or when width is 1).
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.inner.collect();
        run_parallel(items, &f);
    }

    /// Rayon-style two-closure fold; the per-split accumulators collapse to
    /// one here, so `reduce` just folds the identity back in.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> FoldResult<T>
    where
        ID: Fn() -> T,
        F: Fn(T, I::Item) -> T,
    {
        let mut acc = identity();
        for item in self.inner {
            acc = fold_op(acc, item);
        }
        FoldResult { value: acc }
    }
}

/// Result of [`Par::fold`], awaiting its `reduce`.
pub struct FoldResult<T> {
    value: T,
}

impl<T> FoldResult<T> {
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T,
        F: Fn(T, T) -> T,
    {
        op(identity(), self.value)
    }
}

fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: &F) {
    let width = current_num_threads().max(1);
    let nested = IN_WORKER.with(|w| w.get());
    if width <= 1 || items.len() <= 1 || nested {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(width);
    let mut buckets: Vec<Vec<T>> = Vec::with_capacity(width);
    let mut it = items.into_iter();
    loop {
        let bucket: Vec<T> = it.by_ref().take(chunk).collect();
        if bucket.is_empty() {
            break;
        }
        buckets.push(bucket);
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A width marker: `install` scopes `current_num_threads` to this width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_WIDTH.with(|w| {
            let prev = w.replace(Some(self.num_threads));
            let out = op();
            w.set(prev);
            out
        })
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

pub mod prelude {
    use super::Par;

    /// `into_par_iter` for anything iterable (ranges, vectors, zips).
    pub trait IntoParallelIterator: Sized {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> Par<T::IntoIter> {
            Par {
                inner: self.into_iter(),
            }
        }
    }

    /// `par_iter` — shared-reference parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Item = <&'data T as IntoIterator>::Item;
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Par<Self::Iter> {
            Par {
                inner: self.into_iter(),
            }
        }
    }

    /// `par_iter_mut` — unique-reference parallel iteration.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
    where
        &'data mut T: IntoIterator,
    {
        type Item = <&'data mut T as IntoIterator>::Item;
        type Iter = <&'data mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
            Par {
                inner: self.into_iter(),
            }
        }
    }

    /// `par_chunks` on slices.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par {
                inner: self.chunks(chunk_size),
            }
        }
    }

    /// `par_chunks_mut` on slices.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par {
                inner: self.chunks_mut(chunk_size),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        (0..10_000u32).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn adapter_chains_behave_like_iterators() {
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v.par_iter().sum();
        assert_eq!(s, 4950);
        let or_all = v
            .par_iter()
            .fold(|| 0u64, |a, &k| a | k)
            .reduce(|| 0, |a, b| a | b);
        assert_eq!(or_all, 127);
        let mut w = vec![0u32; 8];
        w.par_iter_mut().for_each(|x| *x = 7);
        assert!(w.iter().all(|&x| x == 7));
    }

    #[test]
    fn chunked_mutation_covers_slice() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(100).enumerate().for_each(|(b, slice)| {
            for x in slice {
                *x = b;
            }
        });
        assert_eq!(data[999], 9);
        assert_eq!(data[0], 0);
        assert_eq!(data.par_chunks(100).count(), 10);
    }

    #[test]
    fn install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
    }
}
