//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(..)]` and `pat in strategy`
//! parameters, range / tuple / `collection::vec` / `any::<T>()` strategies,
//! and `prop_assert!` / `prop_assert_eq!`. Cases are generated from a
//! deterministic SplitMix64 stream seeded by the test name, so failures
//! reproduce; there is no shrinking — the failing inputs are printed
//! instead.

pub mod test_runner {
    /// Failure raised by `prop_assert*` and carried out of a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_usize_below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }

    /// Drives one `proptest!`-generated test function.
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        pub fn new(config: crate::prelude::ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test stream.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1_0000_0000_01B3);
            }
            TestRunner {
                cases: config.cases,
                base_seed: seed,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::from_seed(
                self.base_seed
                    .wrapping_add(case as u64)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
            )
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types producible by `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.max(self.start))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = len.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.max_len.saturating_sub(self.min_len).max(1);
            let n = self.min_len + rng.next_usize_below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Per-block configuration, matching `proptest::prelude::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Defines property tests: each `pat in strategy` parameter is sampled per
/// case from a deterministic stream; the body runs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::prelude::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("proptest case {}/{} of {} failed: {}", case + 1, runner.cases(), stringify!($name), e);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond, args..)` — fails the current case without aborting
/// the whole process the way `assert!` would (no shrinking here, so the
/// effect is a panic with the case number attached).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right, args..)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_of_tuples(mut v in crate::collection::vec((0u32..10, 0u32..10), 0..50)) {
            v.push((0, 0));
            prop_assert!(v.len() <= 50);
            prop_assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
        }

        #[test]
        fn any_and_eq(seed in any::<u64>()) {
            let x = seed.wrapping_mul(2);
            prop_assert_eq!(x, seed.wrapping_add(seed));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..100, 0..20);
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
