//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build container has no registry access, so the workspace patches
//! `rustc-hash` to this path crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements the same Fx multiply-rotate hash and the
//! `FxHashMap`/`FxHashSet` aliases the workspace uses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fast non-cryptographic hasher (Firefox's Fx hash: multiply + rotate).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        m.insert(3, 4);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
