//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over
//! integer and float ranges, and `seq::SliceRandom::shuffle` — the full
//! surface the workspace's deterministic dataset generators use. The
//! generator is SplitMix64, so streams are deterministic per seed (they do
//! not match upstream rand's ChaCha streams, which no caller relies on).

/// Minimal core RNG interface: a source of uniform `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform double in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, matching `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64). Stands in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers, matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub use rngs::StdRng as _StdRngReexportGuard; // keep module path canonical

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
