//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-harness API the workspace's `harness = false` benches
//! compile against, and replaces the statistical machinery with a plain
//! min/mean/max timing report on stdout. Sample counts follow
//! `sample_size`, so benches stay fast enough to run in CI.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Run the routine `sample_count` times (after one warm-up), timing
    /// each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.samples.len()
        );
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    pub fn finish(self) {}
}

/// Entry point handed to each bench target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(&id.label);
        self
    }
}

/// Collects bench targets into one callable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }
}
