//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: the
//! workspace only needs `Mutex`/`RwLock` with infallible `lock()`. A
//! poisoned std lock (a panic while held) is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with parking_lot's `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
