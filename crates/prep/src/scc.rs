//! Strongly-connected components by iterative Tarjan, plus the
//! condensation the planner preprocessing stage caches.
//!
//! The solver is Tarjan's single-pass algorithm with an explicit frame
//! stack — serving-sized graphs (LUBM rungs reach millions of edges)
//! would overflow the thread stack under the textbook recursion, so no
//! recursion is allowed here. Tarjan pops components in *reverse*
//! topological order; component ids are renumbered on the way out so
//! that every condensation-DAG edge goes from a lower id to a strictly
//! higher one. That upper-triangular invariant is what the condensed
//! closure schedule relies on: the DAG's level structure is well defined
//! and the fixpoint only ever discovers pairs "downhill".

use rustc_hash::FxHashSet;
use spbla_core::{Index, Pair};

const UNSET: u32 = u32::MAX;

/// The condensation of a directed graph: the component map, the member
/// lists, and the component DAG.
///
/// Component ids are topological: every inter-component edge `(u, v)`
/// in [`Condensation::dag`] has `comp_of[u] < comp_of[v]`.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Vertex count of the underlying graph.
    pub n_vertices: Index,
    /// `comp_of[v]` — the component id of vertex `v`.
    pub comp_of: Vec<u32>,
    /// `members[c]` — the vertices of component `c`, sorted ascending.
    pub members: Vec<Vec<u32>>,
    /// Whether component `c` contains a cycle: more than one member, or
    /// a single member with a self-loop. Cyclic components expand to
    /// dense all-pairs blocks in the closure.
    pub cyclic: Vec<bool>,
    /// Inter-component edges, sorted and deduplicated; strictly
    /// upper-triangular (`u < v`) under the topological numbering.
    pub dag: Vec<Pair>,
    /// `levels[c]` — longest-path depth of component `c` from the DAG's
    /// sources; rounds of the condensed fixpoint touch only live levels.
    pub levels: Vec<u32>,
}

impl Condensation {
    /// Condense the graph on `n` vertices with the given edge list.
    /// Out-of-range endpoints are ignored (callers pass validated edge
    /// lists; the guard keeps a corrupt stream from panicking the
    /// preprocessing stage).
    pub fn build(n: Index, edges: &[Pair]) -> Condensation {
        let nv = n as usize;
        // CSR-shaped adjacency (counts → offsets → targets).
        let mut degree = vec![0u32; nv];
        for &(u, v) in edges {
            if (u as usize) < nv && (v as usize) < nv {
                degree[u as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; nv + 1];
        for i in 0..nv {
            offsets[i + 1] = offsets[i] + degree[i] as usize;
        }
        let mut targets = vec![0u32; offsets[nv]];
        let mut fill = offsets.clone();
        for &(u, v) in edges {
            if (u as usize) < nv && (v as usize) < nv {
                targets[fill[u as usize]] = v;
                fill[u as usize] += 1;
            }
        }

        let mut index = vec![UNSET; nv];
        let mut low = vec![0u32; nv];
        let mut on_stack = vec![false; nv];
        let mut comp_of = vec![UNSET; nv];
        let mut stack: Vec<u32> = Vec::new();
        // Explicit DFS frames: (vertex, next outgoing-edge cursor).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        let mut next_index = 0u32;
        let mut n_comps = 0u32;

        for root in 0..nv as u32 {
            if index[root as usize] != UNSET {
                continue;
            }
            frames.push((root, offsets[root as usize]));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                let vu = v as usize;
                if *cursor < offsets[vu + 1] {
                    let w = targets[*cursor];
                    *cursor += 1;
                    let wu = w as usize;
                    if index[wu] == UNSET {
                        // Tree edge: descend.
                        index[wu] = next_index;
                        low[wu] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[wu] = true;
                        frames.push((w, offsets[wu]));
                    } else if on_stack[wu] {
                        low[vu] = low[vu].min(index[wu]);
                    }
                    continue;
                }
                // v's out-edges exhausted: maybe pop a component, then
                // propagate the low-link to the parent frame.
                if low[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the component");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = n_comps;
                        if w == v {
                            break;
                        }
                    }
                    n_comps += 1;
                }
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let pu = parent as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
            }
        }

        // Tarjan ids come out in reverse topological order: renumber so
        // DAG edges run low → high.
        let comp_of: Vec<u32> = comp_of.iter().map(|&c| n_comps - 1 - c).collect();
        let nc = n_comps as usize;
        let mut members = vec![Vec::new(); nc];
        for (v, &c) in comp_of.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        // Vertex order ascending within each component (the push order
        // already is, but keep the invariant explicit).
        for list in &mut members {
            list.sort_unstable();
        }

        let mut cyclic: Vec<bool> = members.iter().map(|m| m.len() > 1).collect();
        let mut dag_set: FxHashSet<Pair> = FxHashSet::default();
        for &(u, v) in edges {
            if (u as usize) >= nv || (v as usize) >= nv {
                continue;
            }
            let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
            if cu == cv {
                if u == v {
                    cyclic[cu as usize] = true;
                }
            } else {
                debug_assert!(cu < cv, "topological numbering is upper-triangular");
                dag_set.insert((cu, cv));
            }
        }
        let mut dag: Vec<Pair> = dag_set.into_iter().collect();
        dag.sort_unstable();

        // Longest-path levels: one pass in topological (id) order.
        let mut levels = vec![0u32; nc];
        for &(cu, cv) in &dag {
            let deeper = levels[cu as usize] + 1;
            if deeper > levels[cv as usize] {
                levels[cv as usize] = deeper;
            }
        }

        Condensation {
            n_vertices: n,
            comp_of,
            members,
            cyclic,
            dag,
            levels,
        }
    }

    /// Number of components.
    pub fn n_components(&self) -> u32 {
        self.members.len() as u32
    }

    /// `n_components / n_vertices` — 1.0 means the graph is already a
    /// DAG, small values mean heavy cycles (big condensation wins).
    pub fn ratio(&self) -> f64 {
        if self.n_vertices == 0 {
            1.0
        } else {
            f64::from(self.n_components()) / f64::from(self.n_vertices)
        }
    }

    /// Number of distinct DAG levels (0 for the empty graph).
    pub fn n_levels(&self) -> u32 {
        self.levels.iter().copied().max().map_or(0, |l| l + 1)
    }

    /// Approximate host footprint, counted against the catalog's
    /// residency budget when the condensation is cached per version.
    pub fn memory_bytes(&self) -> usize {
        let per_vertex = 4 /* comp_of */ + 4 /* members entry */;
        let per_comp = 24 /* members Vec header */ + 1 /* cyclic */ + 4 /* levels */;
        self.n_vertices as usize * per_vertex
            + self.members.len() * per_comp
            + self.dag.len() * 8
            + std::mem::size_of::<Condensation>()
    }

    /// Incrementally refresh this condensation against the *current*
    /// edge list, assuming the partition can only have coarsened: every
    /// old component is still entirely inside one new component. That
    /// holds after edge inserts (which can merge SCCs but never split
    /// one) and after deletes of *inter*-component edges; a delete
    /// inside a component may split it and requires a fresh
    /// [`Condensation::build`] — the caller's escape hatch.
    ///
    /// The trick: the new SCC partition is exactly the SCC partition of
    /// the *component graph* (old components as vertices, current edges
    /// mapped through `comp_of`). Tarjan runs on `n_components` nodes
    /// instead of `n_vertices` — the cheap path when condensation has
    /// collapsed the graph — and the result composes: cyclic flags,
    /// DAG, and levels all transfer from the component-graph run.
    pub fn merge_with_edges(&self, edges: &[Pair]) -> Condensation {
        let nv = self.n_vertices as usize;
        let nc = self.n_components();
        let mapped: Vec<Pair> = edges
            .iter()
            .filter(|&&(u, v)| (u as usize) < nv && (v as usize) < nv)
            .map(|&(u, v)| (self.comp_of[u as usize], self.comp_of[v as usize]))
            .collect();
        let meta = Condensation::build(nc, &mapped);
        let comp_of: Vec<u32> = self
            .comp_of
            .iter()
            .map(|&c| meta.comp_of[c as usize])
            .collect();
        let mut members = vec![Vec::new(); meta.n_components() as usize];
        for (v, &c) in comp_of.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        for list in &mut members {
            list.sort_unstable();
        }
        // An old cyclic component carries an intra-component edge, which
        // maps to a component-graph self-loop — so `meta.cyclic` already
        // covers both merge-created and pre-existing cycles. A merged
        // component of several singletons is cyclic by the merge itself.
        let cyclic: Vec<bool> = meta
            .cyclic
            .iter()
            .zip(&members)
            .map(|(&c, m)| c || m.len() > 1)
            .collect();
        Condensation {
            n_vertices: self.n_vertices,
            comp_of,
            members,
            cyclic,
            dag: meta.dag,
            levels: meta.levels,
        }
    }

    /// Order-independent canonical form: member lists sorted by their
    /// smallest vertex, plus the DAG edges rewritten over smallest-
    /// member representatives. Two condensations of the same graph are
    /// equal exactly when their canonical forms are — regardless of how
    /// component ids were assigned (fresh Tarjan run vs. incremental
    /// maintenance).
    pub fn canonical(&self) -> (Vec<Vec<u32>>, Vec<Pair>) {
        let mut parts = self.members.clone();
        parts.sort_unstable_by_key(|m| m.first().copied().unwrap_or(u32::MAX));
        let rep: Vec<u32> = self
            .members
            .iter()
            .map(|m| m.first().copied().unwrap_or(u32::MAX))
            .collect();
        let mut edges: Vec<Pair> = self
            .dag
            .iter()
            .map(|&(u, v)| (rep[u as usize], rep[v as usize]))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        (parts, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_sets(c: &Condensation) -> Vec<Vec<u32>> {
        c.canonical().0
    }

    #[test]
    fn empty_graph_has_no_components() {
        let c = Condensation::build(0, &[]);
        assert_eq!(c.n_components(), 0);
        assert_eq!(c.n_levels(), 0);
        assert!(c.dag.is_empty());
        assert_eq!(c.ratio(), 1.0);
    }

    #[test]
    fn single_self_loop_is_one_cyclic_component() {
        let c = Condensation::build(1, &[(0, 0)]);
        assert_eq!(c.n_components(), 1);
        assert_eq!(c.cyclic, vec![true]);
        assert!(c.dag.is_empty());
        // Without the loop the lone vertex is acyclic.
        let c = Condensation::build(1, &[]);
        assert_eq!(c.cyclic, vec![false]);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let n = 7u32;
        let edges: Vec<Pair> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let c = Condensation::build(n, &edges);
        assert_eq!(c.n_components(), 1);
        assert!(c.cyclic[0]);
        assert_eq!(c.members[0], (0..n).collect::<Vec<_>>());
        assert_eq!(c.n_levels(), 1);
    }

    #[test]
    fn chain_is_all_singletons_in_topo_order() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        let c = Condensation::build(4, &edges);
        assert_eq!(c.n_components(), 4);
        assert!(c.cyclic.iter().all(|&b| !b));
        // Edges must run low → high under the renumbering.
        for &(u, v) in &c.dag {
            assert!(u < v);
        }
        assert_eq!(c.levels.len(), 4);
        assert_eq!(c.n_levels(), 4);
        // comp ids follow reachability order along the chain.
        for w in edges {
            assert!(c.comp_of[w.0 as usize] < c.comp_of[w.1 as usize]);
        }
    }

    #[test]
    fn two_cycles_bridged() {
        // 0↔1 → 2↔3, plus an isolated vertex 4.
        let edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)];
        let c = Condensation::build(5, &edges);
        assert_eq!(c.n_components(), 3);
        let sets = comp_sets(&c);
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![2, 3]));
        assert!(sets.contains(&vec![4]));
        assert_eq!(c.dag.len(), 1);
        let (cu, cv) = c.dag[0];
        assert_eq!(c.members[cu as usize], vec![0, 1]);
        assert_eq!(c.members[cv as usize], vec![2, 3]);
    }

    #[test]
    fn deep_chain_does_not_recurse() {
        // 200k-vertex path: the recursive formulation would blow the
        // stack; the explicit-frame solver must not.
        let n = 200_000u32;
        let edges: Vec<Pair> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let c = Condensation::build(n, &edges);
        assert_eq!(c.n_components(), n);
        assert_eq!(c.n_levels(), n);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let c = Condensation::build(2, &[(0, 1), (5, 0), (1, 9)]);
        assert_eq!(c.n_components(), 2);
        assert_eq!(c.dag.len(), 1);
    }

    #[test]
    fn merge_with_edges_matches_fresh_build() {
        // Start from two 2-cycles bridged; then add an edge closing the
        // big cycle, merging everything into one SCC.
        let before = vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)];
        let cond = Condensation::build(5, &before);
        let mut after = before.clone();
        after.push((3, 0));
        let incremental = cond.merge_with_edges(&after);
        let fresh = Condensation::build(5, &after);
        assert_eq!(incremental.canonical(), fresh.canonical());
        assert_eq!(incremental.n_components(), 2); // {0,1,2,3} + {4}
                                                   // Pure DAG-edge insert (no merge) also stays identical.
        let mut dag_only = before.clone();
        dag_only.push((4, 0));
        let incremental = cond.merge_with_edges(&dag_only);
        assert_eq!(
            incremental.canonical(),
            Condensation::build(5, &dag_only).canonical()
        );
        // Inter-component delete (the bridge 1→2): partition unchanged,
        // the DAG loses its edge.
        let bridgeless: Vec<Pair> = vec![(0, 1), (1, 0), (2, 3), (3, 2)];
        let incremental = cond.merge_with_edges(&bridgeless);
        assert_eq!(
            incremental.canonical(),
            Condensation::build(5, &bridgeless).canonical()
        );
        assert!(incremental.dag.is_empty());
    }

    #[test]
    fn canonical_is_id_assignment_independent() {
        let edges = [(0, 1), (1, 0), (2, 0)];
        let a = Condensation::build(3, &edges);
        // Same graph, edges in a different order → possibly different
        // Tarjan visit order, same canonical form.
        let b = Condensation::build(3, &[(2, 0), (1, 0), (0, 1)]);
        assert_eq!(a.canonical(), b.canonical());
    }
}
