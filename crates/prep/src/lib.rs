//! # spbla-prep — planner preprocessing: condense, reorder, expand
//!
//! The structure-aware preprocessing stage the engine's planner runs in
//! front of closure-shaped fixpoints (ROADMAP open item 3):
//!
//! * [`scc`] — iterative (explicit-stack) Tarjan SCC, producing a
//!   [`Condensation`] with a topologically-numbered component DAG;
//! * [`condense`] — transitive closure *via* the condensation: the
//!   fused semi-naïve fixpoint runs on the DAG (rounds bounded by the
//!   DAG's level count), and a blocked host expansion
//!   `R = P·R_dag·Pᵀ` fills each cyclic component's all-pairs block
//!   without a single SpGEMM accumulator insertion — bit-identical to
//!   the direct closure by construction;
//! * [`perm`] — degree and Morton-locality vertex permutations
//!   ([`Perm`]), applied/inverted on [`spbla_core::Matrix`] through the
//!   dispatched kernel surface.
//!
//! Everything is observable: `spbla_prep_condense_total`,
//! `spbla_prep_scc_count`, `spbla_prep_condensation_ratio_pct`,
//! `spbla_prep_live_levels`, and `spbla_prep_permute_launches_total`
//! land in the global [`spbla_obs`] registry.

pub mod condense;
pub mod perm;
pub mod scc;

pub use condense::{condensed_closure, condensed_closure_with, CondenseStats};
pub use perm::Perm;
pub use scc::Condensation;
