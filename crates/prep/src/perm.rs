//! Locality-improving vertex permutations.
//!
//! A permutation relabels vertices before upload: `A' = P·A·Pᵀ`. The
//! product runs through the normal [`KernelDispatch`] surface (two
//! dispatched SpGEMMs against the permutation matrix), so every backend
//! — flat or tiled — executes and meters it like any other kernel, and
//! the relabelled matrix answers bit-identically after mapping back.
//!
//! Why bother: the *flat* backends are layout-oblivious (a hash SpGEMM
//! admits the same candidate multiset under any bijective relabel), but
//! the adaptive tiled storage is not. Degree ordering packs the hot
//! rows into a few dense tiles, and the Morton ordering interleaves
//! row/column locality so neighbouring vertices land in the same tile;
//! both shrink the occupied-tile count and the bytes a tiled fixpoint
//! touches per round. The E19 report measures exactly that census
//! shift.
//!
//! [`KernelDispatch`]: spbla_core::backend::dispatch::KernelDispatch

use spbla_core::{Index, Instance, Matrix, Pair, Result, SpblaError};
use spbla_obs::metrics_global;

/// A vertex bijection with both directions materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    /// `forward[old] = new`.
    forward: Vec<u32>,
    /// `inverse[new] = old`.
    inverse: Vec<u32>,
}

impl Perm {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: Index) -> Perm {
        let forward: Vec<u32> = (0..n).collect();
        Perm {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Build from a forward map (`forward[old] = new`), validating that
    /// it is a bijection on `0..len`.
    pub fn from_forward(forward: Vec<u32>) -> Result<Perm> {
        let n = forward.len();
        let mut inverse = vec![u32::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            if (new as usize) >= n || inverse[new as usize] != u32::MAX {
                return Err(SpblaError::InvalidDimension(
                    "permutation is not a bijection".into(),
                ));
            }
            inverse[new as usize] = old as u32;
        }
        Ok(Perm { forward, inverse })
    }

    /// Degree ordering: vertices sorted by total (in + out) degree,
    /// descending, ties by vertex id. Hot rows first — under tiled
    /// storage they collapse into a handful of dense tiles instead of
    /// salting one entry into every tile they touch.
    pub fn degree(n: Index, edges: &[Pair]) -> Perm {
        let nv = n as usize;
        let mut degree = vec![0u32; nv];
        for &(u, v) in edges {
            if (u as usize) < nv {
                degree[u as usize] += 1;
            }
            if (v as usize) < nv {
                degree[v as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(degree[v as usize]), v));
        Perm::from_order(&order)
    }

    /// Morton (Z-order) locality: each vertex is keyed by bit-
    /// interleaving its own id with the mean of its out-neighbour ids,
    /// so vertices whose rows point at nearby columns sort next to each
    /// other — a cheap stand-in for full bandwidth-minimising
    /// reordering that already clusters tile occupancy.
    pub fn morton(n: Index, edges: &[Pair]) -> Perm {
        let nv = n as usize;
        let mut sum = vec![0u64; nv];
        let mut count = vec![0u64; nv];
        for &(u, v) in edges {
            if (u as usize) < nv && (v as usize) < nv {
                sum[u as usize] += u64::from(v);
                count[u as usize] += 1;
            }
        }
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| {
            let vu = v as usize;
            let anchor = sum[vu].checked_div(count[vu]).map_or(v, |mean| mean as u32);
            (interleave(v, anchor), v)
        });
        Perm::from_order(&order)
    }

    /// `order[k]` = the old vertex placed at new position `k`.
    fn from_order(order: &[u32]) -> Perm {
        let mut forward = vec![0u32; order.len()];
        for (new, &old) in order.iter().enumerate() {
            forward[old as usize] = new as u32;
        }
        Perm::from_forward(forward).expect("order is a bijection")
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is over zero vertices.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The inverse permutation.
    pub fn inverted(&self) -> Perm {
        Perm {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
        }
    }

    /// New id of an old vertex.
    pub fn apply_vertex(&self, v: u32) -> u32 {
        self.forward[v as usize]
    }

    /// Map an edge list into the permuted namespace.
    pub fn apply_pairs(&self, pairs: &[Pair]) -> Vec<Pair> {
        pairs
            .iter()
            .map(|&(u, v)| (self.forward[u as usize], self.forward[v as usize]))
            .collect()
    }

    /// The permutation matrix `P` with `P[forward[i], i] = 1`.
    pub fn matrix(&self, inst: &Instance) -> Result<Matrix> {
        let n = self.len() as Index;
        let pairs: Vec<Pair> = self
            .forward
            .iter()
            .enumerate()
            .map(|(old, &new)| (new, old as u32))
            .collect();
        Matrix::from_pairs(inst, n, n, &pairs)
    }

    /// Relabel a square matrix: `A' = P·A·Pᵀ`, so
    /// `A'[forward[i], forward[j]] = A[i, j]`. Runs as two dispatched
    /// SpGEMMs; launches are metered into
    /// `spbla_prep_permute_launches_total`.
    pub fn apply(&self, m: &Matrix) -> Result<Matrix> {
        let (nrows, ncols) = m.shape();
        if nrows != ncols || nrows as usize != self.len() {
            return Err(SpblaError::DimensionMismatch {
                op: "perm_apply",
                lhs: (self.len() as Index, self.len() as Index),
                rhs: m.shape(),
            });
        }
        let inst = m.instance();
        let before = inst.device().map_or(0, |d| d.stats().launches);
        let p = self.matrix(inst)?;
        let pt = p.transpose()?;
        let out = p.mxm(m)?.mxm(&pt)?;
        let launched = inst
            .device()
            .map_or(3, |d| d.stats().launches.saturating_sub(before));
        let reg = metrics_global();
        reg.counter("spbla_prep_permute_total").inc(1);
        reg.counter("spbla_prep_permute_launches_total")
            .inc(launched);
        Ok(out)
    }

    /// Undo [`Perm::apply`]: `A = Pᵀ·A'·P`.
    pub fn unapply(&self, m: &Matrix) -> Result<Matrix> {
        self.inverted().apply(m)
    }
}

/// Bit-interleave two 32-bit coordinates into a 64-bit Morton key.
fn interleave(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Spread the bits of `x` to the even positions of a u64.
fn spread(x: u32) -> u64 {
    let mut v = u64::from(x);
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_core::Backend;

    fn backends() -> Vec<Instance> {
        vec![
            Instance::cpu(),
            Instance::cpu_dense(),
            Instance::cuda_sim(),
            Instance::cl_sim(),
            Instance::blocked(Backend::Cpu),
        ]
    }

    #[test]
    fn bijection_is_validated() {
        assert!(Perm::from_forward(vec![0, 1, 2]).is_ok());
        assert!(Perm::from_forward(vec![0, 0, 2]).is_err());
        assert!(Perm::from_forward(vec![0, 5, 2]).is_err());
        let empty = Perm::identity(0);
        assert!(empty.is_empty());
        assert_eq!(empty.apply_pairs(&[]), vec![]);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Perm::from_forward(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverted();
        for v in 0..4 {
            assert_eq!(inv.apply_vertex(p.apply_vertex(v)), v);
        }
        assert_eq!(p.inverted().inverted(), p);
    }

    #[test]
    fn apply_relabels_and_unapply_restores() {
        let edges: Vec<Pair> = vec![(0, 1), (1, 2), (2, 0), (3, 1)];
        for inst in backends() {
            let m = Matrix::from_pairs(&inst, 4, 4, &edges).unwrap();
            let p = Perm::from_forward(vec![3, 1, 0, 2]).unwrap();
            let permuted = p.apply(&m).unwrap();
            let mut want = p.apply_pairs(&edges);
            want.sort_unstable();
            assert_eq!(permuted.read(), want, "{:?}", inst.backend());
            let back = p.unapply(&permuted).unwrap();
            assert_eq!(back.read(), m.read());
        }
    }

    #[test]
    fn closure_commutes_with_relabel() {
        // Closure of the permuted graph = permuted closure: the perm
        // is sound to apply *before* any fixpoint.
        let edges: Vec<Pair> = vec![(0, 1), (1, 2), (2, 0), (2, 3), (4, 3)];
        let inst = Instance::cuda_sim();
        let m = Matrix::from_pairs(&inst, 5, 5, &edges).unwrap();
        let p = Perm::degree(5, &edges);
        let closed_then_permuted = p.apply(&m.transitive_closure().unwrap()).unwrap();
        let permuted_then_closed = p.apply(&m).unwrap().transitive_closure().unwrap();
        assert_eq!(closed_then_permuted.read(), permuted_then_closed.read());
    }

    #[test]
    fn degree_orders_hot_vertices_first() {
        // Vertex 5 touches everything; it must land at position 0.
        let edges: Vec<Pair> = (0..5).map(|v| (5, v)).collect();
        let p = Perm::degree(6, &edges);
        assert_eq!(p.apply_vertex(5), 0);
    }

    #[test]
    fn degree_packs_tiles_on_blocked_storage() {
        // 4 hot rows spread far apart (0, 64, 128, 192): flat layout
        // occupies one tile-row per hot vertex. Degree ordering pulls
        // them to the front, collapsing the census into fewer tiles.
        let n = 256u32;
        let mut edges: Vec<Pair> = Vec::new();
        for &hub in &[0u32, 64, 128, 192] {
            for k in 0..48u32 {
                edges.push((hub, (k * 4) % n));
            }
        }
        let inst = Instance::blocked(Backend::Cpu);
        let flat = Matrix::from_pairs(&inst, n, n, &edges).unwrap();
        let p = Perm::degree(n, &edges);
        let packed = Matrix::from_pairs(&inst, n, n, &p.apply_pairs(&edges)).unwrap();
        let tiles = |m: &Matrix| {
            let (d, c, o) = m.block_format_census().unwrap();
            d + c + o
        };
        assert!(
            tiles(&packed) < tiles(&flat),
            "degree perm should shrink occupied tiles: {} vs {}",
            tiles(&packed),
            tiles(&flat)
        );
        assert_eq!(packed.nnz(), flat.nnz());
    }

    #[test]
    fn morton_groups_neighbourhoods() {
        let n = 128u32;
        // Two clusters pointing at far-apart column ranges.
        let mut edges: Vec<Pair> = Vec::new();
        for v in 0..n {
            let target = if v % 2 == 0 { v / 2 } else { n / 2 + v / 2 };
            edges.push((v, target));
        }
        let p = Perm::morton(n, &edges);
        // Still a bijection over all vertices.
        let mut seen: Vec<u32> = (0..n).map(|v| p.apply_vertex(v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        // Relabel must preserve structure on every backend.
        let inst = Instance::cl_sim();
        let m = Matrix::from_pairs(&inst, n, n, &edges).unwrap();
        assert_eq!(p.apply(&m).unwrap().nnz(), m.nnz());
    }

    #[test]
    fn degenerate_graphs_round_trip() {
        // The satellite edge cases: 0-vertex graph, single self-loop
        // SCC, fully-cyclic graph. Every builder must stay total and
        // apply/unapply must stay exact on all of them.
        for inst in backends() {
            // 0 vertices: builders return the empty bijection and the
            // dispatched relabel is a no-op on the 0x0 matrix.
            for p in [Perm::degree(0, &[]), Perm::morton(0, &[])] {
                assert!(p.is_empty());
                let m = Matrix::from_pairs(&inst, 0, 0, &[]).unwrap();
                assert_eq!(p.apply(&m).unwrap().nnz(), 0);
            }

            // One vertex with a self-loop: the only bijection is the
            // identity, and the loop survives the round trip.
            let loop_edges: Vec<Pair> = vec![(0, 0)];
            for p in [Perm::degree(1, &loop_edges), Perm::morton(1, &loop_edges)] {
                assert_eq!(p.apply_vertex(0), 0);
                let m = Matrix::from_pairs(&inst, 1, 1, &loop_edges).unwrap();
                let permuted = p.apply(&m).unwrap();
                assert_eq!(permuted.read(), vec![(0, 0)]);
                assert_eq!(p.unapply(&permuted).unwrap().read(), m.read());
            }

            // Fully cyclic (one SCC): every vertex has equal degree, so
            // the degree order must fall back to the id tiebreak — the
            // identity — and relabelling commutes with the closure.
            let n = 6u32;
            let cycle: Vec<Pair> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            let p = Perm::degree(n, &cycle);
            for v in 0..n {
                assert_eq!(p.apply_vertex(v), v, "uniform degree must tiebreak by id");
            }
            let q = Perm::morton(n, &cycle);
            let m = Matrix::from_pairs(&inst, n, n, &cycle).unwrap();
            let closed = q.apply(&m.transitive_closure().unwrap()).unwrap();
            assert_eq!(closed.nnz(), (n * n) as usize, "one SCC closes all-pairs");
            assert_eq!(
                q.apply(&m).unwrap().transitive_closure().unwrap().read(),
                closed.read()
            );
        }
    }

    #[test]
    fn permute_launches_are_metered() {
        let reg = metrics_global();
        let before = reg.counter("spbla_prep_permute_launches_total").get();
        let inst = Instance::cuda_sim();
        let m = Matrix::from_pairs(&inst, 8, 8, &[(0, 1), (1, 2)]).unwrap();
        Perm::identity(8).apply(&m).unwrap();
        assert!(reg.counter("spbla_prep_permute_launches_total").get() > before);
    }
}
