//! Condensed transitive closure: solve the fixpoint on the SCC
//! condensation DAG, then expand back through the component map.
//!
//! The schedule is the paper's semi-naïve fused delta loop, but run on
//! the condensation instead of the raw adjacency: a cyclic component
//! contributes a single DAG vertex (with a self-loop, so the DAG
//! closure's diagonal marks exactly the cyclic components), the fused
//! kernel discovers inter-component reachability in `O(levels)` rounds,
//! and the expansion `R = P·R_dag·Pᵀ` is a *blocked* host kernel: each
//! closure pair `(cu, cv)` emits the full `members[cu] × members[cv]`
//! block in one append, so no SpGEMM hash accumulator ever sees the
//! intra-SCC all-pairs fill. That is where the launch and insertion
//! reductions gated by E19 come from — the device only ever runs the
//! DAG-sized fixpoint.
//!
//! Equality with the direct closure is by construction:
//! * `u` and `v` in the same component: the direct closure holds
//!   `(u, v)` iff the component is cyclic, and the DAG self-loop puts
//!   `(c, c)` in `R_dag` iff `cyclic[c]`;
//! * different components: a path `u → v` exists iff the DAG reaches
//!   `comp(u) → comp(v)`, and the strictly upper-triangular DAG closure
//!   cannot invent a diagonal entry.

use spbla_core::{Index, Instance, Matrix, Pair, Result};
use spbla_obs::{metrics_global, trace_global};

use crate::scc::Condensation;

/// What one condensed-closure run did — the numbers E19 gates on.
#[derive(Debug, Clone, Default)]
pub struct CondenseStats {
    /// Vertex count of the input graph.
    pub n_vertices: u32,
    /// Components after condensation.
    pub n_components: u32,
    /// `n_components / n_vertices` (1.0 = already a DAG).
    pub condensation_ratio: f64,
    /// DAG levels (longest path + 1).
    pub levels: u32,
    /// Fused fixpoint rounds on the DAG.
    pub rounds: u32,
    /// Distinct DAG levels holding delta rows, per round — the
    /// level-synchronous schedule touches only these.
    pub live_levels_per_round: Vec<u32>,
    /// Edges of the condensation DAG (self-loops included).
    pub dag_nnz: usize,
    /// Entries of the DAG closure before expansion.
    pub dag_closure_nnz: usize,
    /// Entries of the expanded (full) closure.
    pub expanded_nnz: usize,
}

/// Transitive closure of the `n × n` graph given as an edge list,
/// computed via SCC condensation. Returns the closure matrix on `inst`
/// plus the run's [`CondenseStats`].
pub fn condensed_closure(
    inst: &Instance,
    n: Index,
    edges: &[Pair],
) -> Result<(Matrix, CondenseStats)> {
    let cond = Condensation::build(n, edges);
    condensed_closure_with(inst, &cond)
}

/// Condensed closure from a prebuilt (e.g. catalog-cached)
/// [`Condensation`].
pub fn condensed_closure_with(
    inst: &Instance,
    cond: &Condensation,
) -> Result<(Matrix, CondenseStats)> {
    let _span = trace_global().span("condensed_closure", "op", 0);
    let n = cond.n_vertices;
    let nc = cond.n_components();
    let mut stats = CondenseStats {
        n_vertices: n,
        n_components: nc,
        condensation_ratio: cond.ratio(),
        levels: cond.n_levels(),
        ..CondenseStats::default()
    };
    if n == 0 {
        publish_metrics(&stats);
        return Ok((Matrix::zeros(inst, 0, 0)?, stats));
    }

    // DAG adjacency: inter-component edges plus a self-loop per cyclic
    // component, so the DAG closure's diagonal marks the components
    // whose expansion is a dense all-pairs block.
    let mut dag_pairs: Vec<Pair> = cond.dag.clone();
    for (c, &cyc) in cond.cyclic.iter().enumerate() {
        if cyc {
            dag_pairs.push((c as u32, c as u32));
        }
    }
    stats.dag_nnz = dag_pairs.len();
    let dag = Matrix::from_pairs(inst, nc, nc, &dag_pairs)?;

    // The fused semi-naïve loop, identical in shape to
    // `closure_delta`, but over the DAG: each round's delta rows live
    // on a shrinking set of DAG levels, which we meter (the loop is
    // level-synchronous — a level with no delta rows costs nothing).
    let mut closure = dag.duplicate()?;
    let mut delta = dag.duplicate()?;
    while delta.nnz() > 0 {
        stats.rounds += 1;
        let live = live_levels(cond, &delta);
        stats.live_levels_per_round.push(live);
        metrics_global()
            .histogram("spbla_prep_live_levels")
            .observe(u64::from(live));
        let step = closure.mxm_accum_compmask(&closure, &delta, true)?;
        if step.fresh_nnz == 0 {
            break;
        }
        closure = step.acc;
        delta = step.fresh.expect("fresh requested");
    }
    let dag_closure = closure.read();
    stats.dag_closure_nnz = dag_closure.len();

    // Blocked expansion: one all-pairs block per DAG-closure entry.
    let mut expanded: Vec<Pair> = Vec::new();
    for &(cu, cv) in &dag_closure {
        let src = &cond.members[cu as usize];
        let dst = &cond.members[cv as usize];
        expanded.reserve(src.len() * dst.len());
        for &u in src {
            for &v in dst {
                expanded.push((u, v));
            }
        }
    }
    stats.expanded_nnz = expanded.len();
    let result = Matrix::from_pairs(inst, n, n, &expanded)?;
    publish_metrics(&stats);
    Ok((result, stats))
}

/// Distinct DAG levels among the delta's source rows.
fn live_levels(cond: &Condensation, delta: &Matrix) -> u32 {
    let mut seen = vec![false; cond.n_levels() as usize + 1];
    let mut count = 0u32;
    for (row, _) in delta.read() {
        let level = cond.levels[row as usize] as usize;
        if !seen[level] {
            seen[level] = true;
            count += 1;
        }
    }
    count
}

fn publish_metrics(stats: &CondenseStats) {
    let m = metrics_global();
    m.counter("spbla_prep_condense_total").inc(1);
    m.gauge("spbla_prep_scc_count")
        .set(u64::from(stats.n_components));
    m.gauge("spbla_prep_condensation_ratio_pct")
        .set((stats.condensation_ratio * 100.0) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_core::Backend;

    fn backends() -> Vec<Instance> {
        vec![
            Instance::cpu(),
            Instance::cpu_dense(),
            Instance::cuda_sim(),
            Instance::cl_sim(),
            Instance::blocked(Backend::Cpu),
        ]
    }

    fn direct(inst: &Instance, n: Index, edges: &[Pair]) -> Vec<Pair> {
        let m = Matrix::from_pairs(inst, n, n, edges).unwrap();
        let mut pairs = m.transitive_closure().unwrap().read();
        pairs.sort_unstable();
        pairs
    }

    fn condensed(inst: &Instance, n: Index, edges: &[Pair]) -> Vec<Pair> {
        let (m, _) = condensed_closure(inst, n, edges).unwrap();
        let mut pairs = m.read();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn empty_graph() {
        for inst in backends() {
            let (m, stats) = condensed_closure(&inst, 0, &[]).unwrap();
            assert_eq!(m.nnz(), 0);
            assert_eq!(stats.n_components, 0);
        }
    }

    #[test]
    fn single_self_loop() {
        for inst in backends() {
            assert_eq!(condensed(&inst, 1, &[(0, 0)]), vec![(0, 0)]);
            assert_eq!(condensed(&inst, 1, &[]), vec![]);
        }
    }

    #[test]
    fn full_cycle_is_all_pairs() {
        let n = 5u32;
        let edges: Vec<Pair> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for inst in backends() {
            let got = condensed(&inst, n, &edges);
            assert_eq!(got.len(), (n * n) as usize);
            assert_eq!(got, direct(&inst, n, &edges));
        }
    }

    #[test]
    fn matches_direct_closure_on_all_backends() {
        // A zoo of shapes: chain, cycle chain, diamond with a cycle,
        // disconnected pieces, self-loops.
        let cases: Vec<(u32, Vec<Pair>)> = vec![
            (4, vec![(0, 1), (1, 2), (2, 3)]),
            (6, vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]),
            (5, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]),
            (7, vec![(0, 1), (2, 2), (4, 5), (5, 6), (6, 4)]),
            (3, vec![]),
        ];
        for (n, edges) in &cases {
            for inst in backends() {
                assert_eq!(
                    condensed(&inst, *n, edges),
                    direct(&inst, *n, edges),
                    "n={n} edges={edges:?} backend={:?}",
                    inst.backend()
                );
            }
        }
    }

    #[test]
    fn pseudo_random_graphs_match_direct() {
        // Deterministic LCG-shaped edge sets: dense enough to grow
        // multi-vertex SCCs, sparse enough to keep a DAG around them.
        for seed in 1u64..6 {
            let n = 24u32;
            let mut state = seed;
            let mut edges = Vec::new();
            for _ in 0..72 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) % u64::from(n)) as u32;
                let v = ((state >> 13) % u64::from(n)) as u32;
                edges.push((u, v));
            }
            for inst in backends() {
                assert_eq!(
                    condensed(&inst, n, &edges),
                    direct(&inst, n, &edges),
                    "seed={seed} backend={:?}",
                    inst.backend()
                );
            }
        }
    }

    #[test]
    fn stats_reflect_scc_structure() {
        // Chain of 3 triangles: 9 vertices, 3 components, 3 levels.
        let mut edges = Vec::new();
        for k in 0..3u32 {
            let base = k * 3;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base + 2, base));
            if k < 2 {
                edges.push((base, base + 3));
            }
        }
        let inst = Instance::cuda_sim();
        let (_, stats) = condensed_closure(&inst, 9, &edges).unwrap();
        assert_eq!(stats.n_components, 3);
        assert_eq!(stats.levels, 3);
        assert!((stats.condensation_ratio - 1.0 / 3.0).abs() < 1e-9);
        assert!(stats.rounds >= 1);
        assert_eq!(stats.live_levels_per_round.len(), stats.rounds as usize);
        // Expansion is all-pairs per reachable component pair: the
        // first triangle reaches everything → 9·3·3 + 6·3·3/... just
        // check the count matches the direct closure.
        assert_eq!(stats.expanded_nnz, direct(&inst, 9, &edges).len());
    }
}
