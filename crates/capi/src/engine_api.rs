//! `extern "C"` surface of the serving engine: opaque engine and ticket
//! handles over [`spbla_engine::Engine`], in the same cuBool style as
//! the matrix API — status returns, out-parameters, and a two-call
//! extract protocol for reading answers.
//!
//! Lifecycle: `spbla_Engine_New` → `spbla_Engine_LoadGraph` →
//! `spbla_Engine_Submit*` (each returns a ticket) → `spbla_Ticket_Wait`
//! (blocks; the status *is* the request outcome) →
//! `spbla_Ticket_ExtractPairs` → `spbla_Ticket_Free` →
//! `spbla_Engine_Free` (drains the queue and joins the workers).

use std::ffi::CStr;
use std::os::raw::c_char;
use std::time::Duration;

use spbla_data::io::load_graph;
use spbla_engine::{Engine, EngineConfig, QosTier, Query, QueryResult};
use spbla_multidev::DeviceGrid;
use spbla_stream::UpdateBatch;

use crate::handles::{Registry, SpblaEngine, SpblaTicket};
use crate::status::SpblaStatus;

/// Engine-wide counters, C layout. Mirrors `spbla_engine::EngineStats`
/// with the per-device launch counters already summed.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct SpblaEngineStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests bounced by admission control.
    pub rejected: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Requests cancelled via their ticket.
    pub cancelled: u64,
    /// Requests that failed in execution.
    pub failed: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations).
    pub plan_misses: u64,
    /// Catalog residency hits.
    pub residency_hits: u64,
    /// Catalog residency misses (uploads).
    pub residency_misses: u64,
    /// Catalog LRU evictions.
    pub residency_evictions: u64,
    /// High-water mark of the admission-queue depth.
    pub queue_depth_hwm: u64,
    /// Coalesced multi-source executions.
    pub batches: u64,
    /// Requests served inside those coalesced executions.
    pub batched_requests: u64,
    /// Kernel launches summed over every device.
    pub launches: u64,
}

/// # Safety
/// `p` must be null or a valid NUL-terminated C string.
unsafe fn cstr<'a>(p: *const c_char) -> Result<&'a str, SpblaStatus> {
    if p.is_null() {
        return Err(SpblaStatus::NullPointer);
    }
    CStr::from_ptr(p).to_str().map_err(|_| SpblaStatus::Error)
}

fn submit(
    engine: SpblaEngine,
    graph: &str,
    query: Query,
    deadline_ms: u64,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let result =
        Registry::global().with_engine(engine, |e| e.submit_with_deadline(graph, query, deadline));
    match result {
        Some(Ok(ticket)) => {
            // Safety: caller contract — `out` checked non-null upstream.
            unsafe { *out = Registry::global().insert_ticket(ticket) };
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Create a serving engine over `n_devices` simulated devices.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_New(n_devices: u32, out: *mut SpblaEngine) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    if n_devices == 0 {
        return SpblaStatus::Error;
    }
    let engine = Engine::new(DeviceGrid::new(n_devices as usize), EngineConfig::default());
    *out = Registry::global().insert_engine(engine);
    SpblaStatus::Ok
}

/// Register the triples file at `path` as catalog graph `name`.
///
/// # Safety
/// `name` and `path` must be valid NUL-terminated C strings.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_LoadGraph(
    engine: SpblaEngine,
    name: *const c_char,
    path: *const c_char,
) -> SpblaStatus {
    let (name, path) = match (cstr(name), cstr(path)) {
        (Ok(n), Ok(p)) => (n, p),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    let loaded = Registry::global().with_engine(engine, |e| {
        e.with_symbols(|table| load_graph(path, table))
            .map(|graph| e.add_graph(name, graph))
    });
    match loaded {
        Some(Ok(())) => SpblaStatus::Ok,
        Some(Err(_)) => SpblaStatus::Error,
        None => SpblaStatus::InvalidHandle,
    }
}

/// Submit an all-pairs RPQ over catalog graph `graph`.
///
/// # Safety
/// `graph` and `regex` must be valid C strings; `out` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_SubmitRpq(
    engine: SpblaEngine,
    graph: *const c_char,
    regex: *const c_char,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let (graph, regex) = match (cstr(graph), cstr(regex)) {
        (Ok(g), Ok(r)) => (g, r),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    submit(engine, graph, Query::Rpq(regex.to_string()), 0, out)
}

/// Submit a single-source RPQ (the batchable form). `deadline_ms = 0`
/// means no deadline.
///
/// # Safety
/// `graph` and `regex` must be valid C strings; `out` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_SubmitRpqFromSource(
    engine: SpblaEngine,
    graph: *const c_char,
    regex: *const c_char,
    source: u32,
    deadline_ms: u64,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let (graph, regex) = match (cstr(graph), cstr(regex)) {
        (Ok(g), Ok(r)) => (g, r),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    submit(
        engine,
        graph,
        Query::RpqFromSource {
            text: regex.to_string(),
            source,
        },
        deadline_ms,
        out,
    )
}

/// Submit a CFPQ over catalog graph `graph`.
///
/// # Safety
/// `graph` and `grammar` must be valid C strings; `out` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_SubmitCfpq(
    engine: SpblaEngine,
    graph: *const c_char,
    grammar: *const c_char,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let (graph, grammar) = match (cstr(graph), cstr(grammar)) {
        (Ok(g), Ok(r)) => (g, r),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    submit(engine, graph, Query::Cfpq(grammar.to_string()), 0, out)
}

/// Submit a transitive-closure query over catalog graph `graph`.
///
/// # Safety
/// `graph` must be a valid C string; `out` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_SubmitClosure(
    engine: SpblaEngine,
    graph: *const c_char,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let graph = match cstr(graph) {
        Ok(g) => g,
        Err(s) => return s,
    };
    submit(engine, graph, Query::Closure, 0, out)
}

/// Submit a transitive-closure query under a QoS admission tier:
/// `tier` 0 is interactive (admitted up to the full queue capacity),
/// 1 is batch (bounced earlier, at the batch admission fraction).
/// `deadline_ms` 0 means no deadline.
///
/// # Safety
/// `graph` must be a valid C string; `out` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_SubmitClosureTiered(
    engine: SpblaEngine,
    graph: *const c_char,
    tier: u32,
    deadline_ms: u64,
    out: *mut SpblaTicket,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let graph = match cstr(graph) {
        Ok(g) => g,
        Err(s) => return s,
    };
    let tier = match tier {
        0 => QosTier::Interactive,
        1 => QosTier::Batch,
        _ => return SpblaStatus::Error,
    };
    let deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
    let result = Registry::global().with_engine(engine, |e| {
        e.submit_tiered(graph, Query::Closure, tier, deadline)
    });
    match result {
        Some(Ok(ticket)) => {
            // Safety: `out` checked non-null above.
            *out = Registry::global().insert_ticket(ticket);
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Rebuild catalog graph `name` from the durability directory at `dir`:
/// latest good checkpoint plus write-ahead-log tail replay. Writes the
/// recovered head version to `out_version`.
///
/// # Safety
/// `name` and `dir` must be valid NUL-terminated C strings;
/// `out_version` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_Recover(
    engine: SpblaEngine,
    name: *const c_char,
    dir: *const c_char,
    out_version: *mut u64,
) -> SpblaStatus {
    if out_version.is_null() {
        return SpblaStatus::NullPointer;
    }
    let (name, dir) = match (cstr(name), cstr(dir)) {
        (Ok(n), Ok(d)) => (n, d),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    let recovered = Registry::global().with_engine(engine, |e| {
        spbla_durable::recover_into_engine(e, name, std::path::Path::new(dir))
    });
    match recovered {
        Some(Ok(summary)) => {
            // Safety: `out_version` checked non-null above.
            *out_version = summary.head_version;
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Apply a batch of same-label edge updates to catalog graph `graph`
/// and block until the new version is live: `n` edges
/// `(from[k], label, to[k])`, inserted when `is_delete` is zero and
/// deleted otherwise. Writes the produced version number to
/// `out_version`. Queries admitted before the call keep reading the
/// version they pinned at submission.
///
/// # Safety
/// `graph` and `label` must be valid NUL-terminated C strings; `from`
/// and `to` must have `n` readable elements (null only if `n == 0`);
/// `out_version` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Graph_ApplyBatch(
    engine: SpblaEngine,
    graph: *const c_char,
    label: *const c_char,
    from: *const u32,
    to: *const u32,
    n: usize,
    is_delete: u32,
    out_version: *mut u64,
) -> SpblaStatus {
    if out_version.is_null() || (n > 0 && (from.is_null() || to.is_null())) {
        return SpblaStatus::NullPointer;
    }
    let (graph, label) = match (cstr(graph), cstr(label)) {
        (Ok(g), Ok(l)) => (g, l),
        (Err(s), _) | (_, Err(s)) => return s,
    };
    let outcome = Registry::global().with_engine(engine, |e| {
        let sym = e.with_symbols(|table| table.intern(label));
        let mut batch = UpdateBatch::new();
        for k in 0..n {
            // Safety: caller contract — `from`/`to` hold `n` elements.
            let (u, v) = (*from.add(k), *to.add(k));
            if is_delete == 0 {
                batch.insert(u, sym, v);
            } else {
                batch.delete(u, sym, v);
            }
        }
        e.apply_batch(graph, batch)
    });
    match outcome {
        Some(Ok(version)) => {
            *out_version = version;
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Read the latest version number of catalog graph `graph` (0 until the
/// first applied batch).
///
/// # Safety
/// `graph` must be a valid C string; `out_version` a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Graph_Version(
    engine: SpblaEngine,
    graph: *const c_char,
    out_version: *mut u64,
) -> SpblaStatus {
    if out_version.is_null() {
        return SpblaStatus::NullPointer;
    }
    let graph = match cstr(graph) {
        Ok(g) => g,
        Err(s) => return s,
    };
    match Registry::global().with_engine(engine, |e| e.graph_version(graph)) {
        Some(Ok(version)) => {
            *out_version = version;
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Request cooperative cancellation of a pending ticket.
#[no_mangle]
pub extern "C" fn spbla_Ticket_Cancel(ticket: SpblaTicket) -> SpblaStatus {
    match Registry::global().with_ticket(ticket, |t| t.cancel()) {
        Some(()) => SpblaStatus::Ok,
        None => SpblaStatus::InvalidHandle,
    }
}

/// Block until the request completes; the return status is the request
/// outcome (`SPBLA_OK`, `SPBLA_DEADLINE_EXCEEDED`, `SPBLA_CANCELLED`,
/// …). On `SPBLA_OK` the answer is stored for
/// `spbla_Ticket_ExtractPairs`. Waiting a ticket twice is
/// `SPBLA_INVALID_HANDLE`.
#[no_mangle]
pub extern "C" fn spbla_Ticket_Wait(ticket: SpblaTicket) -> SpblaStatus {
    // Take the ticket out of the registry first: the blocking wait must
    // not hold any registry lock.
    let Some(t) = Registry::global().take_ticket(ticket) else {
        return SpblaStatus::InvalidHandle;
    };
    match t.wait().result {
        Ok(result) => {
            let pairs = match result {
                QueryResult::Pairs(p) => p,
                // Single-source answers: both coordinates hold the
                // reachable vertex (documented in the header).
                QueryResult::Reachable(vs) => vs.into_iter().map(|v| (v, v)).collect(),
                // Updates carry no pairs; the produced version is read
                // via `spbla_Graph_Version` (or `spbla_Graph_ApplyBatch`,
                // which returns it directly).
                QueryResult::Applied(_) => Vec::new(),
            };
            Registry::global()
                .ticket_results
                .lock()
                .insert(ticket, pairs);
            SpblaStatus::Ok
        }
        Err(e) => SpblaStatus::from(&e),
    }
}

/// Read a waited ticket's answer with the two-call protocol: pass null
/// buffers to query the count, then buffers of that capacity.
///
/// # Safety
/// `nvals` must be valid; `rows`/`cols`, when non-null, must have
/// `*nvals` writable elements.
#[no_mangle]
pub unsafe extern "C" fn spbla_Ticket_ExtractPairs(
    ticket: SpblaTicket,
    rows: *mut u32,
    cols: *mut u32,
    nvals: *mut usize,
) -> SpblaStatus {
    if nvals.is_null() {
        return SpblaStatus::NullPointer;
    }
    let guard = Registry::global().ticket_results.lock();
    let Some(pairs) = guard.get(&ticket) else {
        return SpblaStatus::InvalidHandle;
    };
    if rows.is_null() || cols.is_null() {
        *nvals = pairs.len();
        return SpblaStatus::Ok;
    }
    if *nvals < pairs.len() {
        return SpblaStatus::Error;
    }
    for (k, &(i, j)) in pairs.iter().enumerate() {
        *rows.add(k) = i;
        *cols.add(k) = j;
    }
    *nvals = pairs.len();
    SpblaStatus::Ok
}

/// Release a ticket handle (waited or not; an unwaited request still
/// runs to completion inside the engine).
#[no_mangle]
pub extern "C" fn spbla_Ticket_Free(ticket: SpblaTicket) -> SpblaStatus {
    let had_ticket = Registry::global().take_ticket(ticket).is_some();
    let had_result = Registry::global()
        .ticket_results
        .lock()
        .remove(&ticket)
        .is_some();
    if had_ticket || had_result {
        SpblaStatus::Ok
    } else {
        SpblaStatus::InvalidHandle
    }
}

/// Snapshot the engine-wide counters.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Engine_Stats(
    engine: SpblaEngine,
    out: *mut SpblaEngineStats,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_engine(engine, |e| e.stats()) {
        Some(s) => {
            *out = SpblaEngineStats {
                submitted: s.submitted,
                completed: s.completed,
                rejected: s.rejected,
                deadline_exceeded: s.deadline_exceeded,
                cancelled: s.cancelled,
                failed: s.failed,
                plan_hits: s.plan_hits,
                plan_misses: s.plan_misses,
                residency_hits: s.residency_hits,
                residency_misses: s.residency_misses,
                residency_evictions: s.residency_evictions,
                queue_depth_hwm: s.queue_depth_hwm as u64,
                batches: s.batches,
                batched_requests: s.batched_requests,
                launches: s.devices.iter().map(|d| d.launches).sum(),
            };
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

/// Tear the engine down: drains the admission queue, joins the workers,
/// releases the devices.
#[no_mangle]
pub extern "C" fn spbla_Engine_Free(engine: SpblaEngine) -> SpblaStatus {
    // Remove first, then drop outside the registry lock — dropping
    // joins the worker threads, which may still be serving requests.
    match Registry::global().remove_engine(engine) {
        Some(e) => {
            drop(e);
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> std::ffi::CString {
        std::ffi::CString::new(s).unwrap()
    }

    fn temp_graph() -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("spbla_capi_engine_{}.triples", std::process::id()));
        std::fs::write(&path, "# vertices 4\n0 a 1\n1 a 2\n2 a 3\n").unwrap();
        path
    }

    #[test]
    fn engine_round_trip_via_c() {
        let path = temp_graph();
        let mut engine = 0u64;
        assert_eq!(unsafe { spbla_Engine_New(2, &mut engine) }, SpblaStatus::Ok);
        assert_ne!(engine, 0);
        assert_eq!(
            unsafe {
                spbla_Engine_LoadGraph(engine, c("g").as_ptr(), c(path.to_str().unwrap()).as_ptr())
            },
            SpblaStatus::Ok
        );

        // All-pairs closure: chain 0→1→2→3 has 6 closure pairs.
        let mut ticket = 0u64;
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("g").as_ptr(), &mut ticket) },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(ticket), SpblaStatus::Ok);
        let mut count = 0usize;
        assert_eq!(
            unsafe {
                spbla_Ticket_ExtractPairs(
                    ticket,
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                    &mut count,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(count, 6);
        let mut rows = vec![0u32; count];
        let mut cols = vec![0u32; count];
        assert_eq!(
            unsafe {
                spbla_Ticket_ExtractPairs(ticket, rows.as_mut_ptr(), cols.as_mut_ptr(), &mut count)
            },
            SpblaStatus::Ok
        );
        assert_eq!(
            rows.iter().zip(cols.iter()).filter(|&(r, c)| r < c).count(),
            6
        );
        assert_eq!(spbla_Ticket_Free(ticket), SpblaStatus::Ok);
        assert_eq!(spbla_Ticket_Free(ticket), SpblaStatus::InvalidHandle);

        // Single-source RPQ: both coordinate arrays hold the vertices.
        let mut t2 = 0u64;
        assert_eq!(
            unsafe {
                spbla_Engine_SubmitRpqFromSource(
                    engine,
                    c("g").as_ptr(),
                    c("a*").as_ptr(),
                    1,
                    0,
                    &mut t2,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(t2), SpblaStatus::Ok);
        let mut n2 = 0usize;
        assert_eq!(
            unsafe {
                spbla_Ticket_ExtractPairs(t2, std::ptr::null_mut(), std::ptr::null_mut(), &mut n2)
            },
            SpblaStatus::Ok
        );
        assert_eq!(n2, 3); // 1, 2, 3
        assert_eq!(spbla_Ticket_Free(t2), SpblaStatus::Ok);

        // Engine stats reflect the two completed requests.
        let mut stats = SpblaEngineStats::default();
        assert_eq!(
            unsafe { spbla_Engine_Stats(engine, &mut stats) },
            SpblaStatus::Ok
        );
        assert_eq!(stats.completed, 2);
        assert!(stats.launches > 0);

        assert_eq!(spbla_Engine_Free(engine), SpblaStatus::Ok);
        assert_eq!(spbla_Engine_Free(engine), SpblaStatus::InvalidHandle);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn update_batches_version_the_graph_via_c() {
        let path = temp_graph();
        let mut engine = 0u64;
        assert_eq!(unsafe { spbla_Engine_New(1, &mut engine) }, SpblaStatus::Ok);
        assert_eq!(
            unsafe {
                spbla_Engine_LoadGraph(engine, c("g").as_ptr(), c(path.to_str().unwrap()).as_ptr())
            },
            SpblaStatus::Ok
        );
        let mut version = u64::MAX;
        assert_eq!(
            unsafe { spbla_Graph_Version(engine, c("g").as_ptr(), &mut version) },
            SpblaStatus::Ok
        );
        assert_eq!(version, 0);

        // Insert 3→0, closing the 4-chain into a cycle.
        let from = [3u32];
        let to = [0u32];
        assert_eq!(
            unsafe {
                spbla_Graph_ApplyBatch(
                    engine,
                    c("g").as_ptr(),
                    c("a").as_ptr(),
                    from.as_ptr(),
                    to.as_ptr(),
                    1,
                    0,
                    &mut version,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(version, 1);

        // The closure now sees all 16 pairs of the cycle.
        let mut ticket = 0u64;
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("g").as_ptr(), &mut ticket) },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(ticket), SpblaStatus::Ok);
        let mut count = 0usize;
        assert_eq!(
            unsafe {
                spbla_Ticket_ExtractPairs(
                    ticket,
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                    &mut count,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(count, 16);
        spbla_Ticket_Free(ticket);

        // Deleting it again restores the chain (version 2, 6 pairs).
        assert_eq!(
            unsafe {
                spbla_Graph_ApplyBatch(
                    engine,
                    c("g").as_ptr(),
                    c("a").as_ptr(),
                    from.as_ptr(),
                    to.as_ptr(),
                    1,
                    1,
                    &mut version,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(version, 2);
        assert_eq!(
            unsafe { spbla_Graph_Version(engine, c("g").as_ptr(), &mut version) },
            SpblaStatus::Ok
        );
        assert_eq!(version, 2);

        // Unknown graph and null pointers surface typed statuses.
        assert_eq!(
            unsafe { spbla_Graph_Version(engine, c("nope").as_ptr(), &mut version) },
            SpblaStatus::UnknownGraph
        );
        assert_eq!(
            unsafe {
                spbla_Graph_ApplyBatch(
                    engine,
                    c("g").as_ptr(),
                    c("a").as_ptr(),
                    std::ptr::null(),
                    std::ptr::null(),
                    1,
                    0,
                    &mut version,
                )
            },
            SpblaStatus::NullPointer
        );
        assert_eq!(spbla_Engine_Free(engine), SpblaStatus::Ok);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_statuses_surface_through_c() {
        let path = temp_graph();
        // A long chain whose closure keeps the single worker busy while
        // queued requests get cancelled / expire.
        let big = std::env::temp_dir().join(format!(
            "spbla_capi_engine_big_{}.triples",
            std::process::id()
        ));
        let mut triples = String::from("# vertices 200\n");
        for i in 0..199 {
            triples.push_str(&format!("{i} a {}\n", i + 1));
        }
        std::fs::write(&big, triples).unwrap();

        let mut engine = 0u64;
        assert_eq!(unsafe { spbla_Engine_New(1, &mut engine) }, SpblaStatus::Ok);
        for (name, p) in [("g", &path), ("big", &big)] {
            assert_eq!(
                unsafe {
                    spbla_Engine_LoadGraph(
                        engine,
                        c(name).as_ptr(),
                        c(p.to_str().unwrap()).as_ptr(),
                    )
                },
                SpblaStatus::Ok
            );
        }
        let mut ticket = 0u64;
        // Unknown graph fails at submit.
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("nope").as_ptr(), &mut ticket) },
            SpblaStatus::UnknownGraph
        );
        // Malformed query fails at submit.
        assert_eq!(
            unsafe {
                spbla_Engine_SubmitRpq(engine, c("g").as_ptr(), c("((").as_ptr(), &mut ticket)
            },
            SpblaStatus::PlanError
        );
        // Cancellation: occupy the only worker, cancel a queued request.
        let mut blocker = 0u64;
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("big").as_ptr(), &mut blocker) },
            SpblaStatus::Ok
        );
        let mut victim = 0u64;
        assert_eq!(
            unsafe {
                spbla_Engine_SubmitRpqFromSource(
                    engine,
                    c("g").as_ptr(),
                    c("a*").as_ptr(),
                    0,
                    0,
                    &mut victim,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Cancel(victim), SpblaStatus::Ok);
        assert_eq!(spbla_Ticket_Wait(victim), SpblaStatus::Cancelled);
        assert_eq!(spbla_Ticket_Wait(blocker), SpblaStatus::Ok);
        spbla_Ticket_Free(blocker);
        // Deadline: a 1 ms budget expires while queued behind a fresh
        // blocker closure.
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("big").as_ptr(), &mut blocker) },
            SpblaStatus::Ok
        );
        assert_eq!(
            unsafe {
                spbla_Engine_SubmitRpqFromSource(
                    engine,
                    c("g").as_ptr(),
                    c("a*").as_ptr(),
                    0,
                    1,
                    &mut ticket,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(ticket), SpblaStatus::DeadlineExceeded);
        assert_eq!(spbla_Ticket_Wait(blocker), SpblaStatus::Ok);
        spbla_Ticket_Free(blocker);
        // The pool survived: a normal request still succeeds.
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, c("g").as_ptr(), &mut ticket) },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(ticket), SpblaStatus::Ok);
        spbla_Ticket_Free(ticket);
        // Null pointers are rejected.
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosure(engine, std::ptr::null(), &mut ticket) },
            SpblaStatus::NullPointer
        );
        assert_eq!(spbla_Ticket_Cancel(987_654_321), SpblaStatus::InvalidHandle);
        assert_eq!(spbla_Engine_Free(engine), SpblaStatus::Ok);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&big).ok();
    }

    #[test]
    fn recover_and_tiered_submit_via_c() {
        use spbla_durable::{DurabilityConfig, DurableLog};
        use spbla_graph::LabeledGraph;
        use spbla_lang::SymbolTable;

        // Build a durability directory: a 4-chain plus two logged batches.
        let dir = std::env::temp_dir().join(format!("spbla_capi_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let mut graph = LabeledGraph::from_triples(4, (0..3).map(|k| (k, a, k + 1)));
        let mut log =
            DurableLog::open(&dir, DurabilityConfig::default(), &graph, 0, &table).unwrap();
        for (version, (u, v)) in [(3u32, 0u32), (0, 2)].into_iter().enumerate() {
            let mut batch = UpdateBatch::new();
            batch.insert(u, a, v);
            batch.apply_to(&mut graph);
            log.append(version as u64 + 1, &batch, &graph, &table)
                .unwrap();
        }

        let mut engine = 0u64;
        assert_eq!(unsafe { spbla_Engine_New(1, &mut engine) }, SpblaStatus::Ok);
        let mut version = 0u64;
        assert_eq!(
            unsafe {
                spbla_Engine_Recover(
                    engine,
                    c("g").as_ptr(),
                    c(dir.to_str().unwrap()).as_ptr(),
                    &mut version,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(version, 2);

        // The recovered graph is a cycle: its closure has all 16 pairs.
        // Served through the batch tier with a generous deadline.
        let mut ticket = 0u64;
        assert_eq!(
            unsafe {
                spbla_Engine_SubmitClosureTiered(engine, c("g").as_ptr(), 1, 60_000, &mut ticket)
            },
            SpblaStatus::Ok
        );
        assert_eq!(spbla_Ticket_Wait(ticket), SpblaStatus::Ok);
        let mut count = 0usize;
        assert_eq!(
            unsafe {
                spbla_Ticket_ExtractPairs(
                    ticket,
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                    &mut count,
                )
            },
            SpblaStatus::Ok
        );
        assert_eq!(count, 16);
        spbla_Ticket_Free(ticket);

        // An unknown tier and a bogus directory surface typed errors.
        assert_eq!(
            unsafe { spbla_Engine_SubmitClosureTiered(engine, c("g").as_ptr(), 7, 0, &mut ticket) },
            SpblaStatus::Error
        );
        assert_eq!(
            unsafe {
                spbla_Engine_Recover(
                    engine,
                    c("h").as_ptr(),
                    c("/nonexistent/never").as_ptr(),
                    &mut version,
                )
            },
            SpblaStatus::Error
        );
        assert_eq!(spbla_Engine_Free(engine), SpblaStatus::Ok);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
