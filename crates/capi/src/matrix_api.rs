//! The `extern "C"` surface.

use spbla_core::{Backend, Instance, Matrix, Result};

use crate::handles::{Registry, SpblaInstance, SpblaMatrix};
use crate::status::SpblaStatus;

/// Backend selector for [`spbla_Initialize`].
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpblaBackend {
    /// Sequential CPU reference.
    Cpu = 0,
    /// cuBool-style CSR backend on the simulated device.
    CudaSim = 1,
    /// clBool-style COO backend on the simulated device.
    ClSim = 2,
    /// Dense bit-parallel CPU backend.
    CpuDense = 3,
}

fn store_result(out: *mut SpblaMatrix, r: Result<Matrix>) -> SpblaStatus {
    match r {
        Ok(m) => {
            // SAFETY: caller contract — `out` checked non-null by callers.
            unsafe { *out = Registry::global().insert_matrix(m) };
            SpblaStatus::Ok
        }
        Err(e) => SpblaStatus::from(&e),
    }
}

/// Create a library instance for `backend`.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Initialize(
    backend: SpblaBackend,
    out: *mut SpblaInstance,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let inst = match backend {
        SpblaBackend::Cpu => Instance::cpu(),
        SpblaBackend::CpuDense => Instance::cpu_dense(),
        SpblaBackend::CudaSim => Instance::cuda_sim(),
        SpblaBackend::ClSim => Instance::cl_sim(),
    };
    *out = Registry::global().insert_instance(inst);
    SpblaStatus::Ok
}

/// Destroy an instance (matrices created from it stay valid — they hold
/// their own reference, as in cuBool's reference-counted contexts).
#[no_mangle]
pub extern "C" fn spbla_Finalize(instance: SpblaInstance) -> SpblaStatus {
    if Registry::global().remove_instance(instance) {
        SpblaStatus::Ok
    } else {
        SpblaStatus::InvalidHandle
    }
}

/// Create an empty `nrows × ncols` matrix.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_New(
    instance: SpblaInstance,
    nrows: u32,
    ncols: u32,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let Some(inst) = Registry::global().instance(instance) else {
        return SpblaStatus::InvalidHandle;
    };
    store_result(out, Matrix::zeros(&inst, nrows, ncols))
}

/// Fill a matrix with `nvals` coordinate pairs (replaces its contents —
/// the paper's "fill matrix with values `{(i,j)}`" operation).
///
/// # Safety
/// `rows` and `cols` must point to `nvals` readable elements.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_Build(
    matrix: SpblaMatrix,
    rows: *const u32,
    cols: *const u32,
    nvals: usize,
) -> SpblaStatus {
    if nvals > 0 && (rows.is_null() || cols.is_null()) {
        return SpblaStatus::NullPointer;
    }
    let reg = Registry::global();
    let Some((inst, shape)) = reg.with_matrix(matrix, |m| (m.instance().clone(), m.shape())) else {
        return SpblaStatus::InvalidHandle;
    };
    let rows = std::slice::from_raw_parts(rows, nvals);
    let cols = std::slice::from_raw_parts(cols, nvals);
    let pairs: Vec<(u32, u32)> = rows.iter().copied().zip(cols.iter().copied()).collect();
    match Matrix::from_pairs(&inst, shape.0, shape.1, &pairs) {
        Ok(m) => {
            reg.matrices.lock().insert(matrix, m);
            SpblaStatus::Ok
        }
        Err(e) => SpblaStatus::from(&e),
    }
}

/// Number of stored values.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_Nvals(matrix: SpblaMatrix, out: *mut usize) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(matrix, Matrix::nnz) {
        Some(n) => {
            *out = n;
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

/// Extract the stored coordinates. Two-call protocol: pass null buffers
/// to query the required capacity via `nvals`; pass buffers of that
/// capacity to receive the data.
///
/// # Safety
/// `nvals` must be valid; `rows`/`cols`, when non-null, must have
/// `*nvals` writable elements.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_ExtractPairs(
    matrix: SpblaMatrix,
    rows: *mut u32,
    cols: *mut u32,
    nvals: *mut usize,
) -> SpblaStatus {
    if nvals.is_null() {
        return SpblaStatus::NullPointer;
    }
    let Some(pairs) = Registry::global().with_matrix(matrix, Matrix::read) else {
        return SpblaStatus::InvalidHandle;
    };
    if rows.is_null() || cols.is_null() {
        *nvals = pairs.len();
        return SpblaStatus::Ok;
    }
    if *nvals < pairs.len() {
        return SpblaStatus::Error;
    }
    for (k, (i, j)) in pairs.iter().enumerate() {
        *rows.add(k) = *i;
        *cols.add(k) = *j;
    }
    *nvals = pairs.len();
    SpblaStatus::Ok
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        ///
        /// # Safety
        /// `out` must be a valid pointer.
        #[no_mangle]
        pub unsafe extern "C" fn $name(
            a: SpblaMatrix,
            b: SpblaMatrix,
            out: *mut SpblaMatrix,
        ) -> SpblaStatus {
            if out.is_null() {
                return SpblaStatus::NullPointer;
            }
            match Registry::global().with_two_matrices(a, b, |ma, mb| ma.$method(mb)) {
                Some(r) => store_result(out, r),
                None => SpblaStatus::InvalidHandle,
            }
        }
    };
}

binary_op!(
    /// `C = A · B` over the Boolean semiring.
    spbla_MxM,
    mxm
);
binary_op!(
    /// `C = A + B` element-wise.
    spbla_EWiseAdd,
    ewise_add
);
binary_op!(
    /// `C = A ∧ B` element-wise.
    spbla_EWiseMult,
    ewise_mult
);
binary_op!(
    /// `C = A ⊗ B` (Kronecker product).
    spbla_Kronecker,
    kron
);

/// `C = (A · B) ∧ M` — masked product; the mask is applied inside the
/// SpGEMM kernel, so no unmasked intermediate product is materialised.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_MxM_Masked(
    a: SpblaMatrix,
    b: SpblaMatrix,
    mask: SpblaMatrix,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_three_matrices(a, b, mask, |ma, mb, mm| ma.mxm_masked(mb, mm)) {
        Some(r) => store_result(out, r),
        None => SpblaStatus::InvalidHandle,
    }
}

/// `C = (A · B) ∧ ¬M` — complemented-mask product: only entries of the
/// product *not* already present in `M`. The primitive behind the
/// semi-naïve fixpoint schedules; already-known candidates are rejected
/// inside the SpGEMM kernel before they cost accumulator space.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_MxM_CompMasked(
    a: SpblaMatrix,
    b: SpblaMatrix,
    mask: SpblaMatrix,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_three_matrices(a, b, mask, |ma, mb, mm| ma.mxm_compmask(mb, mm)) {
        Some(r) => store_result(out, r),
        None => SpblaStatus::InvalidHandle,
    }
}

/// `C = Aᵀ`.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Transpose(a: SpblaMatrix, out: *mut SpblaMatrix) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(a, Matrix::transpose) {
        Some(r) => store_result(out, r),
        None => SpblaStatus::InvalidHandle,
    }
}

/// `C = A[i .. i+nrows, j .. j+ncols]`.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_SubMatrix(
    a: SpblaMatrix,
    i: u32,
    j: u32,
    nrows: u32,
    ncols: u32,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(a, |m| m.submatrix(i, j, nrows, ncols)) {
        Some(r) => store_result(out, r),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Release a matrix.
#[no_mangle]
pub extern "C" fn spbla_Matrix_Free(matrix: SpblaMatrix) -> SpblaStatus {
    if Registry::global().remove_matrix(matrix) {
        SpblaStatus::Ok
    } else {
        SpblaStatus::InvalidHandle
    }
}

/// Which backend the instance runs on (useful for embedders probing the
/// "auto" configuration).
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Instance_Backend(
    instance: SpblaInstance,
    out: *mut SpblaBackend,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().instance(instance) {
        Some(i) => {
            *out = match i.backend() {
                Backend::Cpu => SpblaBackend::Cpu,
                Backend::CpuDense => SpblaBackend::CpuDense,
                Backend::CudaSim => SpblaBackend::CudaSim,
                Backend::ClSim => SpblaBackend::ClSim,
            };
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(backend: SpblaBackend) -> SpblaInstance {
        let mut h: SpblaInstance = 0;
        assert_eq!(
            unsafe { spbla_Initialize(backend, &mut h) },
            SpblaStatus::Ok
        );
        h
    }

    fn build(inst: SpblaInstance, m: u32, n: u32, pairs: &[(u32, u32)]) -> SpblaMatrix {
        let mut h: SpblaMatrix = 0;
        assert_eq!(
            unsafe { spbla_Matrix_New(inst, m, n, &mut h) },
            SpblaStatus::Ok
        );
        let rows: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let cols: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        assert_eq!(
            unsafe { spbla_Matrix_Build(h, rows.as_ptr(), cols.as_ptr(), pairs.len()) },
            SpblaStatus::Ok
        );
        h
    }

    fn extract(h: SpblaMatrix) -> Vec<(u32, u32)> {
        let mut n: usize = 0;
        assert_eq!(
            unsafe {
                spbla_Matrix_ExtractPairs(h, std::ptr::null_mut(), std::ptr::null_mut(), &mut n)
            },
            SpblaStatus::Ok
        );
        let mut rows = vec![0u32; n];
        let mut cols = vec![0u32; n];
        assert_eq!(
            unsafe { spbla_Matrix_ExtractPairs(h, rows.as_mut_ptr(), cols.as_mut_ptr(), &mut n) },
            SpblaStatus::Ok
        );
        rows.into_iter().zip(cols).collect()
    }

    #[test]
    fn full_c_workflow() {
        for backend in [
            SpblaBackend::Cpu,
            SpblaBackend::CpuDense,
            SpblaBackend::CudaSim,
            SpblaBackend::ClSim,
        ] {
            let inst = init(backend);
            let a = build(inst, 3, 3, &[(0, 1), (1, 2)]);
            let b = build(inst, 3, 3, &[(1, 2), (2, 0)]);
            let mut c: SpblaMatrix = 0;
            assert_eq!(unsafe { spbla_MxM(a, b, &mut c) }, SpblaStatus::Ok);
            assert_eq!(extract(c), vec![(0, 2), (1, 0)]);

            let mut nv = 0usize;
            assert_eq!(unsafe { spbla_Matrix_Nvals(c, &mut nv) }, SpblaStatus::Ok);
            assert_eq!(nv, 2);

            let mut k: SpblaMatrix = 0;
            assert_eq!(unsafe { spbla_Kronecker(a, b, &mut k) }, SpblaStatus::Ok);
            let mut kn = 0usize;
            assert_eq!(unsafe { spbla_Matrix_Nvals(k, &mut kn) }, SpblaStatus::Ok);
            assert_eq!(kn, 4);

            for h in [a, b, c, k] {
                assert_eq!(spbla_Matrix_Free(h), SpblaStatus::Ok);
            }
            assert_eq!(spbla_Finalize(inst), SpblaStatus::Ok);
        }
    }

    #[test]
    fn masked_products_via_c() {
        for backend in [
            SpblaBackend::Cpu,
            SpblaBackend::CpuDense,
            SpblaBackend::CudaSim,
            SpblaBackend::ClSim,
        ] {
            let inst = init(backend);
            let a = build(inst, 3, 3, &[(0, 1), (1, 2), (0, 2)]);
            let mask = build(inst, 3, 3, &[(0, 2)]);
            // A² = {(0,2)}: the mask keeps it, its complement drops it.
            let mut kept: SpblaMatrix = 0;
            assert_eq!(
                unsafe { spbla_Matrix_MxM_Masked(a, a, mask, &mut kept) },
                SpblaStatus::Ok
            );
            assert_eq!(extract(kept), vec![(0, 2)]);
            let mut fresh: SpblaMatrix = 0;
            assert_eq!(
                unsafe { spbla_Matrix_MxM_CompMasked(a, a, mask, &mut fresh) },
                SpblaStatus::Ok
            );
            assert_eq!(extract(fresh), vec![]);
            let mut bad: SpblaMatrix = 0;
            assert_eq!(
                unsafe { spbla_Matrix_MxM_CompMasked(a, a, 999_999, &mut bad) },
                SpblaStatus::InvalidHandle
            );
            for h in [a, mask, kept, fresh] {
                assert_eq!(spbla_Matrix_Free(h), SpblaStatus::Ok);
            }
            assert_eq!(spbla_Finalize(inst), SpblaStatus::Ok);
        }
    }

    #[test]
    fn error_statuses() {
        let inst = init(SpblaBackend::Cpu);
        let a = build(inst, 2, 3, &[]);
        let b = build(inst, 2, 3, &[]);
        let mut c: SpblaMatrix = 0;
        assert_eq!(
            unsafe { spbla_MxM(a, b, &mut c) },
            SpblaStatus::DimensionMismatch
        );
        assert_eq!(
            unsafe { spbla_MxM(a, 999_999, &mut c) },
            SpblaStatus::InvalidHandle
        );
        assert_eq!(
            unsafe { spbla_MxM(a, b, std::ptr::null_mut()) },
            SpblaStatus::NullPointer
        );
        // Out-of-bounds build.
        let rows = [5u32];
        let cols = [0u32];
        assert_eq!(
            unsafe { spbla_Matrix_Build(a, rows.as_ptr(), cols.as_ptr(), 1) },
            SpblaStatus::IndexOutOfBounds
        );
        assert_eq!(spbla_Matrix_Free(a), SpblaStatus::Ok);
        assert_eq!(spbla_Matrix_Free(b), SpblaStatus::Ok);
        assert_eq!(spbla_Finalize(inst), SpblaStatus::Ok);
        assert_eq!(spbla_Finalize(inst), SpblaStatus::InvalidHandle);
    }

    #[test]
    fn transpose_and_submatrix_via_c() {
        let inst = init(SpblaBackend::CudaSim);
        let a = build(inst, 3, 4, &[(0, 3), (2, 1)]);
        let mut t: SpblaMatrix = 0;
        assert_eq!(unsafe { spbla_Transpose(a, &mut t) }, SpblaStatus::Ok);
        assert_eq!(extract(t), vec![(1, 2), (3, 0)]);
        let mut s: SpblaMatrix = 0;
        assert_eq!(
            unsafe { spbla_SubMatrix(a, 0, 1, 3, 3, &mut s) },
            SpblaStatus::Ok
        );
        assert_eq!(extract(s), vec![(0, 2), (2, 0)]);
        for h in [a, t, s] {
            spbla_Matrix_Free(h);
        }
        spbla_Finalize(inst);
    }
}
