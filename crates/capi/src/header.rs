//! Consistency check between the shipped C header (`include/spbla.h`)
//! and the actual `#[no_mangle]` surface — the header is hand-written
//! for readability, so this test keeps it honest.

/// The C header shipped with the crate.
pub const SPBLA_HEADER: &str = include_str!("../include/spbla.h");

/// Every exported symbol of the C API, in declaration order.
pub const EXPORTED_SYMBOLS: &[&str] = &[
    "spbla_Version",
    "spbla_Initialize",
    "spbla_Finalize",
    "spbla_Instance_Backend",
    "spbla_Matrix_New",
    "spbla_Matrix_Build",
    "spbla_Matrix_Duplicate",
    "spbla_Matrix_Free",
    "spbla_Matrix_Dims",
    "spbla_Matrix_Nvals",
    "spbla_Matrix_MemoryBytes",
    "spbla_Matrix_ExtractPairs",
    "spbla_MxM",
    "spbla_Matrix_MxM_Masked",
    "spbla_Matrix_MxM_CompMasked",
    "spbla_EWiseAdd",
    "spbla_EWiseMult",
    "spbla_Kronecker",
    "spbla_Transpose",
    "spbla_SubMatrix",
    "spbla_TransitiveClosure",
    "spbla_Matrix_TransitiveClosureCondensed",
    "spbla_Matrix_ReduceToColumn",
    "spbla_Engine_New",
    "spbla_Engine_LoadGraph",
    "spbla_Engine_SubmitRpq",
    "spbla_Engine_SubmitRpqFromSource",
    "spbla_Engine_SubmitCfpq",
    "spbla_Engine_SubmitClosure",
    "spbla_Engine_SubmitClosureTiered",
    "spbla_Engine_Recover",
    "spbla_Graph_ApplyBatch",
    "spbla_Graph_Version",
    "spbla_Ticket_Cancel",
    "spbla_Ticket_Wait",
    "spbla_Ticket_ExtractPairs",
    "spbla_Ticket_Free",
    "spbla_Engine_Stats",
    "spbla_Engine_Free",
    "spbla_Trace_Enable",
    "spbla_Trace_Dump",
    "spbla_Metrics_Dump",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_declares_every_symbol() {
        for sym in EXPORTED_SYMBOLS {
            assert!(
                SPBLA_HEADER.contains(&format!("{sym}(")),
                "header missing declaration for {sym}"
            );
        }
    }

    #[test]
    fn header_status_codes_match_rust_enum() {
        use crate::status::SpblaStatus;
        let pairs = [
            ("SPBLA_OK", SpblaStatus::Ok as i32),
            ("SPBLA_NULL_POINTER", SpblaStatus::NullPointer as i32),
            ("SPBLA_INVALID_HANDLE", SpblaStatus::InvalidHandle as i32),
            (
                "SPBLA_DIMENSION_MISMATCH",
                SpblaStatus::DimensionMismatch as i32,
            ),
            (
                "SPBLA_INDEX_OUT_OF_BOUNDS",
                SpblaStatus::IndexOutOfBounds as i32,
            ),
            (
                "SPBLA_BACKEND_MISMATCH",
                SpblaStatus::BackendMismatch as i32,
            ),
            (
                "SPBLA_DEVICE_OUT_OF_MEMORY",
                SpblaStatus::DeviceOutOfMemory as i32,
            ),
            ("SPBLA_ERROR", SpblaStatus::Error as i32),
            ("SPBLA_OVERLOADED", SpblaStatus::Overloaded as i32),
            (
                "SPBLA_DEADLINE_EXCEEDED",
                SpblaStatus::DeadlineExceeded as i32,
            ),
            ("SPBLA_CANCELLED", SpblaStatus::Cancelled as i32),
            ("SPBLA_UNKNOWN_GRAPH", SpblaStatus::UnknownGraph as i32),
            ("SPBLA_PLAN_ERROR", SpblaStatus::PlanError as i32),
            ("SPBLA_CORRUPT", SpblaStatus::Corrupt as i32),
            ("SPBLA_NO_CHECKPOINT", SpblaStatus::NoCheckpoint as i32),
            ("SPBLA_REPLICA_FAILED", SpblaStatus::ReplicaFailed as i32),
        ];
        for (name, value) in pairs {
            let needle = format!("{name} ");
            let line = SPBLA_HEADER
                .lines()
                .find(|l| l.contains(&needle) || l.contains(&format!("{name}  ")))
                .unwrap_or_else(|| panic!("header missing {name}"));
            assert!(
                line.contains(&format!("= {value}")),
                "{name} mismatch: header line `{line}` vs Rust {value}"
            );
        }
    }

    #[test]
    fn header_backend_codes_match_rust_enum() {
        use crate::matrix_api::SpblaBackend;
        let pairs = [
            ("SPBLA_BACKEND_CPU ", SpblaBackend::Cpu as i32),
            ("SPBLA_BACKEND_CUDA_SIM", SpblaBackend::CudaSim as i32),
            ("SPBLA_BACKEND_CL_SIM", SpblaBackend::ClSim as i32),
            ("SPBLA_BACKEND_CPU_DENSE", SpblaBackend::CpuDense as i32),
        ];
        for (name, value) in pairs {
            let line = SPBLA_HEADER
                .lines()
                .find(|l| l.contains(name))
                .unwrap_or_else(|| panic!("header missing {name}"));
            assert!(
                line.contains(&format!("= {value}")),
                "{name} mismatch: `{line}` vs {value}"
            );
        }
    }

    #[test]
    fn symbol_list_matches_no_mangle_count() {
        // The source files define exactly the declared symbols.
        let sources = concat!(
            include_str!("matrix_api.rs"),
            include_str!("extras_api.rs"),
            include_str!("engine_api.rs"),
            include_str!("obs_api.rs")
        );
        let count = sources.matches("#[no_mangle]").count()
            + sources.matches("binary_op!(").count()
            // each binary_op! invocation expands to one #[no_mangle] fn,
            // and the macro definition itself contains one textual
            // occurrence of the attribute:
            - 1;
        assert_eq!(
            count,
            EXPORTED_SYMBOLS.len(),
            "update EXPORTED_SYMBOLS and include/spbla.h"
        );
    }
}
