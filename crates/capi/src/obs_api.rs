//! Observability `extern "C"` surface: process-wide kernel tracing and
//! metric dumps. Both dumps use the two-call buffer protocol of
//! `spbla_Matrix_ExtractPairs`: pass a null buffer to learn the required
//! size (including the trailing NUL), then call again with a buffer of
//! at least that size.

use std::os::raw::c_char;

use spbla_obs::{metrics_global, trace_global};

use crate::status::SpblaStatus;

/// Enable kernel/transfer/request tracing with a ring of `capacity`
/// spans, clearing anything previously recorded. A capacity of zero
/// disables tracing (the recorded spans stay dumpable).
#[no_mangle]
pub extern "C" fn spbla_Trace_Enable(capacity: usize) -> SpblaStatus {
    let trace = trace_global();
    if capacity == 0 {
        trace.disable();
    } else {
        trace.enable(capacity);
    }
    SpblaStatus::Ok
}

/// Copy `text` out through the two-call protocol (`*len` is the buffer
/// size in, the required size — NUL included — out).
unsafe fn dump_text(text: &str, buf: *mut c_char, len: *mut usize) -> SpblaStatus {
    if len.is_null() {
        return SpblaStatus::NullPointer;
    }
    let required = text.len() + 1;
    if buf.is_null() {
        *len = required;
        return SpblaStatus::Ok;
    }
    if *len < required {
        return SpblaStatus::Error;
    }
    std::ptr::copy_nonoverlapping(text.as_ptr(), buf.cast::<u8>(), text.len());
    *buf.add(text.len()) = 0;
    *len = required;
    SpblaStatus::Ok
}

/// Dump the recorded trace as chrome://tracing JSON.
///
/// # Safety
/// `len` must be valid; `buf`, when non-null, must have `*len` writable
/// bytes.
#[no_mangle]
pub unsafe extern "C" fn spbla_Trace_Dump(buf: *mut c_char, len: *mut usize) -> SpblaStatus {
    dump_text(&trace_global().render_chrome_json(), buf, len)
}

/// Dump the global metrics registry. `format` 0 renders Prometheus text
/// exposition, 1 renders JSON; anything else is an error.
///
/// # Safety
/// `len` must be valid; `buf`, when non-null, must have `*len` writable
/// bytes.
#[no_mangle]
pub unsafe extern "C" fn spbla_Metrics_Dump(
    format: i32,
    buf: *mut c_char,
    len: *mut usize,
) -> SpblaStatus {
    let text = match format {
        0 => metrics_global().render_prometheus(),
        1 => metrics_global().render_json(),
        _ => return SpblaStatus::Error,
    };
    dump_text(&text, buf, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_api::{
        spbla_Finalize, spbla_Initialize, spbla_Matrix_Build, spbla_Matrix_Free, spbla_Matrix_New,
        spbla_MxM, SpblaBackend,
    };

    unsafe fn dump_string(f: impl Fn(*mut c_char, *mut usize) -> SpblaStatus) -> String {
        let mut len = 0usize;
        assert_eq!(f(std::ptr::null_mut(), &mut len), SpblaStatus::Ok);
        assert!(len >= 1);
        let mut buf = vec![0u8; len];
        assert_eq!(
            f(buf.as_mut_ptr().cast::<c_char>(), &mut len),
            SpblaStatus::Ok
        );
        assert_eq!(buf[len - 1], 0);
        String::from_utf8(buf[..len - 1].to_vec()).unwrap()
    }

    #[test]
    fn trace_enable_and_dump_round_trip() {
        assert_eq!(spbla_Trace_Enable(4096), SpblaStatus::Ok);
        let mut inst = 0u64;
        unsafe { spbla_Initialize(SpblaBackend::CudaSim, &mut inst) };
        let mut m = 0u64;
        unsafe { spbla_Matrix_New(inst, 4, 4, &mut m) };
        let rows = [0u32, 1, 2];
        let cols = [1u32, 2, 3];
        unsafe { spbla_Matrix_Build(m, rows.as_ptr(), cols.as_ptr(), 3) };
        let mut c = 0u64;
        assert_eq!(unsafe { spbla_MxM(m, m, &mut c) }, SpblaStatus::Ok);

        let json = unsafe { dump_string(|b, l| spbla_Trace_Dump(b, l)) };
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"cat\":\"kernel\""), "{json}");
        assert_eq!(spbla_Trace_Enable(0), SpblaStatus::Ok);

        spbla_Matrix_Free(m);
        spbla_Matrix_Free(c);
        spbla_Finalize(inst);
    }

    #[test]
    fn metrics_dump_formats_and_errors() {
        // At least one device has been created across the test binary,
        // so both renderings carry the per-device launch counters.
        let mut inst = 0u64;
        unsafe { spbla_Initialize(SpblaBackend::CudaSim, &mut inst) };
        let prom = unsafe { dump_string(|b, l| spbla_Metrics_Dump(0, b, l)) };
        assert!(prom.contains("spbla_dev_launches_total"), "{prom}");
        let json = unsafe { dump_string(|b, l| spbla_Metrics_Dump(1, b, l)) };
        assert!(json.contains("spbla_dev_launches_total"), "{json}");
        let mut len = 0usize;
        assert_eq!(
            unsafe { spbla_Metrics_Dump(7, std::ptr::null_mut(), &mut len) },
            SpblaStatus::Error
        );
        spbla_Finalize(inst);
    }

    #[test]
    fn dump_rejects_null_len_and_short_buffers() {
        assert_eq!(
            unsafe { spbla_Trace_Dump(std::ptr::null_mut(), std::ptr::null_mut()) },
            SpblaStatus::NullPointer
        );
        let mut one = 1usize; // never enough: "{...}" plus NUL
        let mut byte: c_char = 0;
        assert_eq!(
            unsafe { spbla_Trace_Dump(&mut byte, &mut one) },
            SpblaStatus::Error
        );
    }
}
