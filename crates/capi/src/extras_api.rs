//! Supplementary `extern "C"` surface: library metadata, reductions,
//! transitive closure, and sparse-vector queries — the pieces pyspbla
//! exposes beyond the core matrix ops.

use spbla_core::Matrix;

use crate::handles::{Registry, SpblaMatrix};
use crate::status::SpblaStatus;

/// Library version as `major·10000 + minor·100 + patch`.
#[no_mangle]
pub extern "C" fn spbla_Version() -> u32 {
    const MAJOR: u32 = 0;
    const MINOR: u32 = 1;
    const PATCH: u32 = 0;
    MAJOR * 10_000 + MINOR * 100 + PATCH
}

/// Matrix dimensions.
///
/// # Safety
/// `nrows` and `ncols` must be valid pointers.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_Dims(
    matrix: SpblaMatrix,
    nrows: *mut u32,
    ncols: *mut u32,
) -> SpblaStatus {
    if nrows.is_null() || ncols.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(matrix, Matrix::shape) {
        Some((m, n)) => {
            *nrows = m;
            *ncols = n;
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

/// Duplicate a matrix.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_Duplicate(
    matrix: SpblaMatrix,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(matrix, Matrix::duplicate) {
        Some(Ok(m)) => {
            *out = Registry::global().insert_matrix(m);
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Transitive closure `C = A⁺` of a square matrix.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_TransitiveClosure(
    matrix: SpblaMatrix,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(matrix, Matrix::transitive_closure) {
        Some(Ok(m)) => {
            *out = Registry::global().insert_matrix(m);
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Transitive closure `C = A⁺` via SCC condensation: the fixpoint runs
/// on the strongly-connected-component DAG and the result is expanded
/// back through the component map. Bit-identical to
/// [`spbla_TransitiveClosure`] — the condensation is a schedule, not an
/// approximation.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_TransitiveClosureCondensed(
    matrix: SpblaMatrix,
    out: *mut SpblaMatrix,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    let result = Registry::global().with_matrix(matrix, |m| {
        if m.nrows() != m.ncols() {
            return Err(spbla_core::SpblaError::DimensionMismatch {
                op: "transitive_closure_condensed",
                lhs: m.shape(),
                rhs: m.shape(),
            });
        }
        spbla_prep::condensed_closure(m.instance(), m.nrows(), &m.read()).map(|(c, _)| c)
    });
    match result {
        Some(Ok(m)) => {
            *out = Registry::global().insert_matrix(m);
            SpblaStatus::Ok
        }
        Some(Err(e)) => SpblaStatus::from(&e),
        None => SpblaStatus::InvalidHandle,
    }
}

/// Reduce along rows (`reduceToColumn`): writes the indices of non-empty
/// rows using the two-call protocol of `spbla_Matrix_ExtractPairs`.
///
/// # Safety
/// `count` must be valid; `indices`, when non-null, must have `*count`
/// writable elements.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_ReduceToColumn(
    matrix: SpblaMatrix,
    indices: *mut u32,
    count: *mut usize,
) -> SpblaStatus {
    if count.is_null() {
        return SpblaStatus::NullPointer;
    }
    let result = Registry::global().with_matrix(matrix, |m| m.reduce_to_column());
    let Some(result) = result else {
        return SpblaStatus::InvalidHandle;
    };
    match result {
        Ok(v) => {
            if indices.is_null() {
                *count = v.nnz();
                return SpblaStatus::Ok;
            }
            if *count < v.nnz() {
                return SpblaStatus::Error;
            }
            for (k, &i) in v.indices().iter().enumerate() {
                *indices.add(k) = i;
            }
            *count = v.nnz();
            SpblaStatus::Ok
        }
        Err(e) => SpblaStatus::from(&e),
    }
}

/// The matrix's storage footprint in bytes under its backend's format.
///
/// # Safety
/// `out` must be a valid pointer.
#[no_mangle]
pub unsafe extern "C" fn spbla_Matrix_MemoryBytes(
    matrix: SpblaMatrix,
    out: *mut usize,
) -> SpblaStatus {
    if out.is_null() {
        return SpblaStatus::NullPointer;
    }
    match Registry::global().with_matrix(matrix, Matrix::memory_bytes) {
        Some(b) => {
            *out = b;
            SpblaStatus::Ok
        }
        None => SpblaStatus::InvalidHandle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_api::{
        spbla_Finalize, spbla_Initialize, spbla_Matrix_Build, spbla_Matrix_Free, spbla_Matrix_New,
        SpblaBackend,
    };

    fn make(backend: SpblaBackend, pairs: &[(u32, u32)], n: u32) -> (u64, u64) {
        let mut inst = 0u64;
        unsafe { spbla_Initialize(backend, &mut inst) };
        let mut m = 0u64;
        unsafe { spbla_Matrix_New(inst, n, n, &mut m) };
        let rows: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let cols: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        unsafe { spbla_Matrix_Build(m, rows.as_ptr(), cols.as_ptr(), pairs.len()) };
        (inst, m)
    }

    #[test]
    fn version_is_encoded() {
        assert_eq!(spbla_Version(), 100);
    }

    #[test]
    fn dims_duplicate_memory() {
        let (inst, m) = make(SpblaBackend::CudaSim, &[(0, 1), (2, 3)], 4);
        let (mut r, mut c) = (0u32, 0u32);
        assert_eq!(
            unsafe { spbla_Matrix_Dims(m, &mut r, &mut c) },
            SpblaStatus::Ok
        );
        assert_eq!((r, c), (4, 4));
        let mut dup = 0u64;
        assert_eq!(
            unsafe { spbla_Matrix_Duplicate(m, &mut dup) },
            SpblaStatus::Ok
        );
        let mut bytes = 0usize;
        assert_eq!(
            unsafe { spbla_Matrix_MemoryBytes(dup, &mut bytes) },
            SpblaStatus::Ok
        );
        assert_eq!(bytes, (4 + 1 + 2) * 4);
        spbla_Matrix_Free(m);
        spbla_Matrix_Free(dup);
        spbla_Finalize(inst);
    }

    #[test]
    fn closure_and_reduce_via_c() {
        let (inst, m) = make(SpblaBackend::Cpu, &[(0, 1), (1, 2)], 3);
        let mut c = 0u64;
        assert_eq!(
            unsafe { spbla_TransitiveClosure(m, &mut c) },
            SpblaStatus::Ok
        );
        let mut count = 0usize;
        assert_eq!(
            unsafe { spbla_Matrix_ReduceToColumn(c, std::ptr::null_mut(), &mut count) },
            SpblaStatus::Ok
        );
        assert_eq!(count, 2); // rows 0 and 1 reach something
        let mut idx = vec![0u32; count];
        assert_eq!(
            unsafe { spbla_Matrix_ReduceToColumn(c, idx.as_mut_ptr(), &mut count) },
            SpblaStatus::Ok
        );
        assert_eq!(idx, vec![0, 1]);
        spbla_Matrix_Free(m);
        spbla_Matrix_Free(c);
        spbla_Finalize(inst);
    }

    #[test]
    fn condensed_closure_matches_direct_via_c() {
        use crate::matrix_api::spbla_Matrix_ExtractPairs;
        // A 3-cycle feeding a tail: one SCC plus a DAG vertex.
        let (inst, m) = make(SpblaBackend::CudaSim, &[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let (mut direct, mut condensed) = (0u64, 0u64);
        assert_eq!(
            unsafe { spbla_TransitiveClosure(m, &mut direct) },
            SpblaStatus::Ok
        );
        assert_eq!(
            unsafe { spbla_Matrix_TransitiveClosureCondensed(m, &mut condensed) },
            SpblaStatus::Ok
        );
        let read = |h: u64| {
            let mut count = 0usize;
            unsafe {
                spbla_Matrix_ExtractPairs(h, std::ptr::null_mut(), std::ptr::null_mut(), &mut count)
            };
            let mut rows = vec![0u32; count];
            let mut cols = vec![0u32; count];
            unsafe {
                spbla_Matrix_ExtractPairs(h, rows.as_mut_ptr(), cols.as_mut_ptr(), &mut count)
            };
            rows.into_iter().zip(cols).collect::<Vec<_>>()
        };
        assert_eq!(read(direct), read(condensed));
        spbla_Matrix_Free(m);
        spbla_Matrix_Free(direct);
        spbla_Matrix_Free(condensed);
        spbla_Finalize(inst);
    }

    #[test]
    fn invalid_handles_rejected() {
        let mut out = 0u64;
        assert_eq!(
            unsafe { spbla_Matrix_Duplicate(987_654_321, &mut out) },
            SpblaStatus::InvalidHandle
        );
        let mut count = 0usize;
        assert_eq!(
            unsafe { spbla_Matrix_ReduceToColumn(987_654_321, std::ptr::null_mut(), &mut count) },
            SpblaStatus::InvalidHandle
        );
    }
}
