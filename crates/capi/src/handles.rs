//! Opaque handle registry.
//!
//! C callers hold `u64` handles; the registry maps them to live Rust
//! objects behind a global lock (API calls are coarse-grained, matching
//! cuBool's global-context design).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use spbla_core::{Instance, Matrix};
use spbla_engine::{Engine, Ticket};

/// Opaque instance handle (0 is never valid).
pub type SpblaInstance = u64;

/// Opaque matrix handle (0 is never valid).
pub type SpblaMatrix = u64;

/// Opaque serving-engine handle (0 is never valid).
pub type SpblaEngine = u64;

/// Opaque request-ticket handle (0 is never valid).
pub type SpblaTicket = u64;

static NEXT_HANDLE: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Registry {
    pub(crate) instances: Mutex<HashMap<SpblaInstance, Instance>>,
    pub(crate) matrices: Mutex<HashMap<SpblaMatrix, Matrix>>,
    pub(crate) engines: Mutex<HashMap<SpblaEngine, Engine>>,
    pub(crate) tickets: Mutex<HashMap<SpblaTicket, Ticket>>,
    /// Pairs stored by `spbla_Ticket_Wait` for the two-call extract.
    pub(crate) ticket_results: Mutex<HashMap<SpblaTicket, Vec<(u32, u32)>>>,
}

impl Registry {
    pub(crate) fn global() -> &'static Registry {
        static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        REGISTRY.get_or_init(|| Registry {
            instances: Mutex::new(HashMap::new()),
            matrices: Mutex::new(HashMap::new()),
            engines: Mutex::new(HashMap::new()),
            tickets: Mutex::new(HashMap::new()),
            ticket_results: Mutex::new(HashMap::new()),
        })
    }

    pub(crate) fn fresh_handle() -> u64 {
        NEXT_HANDLE.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn insert_instance(&self, inst: Instance) -> SpblaInstance {
        let h = Self::fresh_handle();
        self.instances.lock().insert(h, inst);
        h
    }

    pub(crate) fn insert_matrix(&self, m: Matrix) -> SpblaMatrix {
        let h = Self::fresh_handle();
        self.matrices.lock().insert(h, m);
        h
    }

    pub(crate) fn instance(&self, h: SpblaInstance) -> Option<Instance> {
        self.instances.lock().get(&h).cloned()
    }

    /// Matrices are not `Clone`-cheap; callers get a closure window.
    pub(crate) fn with_matrix<R>(&self, h: SpblaMatrix, f: impl FnOnce(&Matrix) -> R) -> Option<R> {
        let guard = self.matrices.lock();
        guard.get(&h).map(f)
    }

    pub(crate) fn with_two_matrices<R>(
        &self,
        a: SpblaMatrix,
        b: SpblaMatrix,
        f: impl FnOnce(&Matrix, &Matrix) -> R,
    ) -> Option<R> {
        let guard = self.matrices.lock();
        match (guard.get(&a), guard.get(&b)) {
            (Some(ma), Some(mb)) => Some(f(ma, mb)),
            _ => None,
        }
    }

    pub(crate) fn with_three_matrices<R>(
        &self,
        a: SpblaMatrix,
        b: SpblaMatrix,
        c: SpblaMatrix,
        f: impl FnOnce(&Matrix, &Matrix, &Matrix) -> R,
    ) -> Option<R> {
        let guard = self.matrices.lock();
        match (guard.get(&a), guard.get(&b), guard.get(&c)) {
            (Some(ma), Some(mb), Some(mc)) => Some(f(ma, mb, mc)),
            _ => None,
        }
    }

    pub(crate) fn remove_instance(&self, h: SpblaInstance) -> bool {
        self.instances.lock().remove(&h).is_some()
    }

    pub(crate) fn remove_matrix(&self, h: SpblaMatrix) -> bool {
        self.matrices.lock().remove(&h).is_some()
    }

    pub(crate) fn insert_engine(&self, e: Engine) -> SpblaEngine {
        let h = Self::fresh_handle();
        self.engines.lock().insert(h, e);
        h
    }

    pub(crate) fn with_engine<R>(&self, h: SpblaEngine, f: impl FnOnce(&Engine) -> R) -> Option<R> {
        let guard = self.engines.lock();
        guard.get(&h).map(f)
    }

    /// Removing hands the `Engine` back so the caller can drop it (and
    /// join its workers) *outside* the registry lock.
    pub(crate) fn remove_engine(&self, h: SpblaEngine) -> Option<Engine> {
        self.engines.lock().remove(&h)
    }

    pub(crate) fn insert_ticket(&self, t: Ticket) -> SpblaTicket {
        let h = Self::fresh_handle();
        self.tickets.lock().insert(h, t);
        h
    }

    pub(crate) fn with_ticket<R>(&self, h: SpblaTicket, f: impl FnOnce(&Ticket) -> R) -> Option<R> {
        let guard = self.tickets.lock();
        guard.get(&h).map(f)
    }

    /// Taking the ticket out lets `spbla_Ticket_Wait` block on it with
    /// no registry lock held.
    pub(crate) fn take_ticket(&self, h: SpblaTicket) -> Option<Ticket> {
        self.tickets.lock().remove(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_unique_and_removable() {
        let r = Registry::global();
        let h1 = r.insert_instance(Instance::cpu());
        let h2 = r.insert_instance(Instance::cpu());
        assert_ne!(h1, h2);
        assert!(r.instance(h1).is_some());
        assert!(r.remove_instance(h1));
        assert!(!r.remove_instance(h1));
        assert!(r.instance(h1).is_none());
        assert!(r.remove_instance(h2));
    }
}
