//! C status codes.

use spbla_core::SpblaError;

/// Status codes returned by every API function (cuBool style).
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpblaStatus {
    /// Success.
    Ok = 0,
    /// A required pointer argument was null.
    NullPointer = 1,
    /// A handle did not resolve to a live object.
    InvalidHandle = 2,
    /// Operand dimensions are incompatible.
    DimensionMismatch = 3,
    /// A coordinate was out of bounds.
    IndexOutOfBounds = 4,
    /// Operands belong to different instances.
    BackendMismatch = 5,
    /// The device ran out of memory.
    DeviceOutOfMemory = 6,
    /// Any other library error.
    Error = 7,
    /// The engine's admission queue was full (retry later).
    Overloaded = 8,
    /// The request's deadline elapsed before it finished.
    DeadlineExceeded = 9,
    /// The request was cancelled via its ticket.
    Cancelled = 10,
    /// No catalog graph is registered under that name.
    UnknownGraph = 11,
    /// The query text did not parse or compile.
    PlanError = 12,
    /// Durable state (WAL segment or checkpoint) failed validation.
    Corrupt = 13,
    /// No readable checkpoint exists in the durability directory.
    NoCheckpoint = 14,
    /// The addressed replica is out of service (failed or poisoned).
    ReplicaFailed = 15,
}

impl From<&SpblaError> for SpblaStatus {
    fn from(e: &SpblaError) -> SpblaStatus {
        match e {
            SpblaError::DimensionMismatch { .. } => SpblaStatus::DimensionMismatch,
            SpblaError::IndexOutOfBounds { .. } => SpblaStatus::IndexOutOfBounds,
            SpblaError::BackendMismatch => SpblaStatus::BackendMismatch,
            SpblaError::Device(spbla_gpu_sim::DeviceError::OutOfMemory { .. }) => {
                SpblaStatus::DeviceOutOfMemory
            }
            SpblaError::Device(_) => SpblaStatus::Error,
            _ => SpblaStatus::Error,
        }
    }
}

impl From<&spbla_durable::DurableError> for SpblaStatus {
    fn from(e: &spbla_durable::DurableError) -> SpblaStatus {
        use spbla_durable::DurableError;
        match e {
            DurableError::Corrupt { .. } => SpblaStatus::Corrupt,
            DurableError::NoCheckpoint { .. } => SpblaStatus::NoCheckpoint,
            DurableError::ReplicaFailed { .. } => SpblaStatus::ReplicaFailed,
            DurableError::TooLarge { .. } => SpblaStatus::Error,
            DurableError::Io { .. } => SpblaStatus::Error,
            DurableError::Engine(e) => SpblaStatus::from(e),
            DurableError::Exec(e) => SpblaStatus::from(e),
        }
    }
}

impl From<&spbla_engine::EngineError> for SpblaStatus {
    fn from(e: &spbla_engine::EngineError) -> SpblaStatus {
        use spbla_engine::EngineError;
        match e {
            EngineError::Overloaded { .. } => SpblaStatus::Overloaded,
            EngineError::DeadlineExceeded { .. } => SpblaStatus::DeadlineExceeded,
            EngineError::Cancelled => SpblaStatus::Cancelled,
            EngineError::UnknownGraph(_) => SpblaStatus::UnknownGraph,
            EngineError::PlanError(_) => SpblaStatus::PlanError,
            EngineError::ShuttingDown => SpblaStatus::Error,
            EngineError::Exec(e) => SpblaStatus::from(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mapping() {
        let e = SpblaError::BackendMismatch;
        assert_eq!(SpblaStatus::from(&e), SpblaStatus::BackendMismatch);
        let d = SpblaError::Device(spbla_gpu_sim::DeviceError::OutOfMemory {
            requested: 1,
            in_use: 0,
            capacity: 0,
        });
        assert_eq!(SpblaStatus::from(&d), SpblaStatus::DeviceOutOfMemory);
    }

    #[test]
    fn engine_error_mapping() {
        use spbla_engine::EngineError;
        assert_eq!(
            SpblaStatus::from(&EngineError::Overloaded {
                depth: 4,
                capacity: 4,
                tier: spbla_engine::QosTier::Interactive
            }),
            SpblaStatus::Overloaded
        );
        assert_eq!(
            SpblaStatus::from(&EngineError::DeadlineExceeded {
                elapsed_ms: 5,
                budget_ms: 1
            }),
            SpblaStatus::DeadlineExceeded
        );
        assert_eq!(
            SpblaStatus::from(&EngineError::Cancelled),
            SpblaStatus::Cancelled
        );
        assert_eq!(
            SpblaStatus::from(&EngineError::UnknownGraph("g".into())),
            SpblaStatus::UnknownGraph
        );
        assert_eq!(
            SpblaStatus::from(&EngineError::PlanError("bad".into())),
            SpblaStatus::PlanError
        );
    }

    #[test]
    fn durable_error_mapping() {
        use spbla_durable::DurableError;
        assert_eq!(
            SpblaStatus::from(&DurableError::Corrupt {
                path: "wal-00000000.seg".into(),
                offset: 20,
                reason: "checksum mismatch".into(),
            }),
            SpblaStatus::Corrupt
        );
        assert_eq!(
            SpblaStatus::from(&DurableError::NoCheckpoint { dir: "/d".into() }),
            SpblaStatus::NoCheckpoint
        );
        assert_eq!(
            SpblaStatus::from(&DurableError::ReplicaFailed {
                replica: 2,
                reason: "failed by injection".into(),
            }),
            SpblaStatus::ReplicaFailed
        );
        // Wrapped engine/exec errors keep their existing codes.
        assert_eq!(
            SpblaStatus::from(&DurableError::Engine(
                spbla_engine::EngineError::UnknownGraph("g".into())
            )),
            SpblaStatus::UnknownGraph
        );
    }
}
