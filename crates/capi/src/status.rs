//! C status codes.

use spbla_core::SpblaError;

/// Status codes returned by every API function (cuBool style).
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpblaStatus {
    /// Success.
    Ok = 0,
    /// A required pointer argument was null.
    NullPointer = 1,
    /// A handle did not resolve to a live object.
    InvalidHandle = 2,
    /// Operand dimensions are incompatible.
    DimensionMismatch = 3,
    /// A coordinate was out of bounds.
    IndexOutOfBounds = 4,
    /// Operands belong to different instances.
    BackendMismatch = 5,
    /// The device ran out of memory.
    DeviceOutOfMemory = 6,
    /// Any other library error.
    Error = 7,
}

impl From<&SpblaError> for SpblaStatus {
    fn from(e: &SpblaError) -> SpblaStatus {
        match e {
            SpblaError::DimensionMismatch { .. } => SpblaStatus::DimensionMismatch,
            SpblaError::IndexOutOfBounds { .. } => SpblaStatus::IndexOutOfBounds,
            SpblaError::BackendMismatch => SpblaStatus::BackendMismatch,
            SpblaError::Device(spbla_gpu_sim::DeviceError::OutOfMemory { .. }) => {
                SpblaStatus::DeviceOutOfMemory
            }
            SpblaError::Device(_) => SpblaStatus::Error,
            _ => SpblaStatus::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mapping() {
        let e = SpblaError::BackendMismatch;
        assert_eq!(SpblaStatus::from(&e), SpblaStatus::BackendMismatch);
        let d = SpblaError::Device(spbla_gpu_sim::DeviceError::OutOfMemory {
            requested: 1,
            in_use: 0,
            capacity: 0,
        });
        assert_eq!(SpblaStatus::from(&d), SpblaStatus::DeviceOutOfMemory);
    }
}
