//! # spbla-capi — the C-compatible API
//!
//! The paper: *"the library exposes C compatible API, which gives
//! expressiveness and allows one to embed that API into other execution
//! environments by interoperability mechanisms"* (pyspbla/pycubool wrap
//! exactly this surface through ctypes). This crate reproduces that
//! surface in the cuBool style: opaque integer handles, status-code
//! returns, a two-call extract protocol for reading results.
//!
//! ```c
//! spbla_Status spbla_Initialize(spbla_Backend backend, spbla_Instance *out);
//! spbla_Status spbla_Matrix_New(spbla_Instance i, uint32_t m, uint32_t n, spbla_Matrix *out);
//! spbla_Status spbla_Matrix_Build(spbla_Matrix m, const uint32_t *rows,
//!                                 const uint32_t *cols, uintptr_t nvals);
//! spbla_Status spbla_MxM(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
//! ...
//! ```

pub mod engine_api;
pub mod extras_api;
pub mod handles;
pub mod header;
pub mod matrix_api;
pub mod obs_api;
pub mod status;

pub use engine_api::SpblaEngineStats;
pub use handles::{SpblaEngine, SpblaInstance, SpblaMatrix, SpblaTicket};
pub use status::SpblaStatus;
