/* spbla.h — C interface of the SPbLA Rust reproduction.
 *
 * Link against the `spbla_capi` static/cdylib build. All functions
 * return spbla_Status; out-parameters are written only on SPBLA_OK.
 * Matrix reads use a two-call protocol: pass NULL buffers to query the
 * required capacity, then buffers of that capacity to receive data.
 */
#ifndef SPBLA_H
#define SPBLA_H

#include <stdint.h>
#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef uint64_t spbla_Instance;
typedef uint64_t spbla_Matrix;

typedef enum spbla_Status {
    SPBLA_OK                  = 0,
    SPBLA_NULL_POINTER        = 1,
    SPBLA_INVALID_HANDLE      = 2,
    SPBLA_DIMENSION_MISMATCH  = 3,
    SPBLA_INDEX_OUT_OF_BOUNDS = 4,
    SPBLA_BACKEND_MISMATCH    = 5,
    SPBLA_DEVICE_OUT_OF_MEMORY = 6,
    SPBLA_ERROR               = 7
} spbla_Status;

typedef enum spbla_Backend {
    SPBLA_BACKEND_CPU       = 0, /* sequential reference          */
    SPBLA_BACKEND_CUDA_SIM  = 1, /* CSR + hash SpGEMM (cuBool)    */
    SPBLA_BACKEND_CL_SIM    = 2, /* COO + ESC SpGEMM (clBool)     */
    SPBLA_BACKEND_CPU_DENSE = 3  /* dense bit-parallel            */
} spbla_Backend;

/* Library */
uint32_t     spbla_Version(void);
spbla_Status spbla_Initialize(spbla_Backend backend, spbla_Instance *out);
spbla_Status spbla_Finalize(spbla_Instance instance);
spbla_Status spbla_Instance_Backend(spbla_Instance instance, spbla_Backend *out);

/* Matrix lifecycle */
spbla_Status spbla_Matrix_New(spbla_Instance instance, uint32_t nrows,
                              uint32_t ncols, spbla_Matrix *out);
spbla_Status spbla_Matrix_Build(spbla_Matrix matrix, const uint32_t *rows,
                                const uint32_t *cols, size_t nvals);
spbla_Status spbla_Matrix_Duplicate(spbla_Matrix matrix, spbla_Matrix *out);
spbla_Status spbla_Matrix_Free(spbla_Matrix matrix);

/* Introspection */
spbla_Status spbla_Matrix_Dims(spbla_Matrix matrix, uint32_t *nrows,
                               uint32_t *ncols);
spbla_Status spbla_Matrix_Nvals(spbla_Matrix matrix, size_t *out);
spbla_Status spbla_Matrix_MemoryBytes(spbla_Matrix matrix, size_t *out);
spbla_Status spbla_Matrix_ExtractPairs(spbla_Matrix matrix, uint32_t *rows,
                                       uint32_t *cols, size_t *nvals);

/* Operations (the paper's op set) */
spbla_Status spbla_MxM(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
/* C = (A * B) & M — mask applied inside the SpGEMM kernel. */
spbla_Status spbla_Matrix_MxM_Masked(spbla_Matrix a, spbla_Matrix b,
                                     spbla_Matrix mask, spbla_Matrix *out);
/* C = (A * B) & ~M — only product entries absent from M; the
 * semi-naive fixpoint primitive. */
spbla_Status spbla_Matrix_MxM_CompMasked(spbla_Matrix a, spbla_Matrix b,
                                         spbla_Matrix mask, spbla_Matrix *out);
spbla_Status spbla_EWiseAdd(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_EWiseMult(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_Kronecker(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_Transpose(spbla_Matrix a, spbla_Matrix *out);
spbla_Status spbla_SubMatrix(spbla_Matrix a, uint32_t i, uint32_t j,
                             uint32_t nrows, uint32_t ncols, spbla_Matrix *out);
spbla_Status spbla_TransitiveClosure(spbla_Matrix matrix, spbla_Matrix *out);
spbla_Status spbla_Matrix_ReduceToColumn(spbla_Matrix matrix, uint32_t *indices,
                                         size_t *count);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SPBLA_H */
