/* spbla.h — C interface of the SPbLA Rust reproduction.
 *
 * Link against the `spbla_capi` static/cdylib build. All functions
 * return spbla_Status; out-parameters are written only on SPBLA_OK.
 * Matrix reads use a two-call protocol: pass NULL buffers to query the
 * required capacity, then buffers of that capacity to receive data.
 */
#ifndef SPBLA_H
#define SPBLA_H

#include <stdint.h>
#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef uint64_t spbla_Instance;
typedef uint64_t spbla_Matrix;
typedef uint64_t spbla_Engine;
typedef uint64_t spbla_Ticket;

typedef enum spbla_Status {
    SPBLA_OK                  = 0,
    SPBLA_NULL_POINTER        = 1,
    SPBLA_INVALID_HANDLE      = 2,
    SPBLA_DIMENSION_MISMATCH  = 3,
    SPBLA_INDEX_OUT_OF_BOUNDS = 4,
    SPBLA_BACKEND_MISMATCH    = 5,
    SPBLA_DEVICE_OUT_OF_MEMORY = 6,
    SPBLA_ERROR               = 7,
    SPBLA_OVERLOADED          = 8,  /* admission queue full; retry     */
    SPBLA_DEADLINE_EXCEEDED   = 9,  /* request budget elapsed          */
    SPBLA_CANCELLED           = 10, /* cancelled via its ticket        */
    SPBLA_UNKNOWN_GRAPH       = 11, /* no catalog graph with that name */
    SPBLA_PLAN_ERROR          = 12, /* query text did not compile      */
    SPBLA_CORRUPT             = 13, /* durable state failed validation */
    SPBLA_NO_CHECKPOINT       = 14, /* nothing to recover from         */
    SPBLA_REPLICA_FAILED      = 15  /* replica out of service          */
} spbla_Status;

typedef enum spbla_Backend {
    SPBLA_BACKEND_CPU       = 0, /* sequential reference          */
    SPBLA_BACKEND_CUDA_SIM  = 1, /* CSR + hash SpGEMM (cuBool)    */
    SPBLA_BACKEND_CL_SIM    = 2, /* COO + ESC SpGEMM (clBool)     */
    SPBLA_BACKEND_CPU_DENSE = 3  /* dense bit-parallel            */
} spbla_Backend;

/* Library */
uint32_t     spbla_Version(void);
spbla_Status spbla_Initialize(spbla_Backend backend, spbla_Instance *out);
spbla_Status spbla_Finalize(spbla_Instance instance);
spbla_Status spbla_Instance_Backend(spbla_Instance instance, spbla_Backend *out);

/* Matrix lifecycle */
spbla_Status spbla_Matrix_New(spbla_Instance instance, uint32_t nrows,
                              uint32_t ncols, spbla_Matrix *out);
spbla_Status spbla_Matrix_Build(spbla_Matrix matrix, const uint32_t *rows,
                                const uint32_t *cols, size_t nvals);
spbla_Status spbla_Matrix_Duplicate(spbla_Matrix matrix, spbla_Matrix *out);
spbla_Status spbla_Matrix_Free(spbla_Matrix matrix);

/* Introspection */
spbla_Status spbla_Matrix_Dims(spbla_Matrix matrix, uint32_t *nrows,
                               uint32_t *ncols);
spbla_Status spbla_Matrix_Nvals(spbla_Matrix matrix, size_t *out);
spbla_Status spbla_Matrix_MemoryBytes(spbla_Matrix matrix, size_t *out);
spbla_Status spbla_Matrix_ExtractPairs(spbla_Matrix matrix, uint32_t *rows,
                                       uint32_t *cols, size_t *nvals);

/* Operations (the paper's op set) */
spbla_Status spbla_MxM(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
/* C = (A * B) & M — mask applied inside the SpGEMM kernel. */
spbla_Status spbla_Matrix_MxM_Masked(spbla_Matrix a, spbla_Matrix b,
                                     spbla_Matrix mask, spbla_Matrix *out);
/* C = (A * B) & ~M — only product entries absent from M; the
 * semi-naive fixpoint primitive. */
spbla_Status spbla_Matrix_MxM_CompMasked(spbla_Matrix a, spbla_Matrix b,
                                         spbla_Matrix mask, spbla_Matrix *out);
spbla_Status spbla_EWiseAdd(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_EWiseMult(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_Kronecker(spbla_Matrix a, spbla_Matrix b, spbla_Matrix *out);
spbla_Status spbla_Transpose(spbla_Matrix a, spbla_Matrix *out);
spbla_Status spbla_SubMatrix(spbla_Matrix a, uint32_t i, uint32_t j,
                             uint32_t nrows, uint32_t ncols, spbla_Matrix *out);
spbla_Status spbla_TransitiveClosure(spbla_Matrix matrix, spbla_Matrix *out);
/* Same closure, scheduled via SCC condensation: the fixpoint runs on
 * the component DAG and expands back — bit-identical, fewer launches on
 * cycle-heavy graphs. */
spbla_Status spbla_Matrix_TransitiveClosureCondensed(spbla_Matrix matrix,
                                                     spbla_Matrix *out);
spbla_Status spbla_Matrix_ReduceToColumn(spbla_Matrix matrix, uint32_t *indices,
                                         size_t *count);

/* Serving engine — concurrent query serving over a device grid.
 *
 * Submit functions return a ticket; spbla_Ticket_Wait blocks and its
 * status IS the request outcome. On SPBLA_OK read the answer with the
 * usual two-call protocol via spbla_Ticket_ExtractPairs (single-source
 * results store the reachable vertex in BOTH coordinate arrays).
 * deadline_ms = 0 means no deadline. */

typedef struct spbla_EngineStats {
    uint64_t submitted;
    uint64_t completed;
    uint64_t rejected;            /* bounced by admission control      */
    uint64_t deadline_exceeded;
    uint64_t cancelled;
    uint64_t failed;
    uint64_t plan_hits;           /* plan-cache hits                   */
    uint64_t plan_misses;
    uint64_t residency_hits;      /* catalog device-residency hits     */
    uint64_t residency_misses;
    uint64_t residency_evictions;
    uint64_t queue_depth_hwm;     /* admission-queue high-water mark   */
    uint64_t batches;             /* coalesced multi-source executions */
    uint64_t batched_requests;
    uint64_t launches;            /* kernel launches over all devices  */
} spbla_EngineStats;

spbla_Status spbla_Engine_New(uint32_t n_devices, spbla_Engine *out);
spbla_Status spbla_Engine_LoadGraph(spbla_Engine engine, const char *name,
                                    const char *path);
spbla_Status spbla_Engine_SubmitRpq(spbla_Engine engine, const char *graph,
                                    const char *regex, spbla_Ticket *out);
spbla_Status spbla_Engine_SubmitRpqFromSource(spbla_Engine engine,
                                              const char *graph,
                                              const char *regex,
                                              uint32_t source,
                                              uint64_t deadline_ms,
                                              spbla_Ticket *out);
spbla_Status spbla_Engine_SubmitCfpq(spbla_Engine engine, const char *graph,
                                     const char *grammar, spbla_Ticket *out);
spbla_Status spbla_Engine_SubmitClosure(spbla_Engine engine, const char *graph,
                                        spbla_Ticket *out);
/* Closure query under a QoS admission tier: tier 0 = interactive
 * (admitted to the full queue), 1 = batch (bounced earlier, at the
 * batch admission fraction). deadline_ms 0 means no deadline. */
spbla_Status spbla_Engine_SubmitClosureTiered(spbla_Engine engine,
                                              const char *graph,
                                              uint32_t tier,
                                              uint64_t deadline_ms,
                                              spbla_Ticket *out);
/* Rebuild catalog graph `name` from a durability directory: latest good
 * checkpoint plus write-ahead-log tail replay. Writes the recovered
 * head version to out_version. */
spbla_Status spbla_Engine_Recover(spbla_Engine engine, const char *name,
                                  const char *dir, uint64_t *out_version);
/* Apply n same-label edge updates (inserts when is_delete == 0, deletes
 * otherwise) as one atomic batch; blocks until the new graph version is
 * live and writes its number to out_version. Queries admitted earlier
 * keep reading the version they pinned at submission. */
spbla_Status spbla_Graph_ApplyBatch(spbla_Engine engine, const char *graph,
                                    const char *label, const uint32_t *from,
                                    const uint32_t *to, size_t n,
                                    uint32_t is_delete, uint64_t *out_version);
/* Latest version number of a catalog graph (0 before any batch). */
spbla_Status spbla_Graph_Version(spbla_Engine engine, const char *graph,
                                 uint64_t *out_version);
spbla_Status spbla_Ticket_Cancel(spbla_Ticket ticket);
spbla_Status spbla_Ticket_Wait(spbla_Ticket ticket);
spbla_Status spbla_Ticket_ExtractPairs(spbla_Ticket ticket, uint32_t *rows,
                                       uint32_t *cols, size_t *nvals);
spbla_Status spbla_Ticket_Free(spbla_Ticket ticket);
spbla_Status spbla_Engine_Stats(spbla_Engine engine, spbla_EngineStats *out);
spbla_Status spbla_Engine_Free(spbla_Engine engine);

/* Observability: process-wide kernel tracing and metric dumps. Both
 * dumps use the two-call protocol of spbla_Matrix_ExtractPairs: pass a
 * null buffer to learn the required size in *len (trailing NUL
 * included), then call again with a buffer of at least that size.
 * spbla_Trace_Enable(capacity) turns tracing on with a ring of
 * `capacity` spans (clearing any prior recording); capacity 0 turns it
 * off. spbla_Trace_Dump writes chrome://tracing JSON.
 * spbla_Metrics_Dump format: 0 = Prometheus text, 1 = JSON. */
spbla_Status spbla_Trace_Enable(size_t capacity);
spbla_Status spbla_Trace_Dump(char *buf, size_t *len);
spbla_Status spbla_Metrics_Dump(int32_t format, char *buf, size_t *len);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SPBLA_H */
