//! Regression tests for sender-side `d2d_bytes` accounting.
//!
//! The invariant: a device "sending" to itself is free, so the grid's
//! total d2d volume on a 1-device grid must be exactly 0 no matter what
//! schedule runs — every self-copy leg (broadcast root, all-gather's
//! local shard, reshard's diagonal) must go unmetered. On wider grids
//! the collectives charge exactly `(participants - 1)` legs.

use spbla_core::Pair;
use spbla_multidev::grid::block_row_offsets;
use spbla_multidev::{DeviceGrid, DistMatrix};

fn ring(n: u32) -> Vec<Pair> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Every collective and schedule on a single device: nothing crosses a
/// device boundary, so the metered peer traffic must be exactly zero.
#[test]
fn one_device_grid_total_d2d_is_zero() {
    let grid = DeviceGrid::new(1);
    let n = 24u32;
    let a = DistMatrix::from_pairs(&grid, n, n, &ring(n)).unwrap();
    let b = a.duplicate().unwrap();
    let mask = DistMatrix::identity(&grid, n).unwrap();

    // SpGEMM family (round-robin schedules degenerate to local work).
    let prod = a.mxm(&b).unwrap();
    a.mxm_masked(&b, &mask).unwrap();
    a.mxm_compmask(&b, &prod).unwrap();

    // Element-wise family.
    a.ewise_add(&b).unwrap();
    a.ewise_mult(&b).unwrap();
    a.ewise_andnot(&b).unwrap();

    // Structure ops and reductions.
    a.kron(&mask).unwrap();
    a.reduce_to_column().unwrap();
    a.reduce_to_row().unwrap();

    // Fixpoints.
    a.closure_delta().unwrap();
    a.closure_squaring().unwrap();

    // Explicit communication: every leg is a self-copy.
    let comm = grid.comm();
    let shard = a.shards()[0].duplicate().unwrap();
    comm.broadcast(&shard, 0).unwrap();
    comm.all_gather(&a, 0).unwrap();
    comm.peer_copy(&shard, 0, 0).unwrap();
    comm.merge_reduce(&[(0, &shard)], 0).unwrap();

    // Resharding onto the same single block row.
    a.reshard(block_row_offsets(n, 1)).unwrap();

    // Streaming updates are shard-local.
    a.apply_updates(&[(0, 5)], &[(0, 1)]).unwrap();

    assert_eq!(
        grid.total_stats().d2d_bytes,
        0,
        "a 1-device grid moved bytes across a device boundary"
    );
}

/// Broadcast meters exactly `p - 1` copies on the root; the root's own
/// copy is free.
#[test]
fn broadcast_meters_exactly_remote_legs() {
    let grid = DeviceGrid::new(4);
    let m = spbla_core::Matrix::from_pairs(grid.instance(2), 6, 6, &ring(6)).unwrap();
    let before = grid.total_stats().d2d_bytes;
    grid.comm().broadcast(&m, 2).unwrap();
    let moved = grid.total_stats().d2d_bytes - before;
    assert_eq!(moved, 3 * m.memory_bytes() as u64);
    // All of it charged to the sender.
    assert_eq!(grid.device(2).stats().d2d_bytes, moved);
}

/// All-gather meters every shard except the destination's own, each
/// charged to its owner.
#[test]
fn all_gather_skips_the_local_shard() {
    let grid = DeviceGrid::new(3);
    let n = 12u32;
    let a = DistMatrix::from_pairs(&grid, n, n, &ring(n)).unwrap();
    let before: Vec<u64> = (0..3).map(|i| grid.device(i).stats().d2d_bytes).collect();
    grid.comm().all_gather(&a, 1).unwrap();
    let moved: Vec<u64> = (0..3)
        .map(|i| grid.device(i).stats().d2d_bytes - before[i])
        .collect();
    assert_eq!(moved[1], 0, "destination's own shard must not be metered");
    assert_eq!(moved[0], a.shards()[0].memory_bytes() as u64);
    assert_eq!(moved[2], a.shards()[2].memory_bytes() as u64);
}
