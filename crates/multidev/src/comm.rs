//! The explicit communication layer between grid devices.
//!
//! Every operation that moves a matrix across a device boundary lives
//! here, and every one charges the moved bytes to the *sender's*
//! `d2d_bytes` counter — so `sum(d2d_bytes)` over the grid is a
//! schedule's total communication volume, counted exactly once.
//!
//! The simulator has no peer-to-peer DMA: a peer copy stages through
//! the host, so it also shows up as a d2h on the source and an h2d on
//! the destination (exactly what a real fleet pays without NVLink).
//! `d2d_bytes` is the *logical* peer traffic on top of that accounting.

use spbla_core::{Matrix, Result};
use spbla_obs::trace_global;

use crate::dist::DistMatrix;
use crate::grid::DeviceGrid;

/// Communicator over a [`DeviceGrid`]. Borrowed from the grid via
/// [`DeviceGrid::comm`]; stateless — all metering lands in the
/// per-device counters.
pub struct Comm<'g> {
    grid: &'g DeviceGrid,
}

impl<'g> Comm<'g> {
    pub(crate) fn new(grid: &'g DeviceGrid) -> Self {
        Comm { grid }
    }

    /// Copy `m` (resident on device `src`) to device `dst`. A self-copy
    /// is a plain duplicate and is not metered.
    pub fn peer_copy(&self, m: &Matrix, src: usize, dst: usize) -> Result<Matrix> {
        debug_assert!(
            m.instance().same_as(self.grid.instance(src)),
            "peer_copy source slot does not own the matrix"
        );
        if src == dst {
            return m.duplicate();
        }
        let bytes = m.memory_bytes() as u64;
        let mut span = trace_global().span("peer_copy", "comm", self.grid.device(src).ordinal());
        if let Some(span) = span.as_mut() {
            span.arg("bytes", bytes);
            span.arg("dst", self.grid.device(dst).ordinal());
        }
        self.grid.device(src).count_d2d(bytes);
        m.to_instance(self.grid.instance(dst))
    }

    /// Copy `m` (resident on device `src`) to every device, the root
    /// included (as a duplicate). Meters `(p - 1) ×` the matrix bytes
    /// on the root.
    pub fn broadcast(&self, m: &Matrix, src: usize) -> Result<Vec<Matrix>> {
        let _span = trace_global().span("broadcast", "comm", self.grid.device(src).ordinal());
        (0..self.grid.len())
            .map(|dst| self.peer_copy(m, src, dst))
            .collect()
    }

    /// Materialise the whole of `dist` on device `dst`: the all-gather
    /// target a round-robin schedule avoids holding. Every remote shard
    /// is metered from its owner.
    pub fn all_gather(&self, dist: &DistMatrix, dst: usize) -> Result<Matrix> {
        let mut span = trace_global().span("all_gather", "comm", self.grid.device(dst).ordinal());
        if let Some(span) = span.as_mut() {
            span.arg("nnz", dist.nnz() as u64);
        }
        let mut pairs = Vec::with_capacity(dist.nnz());
        for (j, shard) in dist.shards().iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            if j != dst {
                self.grid.device(j).count_d2d(shard.memory_bytes() as u64);
            }
            let base = dist.offsets()[j];
            pairs.extend(shard.read().into_iter().map(|(i, c)| (i + base, c)));
        }
        Matrix::from_pairs(self.grid.instance(dst), dist.nrows(), dist.ncols(), &pairs)
    }

    /// Meter an opaque payload leaving device `src` for a peer outside
    /// this grid — the replica fan-out path, where the receiver lives
    /// on its own [`DeviceGrid`] and only the sender-side logical d2d
    /// traffic belongs to this grid's books (same convention as
    /// [`Comm::peer_copy`]).
    pub fn send_bytes(&self, src: usize, bytes: u64) {
        let mut span = trace_global().span("fanout", "comm", self.grid.device(src).ordinal());
        if let Some(span) = span.as_mut() {
            span.arg("bytes", bytes);
        }
        self.grid.device(src).count_d2d(bytes);
    }

    /// Merge-reduce: Boolean-sum same-shaped partial results living on
    /// the listed devices down to one matrix on `root`. Each non-root
    /// partial is metered from its owner as it moves.
    pub fn merge_reduce(&self, parts: &[(usize, &Matrix)], root: usize) -> Result<Matrix> {
        let mut span =
            trace_global().span("merge_reduce", "comm", self.grid.device(root).ordinal());
        if let Some(span) = span.as_mut() {
            span.arg("parts", parts.len() as u64);
        }
        let mut acc: Option<Matrix> = None;
        for &(slot, m) in parts {
            let local = self.peer_copy(m, slot, root)?;
            acc = Some(match acc {
                None => local,
                Some(a) => a.ewise_add(&local)?,
            });
        }
        match acc {
            Some(a) => Ok(a),
            None => Err(spbla_core::SpblaError::InvalidDimension(
                "merge_reduce of zero partials".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_copy_meters_sender_only() {
        let grid = DeviceGrid::new(2);
        let m = Matrix::from_pairs(grid.instance(0), 4, 4, &[(0, 1), (2, 3)]).unwrap();
        let copy = grid.comm().peer_copy(&m, 0, 1).unwrap();
        assert_eq!(copy.read(), m.read());
        assert!(copy.instance().same_as(grid.instance(1)));
        assert_eq!(grid.device(0).stats().d2d_bytes, m.memory_bytes() as u64);
        assert_eq!(grid.device(1).stats().d2d_bytes, 0);
        // Self-copies are free.
        let before = grid.device(0).stats().d2d_bytes;
        grid.comm().peer_copy(&m, 0, 0).unwrap();
        assert_eq!(grid.device(0).stats().d2d_bytes, before);
    }

    #[test]
    fn broadcast_reaches_every_device() {
        let grid = DeviceGrid::new(3);
        let m = Matrix::from_pairs(grid.instance(1), 3, 3, &[(1, 2)]).unwrap();
        let copies = grid.comm().broadcast(&m, 1).unwrap();
        assert_eq!(copies.len(), 3);
        for (i, c) in copies.iter().enumerate() {
            assert!(c.instance().same_as(grid.instance(i)));
            assert_eq!(c.read(), vec![(1, 2)]);
        }
        // Two remote destinations metered on the root.
        assert_eq!(
            grid.device(1).stats().d2d_bytes,
            2 * m.memory_bytes() as u64
        );
    }

    #[test]
    fn merge_reduce_unions_partials() {
        let grid = DeviceGrid::new(3);
        let parts: Vec<Matrix> = (0..3)
            .map(|i| {
                Matrix::from_pairs(grid.instance(i), 2, 2, &[(0, i as u32 % 2), (1, 1)]).unwrap()
            })
            .collect();
        let refs: Vec<(usize, &Matrix)> = parts.iter().enumerate().collect();
        let merged = grid.comm().merge_reduce(&refs, 0).unwrap();
        assert_eq!(merged.read(), vec![(0, 0), (0, 1), (1, 1)]);
        assert!(merged.instance().same_as(grid.instance(0)));
        assert!(grid.device(1).stats().d2d_bytes > 0);
        assert!(grid.device(2).stats().d2d_bytes > 0);
    }
}
