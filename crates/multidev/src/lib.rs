//! # spbla-multidev — sharded Boolean linear algebra over a device grid
//!
//! SPbLA names multi-GPU support and out-of-VRAM processing as the
//! library's next step. This crate is that layer for the simulated
//! substrate: it scales a workload across N independent [`Device`]s —
//! each with its own memory capacity, allocation pool, and counters —
//! by partitioning the *matrix*, not the algorithm (the GraphBLAST
//! argument: linear-algebra graph kernels distribute by data).
//!
//! Three pieces:
//!
//! * [`DeviceGrid`] — N simulated devices, each wrapped in its own
//!   [`Instance`], so every shard's allocations, launches and transfer
//!   bytes are attributable per device;
//! * [`Comm`] — the explicit communicator (peer copy, broadcast,
//!   all-gather, merge-reduce). Every byte that crosses a device
//!   boundary is charged to the *sender's* `d2d_bytes` counter, so a
//!   schedule's communication volume is `sum(d2d_bytes)` over the grid;
//! * [`DistMatrix`] — a Boolean matrix sharded by contiguous block-rows
//!   with the full kernel set distributed over the grid: SpGEMM (plain,
//!   masked, complement-masked), element-wise add/intersect, Kronecker
//!   product, reductions, and the delta-driven transitive closure.
//!
//! The SpGEMM schedule is round-robin all-gather: device `i` owns the
//! block-rows `A_i` of the left operand and accumulates
//! `C_i = ⋁_k A_i[:, rows(k)] · B_k`, fetching one remote shard `B_k`
//! per round so at most one remote shard is ever resident — per-device
//! peak memory shrinks as the grid grows even though every shard is
//! eventually seen.
//!
//! ```
//! use spbla_multidev::{DeviceGrid, DistMatrix};
//!
//! let grid = DeviceGrid::new(3);
//! let a = DistMatrix::from_pairs(&grid, 4, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let closure = a.closure_delta().unwrap();
//! assert_eq!(closure.nnz(), 6); // transitive closure of the 4-path
//! assert!(grid.total_stats().d2d_bytes > 0); // the rounds were metered
//! ```

pub mod comm;
pub mod dist;
pub mod grid;

pub use comm::Comm;
pub use dist::{DistMatrix, FusedDistProduct};
pub use grid::DeviceGrid;

pub use spbla_core::{Result, SpblaError};
pub use spbla_gpu_sim::{Device, DeviceConfig, DeviceStats};
