//! Block-row distributed Boolean matrices and their scaled-out kernels.
//!
//! A [`DistMatrix`] splits a matrix into contiguous block-row shards,
//! shard `i` resident on device `i` of a [`DeviceGrid`]. The partition
//! is described by `p + 1` row offsets, so ragged shards (uneven row
//! counts, trailing empty shards when `p > nrows`) are first-class.
//!
//! The distributed SpGEMM is the round-robin all-gather schedule:
//! `C_i = ⋁_k A_i[:, rows_B(k)] · B_k`, where round `k` fetches the one
//! remote shard `B_k` to device `i`, multiplies, folds into the local
//! accumulator, and *drops the fetched shard before the next round* —
//! at most one remote shard is ever resident, so per-device peak bytes
//! shrink as the grid grows. Rounds whose local column slice
//! `A_i[:, rows_B(k)]` is empty skip the fetch entirely, which is where
//! sparse workloads save most of the all-gather volume. Masked and
//! complement-masked products ride the same schedule: the mask
//! distributes over the per-round union
//! (`(⋁_k A_k·B_k) ∧ M = ⋁_k (A_k·B_k ∧ M)`), so each round applies the
//! *local* mask shard inside the single-device kernel from PR 1.

use spbla_core::{CsrBool, Index, Matrix, Pair, Result, SpblaError};

use crate::grid::{block_row_offsets, DeviceGrid};

/// Which mask semantics a masked product round applies.
#[derive(Clone, Copy)]
enum MaskKind {
    /// `C = (A·B) ∧ M`.
    Keep,
    /// `C = (A·B) ∧ ¬M`.
    Drop,
}

/// Result of the fused distributed accumulate-product
/// [`DistMatrix::mxm_accum_compmask`]: the grown accumulator, the
/// grid-total count of fresh cells (the fixpoint termination signal,
/// read off the per-shard fused kernels — no extra `nnz` reduction),
/// and the fresh cells themselves when requested.
#[derive(Debug)]
pub struct FusedDistProduct {
    /// `C ∨ ((A·B) ∧ ¬C)`, sharded on `C`'s partition.
    pub acc: DistMatrix,
    /// Total fresh cells across all shards.
    pub fresh_nnz: usize,
    /// The fresh cells `(A·B) ∧ ¬C` as their own distributed matrix,
    /// present iff `want_fresh` was set.
    pub fresh: Option<DistMatrix>,
}

/// A sparse Boolean matrix sharded by block-rows across a device grid.
#[derive(Debug)]
pub struct DistMatrix {
    grid: DeviceGrid,
    /// `p + 1` shard boundaries; shard `i` owns global rows
    /// `offsets[i] .. offsets[i + 1]`.
    offsets: Vec<Index>,
    ncols: Index,
    shards: Vec<Matrix>,
}

impl DistMatrix {
    /// Shard a host CSR matrix over `grid` with the balanced default
    /// block-row partition.
    pub fn from_csr(grid: &DeviceGrid, host: &CsrBool) -> Result<DistMatrix> {
        let offsets = block_row_offsets(host.nrows(), grid.len());
        DistMatrix::from_csr_with_offsets(grid, host, offsets)
    }

    /// Shard a host CSR matrix with caller-chosen (possibly ragged)
    /// shard boundaries.
    pub fn from_csr_with_offsets(
        grid: &DeviceGrid,
        host: &CsrBool,
        offsets: Vec<Index>,
    ) -> Result<DistMatrix> {
        validate_offsets(&offsets, grid.len(), host.nrows())?;
        let mut shards = Vec::with_capacity(grid.len());
        for i in 0..grid.len() {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            let piece = host.submatrix(lo, 0, hi - lo, host.ncols())?;
            shards.push(Matrix::from_csr(grid.instance(i), piece)?);
        }
        Ok(DistMatrix {
            grid: grid.clone(),
            offsets,
            ncols: host.ncols(),
            shards,
        })
    }

    /// Build from coordinate pairs (balanced partition).
    pub fn from_pairs(
        grid: &DeviceGrid,
        nrows: Index,
        ncols: Index,
        pairs: &[Pair],
    ) -> Result<DistMatrix> {
        DistMatrix::from_csr(grid, &CsrBool::from_pairs(nrows, ncols, pairs)?)
    }

    /// An empty distributed matrix.
    pub fn zeros(grid: &DeviceGrid, nrows: Index, ncols: Index) -> Result<DistMatrix> {
        DistMatrix::from_csr(grid, &CsrBool::zeros(nrows, ncols))
    }

    /// The distributed identity of order `n`.
    pub fn identity(grid: &DeviceGrid, n: Index) -> Result<DistMatrix> {
        DistMatrix::from_csr(grid, &CsrBool::identity(n))
    }

    /// The owning grid.
    pub fn grid(&self) -> &DeviceGrid {
        &self.grid
    }

    /// Number of global rows.
    pub fn nrows(&self) -> Index {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows(), self.ncols)
    }

    /// Total `true` cells across all shards.
    pub fn nnz(&self) -> usize {
        self.shards.iter().map(Matrix::nnz).sum()
    }

    /// Whether no shard holds a `true` cell.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// The shard boundaries (`p + 1` entries).
    pub fn offsets(&self) -> &[Index] {
        &self.offsets
    }

    /// The per-device shards, in slot order.
    pub fn shards(&self) -> &[Matrix] {
        &self.shards
    }

    /// Total storage bytes across the grid.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Matrix::memory_bytes).sum()
    }

    /// Collect the full matrix on the host, row-major — bit-identical
    /// to the single-device result of the same computation.
    pub fn gather(&self) -> CsrBool {
        let mut pairs: Vec<Pair> = Vec::with_capacity(self.nnz());
        for (j, shard) in self.shards.iter().enumerate() {
            let base = self.offsets[j];
            pairs.extend(shard.read().into_iter().map(|(i, c)| (i + base, c)));
        }
        CsrBool::from_pairs(self.nrows(), self.ncols, &pairs).expect("shard pairs in bounds")
    }

    /// Deep copy, shard by shard.
    pub fn duplicate(&self) -> Result<DistMatrix> {
        let shards = self
            .shards
            .iter()
            .map(Matrix::duplicate)
            .collect::<Result<Vec<_>>>()?;
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: self.ncols,
            shards,
        })
    }

    /// Re-partition onto new shard boundaries, moving rows between
    /// devices (metered as peer traffic from each shard that loses
    /// rows to another slot).
    pub fn reshard(&self, offsets: Vec<Index>) -> Result<DistMatrix> {
        validate_offsets(&offsets, self.grid.len(), self.nrows())?;
        let mut shards = Vec::with_capacity(self.grid.len());
        for i in 0..self.grid.len() {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            let mut pairs: Vec<Pair> = Vec::new();
            for (j, shard) in self.shards.iter().enumerate() {
                let (slo, shi) = (self.offsets[j].max(lo), self.offsets[j + 1].min(hi));
                if slo >= shi {
                    continue;
                }
                let piece = shard.submatrix(slo - self.offsets[j], 0, shi - slo, self.ncols)?;
                if piece.is_empty() {
                    continue;
                }
                if j != i {
                    self.grid.device(j).count_d2d(piece.memory_bytes() as u64);
                }
                pairs.extend(piece.read().into_iter().map(|(r, c)| (r + slo - lo, c)));
            }
            shards.push(Matrix::from_pairs(
                self.grid.instance(i),
                hi - lo,
                self.ncols,
                &pairs,
            )?);
        }
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets,
            ncols: self.ncols,
            shards,
        })
    }

    fn check_same_grid(&self, other: &DistMatrix) -> Result<()> {
        if !self.grid.same_as(&other.grid) {
            return Err(SpblaError::BackendMismatch);
        }
        Ok(())
    }

    /// Distributed SpGEMM `C = A · B` (round-robin all-gather schedule).
    pub fn mxm(&self, other: &DistMatrix) -> Result<DistMatrix> {
        self.mxm_rounds(other, None)
    }

    /// Distributed masked SpGEMM `C = (A · B) ∧ M`. The mask must be
    /// sharded on the same grid; it is re-aligned to `A`'s partition if
    /// its boundaries differ.
    pub fn mxm_masked(&self, other: &DistMatrix, mask: &DistMatrix) -> Result<DistMatrix> {
        self.mxm_rounds(other, Some((mask, MaskKind::Keep)))
    }

    /// Distributed complement-masked SpGEMM `C = (A · B) ∧ ¬M` — the
    /// semi-naïve fixpoint primitive, distributed.
    pub fn mxm_compmask(&self, other: &DistMatrix, mask: &DistMatrix) -> Result<DistMatrix> {
        self.mxm_rounds(other, Some((mask, MaskKind::Drop)))
    }

    fn mxm_rounds(
        &self,
        other: &DistMatrix,
        mask: Option<(&DistMatrix, MaskKind)>,
    ) -> Result<DistMatrix> {
        self.check_same_grid(other)?;
        if self.ncols != other.nrows() {
            return Err(SpblaError::DimensionMismatch {
                op: "dist mxm",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Align the mask to A's row partition so each round can apply
        // the purely local mask shard.
        let aligned_mask;
        let mask = match mask {
            Some((m, kind)) => {
                self.check_same_grid(m)?;
                if m.shape() != (self.nrows(), other.ncols()) {
                    return Err(SpblaError::DimensionMismatch {
                        op: "dist mxm mask",
                        lhs: (self.nrows(), other.ncols()),
                        rhs: m.shape(),
                    });
                }
                if m.offsets == self.offsets {
                    Some((m, kind))
                } else {
                    aligned_mask = m.reshard(self.offsets.clone())?;
                    Some((&aligned_mask, kind))
                }
            }
            None => None,
        };
        let comm = self.grid.comm();
        let mut shards = Vec::with_capacity(self.grid.len());
        for i in 0..self.grid.len() {
            let rows_i = self.offsets[i + 1] - self.offsets[i];
            let a_i = &self.shards[i];
            let mut acc = Matrix::zeros(self.grid.instance(i), rows_i, other.ncols)?;
            for k in 0..self.grid.len() {
                let (blo, bhi) = (other.offsets[k], other.offsets[k + 1]);
                if blo == bhi {
                    continue;
                }
                let a_ik = a_i.submatrix(0, blo, rows_i, bhi - blo)?;
                if a_ik.is_empty() {
                    // No local column hits shard k — skip the fetch.
                    continue;
                }
                // One remote shard resident at a time: `fetched` dies at
                // the end of the round.
                let fetched;
                let b_k = if k == i {
                    &other.shards[k]
                } else {
                    fetched = comm.peer_copy(&other.shards[k], k, i)?;
                    &fetched
                };
                let prod = match mask {
                    None => a_ik.mxm(b_k)?,
                    Some((m, MaskKind::Keep)) => a_ik.mxm_masked(b_k, &m.shards[i])?,
                    Some((m, MaskKind::Drop)) => a_ik.mxm_compmask(b_k, &m.shards[i])?,
                };
                if !prod.is_empty() {
                    acc = acc.ewise_add(&prod)?;
                }
            }
            shards.push(acc);
        }
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: other.ncols,
            shards,
        })
    }

    /// Fused distributed `acc = C ∨ ((A·B) ∧ ¬C)` with `self` as `C`.
    ///
    /// Rides the same round-robin all-gather schedule as
    /// [`DistMatrix::mxm_compmask`], but each round runs the
    /// single-device *fused* kernel with the shard's **growing**
    /// accumulator as the complement mask: round `k`'s fresh piece is
    /// `(A_ik·B_k) \ (C_i ∪ F_{<k})`, so the pieces are pairwise
    /// disjoint and their union is exactly `(⋁_k A_ik·B_k) ∧ ¬C_i` —
    /// the per-round `ewise_add` fold of the unfused schedule, the
    /// zero-initialised round accumulator, and the end-of-round
    /// `C += fresh` union all disappear into the per-round launch. The
    /// termination signal is the sum of the rounds' fresh-nnz counts;
    /// no materialised intermediate product is ever reduced.
    ///
    /// `a` must share `self`'s partition (it is re-aligned when the
    /// boundaries differ); `b`'s partition drives the round schedule.
    pub fn mxm_accum_compmask(
        &self,
        a: &DistMatrix,
        b: &DistMatrix,
        want_fresh: bool,
    ) -> Result<FusedDistProduct> {
        self.check_same_grid(a)?;
        self.check_same_grid(b)?;
        if a.ncols != b.nrows() {
            return Err(SpblaError::DimensionMismatch {
                op: "dist mxm_accum_compmask",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        if self.shape() != (a.nrows(), b.ncols) {
            return Err(SpblaError::DimensionMismatch {
                op: "dist mxm_accum_compmask acc",
                lhs: (a.nrows(), b.ncols),
                rhs: self.shape(),
            });
        }
        let realigned;
        let a = if self.offsets == a.offsets {
            a
        } else {
            realigned = a.reshard(self.offsets.clone())?;
            &realigned
        };
        let comm = self.grid.comm();
        let mut acc_shards = Vec::with_capacity(self.grid.len());
        let mut fresh_shards = Vec::with_capacity(self.grid.len());
        let mut fresh_nnz = 0usize;
        for i in 0..self.grid.len() {
            let rows_i = self.offsets[i + 1] - self.offsets[i];
            let a_i = &a.shards[i];
            // Growing accumulator for this shard; `None` means still
            // bit-identical to `C_i`, so convergence rounds never copy.
            let mut cur: Option<Matrix> = None;
            let mut pieces: Vec<Matrix> = Vec::new();
            for k in 0..self.grid.len() {
                let (blo, bhi) = (b.offsets[k], b.offsets[k + 1]);
                if blo == bhi {
                    continue;
                }
                let a_ik = a_i.submatrix(0, blo, rows_i, bhi - blo)?;
                if a_ik.is_empty() {
                    // No local column hits shard k — skip the fetch.
                    continue;
                }
                let fetched;
                let b_k = if k == i {
                    &b.shards[k]
                } else {
                    fetched = comm.peer_copy(&b.shards[k], k, i)?;
                    &fetched
                };
                let mask = cur.as_ref().unwrap_or(&self.shards[i]);
                let step = mask.mxm_accum_compmask(&a_ik, b_k, want_fresh)?;
                if step.fresh_nnz > 0 {
                    cur = Some(step.acc);
                    fresh_nnz += step.fresh_nnz;
                    if let Some(f) = step.fresh {
                        pieces.push(f);
                    }
                }
            }
            acc_shards.push(match cur {
                Some(m) => m,
                None => self.shards[i].duplicate()?,
            });
            if want_fresh {
                // Disjoint pieces: the fold is a plain merge, no dedup.
                let mut f = match pieces.pop() {
                    Some(f) => f,
                    None => Matrix::zeros(self.grid.instance(i), rows_i, b.ncols)?,
                };
                for p in &pieces {
                    f = f.ewise_add(p)?;
                }
                fresh_shards.push(f);
            }
        }
        let wrap = |shards: Vec<Matrix>| DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: b.ncols,
            shards,
        };
        Ok(FusedDistProduct {
            acc: wrap(acc_shards),
            fresh_nnz,
            fresh: want_fresh.then(|| wrap(fresh_shards)),
        })
    }

    fn ewise(&self, other: &DistMatrix, op: &'static str) -> Result<DistMatrix> {
        self.check_same_grid(other)?;
        if self.shape() != other.shape() {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Align `other` to this partition when the boundaries differ.
        let resharded;
        let other = if self.offsets == other.offsets {
            other
        } else {
            resharded = other.reshard(self.offsets.clone())?;
            &resharded
        };
        let shards = self
            .shards
            .iter()
            .zip(other.shards.iter())
            .map(|(a, b)| match op {
                "dist ewise_add" => a.ewise_add(b),
                _ => a.ewise_mult(b),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: self.ncols,
            shards,
        })
    }

    /// Element-wise Boolean sum (set union), purely shard-local once
    /// the partitions are aligned.
    pub fn ewise_add(&self, other: &DistMatrix) -> Result<DistMatrix> {
        self.ewise(other, "dist ewise_add")
    }

    /// Element-wise Boolean product (set intersection).
    pub fn ewise_mult(&self, other: &DistMatrix) -> Result<DistMatrix> {
        self.ewise(other, "dist ewise_mult")
    }

    /// Element-wise Boolean difference `C = A ∧ ¬B` (set difference).
    /// Once `other` is aligned to this partition the subtraction is
    /// purely shard-local: each device runs the single-device and-not
    /// (a complement-masked multiply by its own identity) with no peer
    /// traffic.
    pub fn ewise_andnot(&self, other: &DistMatrix) -> Result<DistMatrix> {
        self.check_same_grid(other)?;
        if self.shape() != other.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "dist ewise_andnot",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let resharded;
        let other = if self.offsets == other.offsets {
            other
        } else {
            resharded = other.reshard(self.offsets.clone())?;
            &resharded
        };
        let shards = self
            .shards
            .iter()
            .zip(other.shards.iter())
            .map(|(a, b)| a.ewise_andnot(b))
            .collect::<Result<Vec<_>>>()?;
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: self.ncols,
            shards,
        })
    }

    /// Apply an edge-update batch shard-locally: each device folds the
    /// inserts and deletes that land in its row range into its own
    /// shard (`S' = (S ∪ ins) ∧ ¬del`) and untouched shards are deep
    /// copies — no peer traffic, which is what makes high-frequency
    /// update streams viable on a grid. Pairs use *global* row indices.
    pub fn apply_updates(&self, inserts: &[Pair], deletes: &[Pair]) -> Result<DistMatrix> {
        let oob = |pairs: &[Pair]| {
            pairs
                .iter()
                .find(|&&(r, c)| r >= self.nrows() || c >= self.ncols)
                .copied()
        };
        if let Some((row, col)) = oob(inserts).or_else(|| oob(deletes)) {
            return Err(SpblaError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        let mut shards = Vec::with_capacity(self.grid.len());
        for i in 0..self.grid.len() {
            let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
            let local = |pairs: &[Pair]| -> Vec<Pair> {
                pairs
                    .iter()
                    .filter(|&&(r, _)| r >= lo && r < hi)
                    .map(|&(r, c)| (r - lo, c))
                    .collect()
            };
            let (ins_i, del_i) = (local(inserts), local(deletes));
            let mut shard = self.shards[i].duplicate()?;
            if !ins_i.is_empty() {
                let add = Matrix::from_pairs(self.grid.instance(i), hi - lo, self.ncols, &ins_i)?;
                shard = shard.ewise_add(&add)?;
            }
            if !del_i.is_empty() {
                let del = Matrix::from_pairs(self.grid.instance(i), hi - lo, self.ncols, &del_i)?;
                shard = shard.ewise_andnot(&del)?;
            }
            shards.push(shard);
        }
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets: self.offsets.clone(),
            ncols: self.ncols,
            shards,
        })
    }

    /// Distributed Kronecker product `K = A ⊗ B`. Device `i` all-gathers
    /// `B` once and computes `A_i ⊗ B`, whose rows are the contiguous
    /// global range `offsets[i]·nrows(B) .. offsets[i+1]·nrows(B)` — so
    /// the result is a (generally ragged) block-row distribution with
    /// no post-shuffle.
    pub fn kron(&self, other: &DistMatrix) -> Result<DistMatrix> {
        self.check_same_grid(other)?;
        let nrows = self.nrows() as u64 * other.nrows() as u64;
        let ncols = self.ncols as u64 * other.ncols as u64;
        if nrows > u32::MAX as u64 || ncols > u32::MAX as u64 {
            return Err(SpblaError::InvalidDimension(format!(
                "dist kron result {nrows}x{ncols} overflows the index type"
            )));
        }
        let comm = self.grid.comm();
        let mut shards = Vec::with_capacity(self.grid.len());
        for (i, a_i) in self.shards.iter().enumerate() {
            if a_i.is_empty() {
                // Nothing to expand — skip the all-gather for this slot.
                shards.push(Matrix::zeros(
                    self.grid.instance(i),
                    a_i.nrows() * other.nrows(),
                    self.ncols * other.ncols,
                )?);
                continue;
            }
            let b_full = comm.all_gather(other, i)?;
            shards.push(a_i.kron(&b_full)?);
        }
        let offsets = self.offsets.iter().map(|&o| o * other.nrows()).collect();
        Ok(DistMatrix {
            grid: self.grid.clone(),
            offsets,
            ncols: (ncols) as Index,
            shards,
        })
    }

    /// Global `reduceToColumn`: indices of non-empty rows. Shard-local
    /// reductions concatenate in partition order — no communication.
    pub fn reduce_to_column(&self) -> Result<Vec<Index>> {
        let mut out = Vec::new();
        for (j, shard) in self.shards.iter().enumerate() {
            let base = self.offsets[j];
            out.extend(
                shard
                    .reduce_to_column()?
                    .indices()
                    .iter()
                    .map(|&i| i + base),
            );
        }
        Ok(out)
    }

    /// Global `reduceToRow`: indices of non-empty columns. Each device
    /// reduces its shard to a 1×ncols row, and the rows merge-reduce
    /// onto device 0.
    pub fn reduce_to_row(&self) -> Result<Vec<Index>> {
        let mut partials: Vec<Matrix> = Vec::with_capacity(self.grid.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let cols = shard.reduce_to_row()?;
            let pairs: Vec<Pair> = cols.indices().iter().map(|&j| (0, j)).collect();
            partials.push(Matrix::from_pairs(
                self.grid.instance(i),
                1,
                self.ncols,
                &pairs,
            )?);
        }
        let refs: Vec<(usize, &Matrix)> = partials.iter().enumerate().collect();
        let merged = self.grid.comm().merge_reduce(&refs, 0)?;
        Ok(merged.read().into_iter().map(|(_, j)| j).collect())
    }

    /// Distributed semi-naïve transitive closure: per-shard frontiers
    /// `Δ_i`, one *fused* complement-masked distributed SpGEMM per
    /// round (which all-gathers only the round's delta shards — the
    /// small frontier, never the dense closure). The fused kernel
    /// accumulates fresh facts into `C_i` in the same launch and
    /// returns the termination signal, so no round ever materialises
    /// the intermediate product or re-reduces `nnz`. Bit-identical to
    /// the single-device `closure_delta`.
    pub fn closure_delta(&self) -> Result<DistMatrix> {
        self.check_square("dist closure")?;
        let mut c = self.duplicate()?;
        let mut delta = self.duplicate()?;
        while delta.nnz() > 0 {
            let step = c.mxm_accum_compmask(&c, &delta, true)?;
            if step.fresh_nnz == 0 {
                break;
            }
            c = step.acc;
            delta = step.fresh.expect("fresh requested");
        }
        Ok(c)
    }

    /// Distributed naive squaring closure (`C ← C + C·C` to fixpoint) —
    /// the baseline schedule for the scaling ablation: every round
    /// all-gathers the whole current closure instead of the frontier.
    pub fn closure_squaring(&self) -> Result<DistMatrix> {
        self.check_square("dist closure")?;
        let mut c = self.duplicate()?;
        loop {
            let before = c.nnz();
            let sq = c.mxm(&c)?;
            c = c.ewise_add(&sq)?;
            if c.nnz() == before {
                return Ok(c);
            }
        }
    }

    fn check_square(&self, op: &'static str) -> Result<()> {
        if self.nrows() != self.ncols {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        Ok(())
    }
}

fn validate_offsets(offsets: &[Index], parts: usize, nrows: Index) -> Result<()> {
    let ok = offsets.len() == parts + 1
        && offsets.first() == Some(&0)
        && offsets.last() == Some(&nrows)
        && offsets.windows(2).all(|w| w[0] <= w[1]);
    if !ok {
        return Err(SpblaError::InvalidDimension(format!(
            "bad shard offsets {offsets:?} for {parts} devices over {nrows} rows"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_core::Instance;

    fn pseudo_pairs(n: u32, nnz: usize, seed: u64) -> Vec<Pair> {
        let mut s = seed | 1;
        (0..nnz)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                let a = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                ((a >> 32) as u32 % n, a as u32 % n)
            })
            .collect()
    }

    fn reference(host: &Instance, n: u32, pairs: &[Pair]) -> Matrix {
        Matrix::from_pairs(host, n, n, pairs).unwrap()
    }

    #[test]
    fn shard_roundtrip_balanced_and_ragged() {
        let grid = DeviceGrid::new(3);
        let pairs = pseudo_pairs(10, 30, 1);
        let csr = CsrBool::from_pairs(10, 10, &pairs).unwrap();
        let d = DistMatrix::from_csr(&grid, &csr).unwrap();
        assert_eq!(d.gather(), csr);
        assert_eq!(d.offsets(), &[0, 4, 7, 10]);
        // Ragged: all rows on the middle device.
        let ragged = DistMatrix::from_csr_with_offsets(&grid, &csr, vec![0, 0, 10, 10]).unwrap();
        assert_eq!(ragged.gather(), csr);
        assert_eq!(ragged.shards()[0].nrows(), 0);
        assert_eq!(ragged.nnz(), csr.nnz());
    }

    #[test]
    fn bad_offsets_rejected() {
        let grid = DeviceGrid::new(2);
        let csr = CsrBool::zeros(5, 5);
        for bad in [vec![0, 5], vec![0, 3, 4], vec![0, 4, 3], vec![1, 3, 5]] {
            assert!(DistMatrix::from_csr_with_offsets(&grid, &csr, bad).is_err());
        }
    }

    #[test]
    fn dist_mxm_matches_single_device() {
        let n = 17u32;
        let pa = pseudo_pairs(n, 60, 3);
        let pb = pseudo_pairs(n, 60, 4);
        let host = Instance::cpu();
        let expect = reference(&host, n, &pa)
            .mxm(&reference(&host, n, &pb))
            .unwrap()
            .read();
        for devices in [1, 2, 3, 7] {
            let grid = DeviceGrid::new(devices);
            let a = DistMatrix::from_pairs(&grid, n, n, &pa).unwrap();
            let b = DistMatrix::from_pairs(&grid, n, n, &pb).unwrap();
            let c = a.mxm(&b).unwrap();
            assert_eq!(c.gather().to_pairs(), expect, "{devices} devices");
            if devices > 1 {
                assert!(grid.total_stats().d2d_bytes > 0, "rounds must be metered");
            }
        }
    }

    #[test]
    fn dist_masked_variants_match_single_device() {
        let n = 12u32;
        let pa = pseudo_pairs(n, 50, 7);
        let pb = pseudo_pairs(n, 50, 8);
        let pm = pseudo_pairs(n, 30, 9);
        let host = Instance::cpu();
        let (ra, rb, rm) = (
            reference(&host, n, &pa),
            reference(&host, n, &pb),
            reference(&host, n, &pm),
        );
        let kept = ra.mxm_masked(&rb, &rm).unwrap().read();
        let fresh = ra.mxm_compmask(&rb, &rm).unwrap().read();
        let grid = DeviceGrid::new(3);
        let a = DistMatrix::from_pairs(&grid, n, n, &pa).unwrap();
        let b = DistMatrix::from_pairs(&grid, n, n, &pb).unwrap();
        let m = DistMatrix::from_pairs(&grid, n, n, &pm).unwrap();
        assert_eq!(a.mxm_masked(&b, &m).unwrap().gather().to_pairs(), kept);
        assert_eq!(a.mxm_compmask(&b, &m).unwrap().gather().to_pairs(), fresh);
    }

    #[test]
    fn ewise_aligns_ragged_partitions() {
        let n = 9u32;
        let pa = pseudo_pairs(n, 25, 11);
        let pb = pseudo_pairs(n, 25, 12);
        let host = Instance::cpu();
        let expect = reference(&host, n, &pa)
            .ewise_add(&reference(&host, n, &pb))
            .unwrap()
            .read();
        let grid = DeviceGrid::new(2);
        let a = DistMatrix::from_pairs(&grid, n, n, &pa).unwrap();
        let csr_b = CsrBool::from_pairs(n, n, &pb).unwrap();
        let b = DistMatrix::from_csr_with_offsets(&grid, &csr_b, vec![0, 2, 9]).unwrap();
        assert_ne!(a.offsets(), b.offsets());
        assert_eq!(a.ewise_add(&b).unwrap().gather().to_pairs(), expect);
    }

    #[test]
    fn kron_produces_scaled_ragged_offsets() {
        let grid = DeviceGrid::new(2);
        let pa = [(0u32, 1u32), (2, 0)];
        let pb = [(0u32, 0u32), (1, 1)];
        let a = DistMatrix::from_pairs(&grid, 3, 3, &pa).unwrap();
        let b = DistMatrix::from_pairs(&grid, 2, 2, &pb).unwrap();
        let k = a.kron(&b).unwrap();
        let host = Instance::cpu();
        let ra = Matrix::from_pairs(&host, 3, 3, &pa).unwrap();
        let rb = Matrix::from_pairs(&host, 2, 2, &pb).unwrap();
        let expect = ra.kron(&rb).unwrap().read();
        assert_eq!(k.gather().to_pairs(), expect);
        assert_eq!(k.offsets(), &[0, 4, 6]); // a offsets [0,2,3] × nrows(b)=2
    }

    #[test]
    fn reductions_match_host() {
        let n = 11u32;
        let pairs = pseudo_pairs(n, 30, 21);
        let csr = CsrBool::from_pairs(n, n, &pairs).unwrap();
        let grid = DeviceGrid::new(3);
        let d = DistMatrix::from_csr(&grid, &csr).unwrap();
        assert_eq!(d.reduce_to_column().unwrap(), csr.reduce_to_column());
        assert_eq!(d.reduce_to_row().unwrap(), csr.reduce_to_row());
    }

    #[test]
    fn closure_delta_matches_single_device_and_meters_frontier_only() {
        let n = 20u32;
        let pairs = pseudo_pairs(n, 40, 31);
        let host = Instance::cpu();
        let expect = reference(&host, n, &pairs)
            .transitive_closure()
            .unwrap()
            .read();
        for devices in [1, 2, 4] {
            let grid = DeviceGrid::new(devices);
            let d = DistMatrix::from_pairs(&grid, n, n, &pairs).unwrap();
            let c = d.closure_delta().unwrap();
            assert_eq!(c.gather().to_pairs(), expect, "{devices} devices");
        }
        // The naive distributed schedule pays strictly more comm than
        // the delta schedule on a multi-round instance.
        let chain: Vec<Pair> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g_delta = DeviceGrid::new(4);
        DistMatrix::from_pairs(&g_delta, n, n, &chain)
            .unwrap()
            .closure_delta()
            .unwrap();
        let g_naive = DeviceGrid::new(4);
        DistMatrix::from_pairs(&g_naive, n, n, &chain)
            .unwrap()
            .closure_squaring()
            .unwrap();
        assert!(
            g_naive.total_stats().d2d_bytes > g_delta.total_stats().d2d_bytes,
            "naive {} <= delta {}",
            g_naive.total_stats().d2d_bytes,
            g_delta.total_stats().d2d_bytes
        );
    }

    #[test]
    fn ewise_andnot_matches_host_difference() {
        let n = 13u32;
        let pa = pseudo_pairs(n, 45, 41);
        let pb = pseudo_pairs(n, 30, 42);
        let sa: std::collections::BTreeSet<Pair> = pa.iter().copied().collect();
        let sb: std::collections::BTreeSet<Pair> = pb.iter().copied().collect();
        let expect: Vec<Pair> = sa.difference(&sb).copied().collect();
        for devices in [1, 3] {
            let grid = DeviceGrid::new(devices);
            let a = DistMatrix::from_pairs(&grid, n, n, &pa).unwrap();
            let b = DistMatrix::from_pairs(&grid, n, n, &pb).unwrap();
            let d2d_before = grid.total_stats().d2d_bytes;
            let c = a.ewise_andnot(&b).unwrap();
            assert_eq!(c.gather().to_pairs(), expect, "{devices} devices");
            // Aligned partitions: the and-not is shard-local.
            assert_eq!(grid.total_stats().d2d_bytes, d2d_before);
        }
    }

    #[test]
    fn apply_updates_is_shard_local() {
        let n = 16u32;
        let base = pseudo_pairs(n, 40, 51);
        let ins = [(0u32, 15u32), (7, 7), (15, 0)];
        let del: Vec<Pair> = base.iter().take(5).copied().collect();
        let mut expect: std::collections::BTreeSet<Pair> = base.iter().copied().collect();
        expect.extend(ins);
        for d in &del {
            expect.remove(d);
        }
        let expect: Vec<Pair> = expect.into_iter().collect();
        for devices in [1, 2, 4] {
            let grid = DeviceGrid::new(devices);
            let m = DistMatrix::from_pairs(&grid, n, n, &base).unwrap();
            let d2d_before = grid.total_stats().d2d_bytes;
            let updated = m.apply_updates(&ins, &del).unwrap();
            assert_eq!(updated.gather().to_pairs(), expect, "{devices} devices");
            assert_eq!(
                grid.total_stats().d2d_bytes,
                d2d_before,
                "batch application must not move data between devices"
            );
            // The original is untouched (copy-on-write discipline).
            assert_eq!(m.nnz(), CsrBool::from_pairs(n, n, &base).unwrap().nnz());
        }
        // Out-of-bounds pairs are rejected.
        let grid = DeviceGrid::new(2);
        let m = DistMatrix::from_pairs(&grid, n, n, &base).unwrap();
        assert!(matches!(
            m.apply_updates(&[(n, 0)], &[]),
            Err(SpblaError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn apply_updates_empty_batch_is_deep_copy() {
        let n = 16u32;
        let base = pseudo_pairs(n, 40, 52);
        for devices in [1, 2, 4] {
            let grid = DeviceGrid::new(devices);
            let m = DistMatrix::from_pairs(&grid, n, n, &base).unwrap();
            let d2d_before = grid.total_stats().d2d_bytes;
            let updated = m.apply_updates(&[], &[]).unwrap();
            // Same contents, new shards — not aliases of the original.
            assert_eq!(updated.gather().to_pairs(), m.gather().to_pairs());
            assert_eq!(grid.total_stats().d2d_bytes, d2d_before);
            let add = DistMatrix::from_pairs(&grid, n, n, &[(0, 0)]).unwrap();
            let poked = updated.ewise_add(&add).unwrap();
            assert_eq!(m.nnz() + 1, poked.nnz());
            assert_eq!(
                m.gather().to_pairs(),
                CsrBool::from_pairs(n, n, &base).unwrap().to_pairs()
            );
        }
    }

    #[test]
    fn apply_updates_duplicates_and_conflicts() {
        let n = 16u32;
        let base = [(0u32, 1u32), (3, 3), (8, 9)];
        for devices in [1, 2, 4] {
            let grid = DeviceGrid::new(devices);
            let m = DistMatrix::from_pairs(&grid, n, n, &base).unwrap();
            // Duplicate inserts collapse; inserting a present edge is
            // idempotent.
            let dup = m.apply_updates(&[(5, 5), (5, 5), (0, 1)], &[]).unwrap();
            assert_eq!(
                dup.gather().to_pairs(),
                vec![(0, 1), (3, 3), (5, 5), (8, 9)]
            );
            // Insert-then-delete of the same edge within one batch:
            // `S' = (S ∪ ins) ∧ ¬del`, so the delete wins whether or
            // not the edge pre-existed.
            let net = m
                .apply_updates(&[(5, 5), (0, 1)], &[(5, 5), (0, 1)])
                .unwrap();
            assert_eq!(net.gather().to_pairs(), vec![(3, 3), (8, 9)]);
            // Deleting an absent edge is a no-op.
            let noop = m.apply_updates(&[], &[(14, 14)]).unwrap();
            assert_eq!(noop.gather().to_pairs(), base.to_vec());
        }
    }

    #[test]
    fn cross_grid_operands_rejected() {
        let g1 = DeviceGrid::new(2);
        let g2 = DeviceGrid::new(2);
        let a = DistMatrix::from_pairs(&g1, 4, 4, &[(0, 1)]).unwrap();
        let b = DistMatrix::from_pairs(&g2, 4, 4, &[(1, 2)]).unwrap();
        assert!(matches!(a.mxm(&b), Err(SpblaError::BackendMismatch)));
        assert!(matches!(a.ewise_add(&b), Err(SpblaError::BackendMismatch)));
    }
}
