//! The device grid: N independent simulated devices, one instance each.

use std::sync::Arc;

use spbla_core::{Backend, Instance, Result, SpblaError};
use spbla_gpu_sim::{Device, DeviceConfig, DeviceStats};

use crate::comm::Comm;

#[derive(Debug)]
struct GridInner {
    instances: Vec<Instance>,
}

/// A grid of N simulated devices. Each slot is an [`Instance`] owning
/// its *own* [`Device`] — separate memory capacity, allocation pool and
/// statistics — so distributed schedules can be audited per device.
/// Cheap to clone; clones share the same devices.
#[derive(Debug, Clone)]
pub struct DeviceGrid {
    inner: Arc<GridInner>,
}

impl DeviceGrid {
    /// A grid of `n` cuBool-style (CSR) devices with default capacity.
    pub fn new(n: usize) -> Self {
        DeviceGrid::uniform(n, Backend::CudaSim, DeviceConfig::default())
            .expect("cuda-sim grid always builds")
    }

    /// A grid of `n` identical devices running `backend`. Only the
    /// device-backed backends can form a grid.
    pub fn uniform(n: usize, backend: Backend, config: DeviceConfig) -> Result<Self> {
        DeviceGrid::with_configs(backend, vec![config; n])
    }

    /// A grid with one device per entry of `configs` — heterogeneous
    /// capacities are how out-of-memory failure injection and ragged
    /// real-world fleets are modelled.
    pub fn with_configs(backend: Backend, configs: Vec<DeviceConfig>) -> Result<Self> {
        if configs.is_empty() {
            return Err(SpblaError::InvalidDimension(
                "device grid needs at least one device".into(),
            ));
        }
        let instances = configs
            .into_iter()
            .map(|cfg| {
                let device = Device::new(cfg);
                match backend {
                    Backend::CudaSim => Ok(Instance::cuda_sim_on(device)),
                    Backend::ClSim => Ok(Instance::cl_sim_on(device)),
                    other => Err(SpblaError::InvalidDimension(format!(
                        "backend {other} has no device; grids need cuda-sim or cl-sim"
                    ))),
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DeviceGrid {
            inner: Arc::new(GridInner { instances }),
        })
    }

    /// Number of devices in the grid.
    pub fn len(&self) -> usize {
        self.inner.instances.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.inner.instances.is_empty()
    }

    /// The instance owning device `i`.
    pub fn instance(&self, i: usize) -> &Instance {
        &self.inner.instances[i]
    }

    /// The device in slot `i`.
    pub fn device(&self, i: usize) -> &Device {
        self.inner.instances[i]
            .device()
            .expect("grid instances are device-backed")
    }

    /// The communicator for this grid.
    pub fn comm(&self) -> Comm<'_> {
        Comm::new(self)
    }

    /// Per-device counter snapshots, in slot order.
    pub fn stats(&self) -> Vec<DeviceStats> {
        (0..self.len()).map(|i| self.device(i).stats()).collect()
    }

    /// Counters summed across the grid (peaks are summed too: the total
    /// is "bytes of silicon touched", not a concurrent high-water mark).
    pub fn total_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for s in self.stats() {
            total.bytes_in_use += s.bytes_in_use;
            total.peak_bytes += s.peak_bytes;
            total.allocations += s.allocations;
            total.launches += s.launches;
            total.blocks_executed += s.blocks_executed;
            total.h2d_bytes += s.h2d_bytes;
            total.d2h_bytes += s.d2h_bytes;
            total.d2d_bytes += s.d2d_bytes;
            total.accum_insertions += s.accum_insertions;
        }
        total
    }

    /// The largest per-device peak across the grid — the number that
    /// must shrink as the grid grows for a schedule to claim it scales
    /// past a single device's memory.
    pub fn max_peak_bytes(&self) -> usize {
        self.stats().iter().map(|s| s.peak_bytes).max().unwrap_or(0)
    }

    /// Rebase every device's peak watermark to its current usage.
    pub fn reset_peaks(&self) {
        for i in 0..self.len() {
            self.device(i).reset_peak();
        }
    }

    /// Whether two grid handles refer to the same grid.
    pub fn same_as(&self, other: &DeviceGrid) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Balanced contiguous block-row partition: `nrows` rows over `parts`
/// devices, first `nrows % parts` shards one row taller. Returns the
/// `parts + 1` shard boundaries (shard `i` owns `offsets[i]..offsets[i+1]`;
/// shards past `nrows` are empty).
pub fn block_row_offsets(nrows: u32, parts: usize) -> Vec<u32> {
    let p = parts.max(1) as u32;
    let base = nrows / p;
    let extra = nrows % p;
    let mut offsets = Vec::with_capacity(parts + 1);
    let mut cursor = 0u32;
    offsets.push(0);
    for i in 0..p {
        cursor += base + u32::from(i < extra);
        offsets.push(cursor);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builds_independent_devices() {
        let grid = DeviceGrid::new(3);
        assert_eq!(grid.len(), 3);
        // Each slot has its own device and instance.
        assert!(!grid.instance(0).same_as(grid.instance(1)));
        grid.device(0).count_d2d(100);
        assert_eq!(grid.device(1).stats().d2d_bytes, 0);
        assert_eq!(grid.total_stats().d2d_bytes, 100);
    }

    #[test]
    fn heterogeneous_capacities_are_per_device() {
        let grid = DeviceGrid::with_configs(
            Backend::CudaSim,
            vec![
                DeviceConfig {
                    memory_capacity: 1 << 10,
                    ..DeviceConfig::default()
                },
                DeviceConfig::default(),
            ],
        )
        .unwrap();
        assert_eq!(grid.device(0).config().memory_capacity, 1 << 10);
        assert_eq!(grid.device(1).config().memory_capacity, 8 << 30);
    }

    #[test]
    fn cpu_backends_cannot_form_grids() {
        assert!(DeviceGrid::uniform(2, Backend::Cpu, DeviceConfig::default()).is_err());
        assert!(DeviceGrid::with_configs(Backend::CudaSim, vec![]).is_err());
    }

    #[test]
    fn block_rows_are_balanced_and_ragged_tail_is_empty() {
        assert_eq!(block_row_offsets(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(block_row_offsets(12, 4), vec![0, 3, 6, 9, 12]);
        // More devices than rows: trailing shards own zero rows.
        assert_eq!(block_row_offsets(2, 4), vec![0, 1, 2, 2, 2]);
        assert_eq!(block_row_offsets(0, 2), vec![0, 0, 0]);
    }
}
