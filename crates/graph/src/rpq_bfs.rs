//! Single-source RPQ by multi-frontier BFS over the product machine.
//!
//! Graph-database engines rarely need the all-pairs index: a query has a
//! bound source (or small source set). This engine keeps one sparse
//! Boolean [`Vector`] per automaton state and pushes frontiers with
//! `vxm` — linear in the touched edges, no Kronecker product, no
//! closure. Complements [`crate::rpq::RpqIndex`] the way `vxm`-BFS
//! complements all-pairs transitive closure.

use rustc_hash::FxHashMap;
use spbla_core::{Instance, Matrix, Result, Vector};
use spbla_lang::glushkov::glushkov;
use spbla_lang::{Nfa, Regex, Symbol};

use crate::graph::LabeledGraph;

/// Vertices reachable from any vertex in `sources` along a word of the
/// query language (ε makes every source an answer).
pub fn rpq_from_sources(
    graph: &LabeledGraph,
    regex: &Regex,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<u32>> {
    let nfa = glushkov(regex);
    rpq_from_sources_nfa(graph, &nfa, sources, inst)
}

/// [`rpq_from_sources`] with an explicit ε-free NFA.
pub fn rpq_from_sources_nfa(
    graph: &LabeledGraph,
    nfa: &Nfa,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<u32>> {
    let by_symbol = nfa.transitions_by_symbol();
    let mut mats: FxHashMap<Symbol, Matrix> = FxHashMap::default();
    for &sym in by_symbol.keys() {
        if graph.label_count(sym) > 0 {
            mats.insert(sym, graph.label_matrix(inst, sym)?);
        }
    }
    rpq_from_sources_mats(&mats, graph.n_vertices(), nfa, sources, inst)
}

/// [`rpq_from_sources_nfa`] over label matrices already resident on
/// `inst`'s device — the entry point the engine planner uses when it
/// routes a small source set to the frontier path instead of the full
/// product closure. Frontier pushes go through
/// [`Matrix::frontier_step`], which picks push or pull per round from
/// the frontier's measured density.
pub fn rpq_from_sources_mats(
    mats: &FxHashMap<Symbol, Matrix>,
    n: u32,
    nfa: &Nfa,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<u32>> {
    let k = nfa.n_states() as usize;
    let by_symbol = nfa.transitions_by_symbol();
    let matrices: Vec<(Symbol, &Matrix)> = by_symbol
        .keys()
        .filter_map(|&sym| mats.get(&sym).map(|m| (sym, m)))
        .collect();

    // visited[q] = vertices ever reached in automaton state q.
    let mut visited: Vec<Vector> = vec![Vector::zeros(inst, n); k];
    let mut frontier: Vec<Vector> = vec![Vector::zeros(inst, n); k];
    let src = Vector::from_indices(inst, n, sources)?;
    for &q0 in nfa.start_states() {
        visited[q0 as usize] = src.clone();
        frontier[q0 as usize] = src.clone();
    }

    let mut answers = Vector::zeros(inst, n);
    if nfa.accepts_epsilon() {
        answers = answers.ewise_add(&src)?;
    }

    loop {
        let mut next: Vec<Vector> = vec![Vector::zeros(inst, n); k];
        let mut any = false;
        for (sym, mat) in &matrices {
            for &(f, t) in &by_symbol[sym] {
                if frontier[f as usize].nnz() == 0 {
                    continue;
                }
                let pushed = mat.frontier_step(&frontier[f as usize])?;
                if pushed.nnz() > 0 {
                    next[t as usize] = next[t as usize].ewise_add(&pushed)?;
                }
            }
        }
        for q in 0..k {
            let fresh = next[q].difference(&visited[q])?;
            if fresh.nnz() > 0 {
                any = true;
                visited[q] = visited[q].ewise_add(&fresh)?;
                if nfa.final_states().binary_search(&(q as u32)).is_ok() {
                    answers = answers.ewise_add(&fresh)?;
                }
            }
            frontier[q] = fresh;
        }
        if !any {
            break;
        }
    }

    Ok(answers.indices().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::{RpqIndex, RpqOptions};
    use spbla_lang::SymbolTable;

    fn setup() -> (SymbolTable, LabeledGraph) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g = LabeledGraph::from_triples(
            6,
            [
                (0, a, 1),
                (1, b, 2),
                (2, b, 3),
                (1, a, 3),
                (3, a, 4),
                (5, b, 0),
            ],
        );
        (t, g)
    }

    #[test]
    fn agrees_with_all_pairs_index() {
        let (mut t, g) = setup();
        for q in ["a . b*", "(a | b)+", "a*", "a? . b*"] {
            let r = Regex::parse(q, &mut t).unwrap();
            for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
                let idx = RpqIndex::build(&g, &r, &inst, &RpqOptions::default()).unwrap();
                let all = idx.reachable_pairs().unwrap();
                for src in 0..g.n_vertices() {
                    let expect: Vec<u32> = all
                        .iter()
                        .filter(|&&(u, _)| u == src)
                        .map(|&(_, v)| v)
                        .collect();
                    let got = rpq_from_sources(&g, &r, &[src], &inst).unwrap();
                    assert_eq!(got, expect, "query {q} source {src}");
                }
            }
        }
    }

    #[test]
    fn multi_source_union() {
        let (mut t, g) = setup();
        let r = Regex::parse("a . b", &mut t).unwrap();
        let inst = Instance::cpu();
        let from0 = rpq_from_sources(&g, &r, &[0], &inst).unwrap();
        let from5 = rpq_from_sources(&g, &r, &[5], &inst).unwrap();
        let both = rpq_from_sources(&g, &r, &[0, 5], &inst).unwrap();
        let mut expect = [from0, from5].concat();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(both, expect);
    }

    #[test]
    fn empty_sources_and_cycles_terminate() {
        let (mut t, g) = setup();
        let r = Regex::parse("(a | b)*", &mut t).unwrap();
        let inst = Instance::cpu();
        assert!(rpq_from_sources(&g, &r, &[], &inst).unwrap().is_empty());
        // Star query on a graph with cycles must terminate.
        let reached = rpq_from_sources(&g, &r, &[5], &inst).unwrap();
        assert!(reached.contains(&5)); // ε
        assert!(reached.contains(&3));
    }
}
