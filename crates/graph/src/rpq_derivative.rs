//! Derivative-based RPQ evaluation — the competing style the paper's
//! related work cites (Nolé & Sartiani's Pregel evaluator): propagate
//! `(source, residual-regex)` facts along edges, taking Brzozowski
//! derivatives, instead of building a matrix index. Serves as an
//! independent baseline for both correctness tests and the ablation
//! benches (index-based vs automaton-free evaluation).

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_lang::derivative::derivative;
use spbla_lang::{Regex, Symbol};

use crate::graph::LabeledGraph;

/// Interned residual-regex states discovered during evaluation.
struct RegexSpace {
    states: Vec<Regex>,
    ids: FxHashMap<Regex, u32>,
    /// Memoised transitions `(state, symbol) → state` (`None` = ∅).
    delta: FxHashMap<(u32, Symbol), Option<u32>>,
}

impl RegexSpace {
    fn new(start: Regex) -> (Self, u32) {
        let mut space = RegexSpace {
            states: Vec::new(),
            ids: FxHashMap::default(),
            delta: FxHashMap::default(),
        };
        let id = space.intern(start);
        (space, id)
    }

    fn intern(&mut self, r: Regex) -> u32 {
        if let Some(&id) = self.ids.get(&r) {
            return id;
        }
        let id = self.states.len() as u32;
        self.ids.insert(r.clone(), id);
        self.states.push(r);
        id
    }

    fn step(&mut self, state: u32, sym: Symbol) -> Option<u32> {
        if let Some(&cached) = self.delta.get(&(state, sym)) {
            return cached;
        }
        let d = derivative(&self.states[state as usize], sym);
        let result = if d == Regex::Empty {
            None
        } else {
            Some(self.intern(d))
        };
        self.delta.insert((state, sym), result);
        result
    }

    fn nullable(&self, state: u32) -> bool {
        self.states[state as usize].nullable()
    }
}

/// All `(u, v)` pairs connected by a word of `regex`'s language
/// (ε contributes the diagonal) — evaluated by derivative propagation,
/// no matrices involved.
pub fn rpq_by_derivatives(graph: &LabeledGraph, regex: &Regex) -> Vec<(u32, u32)> {
    let (mut space, start) = RegexSpace::new(regex.clone());
    let labels = graph.labels();
    let mut result: FxHashSet<(u32, u32)> = FxHashSet::default();
    if regex.nullable() {
        for v in 0..graph.n_vertices() {
            result.insert((v, v));
        }
    }

    // Pre-group edges by source for O(out-degree) expansion.
    let mut out_edges: FxHashMap<u32, Vec<(Symbol, u32)>> = FxHashMap::default();
    for &l in &labels {
        for &(u, v) in graph.edges_of(l) {
            out_edges.entry(u).or_default().push((l, v));
        }
    }

    for src in 0..graph.n_vertices() {
        let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default(); // (state, vertex)
        let mut stack: Vec<(u32, u32)> = vec![(start, src)];
        seen.insert((start, src));
        while let Some((state, v)) = stack.pop() {
            let Some(edges) = out_edges.get(&v) else {
                continue;
            };
            for &(sym, to) in edges.clone().iter() {
                if let Some(next) = space.step(state, sym) {
                    if seen.insert((next, to)) {
                        if space.nullable(next) {
                            result.insert((src, to));
                        }
                        stack.push((next, to));
                    } else if space.nullable(next) {
                        result.insert((src, to));
                    }
                }
            }
        }
    }

    let mut out: Vec<(u32, u32)> = result.into_iter().collect();
    out.sort_unstable();
    out
}

/// Number of distinct residual regexes materialised while evaluating —
/// the derivative analogue of the automaton state count (reported by the
/// ablation bench).
pub fn derivative_state_count(graph: &LabeledGraph, regex: &Regex) -> usize {
    let (mut space, start) = RegexSpace::new(regex.clone());
    // Drive the same exploration, counting states.
    let labels = graph.labels();
    let mut seen_states: FxHashSet<u32> = FxHashSet::default();
    seen_states.insert(start);
    let mut frontier = vec![start];
    while let Some(s) = frontier.pop() {
        for &l in &labels {
            if let Some(next) = space.step(s, l) {
                if seen_states.insert(next) {
                    frontier.push(next);
                }
            }
        }
    }
    seen_states.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::{RpqIndex, RpqOptions};
    use spbla_core::Instance;
    use spbla_lang::SymbolTable;

    fn setup() -> (SymbolTable, LabeledGraph) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g =
            LabeledGraph::from_triples(5, [(0, a, 1), (1, b, 2), (2, b, 3), (1, a, 3), (3, a, 0)]);
        (t, g)
    }

    #[test]
    fn matches_matrix_index() {
        let (mut t, g) = setup();
        for q in ["a . b*", "(a | b)+", "a*", "a? . b*", "(a . b)+"] {
            let r = Regex::parse(q, &mut t).unwrap();
            let by_deriv = rpq_by_derivatives(&g, &r);
            let idx = RpqIndex::build(&g, &r, &Instance::cpu(), &RpqOptions::default()).unwrap();
            assert_eq!(by_deriv, idx.reachable_pairs().unwrap(), "query {q}");
        }
    }

    #[test]
    fn state_space_is_finite() {
        let (mut t, g) = setup();
        let r = Regex::parse("(a | b)* . a . (a | b)", &mut t).unwrap();
        let states = derivative_state_count(&g, &r);
        assert!(states >= 2);
        assert!(
            states < 64,
            "derivative space should stay small, got {states}"
        );
    }

    #[test]
    fn empty_graph_and_query() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("a", &mut t).unwrap();
        let g = LabeledGraph::new(3);
        assert!(rpq_by_derivatives(&g, &r).is_empty());
        let eps = Regex::Epsilon;
        assert_eq!(rpq_by_derivatives(&g, &eps).len(), 3); // diagonal
    }
}
