//! Transitive-closure schedules.
//!
//! The paper singles out *incremental transitive closure* as the
//! bottleneck between the tensor CFPQ algorithm and a truly subcubic
//! solution; the CFPQ fixpoint recomputes a closure after each batch of
//! new edges, so how that recomputation is scheduled dominates runtime.
//! The schedules below are ablated against each other (E10.4, E10.8);
//! [`closure_delta`] — semi-naïve iteration over the frontier with a
//! complemented-mask SpGEMM — is the one the hot paths use.

use spbla_core::{CsrBool, Matrix, Result};
use spbla_multidev::{DeviceGrid, DistMatrix};

/// Closure by repeated squaring: `C ← C + C·C` until fixpoint —
/// O(log diameter) multiplications of growing density. Kept as the
/// naive baseline for the schedule ablation; the hot paths use
/// [`closure_delta`].
pub fn closure_squaring(adjacency: &Matrix) -> Result<Matrix> {
    let mut c = adjacency.duplicate()?;
    loop {
        let before = c.nnz();
        c = c.mxm_acc(&c, &c)?;
        if c.nnz() == before {
            return Ok(c);
        }
    }
}

/// Masked squaring: `C ← C + ((C·C) ∧ ¬C)` — the naive schedule's
/// operands, but the complemented-mask SpGEMM discards already-known
/// pairs inside the kernel instead of re-materialising them. The
/// middle rung of the schedule ablation between [`closure_squaring`]
/// and [`closure_delta`]: it saves accumulator insertions but still
/// multiplies the full closure each round.
pub fn closure_masked(adjacency: &Matrix) -> Result<Matrix> {
    let mut c = adjacency.duplicate()?;
    loop {
        // Fused `(C·C) ∧ ¬C` + accumulate; no delta needed next round,
        // so the fresh matrix is never materialised.
        let step = c.mxm_accum_compmask(&c, &c, false)?;
        if step.fresh_nnz == 0 {
            return Ok(c);
        }
        c = step.acc;
    }
}

/// Semi-naïve closure: track the frontier Δ of pairs discovered last
/// round and compute only `N = (C·Δ) ∧ ¬C` each round, stopping when Δ
/// is empty. One delta-sided multiply per round preserves the doubling
/// of [`closure_squaring`]: a shortest path of length `m ∈ (2ᵏ, 2ᵏ⁺¹]`
/// splits into a prefix of `⌊m/2⌋ ≤ 2ᵏ` (already in `C`) and a suffix
/// of `⌈m/2⌉ ∈ (2ᵏ⁻¹, 2ᵏ]` (discovered exactly last round, so in `Δ`).
/// The complemented-mask SpGEMM rejects already-known pairs inside the
/// kernel, so per-round cost is proportional to the product touching
/// *new* pairs rather than the full `C·C`.
pub fn closure_delta(adjacency: &Matrix) -> Result<Matrix> {
    let mut c = adjacency.duplicate()?;
    let mut delta = adjacency.duplicate()?;
    while delta.nnz() > 0 {
        // One fused kernel per round: product, complement-mask,
        // accumulate, and the termination count — the delta comes back
        // as the kernel's fresh output, never as a standalone product.
        let step = c.mxm_accum_compmask(&c, &delta, true)?;
        if step.fresh_nnz == 0 {
            break;
        }
        c = step.acc;
        delta = step.fresh.expect("fresh requested");
    }
    Ok(c)
}

/// Distributed semi-naïve closure: shard the adjacency by block-rows
/// over `grid` and run the [`closure_delta`] schedule with distributed
/// kernels — each round's complement-masked SpGEMM all-gathers only the
/// round's *frontier* shards (never the dense closure), and the union
/// into `C` stays shard-local. The gathered result is bit-identical to
/// the single-device [`closure_delta`] on any device count.
pub fn closure_delta_dist(adjacency: &CsrBool, grid: &DeviceGrid) -> Result<CsrBool> {
    let sharded = DistMatrix::from_csr(grid, adjacency)?;
    Ok(sharded.closure_delta()?.gather())
}

/// [`closure_delta_dist`] on a fresh grid of `devices` default CSR
/// devices; returns the closure and the grid so callers can audit the
/// per-device counters the run produced.
pub fn closure_delta_on_devices(
    adjacency: &CsrBool,
    devices: usize,
) -> Result<(CsrBool, DeviceGrid)> {
    let grid = DeviceGrid::new(devices);
    let closure = closure_delta_dist(adjacency, &grid)?;
    Ok((closure, grid))
}

/// Closure by single-step relaxation: `C ← C + C·A` until fixpoint —
/// O(diameter) multiplications, each against the sparse original.
pub fn closure_single_step(adjacency: &Matrix) -> Result<Matrix> {
    let mut c = adjacency.duplicate()?;
    loop {
        let before = c.nnz();
        c = c.mxm_acc(&c, adjacency)?;
        if c.nnz() == before {
            return Ok(c);
        }
    }
}

/// Incremental closure: given the closure `t` of some graph and a batch
/// of new edges `delta`, compute the closure of the union.
///
/// New reachability can only arise from paths alternating old-closure
/// segments and Δ-edges, so each round multiplies by the *sparse* Δ:
/// `N ← ((T + I)·Δ·(T + I)) ∧ ¬T`, `T ← T + N`, until `N` is empty.
/// Every round's multiplier is the original Δ — never the (possibly
/// dense) pairs it uncovered — so per-round cost stays proportional to
/// `nnz(Δ)`; paths through several Δ-edges are still found because `T`
/// grows between rounds. The identity is built once per call and reused
/// across rounds, and the trailing multiply is a complemented-mask
/// SpGEMM so already-known pairs are rejected inside the kernel and the
/// empty-`N` termination check is free. When `nnz(Δ)` is small this
/// does asymptotically less work than re-running [`closure_delta`] from
/// scratch — and this is the schedule the CFPQ loop uses between
/// iterations.
pub fn closure_incremental(t: &Matrix, delta: &Matrix) -> Result<Matrix> {
    let n = t.nrows();
    let identity = Matrix::identity(t.instance(), n)?;
    let mut closure = t.ewise_add(delta)?;
    loop {
        let reach = closure.ewise_add(&identity)?;
        let left = reach.mxm(delta)?;
        // Fused `((T+I)·Δ·(T+I)) ∧ ¬T` + accumulate: the trailing
        // multiply lands straight in the accumulator and the empty-`N`
        // check is the kernel's own fresh count.
        let step = closure.mxm_accum_compmask(&left, &reach, false)?;
        if step.fresh_nnz == 0 {
            return Ok(closure);
        }
        closure = step.acc;
    }
}

/// Closure via the dense bit-parallel backend: convert, square to a
/// fixpoint with word-parallel `mxm`, convert back. Quadratic memory,
/// but on small-to-medium product spaces the 64-cells-per-instruction
/// multiply wins by a wide margin (ablation E10.6); used when the
/// `n² / 8` bytes fit a sensible budget.
pub fn closure_dense_bit(adjacency: &Matrix) -> Result<Matrix> {
    use spbla_core::format::bitmat::BitMatrix;
    let n = adjacency.nrows();
    let csr = adjacency.to_csr();
    let mut c = BitMatrix::from_pairs(n, n, &csr.to_pairs())?;
    loop {
        let before = c.nnz();
        let sq = c.mxm(&c)?;
        c = c.ewise_add(&sq)?;
        if c.nnz() == before {
            break;
        }
    }
    let out = spbla_core::CsrBool::from_pairs(n, n, &c.to_pairs())?;
    Matrix::from_csr(adjacency.instance(), out)
}

/// Pick a closure strategy by size: dense bitset when the `n²/8`-byte
/// matrix stays under 64 MiB, sparse semi-naïve otherwise.
pub fn closure_auto(adjacency: &Matrix) -> Result<Matrix> {
    let n = adjacency.nrows() as usize;
    let dense_bytes = n.div_ceil(64) * 8 * n;
    if dense_bytes <= (64 << 20) {
        closure_dense_bit(adjacency)
    } else {
        closure_delta(adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_core::Instance;

    fn path_graph(inst: &Instance, n: u32) -> Matrix {
        let pairs: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Matrix::from_pairs(inst, n, n, &pairs).unwrap()
    }

    #[test]
    fn schedules_agree_on_path() {
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let a = path_graph(&inst, 12);
            let sq = closure_squaring(&a).unwrap().read();
            let ss = closure_single_step(&a).unwrap().read();
            let dl = closure_delta(&a).unwrap().read();
            assert_eq!(sq, ss);
            assert_eq!(sq, dl);
            assert_eq!(sq.len(), (11 * 12) / 2);
        }
    }

    #[test]
    fn delta_matches_squaring_on_random_graphs() {
        for inst in [
            Instance::cpu(),
            Instance::cpu_dense(),
            Instance::cuda_sim(),
            Instance::cl_sim(),
        ] {
            for seed in 0u32..4 {
                let pairs: Vec<(u32, u32)> = (0..80u32)
                    .map(|i| {
                        let x = i.wrapping_mul(2654435761).wrapping_add(seed * 97);
                        (x % 25, (x / 25) % 25)
                    })
                    .collect();
                let a = Matrix::from_pairs(&inst, 25, 25, &pairs).unwrap();
                let naive = closure_squaring(&a).unwrap().read();
                assert_eq!(closure_delta(&a).unwrap().read(), naive);
                assert_eq!(closure_masked(&a).unwrap().read(), naive);
            }
        }
    }

    #[test]
    fn distributed_closure_matches_single_device() {
        let pairs: Vec<(u32, u32)> = (0..90u32)
            .map(|i| {
                let x = i.wrapping_mul(2654435761).wrapping_add(17);
                (x % 30, (x / 30) % 30)
            })
            .collect();
        let inst = Instance::cuda_sim();
        let a = Matrix::from_pairs(&inst, 30, 30, &pairs).unwrap();
        let single = closure_delta(&a).unwrap().read();
        let csr = spbla_core::CsrBool::from_pairs(30, 30, &pairs).unwrap();
        for devices in [1, 2, 4, 8] {
            let (dist, grid) = closure_delta_on_devices(&csr, devices).unwrap();
            assert_eq!(dist.to_pairs(), single, "{devices} devices");
            if devices > 1 {
                assert!(grid.total_stats().d2d_bytes > 0);
            }
        }
    }

    #[test]
    fn closure_of_cycle_is_complete() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let c = closure_squaring(&a).unwrap();
        assert_eq!(c.nnz(), 16);
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let inst = Instance::cpu();
        // Base: two disjoint paths 0→1→2 and 3→4→5.
        let base = Matrix::from_pairs(&inst, 6, 6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let t = closure_squaring(&base).unwrap();
        // Delta: bridge 2→3.
        let delta = Matrix::from_pairs(&inst, 6, 6, &[(2, 3)]).unwrap();
        let inc = closure_incremental(&t, &delta).unwrap();
        let full = closure_squaring(&base.ewise_add(&delta).unwrap()).unwrap();
        assert_eq!(inc.read(), full.read());
        // The bridge must connect the components transitively.
        assert!(inc.get(0, 5));
    }

    #[test]
    fn dense_bit_closure_matches_sparse() {
        for inst in [Instance::cpu(), Instance::cuda_sim()] {
            let pairs: Vec<(u32, u32)> = (0..60u32).map(|i| (i % 20, (i * 7 + 3) % 20)).collect();
            let a = Matrix::from_pairs(&inst, 20, 20, &pairs).unwrap();
            let sparse = closure_squaring(&a).unwrap();
            let dense = closure_dense_bit(&a).unwrap();
            let auto = closure_auto(&a).unwrap();
            assert_eq!(dense.read(), sparse.read());
            assert_eq!(auto.read(), sparse.read());
        }
    }

    #[test]
    fn incremental_with_empty_delta_is_identity() {
        let inst = Instance::cpu();
        let base = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2)]).unwrap();
        let t = closure_squaring(&base).unwrap();
        let delta = Matrix::zeros(&inst, 4, 4).unwrap();
        let inc = closure_incremental(&t, &delta).unwrap();
        assert_eq!(inc.read(), t.read());
    }
}
