//! # spbla-graph — language-constrained path querying on SPbLA
//!
//! The application layer whose experiments form the paper's evaluation:
//!
//! * [`graph`] — edge-labeled graphs as one Boolean adjacency matrix per
//!   label;
//! * [`closure`] — transitive-closure schedules (naive squaring,
//!   single-step, and the *incremental* closure the paper identifies as
//!   the CFPQ bottleneck);
//! * [`rpq`] — regular path querying: Glushkov automaton ⊗ graph
//!   (Kronecker product), closure, reachability index, path extraction;
//! * [`cfpq::tensor`] — the `Tns` algorithm: RSM ⊗ graph fixpoint with
//!   all-paths index;
//! * [`cfpq::azimov`] — the `Mtx` baseline: CNF matrix fixpoint with
//!   single-path extraction;
//! * [`cfpq::oracle`] — worklist graph-CYK, the correctness oracle;
//! * [`bfs`] — matrix BFS, a library showcase used by the examples.

pub mod algorithms;
pub mod bfs;
pub mod cfpq;
pub mod closure;
pub mod graph;
pub mod paths;
pub mod rpq;
pub mod rpq_batch;
pub mod rpq_bfs;
pub mod rpq_derivative;

pub use graph::LabeledGraph;
pub use paths::PathEdge;
pub use rpq::{RpqIndex, RpqOptions};
