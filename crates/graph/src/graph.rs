//! Edge-labeled graphs as families of Boolean adjacency matrices.

use rustc_hash::FxHashMap;

use spbla_core::{CsrBool, Instance, Matrix, Result};
use spbla_lang::{Symbol, SymbolTable};

/// An edge-labeled directed graph: `n` vertices and, per label, the set
/// of edges carrying it — exactly the "adjacency matrix in sparse
/// format" form the paper's evaluation assumes is resident in memory.
#[derive(Debug, Clone, Default)]
pub struct LabeledGraph {
    n: u32,
    edges: FxHashMap<Symbol, Vec<(u32, u32)>>,
}

impl LabeledGraph {
    /// An empty graph on `n` vertices.
    pub fn new(n: u32) -> Self {
        LabeledGraph {
            n,
            edges: FxHashMap::default(),
        }
    }

    /// Build from `(from, label, to)` triples.
    pub fn from_triples(n: u32, triples: impl IntoIterator<Item = (u32, Symbol, u32)>) -> Self {
        let mut g = LabeledGraph::new(n);
        for (u, l, v) in triples {
            g.add_edge(u, l, v);
        }
        g
    }

    /// Add one edge (duplicates collapse when matrices are built).
    pub fn add_edge(&mut self, from: u32, label: Symbol, to: u32) {
        debug_assert!(from < self.n && to < self.n);
        self.edges.entry(label).or_default().push((from, to));
    }

    /// Remove every `label` edge matching the predicate; drops the label
    /// from the vocabulary when its edge list empties so `labels()` never
    /// reports phantom labels.
    pub fn remove_edges(&mut self, label: Symbol, mut pred: impl FnMut((u32, u32)) -> bool) {
        if let Some(edges) = self.edges.get_mut(&label) {
            edges.retain(|&e| !pred(e));
            if edges.is_empty() {
                self.edges.remove(&label);
            }
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> u32 {
        self.n
    }

    /// Total number of edges (with multiplicity before dedup).
    pub fn n_edges(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Number of edges carrying `label`.
    pub fn label_count(&self, label: Symbol) -> usize {
        self.edges.get(&label).map_or(0, Vec::len)
    }

    /// All labels present, sorted by id.
    pub fn labels(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.edges.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Labels sorted by descending frequency — the query generator picks
    /// "the most frequent relations from the given graph".
    pub fn labels_by_frequency(&self) -> Vec<(Symbol, usize)> {
        let mut out: Vec<(Symbol, usize)> = self.edges.iter().map(|(&l, e)| (l, e.len())).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Edge list of one label.
    pub fn edges_of(&self, label: Symbol) -> &[(u32, u32)] {
        self.edges.get(&label).map_or(&[], Vec::as_slice)
    }

    /// The adjacency matrix of one label as a host CSR (empty matrix for
    /// absent labels).
    pub fn label_csr(&self, label: Symbol) -> CsrBool {
        CsrBool::from_pairs(self.n, self.n, self.edges_of(label))
            .expect("graph edges are in bounds by construction")
    }

    /// Upload the adjacency matrix of one label to an instance.
    pub fn label_matrix(&self, inst: &Instance, label: Symbol) -> Result<Matrix> {
        Matrix::from_csr(inst, self.label_csr(label))
    }

    /// Upload every label's matrix.
    pub fn matrices(&self, inst: &Instance) -> Result<FxHashMap<Symbol, Matrix>> {
        self.labels()
            .into_iter()
            .map(|l| Ok((l, self.label_matrix(inst, l)?)))
            .collect()
    }

    /// The unlabeled adjacency matrix (union over all labels).
    pub fn adjacency_csr(&self) -> CsrBool {
        let all: Vec<(u32, u32)> = self.edges.values().flatten().copied().collect();
        CsrBool::from_pairs(self.n, self.n, &all).expect("in bounds")
    }

    /// Extend the graph with the inverse of every edge under the
    /// convention `label_r` (the `x̄` relations the CFPQ queries use).
    pub fn with_inverses(&self, table: &mut SymbolTable) -> LabeledGraph {
        let mut g = self.clone();
        for (&l, edges) in &self.edges {
            let inv = table.inverse(l);
            for &(u, v) in edges {
                g.add_edge(v, inv, u);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_stats() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g = LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 2), (2, b, 3)]);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.label_count(a), 2);
        assert_eq!(g.labels(), vec![a, b]);
        assert_eq!(g.labels_by_frequency()[0].0, a);
        assert_eq!(g.label_csr(a).nnz(), 2);
        assert_eq!(g.adjacency_csr().nnz(), 3);
    }

    #[test]
    fn remove_edges_drops_empty_labels() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let mut g = LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 2), (2, b, 3)]);
        g.remove_edges(a, |e| e == (0, 1));
        assert_eq!(g.edges_of(a), &[(1, 2)]);
        g.remove_edges(b, |_| true);
        assert_eq!(g.labels(), vec![a]);
    }

    #[test]
    fn inverse_edges() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(3, [(0, a, 1)]);
        let gi = g.with_inverses(&mut t);
        let ar = t.get("a_r").unwrap();
        assert_eq!(gi.edges_of(ar), &[(1, 0)]);
        assert_eq!(gi.edges_of(a), &[(0, 1)]);
    }

    #[test]
    fn matrices_upload_to_backends() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(3, [(0, a, 1), (1, a, 2)]);
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let ms = g.matrices(&inst).unwrap();
            assert_eq!(ms[&a].nnz(), 2);
        }
    }
}
