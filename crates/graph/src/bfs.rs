//! Matrix breadth-first search — the standard GraphBLAS showcase, used
//! by the examples and as another exerciser of `vxm`/vector operations.

use spbla_core::{Instance, Matrix, Result, Vector};

/// BFS levels from `source` over `adjacency` (square Boolean matrix).
/// Returns `levels[v] = Some(depth)` for reached vertices.
pub fn bfs_levels(adjacency: &Matrix, source: u32, inst: &Instance) -> Result<Vec<Option<u32>>> {
    let n = adjacency.nrows();
    let mut levels: Vec<Option<u32>> = vec![None; n as usize];
    levels[source as usize] = Some(0);
    let mut visited = Vector::from_indices(inst, n, &[source])?;
    let mut frontier = visited.clone();
    let mut depth = 0u32;
    while frontier.nnz() > 0 {
        depth += 1;
        let next = adjacency.vxm(&frontier)?;
        frontier = next.difference(&visited)?;
        for &v in frontier.indices() {
            levels[v as usize] = Some(depth);
        }
        visited = visited.ewise_add(&frontier)?;
    }
    Ok(levels)
}

/// The set of vertices reachable from `source` (any number of steps,
/// including the source itself).
pub fn reachable_set(adjacency: &Matrix, source: u32, inst: &Instance) -> Result<Vec<u32>> {
    Ok(bfs_levels(adjacency, source, inst)?
        .iter()
        .enumerate()
        .filter_map(|(v, l)| l.map(|_| v as u32))
        .collect())
}

/// Multi-source BFS entirely in matrix form: the frontier is a
/// `|sources| × n` Boolean matrix (one row per source) advanced with
/// `mxm` against the adjacency — all sources progress in one multiply
/// per level, the matrix-BFS formulation GraphBLAS papers showcase.
/// Returns `levels[s][v] = Some(depth from sources[s])`.
pub fn msbfs_levels(
    adjacency: &Matrix,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<Vec<Option<u32>>>> {
    let n = adjacency.nrows();
    let s = sources.len() as u32;
    let mut levels = vec![vec![None; n as usize]; sources.len()];
    if sources.is_empty() {
        return Ok(levels);
    }
    // Frontier F: row i = current frontier of source i; Visited likewise.
    let seed: Vec<(u32, u32)> = sources
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    let mut frontier = Matrix::from_pairs(inst, s, n, &seed)?;
    let mut visited = frontier.duplicate()?;
    for (i, &v) in sources.iter().enumerate() {
        levels[i][v as usize] = Some(0);
    }
    let mut depth = 0u32;
    while frontier.nnz() > 0 {
        depth += 1;
        let advanced = frontier.mxm(adjacency)?;
        // fresh = advanced ∧ ¬visited, via pattern difference on host
        // coordinates (a Boolean mask-complement op).
        let visited_set: std::collections::HashSet<(u32, u32)> =
            visited.read().into_iter().collect();
        let fresh: Vec<(u32, u32)> = advanced
            .read()
            .into_iter()
            .filter(|p| !visited_set.contains(p))
            .collect();
        frontier = Matrix::from_pairs(inst, s, n, &fresh)?;
        for &(i, v) in &fresh {
            levels[i as usize][v as usize] = Some(depth);
        }
        visited = visited.ewise_add(&frontier)?;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_on_diamond() {
        // 0 → {1,2} → 3
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let a = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
            let levels = bfs_levels(&a, 0, &inst).unwrap();
            assert_eq!(levels, vec![Some(0), Some(1), Some(1), Some(2)]);
        }
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (2, 3)]).unwrap();
        let levels = bfs_levels(&a, 0, &inst).unwrap();
        assert_eq!(levels[2], None);
        assert_eq!(levels[3], None);
        assert_eq!(reachable_set(&a, 0, &inst).unwrap(), vec![0, 1]);
    }

    #[test]
    fn msbfs_matches_per_source_bfs() {
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let a = Matrix::from_pairs(
                &inst,
                6,
                6,
                &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 4), (1, 4)],
            )
            .unwrap();
            let sources = [0u32, 4, 3];
            let multi = msbfs_levels(&a, &sources, &inst).unwrap();
            for (i, &src) in sources.iter().enumerate() {
                let single = bfs_levels(&a, src, &inst).unwrap();
                assert_eq!(
                    multi[i],
                    single,
                    "source {src} backend {:?}",
                    inst.backend()
                );
            }
        }
    }

    #[test]
    fn msbfs_empty_sources() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 3, 3, &[(0, 1)]).unwrap();
        assert!(msbfs_levels(&a, &[], &inst).unwrap().is_empty());
    }

    #[test]
    fn cycle_terminates() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 3, 3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let levels = bfs_levels(&a, 0, &inst).unwrap();
        assert_eq!(levels, vec![Some(0), Some(1), Some(2)]);
    }
}
