//! Context-free path querying.
//!
//! Two linear-algebra algorithms plus an oracle:
//!
//! * [`tensor`] — the paper's contribution (`Tns`): Kronecker product of
//!   the grammar's recursive state machine with the graph, transitive
//!   closure, and extraction of derived nonterminal edges, iterated to a
//!   fixpoint. Handles arbitrary grammars (no CNF) and keeps an
//!   *all-paths* index.
//! * [`azimov`] — the baseline (`Mtx`): Azimov's CNF matrix fixpoint
//!   `T_A += T_B · T_C`, with single-path extraction via derivation
//!   heights.
//! * [`oracle`] — a worklist graph-CYK (Melski–Reps style) used to verify
//!   both on small instances.

pub mod azimov;
pub mod oracle;
pub mod tensor;
