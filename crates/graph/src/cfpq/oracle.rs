//! Worklist graph-CYK — the CFPQ correctness oracle.
//!
//! Dynamic-programming closure over facts `(A, u, v)` ("nonterminal `A`
//! derives some path `u → v`"), the Melski–Reps formulation of CFL
//! reachability. Cubic and index-free; used only to validate the matrix
//! algorithms on test-sized inputs.

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_lang::cfg::NtId;
use spbla_lang::CnfGrammar;

use crate::graph::LabeledGraph;

/// All `(u, v)` pairs derivable from `nt` (typically the start symbol).
pub fn cfpq_pairs(graph: &LabeledGraph, cnf: &CnfGrammar, nt: NtId) -> Vec<(u32, u32)> {
    let facts = all_facts(graph, cnf);
    let mut out: Vec<(u32, u32)> = facts
        .into_iter()
        .filter(|&(a, _, _)| a == nt)
        .map(|(_, u, v)| (u, v))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The full fact set `(A, u, v)`.
pub fn all_facts(graph: &LabeledGraph, cnf: &CnfGrammar) -> FxHashSet<(NtId, u32, u32)> {
    let n = graph.n_vertices();
    let mut facts: FxHashSet<(NtId, u32, u32)> = FxHashSet::default();
    let mut worklist: Vec<(NtId, u32, u32)> = Vec::new();
    // by_source[(A, u)] = all v; by_target[(A, v)] = all u.
    let mut by_source: FxHashMap<(NtId, u32), Vec<u32>> = FxHashMap::default();
    let mut by_target: FxHashMap<(NtId, u32), Vec<u32>> = FxHashMap::default();
    // Rules indexed by their RHS participants.
    let mut rules_with_left: FxHashMap<NtId, Vec<(NtId, NtId)>> = FxHashMap::default();
    let mut rules_with_right: FxHashMap<NtId, Vec<(NtId, NtId)>> = FxHashMap::default();
    for &(a, b, c) in cnf.binary_rules() {
        rules_with_left.entry(b).or_default().push((a, c));
        rules_with_right.entry(c).or_default().push((a, b));
    }

    let add = |fact: (NtId, u32, u32),
               facts: &mut FxHashSet<(NtId, u32, u32)>,
               worklist: &mut Vec<(NtId, u32, u32)>| {
        if facts.insert(fact) {
            worklist.push(fact);
        }
    };

    // Base: terminal rules over graph edges, ε for the start symbol.
    for &(a, t) in cnf.terminal_rules() {
        for &(u, v) in graph.edges_of(t) {
            add((a, u, v), &mut facts, &mut worklist);
        }
    }
    if cnf.start_nullable() {
        for v in 0..n {
            add((cnf.start(), v, v), &mut facts, &mut worklist);
        }
    }

    while let Some((x, u, v)) = worklist.pop() {
        by_source.entry((x, u)).or_default().push(v);
        by_target.entry((x, v)).or_default().push(u);
        // X as left child: A → X C needs (C, v, w).
        if let Some(rules) = rules_with_left.get(&x) {
            for &(a, c) in rules {
                if let Some(ws) = by_source.get(&(c, v)) {
                    for &w in ws.clone().iter() {
                        add((a, u, w), &mut facts, &mut worklist);
                    }
                }
            }
        }
        // X as right child: A → B X needs (B, w, u).
        if let Some(rules) = rules_with_right.get(&x) {
            for &(a, b) in rules {
                if let Some(ws) = by_target.get(&(b, u)) {
                    for &w in ws.clone().iter() {
                        add((a, w, v), &mut facts, &mut worklist);
                    }
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::{Grammar, SymbolTable};

    #[test]
    fn an_bn_over_two_cycles() {
        // Classic CFPQ instance: a-cycle of length 2 and b-cycle of
        // length 3 sharing vertex 0; S -> a S b | a b.
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        let graph =
            LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 0), (0, b, 2), (2, b, 3), (3, b, 0)]);
        let pairs = cfpq_pairs(&graph, &cnf, cnf.start());
        // Known answer set for this standard example.
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(1, 2)));
        assert!(!pairs.is_empty());
        // Sanity: every pair respects a^k b^k — spot check one word.
        assert!(pairs.contains(&(0, 3))); // a a a b b b? verify below
    }

    #[test]
    fn epsilon_start_gives_diagonal() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S | eps", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let a = t.get("a").unwrap();
        let graph = LabeledGraph::from_triples(3, [(0, a, 1), (1, a, 2)]);
        let pairs = cfpq_pairs(&graph, &cnf, cnf.start());
        for v in 0..3 {
            assert!(pairs.contains(&(v, v)));
        }
        assert!(pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(2, 0)));
    }
}
