//! Azimov's matrix CFPQ algorithm (`Mtx` in Table IV).
//!
//! Preprocess the grammar to CNF, keep one Boolean matrix `T_A` per
//! nonterminal, and iterate `T_A += T_B · T_C` over the binary rules
//! until no matrix grows — run semi-naïvely: each round multiplies only
//! the deltas of the previous round, with a complemented-mask SpGEMM
//! discarding already-known facts inside the kernel (same least
//! fixpoint as the textbook loop). Reachability is `T_S`; the single-path
//! semantics of the PyGraphBLAS implementation the paper compares against
//! is reproduced through derivation heights recorded during the fixpoint.

use rustc_hash::FxHashMap;

use spbla_core::{CsrBool, Instance, Matrix, Result};
use spbla_lang::cfg::NtId;
use spbla_lang::{CnfGrammar, Symbol};

use crate::graph::LabeledGraph;
use crate::paths::PathEdge;

/// Options for [`AzimovIndex::build`].
#[derive(Debug, Clone, Default)]
pub struct AzimovOptions {
    /// Record derivation heights (needed by
    /// [`AzimovIndex::extract_single_path`]; costs one download per
    /// round).
    pub track_heights: bool,
}

/// The per-nonterminal reachability matrices produced by the fixpoint.
#[derive(Debug)]
pub struct AzimovIndex {
    cnf: CnfGrammar,
    matrices: Vec<Matrix>,
    /// `(A, u, v) → fixpoint round` (0 = base facts), if tracked.
    heights: Option<FxHashMap<(NtId, u32, u32), u32>>,
    /// Terminal adjacency (host) for path reconstruction.
    terminals: FxHashMap<Symbol, CsrBool>,
    iterations: usize,
}

impl AzimovIndex {
    /// Run the fixpoint for `cnf` over `graph` on `inst`.
    pub fn build(
        graph: &LabeledGraph,
        cnf: &CnfGrammar,
        inst: &Instance,
        options: &AzimovOptions,
    ) -> Result<AzimovIndex> {
        let n = graph.n_vertices();
        let nnt = cnf.n_nonterminals();

        // Base: terminal rules, plus the diagonal if S is nullable. The
        // identity is built once up front and shared, not re-made inside
        // the loop.
        let identity = if cnf.start_nullable() {
            Some(Matrix::identity(inst, n)?)
        } else {
            None
        };
        let mut matrices: Vec<Matrix> = Vec::with_capacity(nnt);
        for a in 0..nnt {
            let a_id = NtId(a as u32);
            let mut m = Matrix::zeros(inst, n, n)?;
            for &(lhs, t) in cnf.terminal_rules() {
                if lhs == a_id && graph.label_count(t) > 0 {
                    m = m.ewise_add(&graph.label_matrix(inst, t)?)?;
                }
            }
            if a_id == cnf.start() {
                if let Some(identity) = &identity {
                    m = m.ewise_add(identity)?;
                }
            }
            matrices.push(m);
        }
        // Semi-naïve fixpoint: per nonterminal we track the delta Δ_X of
        // facts discovered last round, and a rule `A → B C` contributes
        // only `(Δ_B·T_C + T_B·Δ_C) ∧ ¬T_A`. Each term runs through the
        // fused `mxm_accum_compmask`: the growing `T_A` is both the
        // complement mask (rejecting known A-facts inside the kernel) and
        // the accumulator, so the product's fresh facts land in `T_A` in
        // the same launch and successive terms sharing a LHS emit
        // *disjoint* fresh pieces — their plain union is the round's
        // delta, and the old end-of-round `T_A += Δ_A` pass disappears.
        // Rules whose operands both have empty deltas are skipped
        // entirely; termination reads the fused kernel's fresh-nnz signal
        // instead of probing `nnz` on a materialised intermediate.
        let mut iterations = 0usize;
        let mut deltas: Vec<Option<Matrix>> = matrices
            .iter()
            .map(|m| {
                if m.is_empty() {
                    Ok(None)
                } else {
                    m.duplicate().map(Some)
                }
            })
            .collect::<Result<_>>()?;
        loop {
            iterations += 1;
            let mut fresh: Vec<Option<Matrix>> = (0..nnt).map(|_| None).collect();
            for &(a, b, c) in cnf.binary_rules() {
                if deltas[b.id()].is_some() {
                    let step = {
                        let db = deltas[b.id()].as_ref().expect("checked above");
                        matrices[a.id()].mxm_accum_compmask(db, &matrices[c.id()], true)?
                    };
                    if step.fresh_nnz > 0 {
                        matrices[a.id()] = step.acc;
                        let f = step.fresh.expect("fresh requested");
                        fresh[a.id()] = Some(match fresh[a.id()].take() {
                            Some(acc) => acc.ewise_add(&f)?,
                            None => f,
                        });
                    }
                }
                if deltas[c.id()].is_some() {
                    let step = {
                        let dc = deltas[c.id()].as_ref().expect("checked above");
                        matrices[a.id()].mxm_accum_compmask(&matrices[b.id()], dc, true)?
                    };
                    if step.fresh_nnz > 0 {
                        matrices[a.id()] = step.acc;
                        let f = step.fresh.expect("fresh requested");
                        fresh[a.id()] = Some(match fresh[a.id()].take() {
                            Some(acc) => acc.ewise_add(&f)?,
                            None => f,
                        });
                    }
                }
            }
            let mut changed = false;
            for (delta, f) in deltas.iter_mut().zip(fresh.iter_mut()) {
                *delta = f.take();
                changed |= delta.is_some();
            }
            if !changed {
                break;
            }
        }
        // Minimal derivation heights, computed Jacobi-style over the
        // final fact set so every non-base fact has a rule whose children
        // are strictly lower — the invariant path extraction relies on.
        let heights = if options.track_heights {
            Some(Self::compute_heights(graph, cnf, &matrices))
        } else {
            None
        };

        let terminals = graph
            .labels()
            .into_iter()
            .map(|l| (l, graph.label_csr(l)))
            .collect();

        Ok(AzimovIndex {
            cnf: cnf.clone(),
            matrices,
            heights,
            terminals,
            iterations,
        })
    }

    /// Minimal derivation heights over the final fact set: base facts are
    /// 0; `h(A,u,v) = 1 + min over rules A→BC and splits k of
    /// max(h(B,u,k), h(C,k,v))`.
    fn compute_heights(
        graph: &LabeledGraph,
        cnf: &CnfGrammar,
        matrices: &[Matrix],
    ) -> FxHashMap<(NtId, u32, u32), u32> {
        let mut heights: FxHashMap<(NtId, u32, u32), u32> = FxHashMap::default();
        for &(a, t) in cnf.terminal_rules() {
            for &(u, v) in graph.edges_of(t) {
                heights.insert((a, u, v), 0);
            }
        }
        if cnf.start_nullable() {
            for v in 0..graph.n_vertices() {
                heights.insert((cnf.start(), v, v), 0);
            }
        }
        let host: Vec<CsrBool> = matrices.iter().map(Matrix::to_csr).collect();
        loop {
            let mut changed = false;
            for &(a, b, c) in cnf.binary_rules() {
                let (mb, mc) = (&host[b.id()], &host[c.id()]);
                for u in 0..mb.nrows() {
                    for &k in mb.row(u) {
                        let Some(&hb) = heights.get(&(b, u, k)) else {
                            continue;
                        };
                        for &v in mc.row(k) {
                            let Some(&hc) = heights.get(&(c, k, v)) else {
                                continue;
                            };
                            let cand = hb.max(hc) + 1;
                            match heights.get(&(a, u, v)) {
                                Some(&cur) if cur <= cand => {}
                                _ => {
                                    heights.insert((a, u, v), cand);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return heights;
            }
        }
    }

    /// Number of fixpoint rounds executed (last round is the stable one).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The reachability matrix of one nonterminal.
    pub fn matrix(&self, nt: NtId) -> &Matrix {
        &self.matrices[nt.id()]
    }

    /// All `(u, v)` with `S ⇒* path(u → v)`.
    pub fn reachable_pairs(&self) -> Vec<(u32, u32)> {
        self.matrices[self.cnf.start().id()].read()
    }

    /// Reconstruct *one* path deriving `(u, v)` from the start symbol.
    /// Requires `track_heights`; returns `None` when the pair is not
    /// derivable (or corresponds to the ε-path when `u == v` under a
    /// nullable start, yielding an empty path).
    pub fn extract_single_path(&self, u: u32, v: u32) -> Option<Vec<PathEdge>> {
        let heights = self
            .heights
            .as_ref()
            .expect("build with track_heights: true to extract paths");
        let start = self.cnf.start();
        if !heights.contains_key(&(start, u, v)) {
            return if u == v && self.cnf.start_nullable() {
                Some(Vec::new())
            } else {
                None
            };
        }
        let mut out = Vec::new();
        self.rebuild(start, u, v, heights, &mut out)?;
        Some(out)
    }

    fn rebuild(
        &self,
        a: NtId,
        u: u32,
        v: u32,
        heights: &FxHashMap<(NtId, u32, u32), u32>,
        out: &mut Vec<PathEdge>,
    ) -> Option<()> {
        let h = *heights.get(&(a, u, v))?;
        // Base: a terminal rule covering an actual edge, or the nullable
        // diagonal (empty path).
        if h == 0 {
            if u == v && a == self.cnf.start() && self.cnf.start_nullable() {
                // Prefer a real edge if one exists; otherwise ε.
                for &(lhs, t) in self.cnf.terminal_rules() {
                    if lhs == a {
                        if let Some(m) = self.terminals.get(&t) {
                            if m.get(u, v) {
                                out.push(PathEdge {
                                    from: u,
                                    label: t,
                                    to: v,
                                });
                                return Some(());
                            }
                        }
                    }
                }
                return Some(());
            }
            for &(lhs, t) in self.cnf.terminal_rules() {
                if lhs == a {
                    if let Some(m) = self.terminals.get(&t) {
                        if m.get(u, v) {
                            out.push(PathEdge {
                                from: u,
                                label: t,
                                to: v,
                            });
                            return Some(());
                        }
                    }
                }
            }
            return None;
        }
        // Inductive: find A → B C and a split k with strictly smaller
        // heights on both halves.
        for &(lhs, b, c) in self.cnf.binary_rules() {
            if lhs != a {
                continue;
            }
            // Scan candidates k from B's row u.
            let row = self.matrices[b.id()].to_csr();
            for &k in row.row(u) {
                let hb = heights.get(&(b, u, k));
                let hc = heights.get(&(c, k, v));
                if let (Some(&hb), Some(&hc)) = (hb, hc) {
                    if hb < h && hc < h {
                        self.rebuild(b, u, k, heights, out)?;
                        self.rebuild(c, k, v, heights, out)?;
                        return Some(());
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfpq::oracle::cfpq_pairs;
    use crate::paths::is_well_formed;
    use spbla_lang::{Grammar, SymbolTable};

    fn an_bn_setup() -> (SymbolTable, CnfGrammar, LabeledGraph) {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        let graph =
            LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 0), (0, b, 2), (2, b, 3), (3, b, 0)]);
        (t, cnf, graph)
    }

    #[test]
    fn matches_oracle_on_all_backends() {
        let (_t, cnf, graph) = an_bn_setup();
        let expect = cfpq_pairs(&graph, &cnf, cnf.start());
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let idx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
            assert_eq!(idx.reachable_pairs(), expect);
        }
    }

    #[test]
    fn single_path_extraction_is_valid() {
        let (t, cnf, graph) = an_bn_setup();
        let idx = AzimovIndex::build(
            &graph,
            &cnf,
            &Instance::cpu(),
            &AzimovOptions {
                track_heights: true,
            },
        )
        .unwrap();
        let pairs = idx.reachable_pairs();
        assert!(!pairs.is_empty());
        let a = t.get("a").unwrap();
        for &(u, v) in pairs.iter().take(10) {
            let p = idx.extract_single_path(u, v).expect("pair is derivable");
            assert!(is_well_formed(&p), "path {p:?}");
            assert_eq!(p.first().map(|e| e.from), Some(u));
            assert_eq!(p.last().map(|e| e.to), Some(v));
            // Word shape a^k b^k.
            let word = crate::paths::word_of(&p);
            let k = word.iter().filter(|&&s| s == a).count();
            assert_eq!(word.len(), 2 * k);
            assert!(word[..k].iter().all(|&s| s == a));
        }
    }

    #[test]
    fn unreachable_pair_yields_none() {
        let (_t, cnf, graph) = an_bn_setup();
        let idx = AzimovIndex::build(
            &graph,
            &cnf,
            &Instance::cpu(),
            &AzimovOptions {
                track_heights: true,
            },
        )
        .unwrap();
        assert!(idx.extract_single_path(2, 1).is_none());
    }
}
