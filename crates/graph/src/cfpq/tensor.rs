//! The tensor (Kronecker-product) CFPQ algorithm (`Tns` in Table IV) —
//! the paper's primary algorithmic contribution.
//!
//! The grammar is encoded as a recursive state machine `R`; the graph
//! `G` gets one Boolean matrix per terminal *and*, as the fixpoint runs,
//! per nonterminal. Each iteration:
//!
//! 1. `M = Σ_label R_label ⊗ G_label` — one Kronecker product per label
//!    shared by machine and graph;
//! 2. transitive closure of `M` (the step the paper identifies as the
//!    bottleneck; optionally *incremental* across iterations, E10.4);
//! 3. for every box `A` with entry `q_s` and exit `q_f`: the closure
//!    block `(q_s·n .., q_f·n ..)` — extracted with the library's
//!    sub-matrix operation — yields new `A`-labeled graph edges.
//!
//! The loop stops when no box contributes a new edge. The final closure
//! is the *all-paths index*: unlike `Mtx`'s single-path witness it
//! encodes every derivation, which is what
//! [`TnsIndex::extract_paths`] walks.

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_core::{CsrBool, Instance, Matrix, Result};
use spbla_lang::cfg::{NtId, SymbolOrNt};
use spbla_lang::{Grammar, Rsm, Symbol};

use crate::closure::{closure_delta, closure_incremental};
use crate::graph::LabeledGraph;
use crate::paths::PathEdge;

/// Options for [`TnsIndex::build`].
#[derive(Debug, Clone)]
pub struct TnsOptions {
    /// Reuse the previous iteration's closure and only propagate the new
    /// nonterminal edges (incremental transitive closure) instead of
    /// recomputing the closure from scratch each round. On by default —
    /// the paper identifies exactly this incremental closure as the
    /// algorithm's bottleneck-turned-optimisation; the from-scratch mode
    /// is kept for the E10.4 ablation.
    pub incremental: bool,
}

impl Default for TnsOptions {
    fn default() -> Self {
        TnsOptions { incremental: true }
    }
}

/// The all-paths CFPQ index.
#[derive(Debug)]
pub struct TnsIndex {
    rsm: Rsm,
    n: u32,
    /// Final closure of the product machine (the index itself).
    closure: Matrix,
    /// Derived edges per nonterminal.
    nt_edges: Vec<FxHashSet<(u32, u32)>>,
    /// Terminal adjacency (host) for path extraction.
    terminals: FxHashMap<Symbol, CsrBool>,
    /// Host copy of the closure, used to goal-direct path extraction.
    closure_host: CsrBool,
    iterations: usize,
}

impl TnsIndex {
    /// Run the fixpoint for `grammar` over `graph` on `inst`.
    pub fn build(
        graph: &LabeledGraph,
        grammar: &Grammar,
        inst: &Instance,
        options: &TnsOptions,
    ) -> Result<TnsIndex> {
        let rsm = Rsm::from_grammar(grammar);
        let n = graph.n_vertices();
        let k = rsm.n_states();

        // Machine matrices per label (terminal or nonterminal), k × k.
        let mut machine_t: FxHashMap<Symbol, CsrBool> = FxHashMap::default();
        let mut machine_n: FxHashMap<NtId, CsrBool> = FxHashMap::default();
        {
            let mut by_label: FxHashMap<SymbolOrNt, Vec<(u32, u32)>> = FxHashMap::default();
            for &(f, l, t) in rsm.transitions() {
                by_label.entry(l).or_default().push((f, t));
            }
            for (l, edges) in by_label {
                let m = CsrBool::from_pairs(k, k, &edges).expect("machine states in bounds");
                match l {
                    SymbolOrNt::T(s) => {
                        machine_t.insert(s, m);
                    }
                    SymbolOrNt::N(nt) => {
                        machine_n.insert(nt, m);
                    }
                }
            }
        }

        // Graph nonterminal edges, seeded with ε-box diagonals.
        let mut nt_edges: Vec<FxHashSet<(u32, u32)>> =
            vec![FxHashSet::default(); grammar.n_nonterminals()];
        for nt in rsm.epsilon_nonterminals() {
            for v in 0..n {
                nt_edges[nt.id()].insert((v, v));
            }
        }

        // Static terminal part of M (never changes across iterations).
        let mut m_terminal = Matrix::zeros(inst, k * n, k * n)?;
        for (sym, rmat) in &machine_t {
            if graph.label_count(*sym) == 0 {
                continue;
            }
            let dr = Matrix::from_csr(inst, rmat.clone())?;
            let dg = graph.label_matrix(inst, *sym)?;
            m_terminal = m_terminal.ewise_add(&dr.kron(&dg)?)?;
        }

        let nt_matrix = |inst: &Instance, edges: &FxHashSet<(u32, u32)>| -> Result<Matrix> {
            let pairs: Vec<(u32, u32)> = edges.iter().copied().collect();
            Matrix::from_pairs(inst, n, n, &pairs)
        };

        let mut closure: Option<Matrix> = None;
        let mut iterations = 0usize;
        // Edges added since the last closure, per nonterminal — exactly
        // the Δ the incremental schedule propagates.
        let mut fresh_edges: Vec<Vec<(u32, u32)>> = nt_edges
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        loop {
            iterations += 1;

            let cl = match (&closure, options.incremental) {
                (Some(prev), true) => {
                    // Δ = Σ_nt R_nt ⊗ (new nt edges); no re-assembly or
                    // read-back of the full product machine.
                    let mut delta = Matrix::zeros(inst, k * n, k * n)?;
                    for (nt, rmat) in &machine_n {
                        if fresh_edges[nt.id()].is_empty() {
                            continue;
                        }
                        let dr = Matrix::from_csr(inst, rmat.clone())?;
                        let dg = Matrix::from_pairs(inst, n, n, &fresh_edges[nt.id()])?;
                        delta = delta.ewise_add(&dr.kron(&dg)?)?;
                    }
                    closure_incremental(prev, &delta)?
                }
                _ => {
                    // Assemble M (terminal part + all current nonterminal
                    // edges) and close from scratch.
                    let mut m = m_terminal.duplicate()?;
                    for (nt, rmat) in &machine_n {
                        if nt_edges[nt.id()].is_empty() {
                            continue;
                        }
                        let dr = Matrix::from_csr(inst, rmat.clone())?;
                        let dg = nt_matrix(inst, &nt_edges[nt.id()])?;
                        m = m.ewise_add(&dr.kron(&dg)?)?;
                    }
                    closure_delta(&m)?
                }
            };

            // Extract new nonterminal edges from box blocks.
            for f in fresh_edges.iter_mut() {
                f.clear();
            }
            let mut changed = false;
            for b in rsm.boxes() {
                for &qf in &b.finals {
                    if qf == b.start {
                        continue; // ε-loop block: diagonal already seeded
                    }
                    let block = cl.submatrix(b.start * n, qf * n, n, n)?;
                    for (u, v) in block.read() {
                        if nt_edges[b.nt.id()].insert((u, v)) {
                            fresh_edges[b.nt.id()].push((u, v));
                            changed = true;
                        }
                    }
                }
            }

            closure = Some(cl);
            if !changed {
                break;
            }
        }

        let terminals = graph
            .labels()
            .into_iter()
            .map(|l| (l, graph.label_csr(l)))
            .collect();

        let closure = closure.expect("at least one iteration ran");
        let closure_host = closure.to_csr();
        Ok(TnsIndex {
            rsm,
            n,
            closure,
            nt_edges,
            terminals,
            closure_host,
            iterations,
        })
    }

    /// Number of fixpoint iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of graph vertices the index covers.
    pub fn n_vertices(&self) -> u32 {
        self.n
    }

    /// The all-paths index matrix (closure of the final product machine).
    pub fn index_matrix(&self) -> &Matrix {
        &self.closure
    }

    /// Index size in nnz.
    pub fn index_nnz(&self) -> usize {
        self.closure.nnz()
    }

    /// All `(u, v)` derivable from nonterminal `nt`.
    pub fn pairs_of(&self, nt: NtId) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self.nt_edges[nt.id()].iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// All `(u, v)` derivable from the start symbol.
    pub fn reachable_pairs(&self) -> Vec<(u32, u32)> {
        self.pairs_of(self.rsm.start_nt())
    }

    /// Extract up to `max_count` distinct derivation paths for `(u, v)`
    /// from the start symbol, each of at most `max_len` edges, with the
    /// default exploration budget (see [`TnsIndex::extract_paths_budgeted`]).
    pub fn extract_paths(
        &self,
        u: u32,
        v: u32,
        max_len: usize,
        max_count: usize,
    ) -> Vec<Vec<PathEdge>> {
        self.extract_paths_budgeted(u, v, max_len, max_count, DEFAULT_EXTRACT_BUDGET)
    }

    /// Like [`TnsIndex::extract_paths`], with an explicit exploration
    /// budget: the DFS gives up after considering `budget` product-graph
    /// steps, returning whatever derivations it found so far. The paper
    /// observes the same truncation need — its path-length-≤-20
    /// extraction took up to 4699 s on `go` because derivation counts
    /// explode; a budget makes the cost predictable.
    pub fn extract_paths_budgeted(
        &self,
        u: u32,
        v: u32,
        max_len: usize,
        max_count: usize,
        budget: usize,
    ) -> Vec<Vec<PathEdge>> {
        let mut results = Vec::new();
        let mut walk = Walk {
            max_len,
            steps: budget,
            in_progress: FxHashSet::default(),
        };
        let nt = self.rsm.start_nt();
        if !self.nt_edges[nt.id()].contains(&(u, v)) || !walk.in_progress.insert((nt, u, v)) {
            return results;
        }
        let b = self.rsm.box_of(nt);
        let mut prefix = Vec::new();
        self.walk_box(
            &mut walk,
            nt,
            b.start,
            u,
            v,
            max_count,
            &mut prefix,
            &mut results,
        );
        results
    }

    /// Extract one (short) derivation path for `(u, v)` by iterative
    /// deepening over [`TnsIndex::extract_paths_budgeted`] — API parity
    /// with `Mtx`'s single-path semantics, answered from the all-paths
    /// index.
    pub fn extract_single_path(&self, u: u32, v: u32, max_len: usize) -> Option<Vec<PathEdge>> {
        let mut len = 2usize;
        loop {
            let mut found =
                self.extract_paths_budgeted(u, v, len.min(max_len), 1, DEFAULT_EXTRACT_BUDGET);
            if let Some(p) = found.pop() {
                return Some(p);
            }
            if len >= max_len {
                return None;
            }
            len *= 2;
        }
    }

    /// Can the product position `(q, x)` still reach a final state of
    /// `nt`'s box at `target`? Answered from the all-paths index — this
    /// is what makes extraction goal-directed instead of a blind DFS
    /// (the index "stores the data necessary to restore all paths").
    fn can_reach(&self, q: u32, x: u32, nt: NtId, target: u32) -> bool {
        let b = self.rsm.box_of(nt);
        if x == target && b.finals.binary_search(&q).is_ok() {
            return true;
        }
        let row = q * self.n + x;
        b.finals
            .iter()
            .any(|&f| self.closure_host.get(row, f * self.n + target))
    }

    /// DFS inside box `nt` from machine state `q` / vertex `x`, trying to
    /// reach a final state of the box at vertex `target`.
    #[allow(clippy::too_many_arguments)]
    fn walk_box(
        &self,
        walk: &mut Walk,
        nt: NtId,
        q: u32,
        x: u32,
        target: u32,
        max_count: usize,
        prefix: &mut Vec<PathEdge>,
        results: &mut Vec<Vec<PathEdge>>,
    ) {
        if results.len() >= max_count || walk.steps == 0 {
            return;
        }
        walk.steps -= 1;
        let b = self.rsm.box_of(nt);
        if x == target && b.finals.binary_search(&q).is_ok() && !prefix.is_empty() {
            results.push(prefix.clone());
            if results.len() >= max_count {
                return;
            }
        }
        if prefix.len() >= walk.max_len {
            return;
        }
        for &(f, label, q2) in self.rsm.transitions() {
            if f != q {
                continue;
            }
            match label {
                SymbolOrNt::T(sym) => {
                    let Some(g) = self.terminals.get(&sym) else {
                        continue;
                    };
                    if x >= g.nrows() {
                        continue;
                    }
                    for &x2 in g.row(x) {
                        if !self.can_reach(q2, x2, nt, target) {
                            continue;
                        }
                        prefix.push(PathEdge {
                            from: x,
                            label: sym,
                            to: x2,
                        });
                        self.walk_box(walk, nt, q2, x2, target, max_count, prefix, results);
                        prefix.pop();
                        if results.len() >= max_count || walk.steps == 0 {
                            return;
                        }
                    }
                }
                SymbolOrNt::N(callee) => {
                    // Try every derived callee edge leaving x.
                    let candidates: Vec<u32> = self.nt_edges[callee.id()]
                        .iter()
                        .filter(|&&(a, _)| a == x)
                        .map(|&(_, b2)| b2)
                        .collect();
                    for x2 in candidates {
                        if walk.max_len <= prefix.len() || !self.can_reach(q2, x2, nt, target) {
                            continue;
                        }
                        // Enumerate callee sub-paths, then continue.
                        let mut sub = Vec::new();
                        self.collect_nt_paths(walk, callee, x, x2, 4, &mut sub);
                        for sp in sub {
                            let len_before = prefix.len();
                            prefix.extend_from_slice(&sp);
                            if prefix.len() <= walk.max_len {
                                self.walk_box(walk, nt, q2, x2, target, max_count, prefix, results);
                            }
                            prefix.truncate(len_before);
                            if results.len() >= max_count || walk.steps == 0 {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Collect a few derivations of `(nt, u, v)` (helper for splicing
    /// callee paths; bounded to avoid exponential blow-up).
    fn collect_nt_paths(
        &self,
        walk: &mut Walk,
        nt: NtId,
        u: u32,
        v: u32,
        max_count: usize,
        out: &mut Vec<Vec<PathEdge>>,
    ) {
        if u == v && self.rsm.epsilon_nonterminals().contains(&nt) {
            out.push(Vec::new());
        }
        if !walk.in_progress.insert((nt, u, v)) {
            return;
        }
        let b = self.rsm.box_of(nt);
        let mut prefix = Vec::new();
        self.walk_box(walk, nt, b.start, u, v, max_count, &mut prefix, out);
        walk.in_progress.remove(&(nt, u, v));
    }
}

/// Default step budget for path extraction (≈ tens of ms of DFS work).
const DEFAULT_EXTRACT_BUDGET: usize = 200_000;

/// Mutable DFS state shared across the extraction recursion.
struct Walk {
    max_len: usize,
    steps: usize,
    in_progress: FxHashSet<(NtId, u32, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfpq::azimov::{AzimovIndex, AzimovOptions};
    use crate::cfpq::oracle::cfpq_pairs;
    use crate::paths::{is_well_formed, word_of};
    use spbla_lang::{CnfGrammar, SymbolTable};

    fn an_bn_setup() -> (SymbolTable, Grammar, LabeledGraph) {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        let graph =
            LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 0), (0, b, 2), (2, b, 3), (3, b, 0)]);
        (t, g, graph)
    }

    #[test]
    fn matches_oracle_and_azimov() {
        let (_t, g, graph) = an_bn_setup();
        let cnf = CnfGrammar::from_grammar(&g);
        let expect = cfpq_pairs(&graph, &cnf, cnf.start());
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let tns = TnsIndex::build(&graph, &g, &inst, &TnsOptions::default()).unwrap();
            assert_eq!(
                tns.reachable_pairs(),
                expect,
                "backend {:?}",
                inst.backend()
            );
            let mtx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default()).unwrap();
            assert_eq!(tns.reachable_pairs(), mtx.reachable_pairs());
        }
    }

    #[test]
    fn incremental_closure_agrees() {
        let (_t, g, graph) = an_bn_setup();
        let inst = Instance::cpu();
        let from_scratch = TnsIndex::build(&graph, &g, &inst, &TnsOptions::default()).unwrap();
        let incremental =
            TnsIndex::build(&graph, &g, &inst, &TnsOptions { incremental: true }).unwrap();
        assert_eq!(
            from_scratch.reachable_pairs(),
            incremental.reachable_pairs()
        );
    }

    #[test]
    fn epsilon_grammar_diagonal() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S | eps", &mut t).unwrap();
        let a = t.get("a").unwrap();
        let graph = LabeledGraph::from_triples(3, [(0, a, 1), (1, a, 2)]);
        let tns = TnsIndex::build(&graph, &g, &Instance::cpu(), &TnsOptions::default()).unwrap();
        let pairs = tns.reachable_pairs();
        for v in 0..3 {
            assert!(pairs.contains(&(v, v)));
        }
        assert!(pairs.contains(&(0, 2)));
    }

    #[test]
    fn all_paths_extraction_yields_valid_derivations() {
        let (t, g, graph) = an_bn_setup();
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        let tns = TnsIndex::build(&graph, &g, &Instance::cpu(), &TnsOptions::default()).unwrap();
        let pairs = tns.reachable_pairs();
        assert!(!pairs.is_empty());
        let mut extracted_any = false;
        for &(u, v) in &pairs {
            let paths = tns.extract_paths(u, v, 12, 5);
            for p in &paths {
                extracted_any = true;
                assert!(is_well_formed(p));
                assert_eq!(p.first().unwrap().from, u);
                assert_eq!(p.last().unwrap().to, v);
                // Language check: a^k b^k.
                let w = word_of(p);
                let k = w.iter().filter(|&&s| s == a).count();
                assert_eq!(w.len(), 2 * k, "word {w:?}");
                assert!(w[..k].iter().all(|&s| s == a));
                assert!(w[k..].iter().all(|&s| s == b));
            }
        }
        assert!(extracted_any, "no path extracted for any pair");
    }

    #[test]
    fn single_path_parity_with_all_paths() {
        let (t, g, graph) = an_bn_setup();
        let a = t.get("a").unwrap();
        let tns = TnsIndex::build(&graph, &g, &Instance::cpu(), &TnsOptions::default()).unwrap();
        for &(u, v) in tns.reachable_pairs().iter().take(6) {
            let p = tns.extract_single_path(u, v, 16).expect("derivable pair");
            assert!(is_well_formed(&p));
            assert_eq!(p.first().unwrap().from, u);
            assert_eq!(p.last().unwrap().to, v);
            let w = word_of(&p);
            let k = w.iter().filter(|&&s| s == a).count();
            assert_eq!(w.len(), 2 * k);
        }
        // Non-derivable pair yields None.
        assert!(
            tns.extract_single_path(3, 3, 8).is_none() || tns.reachable_pairs().contains(&(3, 3))
        );
    }

    #[test]
    fn multi_nonterminal_grammar() {
        // Memory-alias-shaped grammar with two nonterminals.
        let mut t = SymbolTable::new();
        let g = Grammar::parse(
            "S -> d_r V d\n\
             V -> a | S",
            &mut t,
        )
        .unwrap();
        let d = t.get("d").unwrap();
        let dr = t.get("d_r").unwrap();
        let a = t.get("a").unwrap();
        // 0 -d-> 1, 2 -d-> 3, 1 -a-> ... wait: build: 1 <- d - 0 means
        // d_r edge 1→0 needed; supply edges directly.
        let graph = LabeledGraph::from_triples(4, [(1, dr, 0), (0, a, 2), (2, d, 3), (1, d, 0)]);
        let cnf = CnfGrammar::from_grammar(&g);
        let expect = cfpq_pairs(&graph, &cnf, cnf.start());
        let tns = TnsIndex::build(&graph, &g, &Instance::cpu(), &TnsOptions::default()).unwrap();
        assert_eq!(tns.reachable_pairs(), expect);
    }
}
