//! Batched multi-source RPQ with per-source provenance.
//!
//! [`crate::rpq_bfs::rpq_from_sources_nfa`] answers "which vertices are
//! reachable from *any* source" — a union, useless for a serving layer
//! that has coalesced b independent single-source requests into one run
//! and must hand each client *its own* answer. This module keeps one
//! `b × n` Boolean matrix per automaton state (row i = the frontier of
//! source i), pushes all b BFS waves with a single `mxm` per
//! automaton edge, and reads per-source answers back out of the rows.
//! One batched run costs one kernel-launch chain instead of b — the
//! engine's same-plan batching is exactly this substitution.
//!
//! There is no dedicated difference kernel on the simulated backends;
//! the frontier subtraction `next ∧ ¬visited` uses the complemented-mask
//! SpGEMM with a `b × b` identity as the left factor:
//! `I_b ·⟨¬visited⟩ next`.

use rustc_hash::FxHashMap;

use spbla_core::{Instance, Matrix, Result};
use spbla_lang::{Nfa, Symbol};

use crate::closure::closure_delta;
use crate::graph::LabeledGraph;

/// Per-source reachability: `result[i]` is the sorted set of vertices
/// reachable from `sources[i]` along a word of the automaton's language
/// (ε-acceptance makes every source its own answer). All b sources are
/// advanced in lock-step through shared `b × n` frontier matrices.
pub fn rpq_from_each_source_nfa(
    graph: &LabeledGraph,
    nfa: &Nfa,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<Vec<u32>>> {
    let by_symbol = nfa.transitions_by_symbol();
    let mut mats: FxHashMap<Symbol, Matrix> = FxHashMap::default();
    for &sym in by_symbol.keys() {
        if graph.label_count(sym) > 0 {
            mats.insert(sym, graph.label_matrix(inst, sym)?);
        }
    }
    rpq_from_each_source_mats(&mats, graph.n_vertices(), nfa, sources, inst)
}

/// [`rpq_from_each_source_nfa`] over label matrices already resident on
/// `inst`'s device — the entry point the engine catalog uses, so a
/// cache-resident graph is never re-uploaded per request.
pub fn rpq_from_each_source_mats(
    mats: &FxHashMap<Symbol, Matrix>,
    n: u32,
    nfa: &Nfa,
    sources: &[u32],
    inst: &Instance,
) -> Result<Vec<Vec<u32>>> {
    let b = sources.len() as u32;
    if b == 0 {
        return Ok(Vec::new());
    }
    let k = nfa.n_states() as usize;
    let by_symbol = nfa.transitions_by_symbol();

    // Row i carries source i's wave.
    let seed: Vec<(u32, u32)> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u32, s))
        .collect();
    let src = Matrix::from_pairs(inst, b, n, &seed)?;
    let eye_b = Matrix::identity(inst, b)?;

    let mut visited: Vec<Matrix> = Vec::with_capacity(k);
    let mut frontier: Vec<Matrix> = Vec::with_capacity(k);
    for q in 0..k {
        let is_start = nfa.start_states().binary_search(&(q as u32)).is_ok();
        visited.push(if is_start {
            src.duplicate()?
        } else {
            Matrix::zeros(inst, b, n)?
        });
        frontier.push(visited[q].duplicate()?);
    }

    let mut answers = Matrix::zeros(inst, b, n)?;
    if nfa.accepts_epsilon() {
        answers = answers.ewise_add(&src)?;
    }

    loop {
        let mut next: Vec<Matrix> = Vec::with_capacity(k);
        for _ in 0..k {
            next.push(Matrix::zeros(inst, b, n)?);
        }
        for (sym, mat) in mats {
            let Some(edges) = by_symbol.get(sym) else {
                continue;
            };
            for &(f, t) in edges {
                if frontier[f as usize].nnz() == 0 {
                    continue;
                }
                let pushed = frontier[f as usize].mxm(mat)?;
                if pushed.nnz() > 0 {
                    next[t as usize] = next[t as usize].ewise_add(&pushed)?;
                }
            }
        }
        let mut any = false;
        for q in 0..k {
            if next[q].nnz() == 0 {
                frontier[q] = next[q].duplicate()?;
                continue;
            }
            // Fused fresh = (I_b · next) ∧ ¬visited + accumulate into
            // visited, with the fresh matrix doubling as the next
            // frontier — one kernel instead of compmask + ewise_add.
            let step = visited[q].mxm_accum_compmask(&eye_b, &next[q], true)?;
            let fresh = step.fresh.expect("fresh requested");
            if step.fresh_nnz > 0 {
                any = true;
                visited[q] = step.acc;
                if nfa.final_states().binary_search(&(q as u32)).is_ok() {
                    answers = answers.ewise_add(&fresh)?;
                }
            }
            frontier[q] = fresh;
        }
        if !any {
            break;
        }
    }

    let mut out: Vec<Vec<u32>> = vec![Vec::new(); b as usize];
    for (row, col) in answers.read() {
        out[row as usize].push(col);
    }
    for answer in &mut out {
        answer.sort_unstable();
        answer.dedup();
    }
    Ok(out)
}

/// All-pairs RPQ from resident label matrices: `M = Σ_s A_s ⊗ G_s`,
/// delta closure, then the `(q₀, q_f)` blocks — the same index
/// [`crate::rpq::RpqIndex`] builds, but constructed from matrices the
/// catalog already holds on the device instead of re-uploading the
/// graph per request.
pub fn rpq_all_pairs_mats(
    mats: &FxHashMap<Symbol, Matrix>,
    n: u32,
    nfa: &Nfa,
    inst: &Instance,
) -> Result<Vec<(u32, u32)>> {
    let k = nfa.n_states();
    let mut m = Matrix::zeros(inst, k * n, k * n)?;
    for (sym, edges) in nfa.transitions_by_symbol() {
        let Some(g) = mats.get(&sym) else {
            continue; // label absent from the graph: A_s ⊗ 0 = 0
        };
        if g.nnz() == 0 {
            continue;
        }
        let a = Matrix::from_pairs(inst, k, k, &edges)?;
        m = m.ewise_add(&a.kron(g)?)?;
    }
    let closure = closure_delta(&m)?;

    let mut out: Vec<(u32, u32)> = Vec::new();
    for &q0 in nfa.start_states() {
        for &qf in nfa.final_states() {
            let block = closure.submatrix(q0 * n, qf * n, n, n)?;
            out.extend(block.read());
        }
    }
    if nfa.accepts_epsilon() {
        out.extend((0..n).map(|v| (v, v)));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq::{RpqIndex, RpqOptions};
    use crate::rpq_bfs::rpq_from_sources_nfa;
    use spbla_lang::glushkov::glushkov;
    use spbla_lang::{Regex, SymbolTable};

    fn setup() -> (SymbolTable, LabeledGraph) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g = LabeledGraph::from_triples(
            6,
            [
                (0, a, 1),
                (1, b, 2),
                (2, b, 3),
                (1, a, 3),
                (3, a, 4),
                (5, b, 0),
            ],
        );
        (t, g)
    }

    #[test]
    fn batched_equals_one_by_one() {
        let (mut t, g) = setup();
        for q in ["a . b*", "(a | b)+", "a*", "a? . b*", "b . a . b"] {
            let r = Regex::parse(q, &mut t).unwrap();
            let nfa = glushkov(&r);
            for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
                let sources: Vec<u32> = (0..g.n_vertices()).collect();
                let batched = rpq_from_each_source_nfa(&g, &nfa, &sources, &inst).unwrap();
                for (i, &src) in sources.iter().enumerate() {
                    let single = rpq_from_sources_nfa(&g, &nfa, &[src], &inst).unwrap();
                    assert_eq!(batched[i], single, "query {q} source {src}");
                }
            }
        }
    }

    #[test]
    fn duplicate_sources_get_identical_rows() {
        let (mut t, g) = setup();
        let r = Regex::parse("a . b*", &mut t).unwrap();
        let nfa = glushkov(&r);
        let inst = Instance::cpu();
        let res = rpq_from_each_source_nfa(&g, &nfa, &[0, 1, 0], &inst).unwrap();
        assert_eq!(res[0], res[2]);
        assert_ne!(res[0], res[1]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (mut t, g) = setup();
        let r = Regex::parse("a", &mut t).unwrap();
        let nfa = glushkov(&r);
        assert!(rpq_from_each_source_nfa(&g, &nfa, &[], &Instance::cpu())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn all_pairs_from_mats_matches_index() {
        let (mut t, g) = setup();
        for q in ["a . b*", "(a | b)+", "a? . b*"] {
            let r = Regex::parse(q, &mut t).unwrap();
            let nfa = glushkov(&r);
            for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
                let mats = g.matrices(&inst).unwrap();
                let from_mats = rpq_all_pairs_mats(&mats, g.n_vertices(), &nfa, &inst).unwrap();
                let idx = RpqIndex::build(&g, &r, &inst, &RpqOptions::default()).unwrap();
                assert_eq!(from_mats, idx.reachable_pairs().unwrap(), "query {q}");
            }
        }
    }
}
