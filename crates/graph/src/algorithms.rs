//! Classic linear-algebra graph algorithms on SPbLA — the "library
//! extension up to full GraphBLAS API" direction the paper's conclusion
//! names as future work. Each algorithm is phrased in matrix/vector
//! operations (with the generic semiring library supplying counting
//! where Boolean structure is not enough).

use spbla_core::{CsrBool, Instance, Matrix, Result};
use spbla_generic::{spgemm, CsrMatrix, PlusTimesU64};

use crate::bfs::reachable_set;

/// Count triangles of an *undirected* graph given as a symmetric Boolean
/// adjacency (no self loops): `Σ_{(i,j) ∈ A} (A²)[i,j] / 6`, computed
/// with a counting product masked by the adjacency pattern.
pub fn triangle_count(adjacency: &CsrBool) -> u64 {
    let n = adjacency.nrows();
    debug_assert_eq!(n, adjacency.ncols());
    let triples: Vec<(u32, u32, u64)> = adjacency
        .to_pairs()
        .into_iter()
        .map(|(i, j)| (i, j, 1))
        .collect();
    let a = CsrMatrix::<PlusTimesU64>::from_triples(n, n, &triples);
    let paths2 = spgemm::mxm(&a, &a);
    let mut wedges_on_edges = 0u64;
    for (i, j) in adjacency.iter() {
        wedges_on_edges += paths2.get(i, j);
    }
    // Each triangle contributes 6 closed wedges over its (directed) edges.
    wedges_on_edges / 6
}

/// Strongly connected component ids (0-based, in discovery order) via
/// forward–backward reachability: `SCC(v) = reach(v) ∩ reachᵀ(v)`.
pub fn strongly_connected_components(adjacency: &Matrix, inst: &Instance) -> Result<Vec<u32>> {
    let n = adjacency.nrows();
    let transposed = adjacency.transpose()?;
    let mut component = vec![u32::MAX; n as usize];
    let mut next_id = 0u32;
    for v in 0..n {
        if component[v as usize] != u32::MAX {
            continue;
        }
        let fwd = reachable_set(adjacency, v, inst)?;
        let bwd = reachable_set(&transposed, v, inst)?;
        // Intersection of two sorted lists.
        let (mut x, mut y) = (0usize, 0usize);
        while x < fwd.len() && y < bwd.len() {
            match fwd[x].cmp(&bwd[y]) {
                std::cmp::Ordering::Equal => {
                    if component[fwd[x] as usize] == u32::MAX {
                        component[fwd[x] as usize] = next_id;
                    }
                    x += 1;
                    y += 1;
                }
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
            }
        }
        next_id += 1;
    }
    Ok(component)
}

/// Weakly connected component ids via BFS over the symmetrised
/// adjacency.
pub fn weakly_connected_components(adjacency: &Matrix, inst: &Instance) -> Result<Vec<u32>> {
    let sym = adjacency.ewise_add(&adjacency.transpose()?)?;
    let n = sym.nrows();
    let mut component = vec![u32::MAX; n as usize];
    let mut next_id = 0u32;
    for v in 0..n {
        if component[v as usize] != u32::MAX {
            continue;
        }
        for u in reachable_set(&sym, v, inst)? {
            component[u as usize] = next_id;
        }
        next_id += 1;
    }
    Ok(component)
}

/// PageRank over the (+,×) semiring: `r ← (1−d)/n + d·Pᵀ r` with `P`
/// row-stochastic, iterated until the L1 delta drops below `tol`.
/// Dangling vertices distribute uniformly. Returns the rank vector.
pub fn pagerank(adjacency: &CsrBool, damping: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    use spbla_generic::spmv::spmv;
    use spbla_generic::PlusTimesF64;
    let n = adjacency.nrows();
    if n == 0 {
        return Vec::new();
    }
    // Column-stochastic transition matrix Pᵀ: entry (v, u) = 1/outdeg(u).
    let mut triples: Vec<(u32, u32, f64)> = Vec::with_capacity(adjacency.nnz());
    for u in 0..n {
        let deg = adjacency.row_nnz(u);
        if deg == 0 {
            continue;
        }
        for &v in adjacency.row(u) {
            triples.push((v, u, 1.0 / deg as f64));
        }
    }
    let pt = CsrMatrix::<PlusTimesF64>::from_triples(n, n, &triples);
    let dangling: Vec<u32> = (0..n).filter(|&u| adjacency.row_nnz(u) == 0).collect();

    let mut rank = vec![1.0 / n as f64; n as usize];
    for _ in 0..max_iter {
        let pushed = spmv(&pt, &rank);
        let dangling_mass: f64 = dangling.iter().map(|&u| rank[u as usize]).sum();
        let base = (1.0 - damping) / n as f64 + damping * dangling_mass / n as f64;
        let next: Vec<f64> = pushed.iter().map(|&p| base + damping * p).collect();
        let delta: f64 = next.iter().zip(&rank).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        if delta < tol {
            break;
        }
    }
    rank
}

/// Number of vertices reachable from every vertex (the paper's
/// "reachability index size" diagnostic): row counts of the closure.
pub fn reachability_histogram(adjacency: &Matrix) -> Result<Vec<usize>> {
    let closure = adjacency.transitive_closure()?;
    let csr = closure.to_csr();
    Ok((0..csr.nrows()).map(|i| csr.row_nnz(i)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_triangles() {
        // Triangle 0-1-2 plus a pendant edge 2-3, symmetric.
        let edges = [
            (0u32, 1u32),
            (1, 0),
            (1, 2),
            (2, 1),
            (0, 2),
            (2, 0),
            (2, 3),
            (3, 2),
        ];
        let a = CsrBool::from_pairs(4, 4, &edges).unwrap();
        assert_eq!(triangle_count(&a), 1);
        // Complete graph K4 has 4 triangles.
        let mut k4 = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    k4.push((i, j));
                }
            }
        }
        let a4 = CsrBool::from_pairs(4, 4, &k4).unwrap();
        assert_eq!(triangle_count(&a4), 4);
        // Triangle-free bipartite square.
        let sq = CsrBool::from_pairs(
            4,
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 0),
                (0, 3),
            ],
        )
        .unwrap();
        assert_eq!(triangle_count(&sq), 0);
    }

    #[test]
    fn scc_on_two_cycles_and_bridge() {
        let inst = Instance::cpu();
        // Cycle {0,1,2}, bridge 2→3, cycle {3,4}.
        let a = Matrix::from_pairs(
            &inst,
            5,
            5,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)],
        )
        .unwrap();
        let scc = strongly_connected_components(&a, &inst).unwrap();
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[1], scc[2]);
        assert_eq!(scc[3], scc[4]);
        assert_ne!(scc[0], scc[3]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 6, 6, &[(0, 1), (2, 1), (4, 5)]).unwrap();
        let wcc = weakly_connected_components(&a, &inst).unwrap();
        assert_eq!(wcc[0], wcc[1]);
        assert_eq!(wcc[1], wcc[2]);
        assert_eq!(wcc[4], wcc[5]);
        assert_ne!(wcc[0], wcc[4]);
        assert_ne!(wcc[3], wcc[0]);
        assert_ne!(wcc[3], wcc[4]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Star: everyone links to 0.
        let edges: Vec<(u32, u32)> = (1..6u32).map(|u| (u, 0)).collect();
        let a = CsrBool::from_pairs(6, 6, &edges).unwrap();
        let r = pagerank(&a, 0.85, 1e-10, 200);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass {total}");
        for v in 1..6 {
            assert!(r[0] > r[v], "hub must outrank leaf {v}");
        }
        // Uniform cycle: all ranks equal.
        let cyc: Vec<(u32, u32)> = (0..4u32).map(|u| (u, (u + 1) % 4)).collect();
        let c = CsrBool::from_pairs(4, 4, &cyc).unwrap();
        let rc = pagerank(&c, 0.85, 1e-12, 500);
        for v in 1..4 {
            assert!((rc[0] - rc[v]).abs() < 1e-8);
        }
    }

    #[test]
    fn histogram_of_chain() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(reachability_histogram(&a).unwrap(), vec![3, 2, 1, 0]);
    }
}
