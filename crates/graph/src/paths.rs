//! Path representation shared by RPQ and CFPQ extraction.

use spbla_lang::Symbol;

/// One labeled edge on an extracted path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEdge {
    /// Source vertex.
    pub from: u32,
    /// Edge label.
    pub label: Symbol,
    /// Target vertex.
    pub to: u32,
}

/// Check that consecutive edges chain (`e.to == next.from`).
pub fn is_well_formed(path: &[PathEdge]) -> bool {
    path.windows(2).all(|w| w[0].to == w[1].from)
}

/// The word spelled by a path.
pub fn word_of(path: &[PathEdge]) -> Vec<Symbol> {
    path.iter().map(|e| e.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formedness() {
        let a = Symbol(0);
        let good = [
            PathEdge {
                from: 0,
                label: a,
                to: 1,
            },
            PathEdge {
                from: 1,
                label: a,
                to: 2,
            },
        ];
        let bad = [
            PathEdge {
                from: 0,
                label: a,
                to: 1,
            },
            PathEdge {
                from: 2,
                label: a,
                to: 3,
            },
        ];
        assert!(is_well_formed(&good));
        assert!(!is_well_formed(&bad));
        assert_eq!(word_of(&good), vec![a, a]);
    }
}
