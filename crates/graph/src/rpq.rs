//! Regular path querying by Kronecker product.
//!
//! The unified algorithm of the paper, specialised to a regular query:
//! build the query's Glushkov automaton, form the intersection machine
//! `M = Σ_s A_s ⊗ G_s` with one Kronecker product per shared label, and
//! take the transitive closure of `M` — that closure *is* the index the
//! evaluation times (Figures 2 and 3). A pair `(v, u)` is an answer iff
//! some `(q₀·n + v, q_f·n + u)` is in the closure.

use rustc_hash::FxHashMap;

use spbla_core::{CsrBool, Instance, Matrix, Result};
use spbla_lang::glushkov::glushkov;
use spbla_lang::{Nfa, Regex, Symbol};

use crate::closure::{closure_delta, closure_single_step, closure_squaring};
use crate::graph::LabeledGraph;
use crate::paths::PathEdge;

/// Closure schedule selection for index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClosureKind {
    /// Semi-naïve frontier iteration `(C·Δ) ∧ ¬C` (default).
    #[default]
    Delta,
    /// `C += C·C` doubling.
    Squaring,
    /// `C += C·A` relaxation.
    SingleStep,
}

/// Automaton construction used for the query's Kronecker factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AutomatonKind {
    /// Glushkov's position automaton (ε-free, `positions + 1` states) —
    /// the default, as in the provenance-aware RPQ work the paper cites.
    #[default]
    Glushkov,
    /// Thompson construction followed by ε-elimination (larger; kept for
    /// the automaton-size ablation).
    Thompson,
    /// Brzozowski derivative automaton (deterministic).
    DerivativeDfa,
    /// Subset construction + Hopcroft minimisation (smallest DFA).
    MinimizedDfa,
}

/// Options for [`RpqIndex::build`].
#[derive(Debug, Clone, Default)]
pub struct RpqOptions {
    /// Closure schedule.
    pub closure: ClosureKind,
    /// Automaton construction (E10-adjacent ablation: the automaton's
    /// state count is the Kronecker factor size).
    pub automaton: AutomatonKind,
}

/// The reachability index of one RPQ over one graph.
#[derive(Debug)]
pub struct RpqIndex {
    k: u32,
    n: u32,
    starts: Vec<u32>,
    finals: Vec<u32>,
    accepts_epsilon: bool,
    closure: Matrix,
    /// Per-symbol automaton matrices (host, for path extraction).
    automaton: FxHashMap<Symbol, CsrBool>,
    /// Per-symbol graph matrices (host, for path extraction).
    graph: FxHashMap<Symbol, CsrBool>,
}

impl RpqIndex {
    /// Build the index for `regex` over `graph` on `inst`.
    ///
    /// ```
    /// use spbla_core::Instance;
    /// use spbla_graph::{LabeledGraph, RpqIndex, RpqOptions};
    /// use spbla_lang::{Regex, SymbolTable};
    ///
    /// let mut table = SymbolTable::new();
    /// let follows = table.intern("follows");
    /// let graph = LabeledGraph::from_triples(3, [(0, follows, 1), (1, follows, 2)]);
    /// let query = Regex::parse("follows . follows", &mut table).unwrap();
    /// let idx = RpqIndex::build(&graph, &query, &Instance::cpu(), &RpqOptions::default()).unwrap();
    /// assert_eq!(idx.reachable_pairs().unwrap(), vec![(0, 2)]);
    /// ```
    pub fn build(
        graph: &LabeledGraph,
        regex: &Regex,
        inst: &Instance,
        options: &RpqOptions,
    ) -> Result<RpqIndex> {
        let nfa = match options.automaton {
            AutomatonKind::Glushkov => glushkov(regex),
            AutomatonKind::Thompson => spbla_lang::thompson::thompson(regex),
            AutomatonKind::DerivativeDfa => {
                spbla_lang::derivative::derivative_automaton(regex, &regex.symbols())
            }
            AutomatonKind::MinimizedDfa => {
                let dfa = spbla_lang::Dfa::from_nfa(&glushkov(regex));
                spbla_lang::minimize::minimize(&dfa)
            }
        };
        Self::build_from_nfa(graph, &nfa, inst, options)
    }

    /// Build from an explicit ε-free NFA.
    pub fn build_from_nfa(
        graph: &LabeledGraph,
        nfa: &Nfa,
        inst: &Instance,
        options: &RpqOptions,
    ) -> Result<RpqIndex> {
        let k = nfa.n_states();
        let n = graph.n_vertices();

        // Automaton and graph matrices per shared symbol.
        let mut automaton: FxHashMap<Symbol, CsrBool> = FxHashMap::default();
        let mut graph_mats: FxHashMap<Symbol, CsrBool> = FxHashMap::default();
        for (sym, edges) in nfa.transitions_by_symbol() {
            if graph.label_count(sym) == 0 {
                continue; // label absent from the graph: A_s ⊗ 0 = 0
            }
            let a = CsrBool::from_pairs(k, k, &edges).expect("automaton states in bounds");
            automaton.insert(sym, a);
            graph_mats.insert(sym, graph.label_csr(sym));
        }

        // M = Σ_s A_s ⊗ G_s.
        let mut m = Matrix::zeros(inst, k * n, k * n)?;
        for (sym, a) in &automaton {
            let da = Matrix::from_csr(inst, a.clone())?;
            let dg = Matrix::from_csr(inst, graph_mats[sym].clone())?;
            let piece = da.kron(&dg)?;
            m = m.ewise_add(&piece)?;
        }

        let closure = match options.closure {
            ClosureKind::Delta => closure_delta(&m)?,
            ClosureKind::Squaring => closure_squaring(&m)?,
            ClosureKind::SingleStep => closure_single_step(&m)?,
        };

        Ok(RpqIndex {
            k,
            n,
            starts: nfa.start_states().to_vec(),
            finals: nfa.final_states().to_vec(),
            accepts_epsilon: nfa.accepts_epsilon(),
            closure,
            automaton,
            graph: graph_mats,
        })
    }

    /// Automaton state count (the Kronecker factor size).
    pub fn automaton_states(&self) -> u32 {
        self.k
    }

    /// Index size: nnz of the closure matrix.
    pub fn index_nnz(&self) -> usize {
        self.closure.nnz()
    }

    /// All reachable pairs `(v, u)` (vertices connected by a word of the
    /// language). ε-acceptance contributes every `(v, v)`.
    pub fn reachable_pairs(&self) -> Result<Vec<(u32, u32)>> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for &q0 in &self.starts {
            for &qf in &self.finals {
                let block = self
                    .closure
                    .submatrix(q0 * self.n, qf * self.n, self.n, self.n)?;
                out.extend(block.read());
            }
        }
        if self.accepts_epsilon {
            out.extend((0..self.n).map(|v| (v, v)));
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Whether `u` reaches `v` under the query.
    pub fn is_reachable(&self, u: u32, v: u32) -> bool {
        if self.accepts_epsilon && u == v {
            return true;
        }
        self.starts.iter().any(|&q0| {
            self.finals
                .iter()
                .any(|&qf| self.closure.get(q0 * self.n + u, qf * self.n + v))
        })
    }

    /// Extract up to `max_count` matching paths from `u` to `v` of length
    /// ≤ `max_len`, by budgeted DFS over the intersection machine (see
    /// [`RpqIndex::extract_paths_budgeted`]).
    pub fn extract_paths(
        &self,
        u: u32,
        v: u32,
        max_len: usize,
        max_count: usize,
    ) -> Vec<Vec<PathEdge>> {
        self.extract_paths_budgeted(u, v, max_len, max_count, 200_000)
    }

    /// Like [`RpqIndex::extract_paths`], giving up after `budget`
    /// product-graph steps so a path-dense region cannot wander
    /// exponentially.
    pub fn extract_paths_budgeted(
        &self,
        u: u32,
        v: u32,
        max_len: usize,
        max_count: usize,
        budget: usize,
    ) -> Vec<Vec<PathEdge>> {
        let mut results = Vec::new();
        if self.accepts_epsilon && u == v && max_count > 0 {
            results.push(Vec::new());
        }
        let mut stack: Vec<PathEdge> = Vec::new();
        let mut steps = budget;
        for &q0 in &self.starts.clone() {
            self.dfs(
                q0,
                u,
                v,
                max_len,
                max_count,
                &mut steps,
                &mut stack,
                &mut results,
            );
            if results.len() >= max_count {
                break;
            }
        }
        results.truncate(max_count);
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        q: u32,
        x: u32,
        target: u32,
        max_len: usize,
        max_count: usize,
        steps: &mut usize,
        stack: &mut Vec<PathEdge>,
        results: &mut Vec<Vec<PathEdge>>,
    ) {
        if results.len() >= max_count || stack.len() >= max_len || *steps == 0 {
            return;
        }
        *steps -= 1;
        for (&sym, a) in &self.automaton {
            let g = &self.graph[&sym];
            for &q2 in a.row(q) {
                for &x2 in g.row(x) {
                    if results.len() >= max_count || *steps == 0 {
                        return;
                    }
                    stack.push(PathEdge {
                        from: x,
                        label: sym,
                        to: x2,
                    });
                    if x2 == target && self.finals.binary_search(&q2).is_ok() {
                        results.push(stack.clone());
                    }
                    self.dfs(q2, x2, target, max_len, max_count, steps, stack, results);
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{is_well_formed, word_of};
    use spbla_lang::SymbolTable;

    fn setup() -> (SymbolTable, LabeledGraph) {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        // 0 -a-> 1 -b-> 2 -b-> 3, 1 -a-> 3
        let g = LabeledGraph::from_triples(4, [(0, a, 1), (1, b, 2), (2, b, 3), (1, a, 3)]);
        (t, g)
    }

    #[test]
    fn simple_query_all_backends() {
        let (mut t, g) = setup();
        let r = Regex::parse("a . b*", &mut t).unwrap();
        let mut per_backend = Vec::new();
        for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
            let idx = RpqIndex::build(&g, &r, &inst, &RpqOptions::default()).unwrap();
            per_backend.push(idx.reachable_pairs().unwrap());
        }
        assert_eq!(per_backend[0], per_backend[1]);
        assert_eq!(per_backend[0], per_backend[2]);
        // a.b*: 0→1 (a), 0→2 (ab), 0→3 (abb), 1→3 (a).
        assert_eq!(per_backend[0], vec![(0, 1), (0, 2), (0, 3), (1, 3)]);
    }

    #[test]
    fn epsilon_query_includes_diagonal() {
        let (mut t, g) = setup();
        let r = Regex::parse("a*", &mut t).unwrap();
        let idx = RpqIndex::build(&g, &r, &Instance::cpu(), &RpqOptions::default()).unwrap();
        let pairs = idx.reachable_pairs().unwrap();
        for v in 0..4 {
            assert!(pairs.contains(&(v, v)), "missing ({v},{v})");
        }
        assert!(pairs.contains(&(0, 3))); // a a via 1
        assert!(idx.is_reachable(0, 1));
        assert!(!idx.is_reachable(2, 1));
    }

    #[test]
    fn closure_kinds_agree() {
        let (mut t, g) = setup();
        let r = Regex::parse("(a | b)+", &mut t).unwrap();
        let inst = Instance::cpu();
        let sq = RpqIndex::build(
            &g,
            &r,
            &inst,
            &RpqOptions {
                closure: ClosureKind::Squaring,
                ..RpqOptions::default()
            },
        )
        .unwrap();
        let ss = RpqIndex::build(
            &g,
            &r,
            &inst,
            &RpqOptions {
                closure: ClosureKind::SingleStep,
                ..RpqOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sq.reachable_pairs().unwrap(), ss.reachable_pairs().unwrap());
    }

    #[test]
    fn all_automaton_kinds_agree() {
        let (mut t, g) = setup();
        let inst = Instance::cpu();
        for q in ["a . b*", "(a | b)+", "a*", "a? . b*"] {
            let r = Regex::parse(q, &mut t).unwrap();
            let mut answers = Vec::new();
            let mut states = Vec::new();
            for kind in [
                AutomatonKind::Glushkov,
                AutomatonKind::Thompson,
                AutomatonKind::DerivativeDfa,
                AutomatonKind::MinimizedDfa,
            ] {
                let idx = RpqIndex::build(
                    &g,
                    &r,
                    &inst,
                    &RpqOptions {
                        automaton: kind,
                        ..RpqOptions::default()
                    },
                )
                .unwrap();
                states.push(idx.automaton_states());
                answers.push(idx.reachable_pairs().unwrap());
            }
            for a in &answers[1..] {
                assert_eq!(a, &answers[0], "query {q}");
            }
            // Size ordering: minimised <= Glushkov <= Thompson.
            assert!(
                states[3] <= states[0],
                "minimised bigger than Glushkov on {q}"
            );
            assert!(
                states[0] <= states[1],
                "Glushkov bigger than Thompson on {q}"
            );
        }
    }

    #[test]
    fn extracted_paths_match_query() {
        let (mut t, g) = setup();
        let r = Regex::parse("a . b*", &mut t).unwrap();
        let idx = RpqIndex::build(&g, &r, &Instance::cpu(), &RpqOptions::default()).unwrap();
        let paths = idx.extract_paths(0, 3, 10, 10);
        assert!(!paths.is_empty());
        for p in &paths {
            assert!(is_well_formed(p));
            assert_eq!(p.first().unwrap().from, 0);
            assert_eq!(p.last().unwrap().to, 3);
            assert!(r.matches(&word_of(p)), "word {:?}", word_of(p));
        }
    }

    #[test]
    fn absent_labels_yield_empty_index() {
        let (mut t, g) = setup();
        let r = Regex::parse("zzz", &mut t).unwrap();
        let idx = RpqIndex::build(&g, &r, &Instance::cpu(), &RpqOptions::default()).unwrap();
        assert!(idx.reachable_pairs().unwrap().is_empty());
        assert_eq!(idx.index_nnz(), 0);
    }
}
