//! # spbla-generic — generic-semiring sparse matrices
//!
//! The comparator baseline for the paper's headline claim: *"operations
//! specialized for Boolean matrices can be up to 5 times faster and
//! consume up to 4 times less memory than generic, not the Boolean
//! optimized, operations from modern libraries."*
//!
//! This crate is that "generic, not Boolean optimized" library: CSR
//! matrices that carry an explicit value per stored entry over an
//! arbitrary [`Semiring`], with the same algorithmic skeletons as
//! `spbla-core` (hash SpGEMM, merge addition, Kronecker, transpose) —
//! so benchmarks isolate exactly the cost of storing and combining
//! values versus pure structural set operations.

pub mod add;
pub mod csr;
pub mod kron;
pub mod mult;
pub mod reduce;
pub mod semiring;
pub mod spgemm;
pub mod spmv;
pub mod transpose;

pub use csr::CsrMatrix;
pub use semiring::{
    BoolOrAnd, MaxTimesF64, MinPlusU32, PlusTimesF32, PlusTimesF64, PlusTimesU32, PlusTimesU64,
    Semiring,
};
