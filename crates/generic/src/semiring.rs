//! Semiring abstraction and the standard instances.
//!
//! A semiring `(T, ⊕, ⊗, 0, 1)` fixes what "multiply" and "add" mean for
//! sparse kernels. GraphBLAS-style libraries are generic over this; the
//! whole point of SPbLA is that fixing it to `({0,1}, ∨, ∧)` lets values
//! vanish from storage entirely. The instances here are the ones common
//! in graph analytics (and the ones the paper's future-work section names
//! for Brahma.FSharp, e.g. min-plus).

/// A semiring over the element type [`Semiring::Elem`].
///
/// Laws (exercised by property tests): `⊕` is associative and commutative
/// with identity `zero()`; `⊗` is associative with identity `one()`;
/// `⊗` distributes over `⊕`; `zero()` annihilates under `⊗`.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Stored element type.
    type Elem: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static;

    /// Additive identity (not stored in sparse structures).
    fn zero() -> Self::Elem;
    /// Multiplicative identity.
    fn one() -> Self::Elem;
    /// Semiring addition `⊕`.
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// Semiring multiplication `⊗`.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Whether an element equals the additive identity (pruned from
    /// sparse output).
    fn is_zero(a: Self::Elem) -> bool {
        a == Self::zero()
    }
}

/// Standard arithmetic `(+, ×)` over `f32` — the cuSPARSE/CUSP default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimesF32;

impl Semiring for PlusTimesF32 {
    type Elem = f32;
    fn zero() -> f32 {
        0.0
    }
    fn one() -> f32 {
        1.0
    }
    fn add(a: f32, b: f32) -> f32 {
        a + b
    }
    fn mul(a: f32, b: f32) -> f32 {
        a * b
    }
}

/// Standard arithmetic `(+, ×)` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimesF64;

impl Semiring for PlusTimesF64 {
    type Elem = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// Wrapping integer arithmetic over `u32` (path counting mod 2³²).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimesU32;

impl Semiring for PlusTimesU32 {
    type Elem = u32;
    fn zero() -> u32 {
        0
    }
    fn one() -> u32 {
        1
    }
    fn add(a: u32, b: u32) -> u32 {
        a.wrapping_add(b)
    }
    fn mul(a: u32, b: u32) -> u32 {
        a.wrapping_mul(b)
    }
}

/// Wrapping integer arithmetic over `u64` (triangle/path counting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimesU64;

impl Semiring for PlusTimesU64 {
    type Elem = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn add(a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }
    fn mul(a: u64, b: u64) -> u64 {
        a.wrapping_mul(b)
    }
}

/// Tropical `(min, +)` semiring over `u32` — shortest paths.
/// `u32::MAX` plays +∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlusU32;

impl Semiring for MinPlusU32 {
    type Elem = u32;
    fn zero() -> u32 {
        u32::MAX
    }
    fn one() -> u32 {
        0
    }
    fn add(a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn mul(a: u32, b: u32) -> u32 {
        a.saturating_add(b)
    }
}

/// `(max, ×)` over non-negative `f64` — most-reliable-path style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxTimesF64;

impl Semiring for MaxTimesF64 {
    type Elem = f64;
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The Boolean semiring expressed *generically* (values stored as bytes):
/// semantically identical to `spbla-core`, but paying the generic-library
/// storage and arithmetic costs — the honest baseline for E8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type Elem = u8;
    fn zero() -> u8 {
        0
    }
    fn one() -> u8 {
        1
    }
    fn add(a: u8, b: u8) -> u8 {
        a | b
    }
    fn mul(a: u8, b: u8) -> u8 {
        a & b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(samples: &[S::Elem]) {
        for &a in samples {
            assert_eq!(S::add(a, S::zero()), a, "additive identity");
            assert_eq!(S::mul(a, S::one()), a, "multiplicative identity");
            assert_eq!(S::mul(a, S::zero()), S::zero(), "annihilation");
            for &b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "add commutes");
                for &c in samples {
                    assert_eq!(
                        S::add(S::add(a, b), c),
                        S::add(a, S::add(b, c)),
                        "add associates"
                    );
                    assert_eq!(
                        S::mul(S::mul(a, b), c),
                        S::mul(a, S::mul(b, c)),
                        "mul associates"
                    );
                    assert_eq!(
                        S::mul(a, S::add(b, c)),
                        S::add(S::mul(a, b), S::mul(a, c)),
                        "left distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn plus_times_u32_laws() {
        check_laws::<PlusTimesU32>(&[0, 1, 2, 7, 1000]);
    }

    #[test]
    fn min_plus_laws() {
        check_laws::<MinPlusU32>(&[u32::MAX, 0, 1, 5, 100]);
    }

    #[test]
    fn bool_or_and_laws() {
        check_laws::<BoolOrAnd>(&[0, 1]);
    }

    #[test]
    fn float_semirings_behave_on_simple_values() {
        assert_eq!(PlusTimesF32::add(1.5, 2.5), 4.0);
        assert_eq!(MaxTimesF64::add(0.3, 0.7), 0.7);
        assert_eq!(MaxTimesF64::mul(0.5, 0.5), 0.25);
    }
}
