//! Valued hash SpGEMM — the same two-phase (symbolic/numeric) skeleton
//! as the Boolean kernel in `spbla-core` and as cuSPARSE's `csrgemm`
//! (the library the paper benchmarks against): a symbolic pass counts
//! the output pattern so the result is allocated exactly, and a numeric
//! pass re-runs the products *with value accumulation* and co-sorts the
//! `(column, value)` pairs. The benchmark pair (E8) measures exactly the
//! delta the numeric pass adds over the Boolean version.

use rayon::prelude::*;

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

const EMPTY: Index = Index::MAX;

#[inline]
fn hash(j: Index, mask: usize) -> usize {
    (j as usize).wrapping_mul(0x9E37_79B1) & mask
}

/// Symbolic insert into a column-only table; true iff newly inserted.
#[inline]
fn insert_symbolic(table: &mut [Index], j: Index) -> bool {
    let mask = table.len() - 1;
    let mut h = hash(j, mask);
    loop {
        let k = table[h];
        if k == EMPTY {
            table[h] = j;
            return true;
        }
        if k == j {
            return false;
        }
        h = (h + 1) & mask;
    }
}

/// Numeric accumulate into a (column, value) table.
#[inline]
fn accumulate<S: Semiring>(keys: &mut [Index], vals: &mut [S::Elem], j: Index, v: S::Elem) {
    let mask = keys.len() - 1;
    let mut h = hash(j, mask);
    loop {
        let k = keys[h];
        if k == EMPTY {
            keys[h] = j;
            vals[h] = v;
            return;
        }
        if k == j {
            vals[h] = S::add(vals[h], v);
            return;
        }
        h = (h + 1) & mask;
    }
}

fn table_size(upper_bound: usize) -> usize {
    (upper_bound.max(1) * 2).next_power_of_two()
}

/// `C = A · B` over semiring `S` (row-parallel two-phase hash SpGEMM).
///
/// # Panics
/// If `A.ncols() != B.nrows()`.
pub fn mxm<S: Semiring>(a: &CsrMatrix<S>, b: &CsrMatrix<S>) -> CsrMatrix<S> {
    assert_eq!(a.ncols(), b.nrows(), "mxm dimension mismatch");
    let m = a.nrows();

    // Upper bounds per row.
    let ub: Vec<usize> = (0..m)
        .into_par_iter()
        .map(|i| a.row_cols(i).iter().map(|&k| b.row_nnz(k)).sum())
        .collect();

    // Symbolic phase: exact output pattern sizes (column-only tables —
    // even the generic library's symbolic pass is value-free, as in
    // cuSPARSE; the numeric pass below is where values cost).
    let row_nnz: Vec<usize> = (0..m)
        .into_par_iter()
        .map(|i| {
            let bound = ub[i as usize];
            if bound == 0 {
                return 0;
            }
            let mut table = vec![EMPTY; table_size(bound)];
            let mut count = 0usize;
            for &k in a.row_cols(i) {
                for &j in b.row_cols(k) {
                    if insert_symbolic(&mut table, j) {
                        count += 1;
                    }
                }
            }
            count
        })
        .collect();

    let mut row_ptr: Vec<Index> = Vec::with_capacity(m as usize + 1);
    row_ptr.push(0);
    let mut total = 0usize;
    for &c in &row_nnz {
        total += c;
        row_ptr.push(total as Index);
    }

    // Exact allocation, then a numeric fill into disjoint row slices.
    let mut cols = vec![0 as Index; total];
    let mut vals = vec![S::zero(); total];
    {
        // Split the output into per-row slices (disjoint by row_ptr).
        let mut col_slices: Vec<&mut [Index]> = Vec::with_capacity(m as usize);
        let mut val_slices: Vec<&mut [S::Elem]> = Vec::with_capacity(m as usize);
        let (mut crest, mut vrest): (&mut [Index], &mut [S::Elem]) = (&mut cols, &mut vals);
        for &len in row_nnz.iter() {
            let (c0, c1) = crest.split_at_mut(len);
            let (v0, v1) = vrest.split_at_mut(len);
            col_slices.push(c0);
            val_slices.push(v0);
            crest = c1;
            vrest = v1;
        }
        col_slices
            .into_par_iter()
            .zip(val_slices)
            .enumerate()
            .for_each(|(i, (cslice, vslice))| {
                let i = i as Index;
                if cslice.is_empty() {
                    return;
                }
                let size = table_size(ub[i as usize]);
                let mut keys = vec![EMPTY; size];
                let mut accs = vec![S::zero(); size];
                for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                    for (&j, &bv) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                        accumulate::<S>(&mut keys, &mut accs, j, S::mul(av, bv));
                    }
                }
                // Drain, co-sorting (column, value) pairs.
                let mut entries: Vec<(Index, S::Elem)> = keys
                    .iter()
                    .zip(&accs)
                    .filter(|(&k, _)| k != EMPTY)
                    .map(|(&k, &v)| (k, v))
                    .collect();
                entries.sort_unstable_by_key(|&(k, _)| k);
                for (w, (j, v)) in entries.into_iter().enumerate() {
                    cslice[w] = j;
                    vslice[w] = v;
                }
            });
    }

    // Prune exact zeros produced by cancellation (kept simple: a
    // compaction pass; rare in practice).
    let needs_prune = vals.par_iter().any(|v| S::is_zero(*v));
    if needs_prune {
        let mut p_row_ptr: Vec<Index> = Vec::with_capacity(m as usize + 1);
        p_row_ptr.push(0);
        let mut p_cols = Vec::with_capacity(total);
        let mut p_vals = Vec::with_capacity(total);
        for i in 0..m as usize {
            for e in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                if !S::is_zero(vals[e]) {
                    p_cols.push(cols[e]);
                    p_vals.push(vals[e]);
                }
            }
            p_row_ptr.push(p_cols.len() as Index);
        }
        return CsrMatrix::from_raw(m, b.ncols(), p_row_ptr, p_cols, p_vals);
    }

    CsrMatrix::from_raw(m, b.ncols(), row_ptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolOrAnd, MinPlusU32, PlusTimesU32};

    #[test]
    fn counts_paths() {
        // Two length-2 routes 0→2 must sum to 2 under (+,×).
        let a = CsrMatrix::<PlusTimesU32>::from_triples(
            3,
            3,
            &[(0, 0, 1), (0, 1, 1), (1, 2, 1), (0, 2, 0)],
        );
        let b = CsrMatrix::<PlusTimesU32>::from_triples(3, 3, &[(0, 2, 1), (1, 2, 1), (2, 2, 1)]);
        let c = mxm(&a, &b);
        assert_eq!(c.get(0, 2), 2);
    }

    #[test]
    fn min_plus_is_shortest_path_step() {
        let a = CsrMatrix::<MinPlusU32>::from_triples(3, 3, &[(0, 1, 3), (0, 2, 10)]);
        let b = CsrMatrix::<MinPlusU32>::from_triples(3, 3, &[(1, 2, 4), (2, 2, 0)]);
        let c = mxm(&a, &b);
        assert_eq!(c.get(0, 2), 7);
    }

    #[test]
    fn bool_semiring_matches_structure() {
        let a = CsrMatrix::<BoolOrAnd>::from_triples(3, 3, &[(0, 1, 1), (1, 2, 1)]);
        let b = CsrMatrix::<BoolOrAnd>::from_triples(3, 3, &[(1, 2, 1), (2, 0, 1)]);
        let c = mxm(&a, &b);
        assert_eq!(c.pattern(), vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn cancellation_prunes_zeros() {
        // +1 and -1 (wrapping) contributions cancel to zero → pruned.
        let a = CsrMatrix::<PlusTimesU32>::from_triples(1, 2, &[(0, 0, 1), (0, 1, 1)]);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(2, 1, &[(0, 0, 1), (1, 0, u32::MAX)]);
        let c = mxm(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn empty_product() {
        let a = CsrMatrix::<PlusTimesU32>::zeros(4, 4);
        let b = CsrMatrix::<PlusTimesU32>::identity(4);
        assert_eq!(mxm(&a, &b).nnz(), 0);
    }

    #[test]
    fn larger_product_matches_naive() {
        // Cross-check against a dense O(n³) reference.
        let n = 24u32;
        let tri_a: Vec<(u32, u32, u32)> = (0..n)
            .flat_map(|i| (0..4).map(move |d| (i, (i * 3 + d * 7) % n, d + 1)))
            .collect();
        let tri_b: Vec<(u32, u32, u32)> = (0..n)
            .flat_map(|i| (0..3).map(move |d| (i, (i * 5 + d * 11) % n, d + 2)))
            .collect();
        let a = CsrMatrix::<PlusTimesU32>::from_triples(n, n, &tri_a);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(n, n, &tri_b);
        let c = mxm(&a, &b);
        for i in 0..n {
            for j in 0..n {
                let mut expect = 0u32;
                for k in 0..n {
                    expect = expect.wrapping_add(a.get(i, k).wrapping_mul(b.get(k, j)));
                }
                assert_eq!(c.get(i, j), expect, "cell ({i},{j})");
            }
        }
    }
}
