//! Valued transpose (counting sort over columns, values carried along).

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

/// `Mᵀ`.
pub fn transpose<S: Semiring>(m: &CsrMatrix<S>) -> CsrMatrix<S> {
    let mut counts = vec![0 as Index; m.ncols() as usize + 1];
    for &j in m.cols() {
        counts[j as usize + 1] += 1;
    }
    for c in 0..m.ncols() as usize {
        counts[c + 1] += counts[c];
    }
    let row_ptr = counts.clone();
    let mut cols = vec![0 as Index; m.nnz()];
    let mut vals = vec![S::zero(); m.nnz()];
    let mut cursor = counts;
    for i in 0..m.nrows() {
        for (&j, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
            let p = cursor[j as usize] as usize;
            cols[p] = i;
            vals[p] = v;
            cursor[j as usize] += 1;
        }
    }
    CsrMatrix::from_raw(m.ncols(), m.nrows(), row_ptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimesU32;

    #[test]
    fn transpose_moves_values() {
        let m = CsrMatrix::<PlusTimesU32>::from_triples(2, 3, &[(0, 2, 5), (1, 0, 7)]);
        let t = transpose(&m);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 0), 5);
        assert_eq!(t.get(0, 1), 7);
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = CsrMatrix::<PlusTimesU32>::from_triples(3, 3, &[(0, 1, 1), (2, 0, 2), (2, 2, 3)]);
        assert_eq!(transpose(&transpose(&m)), m);
    }
}
