//! Valued element-wise addition (row-parallel two-pointer merge with `⊕`
//! combination on coordinate collisions).

use rayon::prelude::*;

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

/// `C = A ⊕ B` element-wise.
///
/// # Panics
/// If shapes differ.
pub fn ewise_add<S: Semiring>(a: &CsrMatrix<S>, b: &CsrMatrix<S>) -> CsrMatrix<S> {
    assert_eq!(a.shape(), b.shape(), "ewise_add shape mismatch");
    let m = a.nrows();

    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..m)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = (a.row_cols(i), a.row_vals(i));
            let (bc, bv) = (b.row_cols(i), b.row_vals(i));
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut x, mut y) = (0usize, 0usize);
            while x < ac.len() || y < bc.len() {
                let (j, v) = if y >= bc.len() || (x < ac.len() && ac[x] < bc[y]) {
                    x += 1;
                    (ac[x - 1], av[x - 1])
                } else if x >= ac.len() || bc[y] < ac[x] {
                    y += 1;
                    (bc[y - 1], bv[y - 1])
                } else {
                    let v = S::add(av[x], bv[y]);
                    x += 1;
                    y += 1;
                    (ac[x - 1], v)
                };
                if !S::is_zero(v) {
                    cols.push(j);
                    vals.push(v);
                }
            }
            (cols, vals)
        })
        .collect();

    let mut row_ptr = Vec::with_capacity(m as usize + 1);
    row_ptr.push(0 as Index);
    let mut total = 0usize;
    for (c, _) in &rows {
        total += c.len();
        row_ptr.push(total as Index);
    }
    let mut cols = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (c, v) in rows {
        cols.extend(c);
        vals.extend(v);
    }
    CsrMatrix::from_raw(m, a.ncols(), row_ptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesU32};

    #[test]
    fn collisions_combine() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(0, 0, 2), (1, 1, 1)]);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(0, 0, 3), (0, 1, 4)]);
        let c = ewise_add(&a, &b);
        assert_eq!(c.get(0, 0), 5);
        assert_eq!(c.get(0, 1), 4);
        assert_eq!(c.get(1, 1), 1);
    }

    #[test]
    fn min_plus_add_takes_min() {
        let a = CsrMatrix::<MinPlusU32>::from_triples(1, 1, &[(0, 0, 9)]);
        let b = CsrMatrix::<MinPlusU32>::from_triples(1, 1, &[(0, 0, 4)]);
        assert_eq!(ewise_add(&a, &b).get(0, 0), 4);
    }

    #[test]
    fn cancellation_pruned() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(1, 1, &[(0, 0, 5)]);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(1, 1, &[(0, 0, 5u32.wrapping_neg())]);
        assert_eq!(ewise_add(&a, &b).nnz(), 0);
    }
}
