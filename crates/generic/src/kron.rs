//! Valued Kronecker product.

use rayon::prelude::*;

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

/// `K = A ⊗ B` with `K[(i1·mB+i2),(j1·nB+j2)] = A[i1,j1] ⊗ B[i2,j2]`.
///
/// # Panics
/// If the result dimensions overflow `u32`.
pub fn kron<S: Semiring>(a: &CsrMatrix<S>, b: &CsrMatrix<S>) -> CsrMatrix<S> {
    let m = (a.nrows() as u64)
        .checked_mul(b.nrows() as u64)
        .filter(|&r| r <= u32::MAX as u64)
        .expect("kron rows overflow") as Index;
    let n = (a.ncols() as u64)
        .checked_mul(b.ncols() as u64)
        .filter(|&c| c <= u32::MAX as u64)
        .expect("kron cols overflow") as Index;
    let mb = b.nrows();
    let nb = b.ncols();

    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..m)
        .into_par_iter()
        .map(|r| {
            let i1 = r / mb;
            let i2 = r % mb;
            let cap = a.row_nnz(i1) * b.row_nnz(i2);
            let mut cols = Vec::with_capacity(cap);
            let mut vals = Vec::with_capacity(cap);
            for (&j1, &v1) in a.row_cols(i1).iter().zip(a.row_vals(i1)) {
                for (&j2, &v2) in b.row_cols(i2).iter().zip(b.row_vals(i2)) {
                    let v = S::mul(v1, v2);
                    if !S::is_zero(v) {
                        cols.push(j1 * nb + j2);
                        vals.push(v);
                    }
                }
            }
            (cols, vals)
        })
        .collect();

    let mut row_ptr = Vec::with_capacity(m as usize + 1);
    row_ptr.push(0 as Index);
    let mut total = 0usize;
    for (c, _) in &rows {
        total += c.len();
        row_ptr.push(total as Index);
    }
    let mut cols = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (c, v) in rows {
        cols.extend(c);
        vals.extend(v);
    }
    CsrMatrix::from_raw(m, n, row_ptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimesU32;

    #[test]
    fn values_multiply() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(0, 1, 3)]);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(1, 0, 5)]);
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (4, 4));
        assert_eq!(k.get(1, 2), 15);
        assert_eq!(k.nnz(), 1);
    }

    #[test]
    fn kron_with_identity_replicates() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(0, 0, 7), (1, 1, 9)]);
        let id = CsrMatrix::<PlusTimesU32>::identity(3);
        let k = kron(&a, &id);
        assert_eq!(k.nnz(), 6);
        assert_eq!(k.get(0, 0), 7);
        assert_eq!(k.get(5, 5), 9);
    }
}
