//! Valued element-wise multiplication (GraphBLAS `eWiseMult`): the
//! intersection pattern, values combined with `⊗`.

use rayon::prelude::*;

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

/// `C = A ⊗ B` element-wise (intersection of patterns).
///
/// # Panics
/// If shapes differ.
pub fn ewise_mult<S: Semiring>(a: &CsrMatrix<S>, b: &CsrMatrix<S>) -> CsrMatrix<S> {
    assert_eq!(a.shape(), b.shape(), "ewise_mult shape mismatch");
    let m = a.nrows();
    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..m)
        .into_par_iter()
        .map(|i| {
            let (ac, av) = (a.row_cols(i), a.row_vals(i));
            let (bc, bv) = (b.row_cols(i), b.row_vals(i));
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut x, mut y) = (0usize, 0usize);
            while x < ac.len() && y < bc.len() {
                match ac[x].cmp(&bc[y]) {
                    std::cmp::Ordering::Equal => {
                        let v = S::mul(av[x], bv[y]);
                        if !S::is_zero(v) {
                            cols.push(ac[x]);
                            vals.push(v);
                        }
                        x += 1;
                        y += 1;
                    }
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                }
            }
            (cols, vals)
        })
        .collect();

    let mut row_ptr = Vec::with_capacity(m as usize + 1);
    row_ptr.push(0 as Index);
    let mut total = 0usize;
    for (c, _) in &rows {
        total += c.len();
        row_ptr.push(total as Index);
    }
    let mut cols = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (c, v) in rows {
        cols.extend(c);
        vals.extend(v);
    }
    CsrMatrix::from_raw(m, a.ncols(), row_ptr, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesU32};

    #[test]
    fn intersection_multiplies() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(2, 3, &[(0, 0, 2), (0, 2, 3), (1, 1, 4)]);
        let b = CsrMatrix::<PlusTimesU32>::from_triples(2, 3, &[(0, 0, 5), (1, 2, 7)]);
        let c = ewise_mult(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 10);
    }

    #[test]
    fn min_plus_mult_adds_weights() {
        let a = CsrMatrix::<MinPlusU32>::from_triples(1, 1, &[(0, 0, 3)]);
        let b = CsrMatrix::<MinPlusU32>::from_triples(1, 1, &[(0, 0, 4)]);
        assert_eq!(ewise_mult(&a, &b).get(0, 0), 7);
    }

    #[test]
    fn annihilating_values_pruned() {
        let a = CsrMatrix::<PlusTimesU32>::from_triples(1, 2, &[(0, 0, 0), (0, 1, 2)]);
        // from_triples already prunes the explicit zero; intersect with
        // something that multiplies to zero:
        let b = CsrMatrix::<PlusTimesU32>::from_triples(1, 2, &[(0, 1, 0)]);
        assert_eq!(ewise_mult(&a, &b).nnz(), 0);
    }
}
