//! Valued CSR matrices.

use crate::semiring::Semiring;

/// Element index type (match `spbla-core`).
pub type Index = u32;

/// A `(row, col, value)` entry.
pub type Triple<S> = (Index, Index, <S as Semiring>::Elem);

/// A sparse matrix in CSR format over semiring `S`: three arrays —
/// row pointers, column indices, *and stored values*. The extra `vals`
/// array is exactly what the Boolean specialisation deletes.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<S: Semiring> {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<S::Elem>,
}

impl<S: Semiring> CsrMatrix<S> {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: Index) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            cols: (0..n).collect(),
            vals: vec![S::one(); n as usize],
        }
    }

    /// Build from triples; duplicate coordinates are combined with `⊕`,
    /// and entries equal to `0` after combination are pruned.
    pub fn from_triples(nrows: Index, ncols: Index, triples: &[Triple<S>]) -> Self {
        let mut sorted: Vec<Triple<S>> = triples
            .iter()
            .copied()
            .filter(|&(i, j, _)| {
                assert!(i < nrows && j < ncols, "entry ({i},{j}) out of bounds");
                true
            })
            .collect();
        sorted.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0 as Index; nrows as usize + 1];
        let mut cols: Vec<Index> = Vec::with_capacity(sorted.len());
        let mut vals: Vec<S::Elem> = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some((i, j, mut v)) = iter.next() {
            while let Some(&(i2, j2, v2)) = iter.peek() {
                if i2 == i && j2 == j {
                    v = S::add(v, v2);
                    iter.next();
                } else {
                    break;
                }
            }
            if !S::is_zero(v) {
                row_ptr[i as usize + 1] += 1;
                cols.push(j);
                vals.push(v);
            }
        }
        for r in 0..nrows as usize {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Assemble from raw parts (caller guarantees invariants).
    pub fn from_raw(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<Index>,
        cols: Vec<Index>,
        vals: Vec<S::Elem>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows as usize + 1);
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert_eq!(*row_ptr.last().unwrap() as usize, cols.len());
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row-pointer array.
    pub fn row_ptr(&self) -> &[Index] {
        &self.row_ptr
    }

    /// Column-index array.
    pub fn cols(&self) -> &[Index] {
        &self.cols
    }

    /// Stored values array.
    pub fn vals(&self) -> &[S::Elem] {
        &self.vals
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: Index) -> &[Index] {
        &self.cols[self.row_ptr[i as usize] as usize..self.row_ptr[i as usize + 1] as usize]
    }

    /// Values of row `i`, parallel to [`CsrMatrix::row_cols`].
    pub fn row_vals(&self, i: Index) -> &[S::Elem] {
        &self.vals[self.row_ptr[i as usize] as usize..self.row_ptr[i as usize + 1] as usize]
    }

    /// Entries in row `i`.
    pub fn row_nnz(&self, i: Index) -> usize {
        (self.row_ptr[i as usize + 1] - self.row_ptr[i as usize]) as usize
    }

    /// Read one cell (`0` when not stored).
    pub fn get(&self, i: Index, j: Index) -> S::Elem {
        match self.row_cols(i).binary_search(&j) {
            Ok(p) => self.row_vals(i)[p],
            Err(_) => S::zero(),
        }
    }

    /// All stored triples, row-major.
    pub fn to_triples(&self) -> Vec<Triple<S>> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                out.push((i, j, v));
            }
        }
        out
    }

    /// The structural pattern (coordinates of stored entries).
    pub fn pattern(&self) -> Vec<(Index, Index)> {
        self.to_triples()
            .into_iter()
            .map(|(i, j, _)| (i, j))
            .collect()
    }

    /// Storage footprint in bytes: `(m + 1 + nnz) · 4 + nnz ·
    /// sizeof(Elem)` — the CSR formula *plus the value payload*, the
    /// quantity the paper's memory comparison measures.
    pub fn memory_bytes(&self) -> usize {
        (self.row_ptr.len() + self.cols.len()) * std::mem::size_of::<Index>()
            + self.vals.len() * std::mem::size_of::<S::Elem>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesF64, PlusTimesU32};

    #[test]
    fn duplicates_combine_with_semiring_add() {
        let m = CsrMatrix::<PlusTimesU32>::from_triples(2, 2, &[(0, 0, 2), (0, 0, 3), (1, 1, 1)]);
        assert_eq!(m.get(0, 0), 5);
        assert_eq!(m.nnz(), 2);
        // Min-plus combines with min.
        let t = CsrMatrix::<MinPlusU32>::from_triples(2, 2, &[(0, 0, 7), (0, 0, 3)]);
        assert_eq!(t.get(0, 0), 3);
    }

    #[test]
    fn zero_results_pruned() {
        let m = CsrMatrix::<PlusTimesU32>::from_triples(1, 1, &[(0, 0, 0)]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn memory_includes_values() {
        let m = CsrMatrix::<PlusTimesF64>::from_triples(3, 3, &[(0, 0, 1.0), (2, 2, 2.0)]);
        // (3+1+2)*4 index bytes + 2*8 value bytes.
        assert_eq!(m.memory_bytes(), 24 + 16);
    }

    #[test]
    fn identity_and_get() {
        let id = CsrMatrix::<PlusTimesF64>::identity(3);
        assert_eq!(id.get(1, 1), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        assert_eq!(id.nnz(), 3);
    }
}
