//! Reductions over semiring `⊕`.

use crate::csr::{CsrMatrix, Index};
use crate::semiring::Semiring;

/// Reduce along rows: `out[i] = ⊕_j M[i,j]`, returned sparse (rows whose
/// reduction is `0` are skipped).
pub fn reduce_to_column<S: Semiring>(m: &CsrMatrix<S>) -> Vec<(Index, S::Elem)> {
    (0..m.nrows())
        .filter_map(|i| {
            let mut acc = None;
            for &v in m.row_vals(i) {
                acc = Some(match acc {
                    None => v,
                    Some(a) => S::add(a, v),
                });
            }
            acc.filter(|&v| !S::is_zero(v)).map(|v| (i, v))
        })
        .collect()
}

/// Reduce everything: `⊕` over all stored entries (`0` if empty).
pub fn reduce_scalar<S: Semiring>(m: &CsrMatrix<S>) -> S::Elem {
    m.vals().iter().fold(S::zero(), |a, &v| S::add(a, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesU32};

    #[test]
    fn row_reduction_sums() {
        let m = CsrMatrix::<PlusTimesU32>::from_triples(3, 3, &[(0, 0, 1), (0, 2, 2), (2, 1, 4)]);
        assert_eq!(reduce_to_column(&m), vec![(0, 3), (2, 4)]);
        assert_eq!(reduce_scalar(&m), 7);
    }

    #[test]
    fn min_plus_reduction_takes_min() {
        let m = CsrMatrix::<MinPlusU32>::from_triples(1, 3, &[(0, 0, 9), (0, 1, 2), (0, 2, 5)]);
        assert_eq!(reduce_to_column(&m), vec![(0, 2)]);
    }
}
