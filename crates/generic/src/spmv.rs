//! Sparse matrix × dense vector over a semiring — the building block of
//! Bellman–Ford (min-plus), PageRank-style iterations (plus-times), and
//! the pull direction of traversals.

use rayon::prelude::*;

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;

/// `y = M ⊗ x` with `y[i] = ⊕_j M[i,j] ⊗ x[j]` (dense in/out; absent
/// matrix entries contribute the additive identity).
///
/// ```
/// use spbla_generic::{spmv::spmv, CsrMatrix, MinPlusU32};
/// // One relaxation step of shortest paths: edge 0→1 of weight 5.
/// let m = CsrMatrix::<MinPlusU32>::from_triples(2, 2, &[(1, 0, 5)]);
/// let dist = spmv(&m, &[0, u32::MAX]);
/// assert_eq!(dist, vec![u32::MAX, 5]);
/// ```
pub fn spmv<S: Semiring>(m: &CsrMatrix<S>, x: &[S::Elem]) -> Vec<S::Elem> {
    assert_eq!(
        x.len(),
        m.ncols() as usize,
        "spmv dimension mismatch: {} vs {}",
        x.len(),
        m.ncols()
    );
    (0..m.nrows())
        .into_par_iter()
        .map(|i| {
            let mut acc = S::zero();
            for (&j, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                acc = S::add(acc, S::mul(v, x[j as usize]));
            }
            acc
        })
        .collect()
}

/// Bellman–Ford single-source shortest paths by repeated min-plus
/// relaxation: `d ← min(d, Aᵀ⊗d)` until fixpoint (edge weights on a
/// `MinPlus`-semiring matrix, `A[u,v] = w(u→v)`). Returns `None` on a
/// negative... — the `u32` tropical semiring has no negatives, so this
/// always converges within `n` rounds.
pub fn min_plus_sssp(adjacency: &CsrMatrix<crate::semiring::MinPlusU32>, source: u32) -> Vec<u32> {
    let n = adjacency.nrows();
    assert_eq!(n, adjacency.ncols());
    // Pull formulation: dist[v] = min(dist[v], min_u dist[u] + w(u,v))
    // i.e. relax over the transpose.
    let t = crate::transpose::transpose(adjacency);
    let mut dist = vec![u32::MAX; n as usize];
    dist[source as usize] = 0;
    for _ in 0..n {
        let relaxed = spmv(&t, &dist);
        let mut changed = false;
        for (d, r) in dist.iter_mut().zip(relaxed) {
            if r < *d {
                *d = r;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesF64, PlusTimesU64};

    #[test]
    fn plus_times_spmv_counts() {
        // Row sums when x = 1.
        let m = CsrMatrix::<PlusTimesU64>::from_triples(3, 3, &[(0, 0, 2), (0, 2, 3), (2, 1, 4)]);
        let y = spmv(&m, &[1, 1, 1]);
        assert_eq!(y, vec![5, 0, 4]);
    }

    #[test]
    fn min_plus_spmv_relaxes() {
        let m = CsrMatrix::<MinPlusU32>::from_triples(2, 2, &[(0, 1, 7)]);
        // dist = [0, INF] pulled over transpose-free direction:
        // y[0] = min over j of (m[0][j] + x[j]) = 7 + x[1].
        let y = spmv(&m, &[0, 10]);
        assert_eq!(y, vec![17, u32::MAX]);
    }

    #[test]
    fn sssp_on_weighted_diamond() {
        // 0 →(1) 1 →(1) 3, 0 →(5) 2 →(1) 3: shortest 0→3 is 2.
        let m = CsrMatrix::<MinPlusU32>::from_triples(
            4,
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 5), (2, 3, 1)],
        );
        let dist = min_plus_sssp(&m, 0);
        assert_eq!(dist, vec![0, 1, 5, 2]);
    }

    #[test]
    fn sssp_unreachable_stays_infinite() {
        let m = CsrMatrix::<MinPlusU32>::from_triples(3, 3, &[(0, 1, 2)]);
        let dist = min_plus_sssp(&m, 0);
        assert_eq!(dist, vec![0, 2, u32::MAX]);
    }

    #[test]
    fn pagerank_style_iteration_conserves_mass() {
        // Column-stochastic 2-cycle: mass swaps, total conserved.
        let m = CsrMatrix::<PlusTimesF64>::from_triples(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = vec![0.25, 0.75];
        let y = spmv(&m, &x);
        assert_eq!(y, vec![0.75, 0.25]);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
