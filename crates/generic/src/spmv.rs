//! Sparse matrix × dense vector over a semiring — the building block of
//! Bellman–Ford (min-plus), PageRank-style iterations (plus-times), and
//! the pull direction of traversals. The sparse-operand dual
//! ([`spmspv`]) is the push direction. Both record the standard
//! `spbla_kernel_*` histogram cells under `backend="generic"`, so the
//! push/pull density crossover is observable in `spbla trace` and
//! `report obs` alongside the Boolean backends' frontier kernels.

use rayon::prelude::*;
use spbla_obs::{labeled, metrics_global, trace_global};

use crate::csr::CsrMatrix;
use crate::semiring::Semiring;

/// Record one generic kernel invocation: an `"op"` trace span plus the
/// same `spbla_kernel_{rows,nnz_in,nnz_out}` histogram cells the
/// Boolean backends populate (there is no device accumulator here, so
/// the insertions cell stays at zero observations).
fn observe_kernel<R>(
    kernel: &'static str,
    rows: u64,
    nnz_in: u64,
    f: impl FnOnce() -> R,
    nnz_out: impl FnOnce(&R) -> u64,
) -> R {
    let mut span = trace_global().span(kernel, "op", 0);
    let out = f();
    let produced = nnz_out(&out);
    if let Some(span) = span.as_mut() {
        span.arg("rows", rows);
        span.arg("nnz_in", nnz_in);
        span.arg("nnz_out", produced);
    }
    let labels = [("backend", "generic"), ("kernel", kernel)];
    let reg = metrics_global();
    reg.histogram(&labeled("spbla_kernel_rows", &labels))
        .observe(rows);
    reg.histogram(&labeled("spbla_kernel_nnz_in", &labels))
        .observe(nnz_in);
    reg.histogram(&labeled("spbla_kernel_nnz_out", &labels))
        .observe(produced);
    out
}

/// `y = M ⊗ x` with `y[i] = ⊕_j M[i,j] ⊗ x[j]` (dense in/out; absent
/// matrix entries contribute the additive identity).
///
/// ```
/// use spbla_generic::{spmv::spmv, CsrMatrix, MinPlusU32};
/// // One relaxation step of shortest paths: edge 0→1 of weight 5.
/// let m = CsrMatrix::<MinPlusU32>::from_triples(2, 2, &[(1, 0, 5)]);
/// let dist = spmv(&m, &[0, u32::MAX]);
/// assert_eq!(dist, vec![u32::MAX, 5]);
/// ```
pub fn spmv<S: Semiring>(m: &CsrMatrix<S>, x: &[S::Elem]) -> Vec<S::Elem> {
    assert_eq!(
        x.len(),
        m.ncols() as usize,
        "spmv dimension mismatch: {} vs {}",
        x.len(),
        m.ncols()
    );
    observe_kernel(
        "spmv",
        u64::from(m.nrows()),
        m.nnz() as u64,
        || {
            (0..m.nrows())
                .into_par_iter()
                .map(|i| {
                    let mut acc = S::zero();
                    for (&j, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                        acc = S::add(acc, S::mul(v, x[j as usize]));
                    }
                    acc
                })
                .collect::<Vec<_>>()
        },
        |y: &Vec<S::Elem>| y.iter().filter(|&&e| !S::is_zero(e)).count() as u64,
    )
}

/// `y = x ⊗ M` with a *sparse* operand vector (push direction): only
/// the rows of `M` selected by `x`'s support are gathered, so the cost
/// is proportional to the touched edges rather than to `nnz(M)` — the
/// generic-semiring analogue of the Boolean backends' push
/// `vxm`/`frontier_step`. Input and output are sorted
/// `(index, value)` runs with no explicit zeros.
///
/// ```
/// use spbla_generic::{spmv::spmspv, CsrMatrix, MinPlusU32};
/// let m = CsrMatrix::<MinPlusU32>::from_triples(3, 3, &[(0, 1, 5), (2, 1, 1)]);
/// // Frontier {0}: only row 0 is touched.
/// assert_eq!(spmspv(&m, &[(0, 0)]), vec![(1, 5)]);
/// ```
pub fn spmspv<S: Semiring>(m: &CsrMatrix<S>, x: &[(u32, S::Elem)]) -> Vec<(u32, S::Elem)> {
    debug_assert!(x.windows(2).all(|w| w[0].0 < w[1].0), "sorted support");
    observe_kernel(
        "spmspv",
        u64::from(m.nrows()),
        x.len() as u64,
        || {
            let mut acc: rustc_hash::FxHashMap<u32, S::Elem> = rustc_hash::FxHashMap::default();
            for &(i, xv) in x {
                assert!(i < m.nrows(), "spmspv index {i} out of {}", m.nrows());
                for (&j, &v) in m.row_cols(i).iter().zip(m.row_vals(i)) {
                    let contrib = S::mul(xv, v);
                    acc.entry(j)
                        .and_modify(|e| *e = S::add(*e, contrib))
                        .or_insert(contrib);
                }
            }
            let mut out: Vec<(u32, S::Elem)> =
                acc.into_iter().filter(|&(_, v)| !S::is_zero(v)).collect();
            out.sort_unstable_by_key(|&(j, _)| j);
            out
        },
        |y: &Vec<(u32, S::Elem)>| y.len() as u64,
    )
}

/// Bellman–Ford single-source shortest paths by repeated min-plus
/// relaxation: `d ← min(d, Aᵀ⊗d)` until fixpoint (edge weights on a
/// `MinPlus`-semiring matrix, `A[u,v] = w(u→v)`). Returns `None` on a
/// negative... — the `u32` tropical semiring has no negatives, so this
/// always converges within `n` rounds.
pub fn min_plus_sssp(adjacency: &CsrMatrix<crate::semiring::MinPlusU32>, source: u32) -> Vec<u32> {
    let n = adjacency.nrows();
    assert_eq!(n, adjacency.ncols());
    // Pull formulation: dist[v] = min(dist[v], min_u dist[u] + w(u,v))
    // i.e. relax over the transpose.
    let t = crate::transpose::transpose(adjacency);
    let mut dist = vec![u32::MAX; n as usize];
    dist[source as usize] = 0;
    for _ in 0..n {
        let relaxed = spmv(&t, &dist);
        let mut changed = false;
        for (d, r) in dist.iter_mut().zip(relaxed) {
            if r < *d {
                *d = r;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlusU32, PlusTimesF64, PlusTimesU64};

    #[test]
    fn plus_times_spmv_counts() {
        // Row sums when x = 1.
        let m = CsrMatrix::<PlusTimesU64>::from_triples(3, 3, &[(0, 0, 2), (0, 2, 3), (2, 1, 4)]);
        let y = spmv(&m, &[1, 1, 1]);
        assert_eq!(y, vec![5, 0, 4]);
    }

    #[test]
    fn min_plus_spmv_relaxes() {
        let m = CsrMatrix::<MinPlusU32>::from_triples(2, 2, &[(0, 1, 7)]);
        // dist = [0, INF] pulled over transpose-free direction:
        // y[0] = min over j of (m[0][j] + x[j]) = 7 + x[1].
        let y = spmv(&m, &[0, 10]);
        assert_eq!(y, vec![17, u32::MAX]);
    }

    #[test]
    fn sssp_on_weighted_diamond() {
        // 0 →(1) 1 →(1) 3, 0 →(5) 2 →(1) 3: shortest 0→3 is 2.
        let m = CsrMatrix::<MinPlusU32>::from_triples(
            4,
            4,
            &[(0, 1, 1), (1, 3, 1), (0, 2, 5), (2, 3, 1)],
        );
        let dist = min_plus_sssp(&m, 0);
        assert_eq!(dist, vec![0, 1, 5, 2]);
    }

    #[test]
    fn sssp_unreachable_stays_infinite() {
        let m = CsrMatrix::<MinPlusU32>::from_triples(3, 3, &[(0, 1, 2)]);
        let dist = min_plus_sssp(&m, 0);
        assert_eq!(dist, vec![0, 2, u32::MAX]);
    }

    #[test]
    fn spmspv_agrees_with_dense_spmv_over_transpose() {
        // Push from a sparse frontier ≡ dense pull over the transpose
        // with the frontier densified: y = x ⊗ M row-gathers, while
        // spmv(Mᵀ, dense(x)) reduces columns — same semiring sums.
        let m = CsrMatrix::<PlusTimesU64>::from_triples(
            4,
            4,
            &[(0, 1, 2), (0, 3, 3), (2, 1, 4), (3, 0, 1)],
        );
        let t = crate::transpose::transpose(&m);
        let x = [(0u32, 5u64), (2, 1)];
        let mut dense = vec![0u64; 4];
        for &(i, v) in &x {
            dense[i as usize] = v;
        }
        let pulled = spmv(&t, &dense);
        let pushed = spmspv(&m, &x);
        let densified: Vec<u64> = (0..4)
            .map(|j| pushed.iter().find(|&&(i, _)| i == j).map_or(0, |&(_, v)| v))
            .collect();
        assert_eq!(densified, pulled);
        assert_eq!(pushed, vec![(1, 14), (3, 15)]);
    }

    #[test]
    fn generic_kernels_register_histogram_cells() {
        let m = CsrMatrix::<PlusTimesU64>::from_triples(2, 2, &[(0, 1, 1)]);
        spmv(&m, &[1, 1]);
        spmspv(&m, &[(0, 1)]);
        let names: Vec<String> = spbla_obs::metrics_global()
            .snapshot()
            .into_iter()
            .map(|s| s.name)
            .collect();
        for kernel in ["spmv", "spmspv"] {
            let cell = spbla_obs::labeled(
                "spbla_kernel_rows",
                &[("backend", "generic"), ("kernel", kernel)],
            );
            assert!(names.contains(&cell), "missing {cell} in {names:?}");
        }
    }

    #[test]
    fn pagerank_style_iteration_conserves_mass() {
        // Column-stochastic 2-cycle: mass swaps, total conserved.
        let m = CsrMatrix::<PlusTimesF64>::from_triples(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = vec![0.25, 0.75];
        let y = spmv(&m, &x);
        assert_eq!(y, vec![0.75, 0.25]);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
