//! ε-free nondeterministic finite automata.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::symbol::Symbol;

/// State id within an automaton.
pub type State = u32;

/// An ε-free NFA: the representation matrix-based RPQ consumes directly
/// (one Boolean adjacency matrix per symbol).
#[derive(Debug, Clone)]
pub struct Nfa {
    n_states: u32,
    start_states: Vec<State>,
    final_states: Vec<State>,
    /// `(from, symbol, to)` triples, deduplicated and sorted.
    transitions: Vec<(State, Symbol, State)>,
}

impl Nfa {
    /// Build from parts (sorted/deduplicated internally).
    pub fn new(
        n_states: u32,
        start_states: Vec<State>,
        final_states: Vec<State>,
        mut transitions: Vec<(State, Symbol, State)>,
    ) -> Self {
        transitions.sort_unstable();
        transitions.dedup();
        let mut start = start_states;
        start.sort_unstable();
        start.dedup();
        let mut finals = final_states;
        finals.sort_unstable();
        finals.dedup();
        debug_assert!(transitions
            .iter()
            .all(|&(f, _, t)| f < n_states && t < n_states));
        debug_assert!(start.iter().all(|&s| s < n_states));
        debug_assert!(finals.iter().all(|&s| s < n_states));
        Nfa {
            n_states,
            start_states: start,
            final_states: finals,
            transitions,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Start states (Glushkov gives one; Thompson-after-ε-removal may
    /// keep one as well — the type allows sets for generality).
    pub fn start_states(&self) -> &[State] {
        &self.start_states
    }

    /// Final states.
    pub fn final_states(&self) -> &[State] {
        &self.final_states
    }

    /// All transitions, sorted.
    pub fn transitions(&self) -> &[(State, Symbol, State)] {
        &self.transitions
    }

    /// Distinct symbols on transitions.
    pub fn alphabet(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.transitions.iter().map(|&(_, s, _)| s).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Transitions grouped per symbol: `symbol → [(from, to)]` — the
    /// shape the matrix encoding wants.
    pub fn transitions_by_symbol(&self) -> FxHashMap<Symbol, Vec<(State, State)>> {
        let mut map: FxHashMap<Symbol, Vec<(State, State)>> = FxHashMap::default();
        for &(f, s, t) in &self.transitions {
            map.entry(s).or_default().push((f, t));
        }
        map
    }

    /// Whether the automaton accepts the empty word.
    pub fn accepts_epsilon(&self) -> bool {
        self.start_states
            .iter()
            .any(|s| self.final_states.binary_search(s).is_ok())
    }

    /// Run the automaton on `word` (subset simulation).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current: FxHashSet<State> = self.start_states.iter().copied().collect();
        for &sym in word {
            let mut next = FxHashSet::default();
            for &(f, s, t) in &self.transitions {
                if s == sym && current.contains(&f) {
                    next.insert(t);
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current
            .iter()
            .any(|s| self.final_states.binary_search(s).is_ok())
    }

    /// States reachable from the start set (over any symbol).
    pub fn reachable_states(&self) -> FxHashSet<State> {
        let mut seen: FxHashSet<State> = self.start_states.iter().copied().collect();
        let mut stack: Vec<State> = self.start_states.to_vec();
        while let Some(q) = stack.pop() {
            for &(f, _, t) in &self.transitions {
                if f == q && seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn simulation_accepts_words() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        // a b* : states 0 -a-> 1, 1 -b-> 1.
        let nfa = Nfa::new(2, vec![0], vec![1], vec![(0, a, 1), (1, b, 1)]);
        assert!(nfa.accepts(&[a]));
        assert!(nfa.accepts(&[a, b, b]));
        assert!(!nfa.accepts(&[b]));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts_epsilon());
        assert_eq!(nfa.alphabet(), vec![a, b]);
    }

    #[test]
    fn grouping_by_symbol() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let nfa = Nfa::new(3, vec![0], vec![2], vec![(0, a, 1), (1, a, 2)]);
        let by = nfa.transitions_by_symbol();
        assert_eq!(by[&a], vec![(0, 1), (1, 2)]);
        assert_eq!(nfa.reachable_states().len(), 3);
    }
}
