//! Regular expression AST and the Table II template parser.
//!
//! Grammar of the text syntax (whitespace-insensitive):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := postfix (('.')? postfix)*        juxtaposition concatenates
//! postfix:= atom ('*' | '+' | '?')*
//! atom   := ident | '(' alt ')'
//! ident  := [A-Za-z_][A-Za-z0-9_]*
//! ```

use crate::symbol::{Symbol, SymbolTable};

/// A regular expression over interned symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty word ε.
    Epsilon,
    /// A single terminal symbol.
    Sym(Symbol),
    /// Concatenation `r · s`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `r | s`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// `r · s`.
    pub fn concat(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// `r | s`.
    pub fn alt(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// `r*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// `r⁺ = r · r*`.
    pub fn plus(self) -> Regex {
        self.clone().concat(self.star())
    }

    /// `r? = r | ε`.
    pub fn opt(self) -> Regex {
        self.alt(Regex::Epsilon)
    }

    /// Whether ε belongs to the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// All distinct symbols appearing in the expression.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => out.push(*s),
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(a) => a.collect_symbols(out),
        }
    }

    /// Number of symbol occurrences (Glushkov positions).
    pub fn positions(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon => 0,
            Regex::Sym(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.positions() + b.positions(),
            Regex::Star(a) => a.positions(),
        }
    }

    /// Parse the Table II template syntax, interning names in `table`.
    ///
    /// ```
    /// use spbla_lang::{Regex, SymbolTable};
    /// let mut table = SymbolTable::new();
    /// let r = Regex::parse("knows . (likes | knows)*", &mut table).unwrap();
    /// let knows = table.get("knows").unwrap();
    /// let likes = table.get("likes").unwrap();
    /// assert!(r.matches(&[knows, likes, knows]));
    /// assert!(!r.matches(&[likes]));
    /// ```
    pub fn parse(input: &str, table: &mut SymbolTable) -> Result<Regex, String> {
        let mut p = Parser {
            chars: input.chars().collect(),
            pos: 0,
            table,
        };
        let r = p.alt()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at position {}", p.pos));
        }
        Ok(r)
    }

    /// Naive recursive matcher — the semantics oracle for automata tests.
    /// Exponential in pathological cases; test-sized inputs only.
    pub fn matches(&self, word: &[Symbol]) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => word.is_empty(),
            Regex::Sym(s) => word == [*s],
            Regex::Alt(a, b) => a.matches(word) || b.matches(word),
            Regex::Concat(a, b) => {
                (0..=word.len()).any(|k| a.matches(&word[..k]) && b.matches(&word[k..]))
            }
            Regex::Star(a) => {
                if word.is_empty() {
                    return true;
                }
                // Consume a non-empty prefix matched by `a`, recurse.
                (1..=word.len()).any(|k| a.matches(&word[..k]) && self.matches(&word[k..]))
            }
        }
    }
}

impl Regex {
    /// Canonical cache key: a fully parenthesized rendering in which
    /// every operator application is delimited, so the mapping from AST
    /// to string is injective (two regexes share a key iff their parsed
    /// ASTs are equal). Because [`Regex::parse`] is
    /// whitespace-insensitive and desugars `+`/`?` eagerly, any two
    /// spellings of the same query — extra blanks, explicit `.` versus
    /// juxtaposition, `a+` versus `a . a*` — normalize to one key.
    /// Terminal names use the identifier charset, which excludes every
    /// delimiter used here (`(`, `)`, `.`, `|`, `*`, `ε`, `∅`).
    pub fn canonical(&self, table: &SymbolTable) -> String {
        fn go(r: &Regex, table: &SymbolTable, out: &mut String) {
            match r {
                Regex::Empty => out.push('∅'),
                Regex::Epsilon => out.push('ε'),
                Regex::Sym(s) => out.push_str(table.name(*s)),
                Regex::Concat(a, b) => {
                    out.push('(');
                    go(a, table, out);
                    out.push('.');
                    go(b, table, out);
                    out.push(')');
                }
                Regex::Alt(a, b) => {
                    out.push('(');
                    go(a, table, out);
                    out.push('|');
                    go(b, table, out);
                    out.push(')');
                }
                Regex::Star(a) => {
                    out.push('(');
                    go(a, table, out);
                    out.push_str(")*");
                }
            }
        }
        let mut out = String::new();
        go(self, table, &mut out);
        out
    }
}

/// Pretty-printer emitting the same syntax [`Regex::parse`] accepts
/// (`display_with(&table)`); `Display` is not implemented directly
/// because symbol names live in the table.
impl Regex {
    /// Render with names resolved through `table`.
    pub fn display_with(&self, table: &SymbolTable) -> String {
        fn go(r: &Regex, table: &SymbolTable, out: &mut String, parent_prec: u8) {
            // precedence: alt=0, concat=1, postfix=2, atom=3
            let prec = match r {
                Regex::Alt(..) => 0,
                Regex::Concat(..) => 1,
                Regex::Star(..) => 2,
                _ => 3,
            };
            let need_parens = prec < parent_prec;
            if need_parens {
                out.push('(');
            }
            match r {
                Regex::Empty => out.push('∅'),
                Regex::Epsilon => out.push_str("eps"),
                Regex::Sym(s) => out.push_str(table.name(*s)),
                Regex::Alt(a, b) => {
                    go(a, table, out, 0);
                    out.push_str(" | ");
                    go(b, table, out, 0);
                }
                Regex::Concat(a, b) => {
                    go(a, table, out, 1);
                    out.push_str(" . ");
                    go(b, table, out, 2);
                }
                Regex::Star(a) => {
                    go(a, table, out, 3);
                    out.push('*');
                }
            }
            if need_parens {
                out.push(')');
            }
        }
        let mut out = String::new();
        go(self, table, &mut out, 0);
        out
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    table: &'a mut SymbolTable,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn alt(&mut self) -> Result<Regex, String> {
        let mut r = self.concat()?;
        while self.peek() == Some('|') {
            self.pos += 1;
            r = r.alt(self.concat()?);
        }
        Ok(r)
    }

    fn concat(&mut self) -> Result<Regex, String> {
        let mut r = self.postfix()?;
        loop {
            match self.peek() {
                Some('.') => {
                    self.pos += 1;
                    r = r.concat(self.postfix()?);
                }
                Some(c) if c == '(' || c.is_alphabetic() || c == '_' => {
                    r = r.concat(self.postfix()?);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn postfix(&mut self) -> Result<Regex, String> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    r = r.star();
                }
                Some('+') => {
                    self.pos += 1;
                    r = r.plus();
                }
                Some('?') => {
                    self.pos += 1;
                    r = r.opt();
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex, String> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let r = self.alt()?;
                if self.peek() != Some(')') {
                    return Err(format!("expected ')' at position {}", self.pos));
                }
                self.pos += 1;
                Ok(r)
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|&c| c.is_alphanumeric() || c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().collect();
                if name == "eps" {
                    // Keyword for the empty word (matches the grammar
                    // syntax and the pretty-printer's output).
                    return Ok(Regex::Epsilon);
                }
                Ok(Regex::Sym(self.table.intern(&name)))
            }
            other => Err(format!("unexpected {other:?} at position {}", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(t: &mut SymbolTable, n: &str) -> Symbol {
        t.intern(n)
    }

    #[test]
    fn parses_table_two_templates() {
        let mut t = SymbolTable::new();
        for q in [
            "a*",
            "a . b*",
            "a . b* . c*",
            "(a | b)*",
            "(a | b | c | d | e)+",
            "a . b* . c",
            "a? . b*",
            "(a . b)+ | (c . d)+",
            "(a . (b . c)*)+ | (d . f)+",
            "(a . b . (c . d)*)+ . (e | f)*",
            "(a | b)+ . (c | d)+",
            "a . b . (c | d | e)",
        ] {
            assert!(Regex::parse(q, &mut t).is_ok(), "failed to parse {q}");
        }
    }

    #[test]
    fn juxtaposition_concatenates() {
        let mut t = SymbolTable::new();
        let a = Regex::parse("a b c", &mut t).unwrap();
        let b = Regex::parse("a . b . c", &mut t).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_reported() {
        let mut t = SymbolTable::new();
        assert!(Regex::parse("(a", &mut t).is_err());
        assert!(Regex::parse("a )", &mut t).is_err());
        assert!(Regex::parse("*", &mut t).is_err());
    }

    #[test]
    fn matcher_semantics() {
        let mut t = SymbolTable::new();
        let (a, b, c) = (sym(&mut t, "a"), sym(&mut t, "b"), sym(&mut t, "c"));
        let r = Regex::parse("a . b* . c", &mut t).unwrap();
        assert!(r.matches(&[a, c]));
        assert!(r.matches(&[a, b, b, c]));
        assert!(!r.matches(&[a, b]));
        assert!(!r.matches(&[b, c]));
        let plus = Regex::parse("(a | b)+", &mut t).unwrap();
        assert!(!plus.matches(&[]));
        assert!(plus.matches(&[a, b, a]));
        assert!(!plus.matches(&[a, c]));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let mut t = SymbolTable::new();
        for q in [
            "a*",
            "a . b* . c*",
            "(a | b | c)+",
            "a? . b*",
            "(a . (b . c)*)+ | (d . f)+",
            "(a . b . (c . d)*)+ . (e | f)*",
        ] {
            let r = Regex::parse(q, &mut t).unwrap();
            let printed = r.display_with(&t);
            let reparsed = Regex::parse(&printed, &mut t)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(reparsed, r, "query {q} printed as {printed}");
        }
    }

    #[test]
    fn nullable_and_positions() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("a? . b*", &mut t).unwrap();
        assert!(r.nullable());
        assert_eq!(r.positions(), 2);
        let q = Regex::parse("(a | b)+ . c", &mut t).unwrap();
        assert!(!q.nullable());
        assert_eq!(q.positions(), 5); // r⁺ = r·r*, duplicating r's 2 positions
        assert_eq!(q.symbols().len(), 3);
    }
}
