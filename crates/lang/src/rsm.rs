//! Recursive state machines — the grammar encoding of the tensor
//! (Kronecker product) CFPQ algorithm.
//!
//! Each nonterminal owns a *box*: a finite automaton over mixed labels
//! (terminals and nonterminal calls) accepting exactly its right-hand
//! sides. Boxes share one global state numbering, so the whole machine
//! is a single labeled graph — precisely the Kronecker factor of the
//! `Tns` algorithm. Unlike CNF, the construction adds no fresh
//! nonterminals and its size tracks the grammar (E10.5).

use rustc_hash::FxHashMap;

use crate::cfg::{Grammar, NtId, SymbolOrNt};
use crate::nfa::State;

/// One nonterminal's box.
#[derive(Debug, Clone)]
pub struct RsmBox {
    /// Owning nonterminal.
    pub nt: NtId,
    /// Entry state.
    pub start: State,
    /// Accepting states.
    pub finals: Vec<State>,
}

/// A recursive state machine.
#[derive(Debug, Clone)]
pub struct Rsm {
    n_states: u32,
    start_nt: NtId,
    boxes: Vec<RsmBox>,
    transitions: Vec<(State, SymbolOrNt, State)>,
    /// `state → owning box` (for diagnostics and path extraction).
    owner: Vec<NtId>,
}

impl Rsm {
    /// Build the RSM of `g`: per production, a linear chain of states
    /// from the box start to a box-final state; prefixes are shared via a
    /// trie so common query prefixes do not duplicate states.
    pub fn from_grammar(g: &Grammar) -> Rsm {
        let mut n_states: u32 = 0;
        let mut boxes = Vec::with_capacity(g.n_nonterminals());
        let mut transitions: Vec<(State, SymbolOrNt, State)> = Vec::new();
        let mut owner: Vec<NtId> = Vec::new();

        for nt_idx in 0..g.n_nonterminals() {
            let nt = NtId(nt_idx as u32);
            let start = n_states;
            n_states += 1;
            owner.push(nt);
            let mut finals: Vec<State> = Vec::new();
            // Trie of outgoing edges for prefix sharing.
            let mut edges: FxHashMap<(State, SymbolOrNt), State> = FxHashMap::default();
            for rhs in g.productions_of(nt) {
                if rhs.is_empty() {
                    finals.push(start);
                    continue;
                }
                let mut cur = start;
                for &sym in rhs {
                    cur = *edges.entry((cur, sym)).or_insert_with(|| {
                        let s = n_states;
                        n_states += 1;
                        owner.push(nt);
                        transitions.push((cur, sym, s));
                        s
                    });
                }
                finals.push(cur);
            }
            finals.sort_unstable();
            finals.dedup();
            boxes.push(RsmBox { nt, start, finals });
        }

        transitions.sort_unstable();
        Rsm {
            n_states,
            start_nt: g.start(),
            boxes,
            transitions,
            owner,
        }
    }

    /// Total number of states across all boxes.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// The start nonterminal.
    pub fn start_nt(&self) -> NtId {
        self.start_nt
    }

    /// All boxes, indexed by nonterminal id.
    pub fn boxes(&self) -> &[RsmBox] {
        &self.boxes
    }

    /// The box of nonterminal `nt`.
    pub fn box_of(&self, nt: NtId) -> &RsmBox {
        &self.boxes[nt.id()]
    }

    /// All transitions (sorted).
    pub fn transitions(&self) -> &[(State, SymbolOrNt, State)] {
        &self.transitions
    }

    /// Owning nonterminal of a state.
    pub fn owner(&self, s: State) -> NtId {
        self.owner[s as usize]
    }

    /// Nonterminals whose box accepts ε (start state is final).
    pub fn epsilon_nonterminals(&self) -> Vec<NtId> {
        self.boxes
            .iter()
            .filter(|b| b.finals.binary_search(&b.start).is_ok())
            .map(|b| b.nt)
            .collect()
    }

    /// Machine size: states + transitions (E10.5 metric, comparable to
    /// [`Grammar::size`](crate::cfg::Grammar::size)).
    pub fn size(&self) -> usize {
        self.n_states as usize + self.transitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfGrammar;
    use crate::symbol::SymbolTable;

    #[test]
    fn linear_chains_per_production() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
        let rsm = Rsm::from_grammar(&g);
        // Shared prefix 'a': states = start + a-node + (S-node, b-node)
        // + (b-node) = 5.
        assert_eq!(rsm.n_states(), 5);
        assert_eq!(rsm.boxes().len(), 1);
        assert!(rsm.epsilon_nonterminals().is_empty());
        // Both productions end in finals.
        assert_eq!(rsm.box_of(NtId(0)).finals.len(), 2);
    }

    #[test]
    fn epsilon_production_marks_start_final() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S | eps", &mut t).unwrap();
        let rsm = Rsm::from_grammar(&g);
        assert_eq!(rsm.epsilon_nonterminals(), vec![NtId(0)]);
        let b = rsm.box_of(NtId(0));
        assert!(b.finals.contains(&b.start));
    }

    #[test]
    fn multi_box_machine() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a V d\nV -> b V | c", &mut t).unwrap();
        let rsm = Rsm::from_grammar(&g);
        assert_eq!(rsm.boxes().len(), 2);
        // Every state belongs to the box that created it.
        for b in rsm.boxes() {
            assert_eq!(rsm.owner(b.start), b.nt);
        }
        // S's box calls V: there is a transition labeled N(V).
        use crate::cfg::SymbolOrNt::N;
        assert!(rsm.transitions().iter().any(|&(_, l, _)| l == N(NtId(1))));
    }

    #[test]
    fn rsm_smaller_than_cnf_for_regular_query() {
        let mut t = SymbolTable::new();
        // Q11-like chain query as a grammar.
        let g = Grammar::parse("S -> a b c d e", &mut t).unwrap();
        let rsm = Rsm::from_grammar(&g);
        let cnf = CnfGrammar::from_grammar(&g);
        assert!(rsm.size() < cnf.size(), "{} vs {}", rsm.size(), cnf.size());
    }
}
