//! CYK string membership — the oracle validating the CNF transformation
//! (and, in `spbla-graph`, the basis of the graph-CYK CFPQ oracle).

use crate::cnf::CnfGrammar;
use crate::symbol::Symbol;

/// Does `word` belong to the language of `g`? Standard O(n³·|G|) dynamic
/// programming over the CNF rules.
pub fn cyk_accepts(g: &CnfGrammar, word: &[Symbol]) -> bool {
    let n = word.len();
    if n == 0 {
        return g.start_nullable();
    }
    let nnt = g.n_nonterminals();
    // table[len-1][i][nt]: does word[i .. i+len] derive from nt?
    let mut table = vec![vec![vec![false; nnt]; n]; n];
    for (i, &w) in word.iter().enumerate() {
        for &(nt, t) in g.terminal_rules() {
            if t == w {
                table[0][i][nt.id()] = true;
            }
        }
    }
    for len in 2..=n {
        for i in 0..=n - len {
            for split in 1..len {
                for &(a, b, c) in g.binary_rules() {
                    if table[split - 1][i][b.id()] && table[len - split - 1][i + split][c.id()] {
                        table[len - 1][i][a.id()] = true;
                    }
                }
            }
        }
    }
    table[n - 1][0][g.start().id()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Grammar;
    use crate::symbol::SymbolTable;

    #[test]
    fn an_bn_language() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        for k in 1..=5usize {
            let word: Vec<Symbol> = std::iter::repeat_n(a, k)
                .chain(std::iter::repeat_n(b, k))
                .collect();
            assert!(cyk_accepts(&cnf, &word), "a^{k} b^{k}");
        }
        assert!(!cyk_accepts(&cnf, &[]));
        assert!(!cyk_accepts(&cnf, &[a, a, b]));
        assert!(!cyk_accepts(&cnf, &[b, a]));
    }

    #[test]
    fn dyck_like_words() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> S S | a S b | eps", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        assert!(cyk_accepts(&cnf, &[a, b, a, a, b, b]));
        assert!(!cyk_accepts(&cnf, &[a, b, b, a]));
    }
}
