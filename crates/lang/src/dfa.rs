//! Deterministic automata via subset construction.

use rustc_hash::FxHashMap;

use crate::nfa::Nfa;
use crate::symbol::Symbol;

/// A DFA with a dense transition function. Primarily the membership
/// oracle for tests, and a building block for minimisation experiments.
#[derive(Debug, Clone)]
pub struct Dfa {
    n_states: u32,
    start: u32,
    finals: Vec<bool>,
    /// `(state, symbol) → state`; missing = dead.
    delta: FxHashMap<(u32, Symbol), u32>,
    alphabet: Vec<Symbol>,
}

impl Dfa {
    /// Subset construction from an ε-free NFA.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let by_symbol = nfa.transitions_by_symbol();
        let alphabet = nfa.alphabet();
        let mut subsets: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut worklist: Vec<Vec<u32>> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();
        let mut delta: FxHashMap<(u32, Symbol), u32> = FxHashMap::default();

        let start_set: Vec<u32> = nfa.start_states().to_vec();
        subsets.insert(start_set.clone(), 0);
        worklist.push(start_set.clone());
        finals.push(
            start_set
                .iter()
                .any(|s| nfa.final_states().binary_search(s).is_ok()),
        );

        let mut head = 0usize;
        while head < worklist.len() {
            let current = worklist[head].clone();
            let cur_id = subsets[&current];
            head += 1;
            for &sym in &alphabet {
                let mut next: Vec<u32> = Vec::new();
                if let Some(edges) = by_symbol.get(&sym) {
                    for &(f, t) in edges {
                        if current.binary_search(&f).is_ok() {
                            next.push(t);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    continue;
                }
                let id = *subsets.entry(next.clone()).or_insert_with(|| {
                    let id = worklist.len() as u32;
                    worklist.push(next.clone());
                    finals.push(
                        next.iter()
                            .any(|s| nfa.final_states().binary_search(s).is_ok()),
                    );
                    id
                });
                delta.insert((cur_id, sym), id);
            }
        }

        Dfa {
            n_states: worklist.len() as u32,
            start: 0,
            finals,
            delta,
            alphabet,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// The alphabet observed during construction.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// One transition step (`None` = dead).
    pub fn step(&self, state: u32, sym: Symbol) -> Option<u32> {
        self.delta.get(&(state, sym)).copied()
    }

    /// Whether `state` is accepting.
    pub fn is_final(&self, state: u32) -> bool {
        self.finals[state as usize]
    }

    /// Run the automaton.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut q = self.start;
        for &s in word {
            match self.delta.get(&(q, s)) {
                Some(&n) => q = n,
                None => return false,
            }
        }
        self.finals[q as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::glushkov;
    use crate::regex::Regex;
    use crate::symbol::SymbolTable;

    #[test]
    fn dfa_equals_nfa_on_small_words() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("(a | b)* . c", &mut t).unwrap();
        let nfa = glushkov(&r);
        let dfa = Dfa::from_nfa(&nfa);
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        let mut all = vec![vec![]];
        for &x in &syms {
            for &y in &syms {
                all.push(vec![x, y]);
                for &z in &syms {
                    all.push(vec![x, y, z]);
                }
            }
            all.push(vec![x]);
        }
        for w in &all {
            assert_eq!(dfa.accepts(w), nfa.accepts(w), "word {w:?}");
        }
    }

    #[test]
    fn determinism_no_symbol_means_reject() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("a", &mut t).unwrap();
        let dfa = Dfa::from_nfa(&glushkov(&r));
        let b = t.intern("b");
        assert!(!dfa.accepts(&[b]));
        assert!(!dfa.accepts(&[]));
    }
}
