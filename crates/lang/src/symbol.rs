//! Interned terminal symbols (edge labels / grammar terminals).

use rustc_hash::FxHashMap;

/// An interned terminal symbol. Cheap to copy and compare; resolve the
/// name through the [`SymbolTable`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw id (usable as an array index).
    pub fn id(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional name ↔ [`Symbol`] interner.
///
/// The convention `label_r` is used throughout the workspace for the
/// inverse relation `label⁻¹` (the paper's `x̄`); [`SymbolTable::inverse`]
/// applies it.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: FxHashMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Intern `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.ids.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), s);
        s
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// The name of `s`.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.id()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern the inverse relation of `s` (`name_r`, stripping a trailing
    /// `_r` instead when present, so the operation is an involution).
    pub fn inverse(&mut self, s: Symbol) -> Symbol {
        let name = self.name(s).to_string();
        match name.strip_suffix("_r") {
            Some(base) => {
                let base = base.to_string();
                self.intern(&base)
            }
            None => self.intern(&format!("{name}_r")),
        }
    }

    /// Iterate `(symbol, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut t = SymbolTable::new();
        let a = t.intern("subClassOf");
        let b = t.intern("type");
        assert_eq!(t.intern("subClassOf"), a);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "subClassOf");
        assert_eq!(t.get("type"), Some(b));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn inverse_is_involution() {
        let mut t = SymbolTable::new();
        let a = t.intern("broaderTransitive");
        let ar = t.inverse(a);
        assert_eq!(t.name(ar), "broaderTransitive_r");
        assert_eq!(t.inverse(ar), a);
    }
}
