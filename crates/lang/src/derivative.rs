//! Brzozowski derivatives of regular expressions.
//!
//! The paper's related-work section cites a derivative-based RPQ
//! evaluator (Nolé & Sartiani's Pregel solution) as the main competing
//! style; `spbla-graph::rpq_derivative` implements that baseline on top
//! of this module. Derivatives also give an independent regex matcher
//! used as another semantics oracle in property tests.

use crate::regex::Regex;
use crate::symbol::Symbol;

/// The derivative `∂_s r`: a regex accepting `{ w | s·w ∈ L(r) }`.
pub fn derivative(r: &Regex, s: Symbol) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Sym(t) => {
            if *t == s {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Alt(a, b) => simplify_alt(derivative(a, s), derivative(b, s)),
        Regex::Concat(a, b) => {
            let left = simplify_concat(derivative(a, s), (**b).clone());
            if a.nullable() {
                simplify_alt(left, derivative(b, s))
            } else {
                left
            }
        }
        Regex::Star(a) => simplify_concat(derivative(a, s), r.clone()),
    }
}

/// Smart alternation: drops `∅` branches and collapses duplicates.
fn simplify_alt(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, x) | (x, Regex::Empty) => x,
        (x, y) if x == y => x,
        (x, y) => x.alt(y),
    }
}

/// Smart concatenation: `∅·r = ∅`, `ε·r = r`.
fn simplify_concat(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
        (Regex::Epsilon, x) | (x, Regex::Epsilon) => x,
        (x, y) => x.concat(y),
    }
}

/// Build the Brzozowski derivative automaton of `r` over `alphabet`: a
/// deterministic, ε-free automaton whose states are the distinct
/// residual regexes (finite thanks to the smart constructors). A third
/// automaton construction next to Glushkov and Thompson — often smaller
/// than the Glushkov NFA for alternation-heavy queries, never larger
/// than the subset-construction DFA.
pub fn derivative_automaton(r: &Regex, alphabet: &[Symbol]) -> crate::nfa::Nfa {
    use rustc_hash::FxHashMap;
    let mut states: Vec<Regex> = vec![r.clone()];
    let mut ids: FxHashMap<Regex, u32> = FxHashMap::default();
    ids.insert(r.clone(), 0);
    let mut transitions: Vec<(u32, Symbol, u32)> = Vec::new();
    let mut frontier = vec![0u32];
    while let Some(q) = frontier.pop() {
        for &s in alphabet {
            let d = derivative(&states[q as usize], s);
            if d == Regex::Empty {
                continue;
            }
            let next = match ids.get(&d) {
                Some(&id) => id,
                None => {
                    let id = states.len() as u32;
                    ids.insert(d.clone(), id);
                    states.push(d);
                    frontier.push(id);
                    id
                }
            };
            transitions.push((q, s, next));
        }
    }
    let finals: Vec<u32> = states
        .iter()
        .enumerate()
        .filter(|(_, st)| st.nullable())
        .map(|(i, _)| i as u32)
        .collect();
    crate::nfa::Nfa::new(states.len() as u32, vec![0], finals, transitions)
}

/// Match by repeated derivation: `w ∈ L(r)` iff `∂_w r` is nullable.
pub fn matches_by_derivative(r: &Regex, word: &[Symbol]) -> bool {
    let mut cur = r.clone();
    for &s in word {
        cur = derivative(&cur, s);
        if cur == Regex::Empty {
            return false;
        }
    }
    cur.nullable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn all_words(syms: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![vec![]];
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    #[test]
    fn agrees_with_backtracking_matcher() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        for q in [
            "a*",
            "a . b*",
            "(a | b)+ . c",
            "a? . b*",
            "(a . b)+ | (c . a)+",
            "(a . (b . c)*)+",
        ] {
            let r = Regex::parse(q, &mut t).unwrap();
            for w in all_words(&syms, 4) {
                assert_eq!(
                    matches_by_derivative(&r, &w),
                    r.matches(&w),
                    "query {q} word {w:?}"
                );
            }
        }
    }

    #[test]
    fn derivative_automaton_agrees_with_matcher() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        for q in [
            "a*",
            "a . b* . c",
            "(a | b)+",
            "a? . b*",
            "(a . b)+ | (c . a)+",
        ] {
            let r = Regex::parse(q, &mut t).unwrap();
            let auto = derivative_automaton(&r, &syms);
            for w in all_words(&syms, 4) {
                assert_eq!(auto.accepts(&w), r.matches(&w), "query {q} word {w:?}");
            }
        }
    }

    #[test]
    fn derivative_automaton_is_deterministic() {
        let mut t = SymbolTable::new();
        let syms: Vec<Symbol> = ["a", "b"].iter().map(|n| t.intern(n)).collect();
        let r = Regex::parse("(a | b)* . a", &mut t).unwrap();
        let auto = derivative_automaton(&r, &syms);
        // No two transitions share (from, symbol).
        let mut seen = std::collections::HashSet::new();
        for &(f, s, _) in auto.transitions() {
            assert!(seen.insert((f, s)), "nondeterministic at ({f}, {s:?})");
        }
    }

    #[test]
    fn derivative_of_symbol() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let r = Regex::Sym(a);
        assert_eq!(derivative(&r, a), Regex::Epsilon);
        assert_eq!(derivative(&r, b), Regex::Empty);
    }

    #[test]
    fn simplification_keeps_terms_small() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let r = Regex::parse("(a | b)*", &mut t).unwrap();
        // Deriving a star by its own symbol should stay compact (no
        // unbounded nesting of ∅/ε wrappers).
        let d1 = derivative(&r, a);
        let d2 = derivative(&d1, a);
        assert!(d2.positions() <= r.positions() * 2 + 2);
    }
}
