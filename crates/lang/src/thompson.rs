//! Thompson's construction with ε-elimination.
//!
//! Thompson automata are linear-size but ε-heavy; matrix RPQ wants ε-free
//! automata, so the construction is followed by an ε-closure rewrite.
//! Kept alongside [`crate::glushkov`] both as a cross-validation oracle
//! and for the state-count comparison (Glushkov is smaller, which
//! directly shrinks the Kronecker factor in RPQ — an E10-adjacent
//! observation).

use rustc_hash::FxHashSet;

use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Symbol;

/// Thompson NFA with explicit ε transitions (internal form).
struct EpsNfa {
    n: u32,
    trans: Vec<(u32, Option<Symbol>, u32)>,
    start: u32,
    finish: u32,
}

fn build(r: &Regex, next: &mut u32, trans: &mut Vec<(u32, Option<Symbol>, u32)>) -> (u32, u32) {
    let mut fresh = || {
        let s = *next;
        *next += 1;
        s
    };
    match r {
        Regex::Empty => {
            let (s, f) = (fresh(), fresh());
            (s, f) // no transition: f unreachable
        }
        Regex::Epsilon => {
            let (s, f) = (fresh(), fresh());
            trans.push((s, None, f));
            (s, f)
        }
        Regex::Sym(sym) => {
            let (s, f) = (fresh(), fresh());
            trans.push((s, Some(*sym), f));
            (s, f)
        }
        Regex::Concat(a, b) => {
            let (sa, fa) = build(a, next, trans);
            let (sb, fb) = build(b, next, trans);
            trans.push((fa, None, sb));
            (sa, fb)
        }
        Regex::Alt(a, b) => {
            let (sa, fa) = build(a, next, trans);
            let (sb, fb) = build(b, next, trans);
            let s = {
                let v = *next;
                *next += 1;
                v
            };
            let f = {
                let v = *next;
                *next += 1;
                v
            };
            trans.push((s, None, sa));
            trans.push((s, None, sb));
            trans.push((fa, None, f));
            trans.push((fb, None, f));
            (s, f)
        }
        Regex::Star(a) => {
            let (sa, fa) = build(a, next, trans);
            let s = {
                let v = *next;
                *next += 1;
                v
            };
            let f = {
                let v = *next;
                *next += 1;
                v
            };
            trans.push((s, None, sa));
            trans.push((s, None, f));
            trans.push((fa, None, sa));
            trans.push((fa, None, f));
            (s, f)
        }
    }
}

fn eps_closure(n: u32, trans: &[(u32, Option<Symbol>, u32)], from: u32) -> FxHashSet<u32> {
    let mut seen = FxHashSet::default();
    seen.insert(from);
    let mut stack = vec![from];
    while let Some(q) = stack.pop() {
        for &(f, sym, t) in trans {
            if f == q && sym.is_none() && seen.insert(t) {
                stack.push(t);
            }
        }
    }
    debug_assert!(seen.iter().all(|&s| s < n));
    seen
}

/// Build an ε-free NFA for `r` via Thompson construction + ε-closure.
pub fn thompson(r: &Regex) -> Nfa {
    let mut next = 0u32;
    let mut trans = Vec::new();
    let (start, finish) = build(r, &mut next, &mut trans);
    let e = EpsNfa {
        n: next,
        trans,
        start,
        finish,
    };

    // ε-elimination: q -sym-> closure targets for every sym-edge leaving
    // the closure of q.
    let mut out_trans: Vec<(u32, Symbol, u32)> = Vec::new();
    let mut finals: Vec<u32> = Vec::new();
    for q in 0..e.n {
        let cl = eps_closure(e.n, &e.trans, q);
        if cl.contains(&e.finish) {
            finals.push(q);
        }
        for &(f, sym, t) in &e.trans {
            if let Some(s) = sym {
                if cl.contains(&f) {
                    out_trans.push((q, s, t));
                }
            }
        }
    }
    Nfa::new(e.n, vec![e.start], finals, out_trans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::glushkov;
    use crate::symbol::SymbolTable;

    #[test]
    fn agrees_with_glushkov() {
        let mut t = SymbolTable::new();
        let templates = [
            "a*",
            "a . b* . c",
            "(a | b)+",
            "a? . b*",
            "(a . b)+ | (c . a)+",
        ];
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        for q in templates {
            let r = Regex::parse(q, &mut t).unwrap();
            let th = thompson(&r);
            let gl = glushkov(&r);
            // Exhaustive words up to length 3.
            let mut words: Vec<Vec<Symbol>> = vec![vec![]];
            for len in 1..=3usize {
                let mut idx = vec![0usize; len];
                loop {
                    words.push(idx.iter().map(|&i| syms[i]).collect());
                    let mut k = 0;
                    loop {
                        idx[k] += 1;
                        if idx[k] < syms.len() {
                            break;
                        }
                        idx[k] = 0;
                        k += 1;
                        if k == len {
                            break;
                        }
                    }
                    if k == len {
                        break;
                    }
                }
            }
            for w in &words {
                assert_eq!(th.accepts(w), gl.accepts(w), "{q} on {w:?}");
            }
        }
    }

    #[test]
    fn thompson_is_larger_than_glushkov() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("(a | b)+ . (c | d)+", &mut t).unwrap();
        assert!(thompson(&r).n_states() > glushkov(&r).n_states());
    }
}
