//! Context-free grammars.
//!
//! Text format (one rule per line, alternatives with `|`, tokens split on
//! whitespace, `eps` is the empty word; the first left-hand side is the
//! start symbol; identifiers appearing on some left-hand side are
//! nonterminals, all others are terminals):
//!
//! ```text
//! S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
//! ```

use rustc_hash::{FxHashMap, FxHashSet};

use crate::symbol::{Symbol, SymbolTable};

/// Nonterminal id within a grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NtId(pub u32);

impl NtId {
    /// Raw id (usable as an array index).
    pub fn id(self) -> usize {
        self.0 as usize
    }
}

/// One right-hand-side element: a terminal or a nonterminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymbolOrNt {
    /// Terminal (graph edge label).
    T(Symbol),
    /// Nonterminal reference.
    N(NtId),
}

/// A context-free grammar.
#[derive(Debug, Clone)]
pub struct Grammar {
    nt_names: Vec<String>,
    start: NtId,
    /// `(lhs, rhs)`; an empty `rhs` is the ε-production.
    productions: Vec<(NtId, Vec<SymbolOrNt>)>,
}

impl Grammar {
    /// Parse the text format, interning terminals into `table`.
    ///
    /// ```
    /// use spbla_lang::{Grammar, SymbolTable};
    /// let mut table = SymbolTable::new();
    /// let g = Grammar::parse("S -> a S b | eps", &mut table).unwrap();
    /// assert_eq!(g.n_nonterminals(), 1);
    /// assert_eq!(g.terminals().len(), 2);
    /// assert!(g.nullable_set().contains(&g.start()));
    /// ```
    pub fn parse(input: &str, table: &mut SymbolTable) -> Result<Grammar, String> {
        let mut lines: Vec<(&str, Vec<&str>)> = Vec::new();
        for raw in input.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lhs, rhs) = line
                .split_once("->")
                .ok_or_else(|| format!("missing '->' in line: {line}"))?;
            let lhs = lhs.trim();
            if lhs.is_empty() {
                return Err(format!("empty left-hand side in line: {line}"));
            }
            lines.push((lhs, rhs.split('|').map(str::trim).collect()));
        }
        if lines.is_empty() {
            return Err("empty grammar".into());
        }

        // Nonterminals = all left-hand sides, in first-seen order.
        let mut nt_names: Vec<String> = Vec::new();
        let mut nt_ids: FxHashMap<String, NtId> = FxHashMap::default();
        for (lhs, _) in &lines {
            if !nt_ids.contains_key(*lhs) {
                let id = NtId(nt_names.len() as u32);
                nt_names.push(lhs.to_string());
                nt_ids.insert(lhs.to_string(), id);
            }
        }

        let mut productions = Vec::new();
        for (lhs, alternatives) in &lines {
            let lhs_id = nt_ids[*lhs];
            for alt in alternatives {
                let mut rhs = Vec::new();
                if *alt != "eps" && !alt.is_empty() {
                    for tok in alt.split_whitespace() {
                        if tok == "eps" {
                            return Err(format!("'eps' must stand alone, got: {alt}"));
                        }
                        rhs.push(match nt_ids.get(tok) {
                            Some(&nt) => SymbolOrNt::N(nt),
                            None => SymbolOrNt::T(table.intern(tok)),
                        });
                    }
                }
                productions.push((lhs_id, rhs));
            }
        }

        Ok(Grammar {
            nt_names,
            start: NtId(0),
            productions,
        })
    }

    /// Build directly from parts (for programmatic construction).
    pub fn new(
        nt_names: Vec<String>,
        start: NtId,
        productions: Vec<(NtId, Vec<SymbolOrNt>)>,
    ) -> Grammar {
        debug_assert!(start.id() < nt_names.len());
        Grammar {
            nt_names,
            start,
            productions,
        }
    }

    /// Number of nonterminals.
    pub fn n_nonterminals(&self) -> usize {
        self.nt_names.len()
    }

    /// Start nonterminal.
    pub fn start(&self) -> NtId {
        self.start
    }

    /// Name of a nonterminal.
    pub fn nt_name(&self, nt: NtId) -> &str {
        &self.nt_names[nt.id()]
    }

    /// All productions.
    pub fn productions(&self) -> &[(NtId, Vec<SymbolOrNt>)] {
        &self.productions
    }

    /// Productions of one nonterminal.
    pub fn productions_of(&self, nt: NtId) -> impl Iterator<Item = &[SymbolOrNt]> {
        self.productions
            .iter()
            .filter(move |(lhs, _)| *lhs == nt)
            .map(|(_, rhs)| rhs.as_slice())
    }

    /// All distinct terminals.
    pub fn terminals(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self
            .productions
            .iter()
            .flat_map(|(_, rhs)| rhs.iter())
            .filter_map(|s| match s {
                SymbolOrNt::T(t) => Some(*t),
                SymbolOrNt::N(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Nonterminals that derive ε (fixpoint computation).
    pub fn nullable_set(&self) -> FxHashSet<NtId> {
        let mut nullable: FxHashSet<NtId> = FxHashSet::default();
        loop {
            let before = nullable.len();
            for (lhs, rhs) in &self.productions {
                if rhs.iter().all(|s| match s {
                    SymbolOrNt::T(_) => false,
                    SymbolOrNt::N(n) => nullable.contains(n),
                }) {
                    nullable.insert(*lhs);
                }
            }
            if nullable.len() == before {
                return nullable;
            }
        }
    }

    /// Total grammar size: Σ (1 + |rhs|) over productions — the metric
    /// for the CNF-blow-up comparison (E10.5).
    pub fn size(&self) -> usize {
        self.productions.iter().map(|(_, rhs)| 1 + rhs.len()).sum()
    }

    /// Canonical cache key. Nonterminals are renamed to `@0`, `@1`, …
    /// (start first, then first occurrence scanning productions
    /// left-to-right, then any unreferenced leftovers in declaration
    /// order), alternatives of each nonterminal are sorted, and the
    /// result is rendered one nonterminal per line. Two grammar texts
    /// share a key iff they parse to the same productions modulo
    /// whitespace, nonterminal naming, and alternative order — so
    /// `S -> a | b` and `T -> b | a` hit the same plan-cache entry,
    /// while grammars with different shapes never alias (`@` is
    /// outside the terminal identifier charset, so a terminal can
    /// never collide with a canonical nonterminal name).
    pub fn canonical(&self, table: &SymbolTable) -> String {
        let mut order = vec![u32::MAX; self.n_nonterminals()];
        let mut next = 0u32;
        fn touch(order: &mut [u32], next: &mut u32, nt: NtId) {
            if order[nt.id()] == u32::MAX {
                order[nt.id()] = *next;
                *next += 1;
            }
        }
        touch(&mut order, &mut next, self.start);
        for (lhs, rhs) in &self.productions {
            touch(&mut order, &mut next, *lhs);
            for s in rhs {
                if let SymbolOrNt::N(n) = s {
                    touch(&mut order, &mut next, *n);
                }
            }
        }
        for id in 0..self.n_nonterminals() {
            touch(&mut order, &mut next, NtId(id as u32));
        }

        // Alternatives per canonical nonterminal, rendered then sorted.
        let mut alts: Vec<Vec<String>> = vec![Vec::new(); self.n_nonterminals()];
        for (lhs, rhs) in &self.productions {
            let rendered = if rhs.is_empty() {
                "ε".to_string()
            } else {
                rhs.iter()
                    .map(|s| match s {
                        SymbolOrNt::T(t) => table.name(*t).to_string(),
                        SymbolOrNt::N(n) => format!("@{}", order[n.id()]),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            alts[order[lhs.id()] as usize].push(rendered);
        }
        let mut out = String::new();
        for (idx, mut list) in alts.into_iter().enumerate() {
            list.sort_unstable();
            list.dedup();
            out.push_str(&format!("@{idx} -> {}\n", list.join(" | ")));
        }
        out
    }

    /// Render in the same text format [`Grammar::parse`] accepts
    /// (productions grouped per nonterminal, alternatives joined with
    /// `|`, ε as `eps`).
    pub fn display_with(&self, table: &SymbolTable) -> String {
        let mut out = String::new();
        for nt_idx in 0..self.n_nonterminals() {
            let nt = NtId(nt_idx as u32);
            let alts: Vec<String> = self
                .productions_of(nt)
                .map(|rhs| {
                    if rhs.is_empty() {
                        "eps".to_string()
                    } else {
                        rhs.iter()
                            .map(|s| match s {
                                SymbolOrNt::T(t) => table.name(*t).to_string(),
                                SymbolOrNt::N(n) => self.nt_name(*n).to_string(),
                            })
                            .collect::<Vec<_>>()
                            .join(" ")
                    }
                })
                .collect();
            if !alts.is_empty() {
                out.push_str(self.nt_name(nt));
                out.push_str(" -> ");
                out.push_str(&alts.join(" | "));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_same_generation_query() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse(
            "S -> subClassOf_r S subClassOf | subClassOf_r subClassOf",
            &mut t,
        )
        .unwrap();
        assert_eq!(g.n_nonterminals(), 1);
        assert_eq!(g.productions().len(), 2);
        assert_eq!(g.terminals().len(), 2);
        assert!(g.nullable_set().is_empty());
    }

    #[test]
    fn epsilon_and_multiple_nts() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse(
            "S -> a V d\n\
             V -> a V | eps",
            &mut t,
        )
        .unwrap();
        assert_eq!(g.n_nonterminals(), 2);
        let nullable = g.nullable_set();
        assert!(nullable.contains(&NtId(1)));
        assert!(!nullable.contains(&NtId(0)));
    }

    #[test]
    fn parse_errors() {
        let mut t = SymbolTable::new();
        assert!(Grammar::parse("", &mut t).is_err());
        assert!(Grammar::parse("S a b", &mut t).is_err());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let mut t = SymbolTable::new();
        for text in [
            "S -> a S b | a b",
            "S -> S S | a S b | eps",
            "S -> a V d\nV -> a V | eps",
            "S -> d_r V d\nV -> Ls M Rs\nLs -> L Ls | eps\nL -> S a_r | a_r\nM -> S | eps\nRs -> R Rs | eps\nR -> a S | a",
        ] {
            let g = Grammar::parse(text, &mut t).unwrap();
            let printed = g.display_with(&t);
            let reparsed = Grammar::parse(&printed, &mut t).unwrap();
            assert_eq!(reparsed.n_nonterminals(), g.n_nonterminals());
            assert_eq!(reparsed.productions(), g.productions());
            assert_eq!(reparsed.start(), g.start());
        }
    }

    #[test]
    fn first_lhs_is_start_and_size_counts() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("A -> b B\nB -> c", &mut t).unwrap();
        assert_eq!(g.nt_name(g.start()), "A");
        assert_eq!(g.size(), (1 + 2) + (1 + 1));
    }
}
