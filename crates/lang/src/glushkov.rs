//! Glushkov's position automaton (the construction Wang et al.'s
//! provenance-aware RPQ uses, cited by the paper).
//!
//! States are the symbol *positions* of the regex plus a fresh start
//! state; the automaton is ε-free by construction and has exactly
//! `positions + 1` states — ideal for the matrix encoding, whose
//! Kronecker factor size is the state count.

use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Symbol;

/// first/last/follow analysis result for a subexpression.
struct Sets {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

fn analyze(
    r: &Regex,
    next_pos: &mut u32,
    pos_symbol: &mut Vec<Symbol>,
    follow: &mut Vec<Vec<u32>>,
) -> Sets {
    match r {
        Regex::Empty => Sets {
            nullable: false,
            first: vec![],
            last: vec![],
        },
        Regex::Epsilon => Sets {
            nullable: true,
            first: vec![],
            last: vec![],
        },
        Regex::Sym(s) => {
            let p = *next_pos;
            *next_pos += 1;
            pos_symbol.push(*s);
            follow.push(Vec::new());
            Sets {
                nullable: false,
                first: vec![p],
                last: vec![p],
            }
        }
        Regex::Alt(a, b) => {
            let sa = analyze(a, next_pos, pos_symbol, follow);
            let sb = analyze(b, next_pos, pos_symbol, follow);
            Sets {
                nullable: sa.nullable || sb.nullable,
                first: [sa.first, sb.first].concat(),
                last: [sa.last, sb.last].concat(),
            }
        }
        Regex::Concat(a, b) => {
            let sa = analyze(a, next_pos, pos_symbol, follow);
            let sb = analyze(b, next_pos, pos_symbol, follow);
            for &l in &sa.last {
                follow[l as usize].extend_from_slice(&sb.first);
            }
            Sets {
                nullable: sa.nullable && sb.nullable,
                first: if sa.nullable {
                    [sa.first, sb.first.clone()].concat()
                } else {
                    sa.first
                },
                last: if sb.nullable {
                    [sa.last, sb.last.clone()].concat()
                } else {
                    sb.last
                },
            }
        }
        Regex::Star(a) => {
            let sa = analyze(a, next_pos, pos_symbol, follow);
            for &l in &sa.last {
                follow[l as usize].extend_from_slice(&sa.first);
            }
            Sets {
                nullable: true,
                first: sa.first,
                last: sa.last,
            }
        }
    }
}

/// Build the Glushkov automaton of `r`. State `0` is the start; state
/// `p + 1` corresponds to position `p`.
pub fn glushkov(r: &Regex) -> Nfa {
    let mut next_pos = 0u32;
    let mut pos_symbol: Vec<Symbol> = Vec::new();
    let mut follow: Vec<Vec<u32>> = Vec::new();
    let sets = analyze(r, &mut next_pos, &mut pos_symbol, &mut follow);

    let n_states = next_pos + 1;
    let mut transitions = Vec::new();
    for &f in &sets.first {
        transitions.push((0, pos_symbol[f as usize], f + 1));
    }
    for (p, follows) in follow.iter().enumerate() {
        for &q in follows {
            transitions.push((p as u32 + 1, pos_symbol[q as usize], q + 1));
        }
    }
    let mut finals: Vec<u32> = sets.last.iter().map(|&l| l + 1).collect();
    if sets.nullable {
        finals.push(0);
    }
    Nfa::new(n_states, vec![0], finals, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn words(symbols: &[Symbol], max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![vec![]];
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in symbols {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    #[test]
    fn state_count_is_positions_plus_one() {
        let mut t = SymbolTable::new();
        let r = Regex::parse("(a | b)+ . c", &mut t).unwrap();
        let nfa = glushkov(&r);
        assert_eq!(nfa.n_states(), r.positions() as u32 + 1);
    }

    #[test]
    fn agrees_with_regex_matcher_on_templates() {
        let mut t = SymbolTable::new();
        let templates = [
            "a*",
            "a . b*",
            "(a | b)*",
            "a . b* . c",
            "a? . b*",
            "(a . b)+ | (c . a)+",
            "(a | b)+ . (c | a)+",
            "(a . (b . c)*)+ | (a . c)+",
        ];
        for q in templates {
            let r = Regex::parse(q, &mut t).unwrap();
            let nfa = glushkov(&r);
            let alphabet: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
            for w in words(&alphabet, 4) {
                assert_eq!(
                    nfa.accepts(&w),
                    r.matches(&w),
                    "disagreement on {q} for word {w:?}"
                );
            }
        }
    }

    #[test]
    fn empty_language_has_no_finals() {
        let nfa = glushkov(&Regex::Empty);
        assert_eq!(nfa.n_states(), 1);
        assert!(nfa.final_states().is_empty());
        assert!(!nfa.accepts(&[]));
    }
}
