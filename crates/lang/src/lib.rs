//! # spbla-lang — formal-language substrate
//!
//! Everything the paper's path-querying applications need from formal
//! language theory, built from scratch:
//!
//! * [`regex`] — regular expression AST and a parser for the query
//!   template syntax of Table II (`(a|b)·c*`, `a?·b⁺`, …);
//! * [`thompson`] / [`glushkov`] — NFA constructions (Glushkov's
//!   position automaton is ε-free, which is what matrix RPQ wants);
//! * [`dfa`] — subset construction, used as the membership oracle in
//!   property tests;
//! * [`cfg`] — context-free grammars with a small text format;
//! * [`cnf`] — transformation to Chomsky Normal Form (the preprocessing
//!   Azimov's algorithm requires; its size blow-up versus RSMs is one of
//!   the paper's motivations);
//! * [`rsm`] — recursive state machines built per-nonterminal, the
//!   grammar encoding of the tensor (Kronecker) CFPQ algorithm;
//! * [`cyk`] — string-membership CYK, the oracle for CNF correctness.

pub mod analysis;
pub mod cfg;
pub mod cnf;
pub mod cyk;
pub mod derivative;
pub mod dfa;
pub mod glushkov;
pub mod minimize;
pub mod nfa;
pub mod regex;
pub mod rsm;
pub mod symbol;
pub mod thompson;

pub use cfg::{Grammar, SymbolOrNt};
pub use cnf::CnfGrammar;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::Regex;
pub use rsm::Rsm;
pub use symbol::{Symbol, SymbolTable};
