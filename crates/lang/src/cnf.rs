//! Transformation to Chomsky Normal Form.
//!
//! Azimov's matrix CFPQ algorithm requires CNF; the paper's introduction
//! notes the transformation "leads to the grammar size increase, and
//! hence worsens performance, especially for regular queries" — the
//! size delta is measured by ablation E10.5 against the RSM encoding.
//!
//! Pipeline: START → TERM → BIN → DEL → UNIT (standard order, preserving
//! the language except that ε-membership is tracked by a flag).

use rustc_hash::{FxHashMap, FxHashSet};

use crate::cfg::{Grammar, NtId, SymbolOrNt};
use crate::symbol::Symbol;

/// A grammar in Chomsky Normal Form: only `A → a` and `A → B C` rules,
/// plus a flag recording whether the start symbol derives ε.
#[derive(Debug, Clone)]
pub struct CnfGrammar {
    nt_names: Vec<String>,
    start: NtId,
    terminal_rules: Vec<(NtId, Symbol)>,
    binary_rules: Vec<(NtId, NtId, NtId)>,
    start_nullable: bool,
}

impl CnfGrammar {
    /// Number of nonterminals (after transformation).
    pub fn n_nonterminals(&self) -> usize {
        self.nt_names.len()
    }

    /// Start nonterminal.
    pub fn start(&self) -> NtId {
        self.start
    }

    /// Name of a nonterminal (fresh ones get synthetic names).
    pub fn nt_name(&self, nt: NtId) -> &str {
        &self.nt_names[nt.id()]
    }

    /// `A → a` rules.
    pub fn terminal_rules(&self) -> &[(NtId, Symbol)] {
        &self.terminal_rules
    }

    /// `A → B C` rules.
    pub fn binary_rules(&self) -> &[(NtId, NtId, NtId)] {
        &self.binary_rules
    }

    /// Whether the start symbol derives ε.
    pub fn start_nullable(&self) -> bool {
        self.start_nullable
    }

    /// Total size: terminal rules count 2, binary rules count 3 — the
    /// blow-up metric (E10.5).
    pub fn size(&self) -> usize {
        self.terminal_rules.len() * 2 + self.binary_rules.len() * 3
    }

    /// Transform an arbitrary grammar to CNF.
    pub fn from_grammar(g: &Grammar) -> CnfGrammar {
        // Working representation: productions with Vec<SymbolOrNt>, fresh
        // nonterminals appended on demand.
        let mut nt_names: Vec<String> = (0..g.n_nonterminals())
            .map(|i| g.nt_name(NtId(i as u32)).to_string())
            .collect();
        let mut prods: Vec<(NtId, Vec<SymbolOrNt>)> = g.productions().to_vec();

        // START: fresh start so the start symbol never appears on a RHS.
        let start = NtId(nt_names.len() as u32);
        nt_names.push("S'".to_string());
        prods.push((start, vec![SymbolOrNt::N(g.start())]));

        // TERM: replace terminals inside length ≥ 2 bodies.
        let mut term_nt: FxHashMap<Symbol, NtId> = FxHashMap::default();
        let mut extra: Vec<(NtId, Vec<SymbolOrNt>)> = Vec::new();
        for (_, rhs) in prods.iter_mut() {
            if rhs.len() >= 2 {
                for slot in rhs.iter_mut() {
                    if let SymbolOrNt::T(t) = *slot {
                        let nt = *term_nt.entry(t).or_insert_with(|| {
                            let nt = NtId(nt_names.len() as u32);
                            nt_names.push(format!("T<{}>", t.0));
                            extra.push((nt, vec![SymbolOrNt::T(t)]));
                            nt
                        });
                        *slot = SymbolOrNt::N(nt);
                    }
                }
            }
        }
        prods.extend(extra);

        // BIN: binarise length ≥ 3 bodies.
        let mut binarised: Vec<(NtId, Vec<SymbolOrNt>)> = Vec::new();
        for (lhs, rhs) in prods {
            if rhs.len() <= 2 {
                binarised.push((lhs, rhs));
                continue;
            }
            let mut current = lhs;
            for (i, &sym) in rhs.iter().take(rhs.len() - 2).enumerate() {
                let fresh = NtId(nt_names.len() as u32);
                nt_names.push(format!("B<{}.{}>", lhs.0, i));
                binarised.push((current, vec![sym, SymbolOrNt::N(fresh)]));
                current = fresh;
            }
            binarised.push((current, rhs[rhs.len() - 2..].to_vec()));
        }
        let prods = binarised;

        // DEL: ε-elimination. Nullable = fixpoint over current prods.
        let nullable: FxHashSet<NtId> = {
            let mut set = FxHashSet::default();
            loop {
                let before = set.len();
                for (lhs, rhs) in &prods {
                    if rhs.iter().all(|s| match s {
                        SymbolOrNt::T(_) => false,
                        SymbolOrNt::N(n) => set.contains(n),
                    }) {
                        set.insert(*lhs);
                    }
                }
                if set.len() == before {
                    break set;
                }
            }
        };
        let start_nullable = nullable.contains(&start);
        let mut expanded: FxHashSet<(NtId, Vec<SymbolOrNt>)> = FxHashSet::default();
        for (lhs, rhs) in &prods {
            // Bodies here have length ≤ 2, so expansion enumerates at
            // most 4 subsets.
            let mask_limit = 1usize << rhs.len();
            for mask in 0..mask_limit {
                let mut body = Vec::new();
                let mut valid = true;
                for (i, s) in rhs.iter().enumerate() {
                    let keep = mask & (1 << i) != 0;
                    if keep {
                        body.push(*s);
                    } else {
                        match s {
                            SymbolOrNt::N(n) if nullable.contains(n) => {}
                            _ => {
                                valid = false;
                                break;
                            }
                        }
                    }
                }
                if valid && !body.is_empty() {
                    expanded.insert((*lhs, body));
                }
            }
        }

        // UNIT: closure over unit pairs A →* B, then inline B's non-unit
        // bodies into A.
        let n = nt_names.len();
        let mut unit_reach: Vec<FxHashSet<NtId>> = (0..n)
            .map(|i| {
                let mut s = FxHashSet::default();
                s.insert(NtId(i as u32));
                s
            })
            .collect();
        loop {
            let mut changed = false;
            for (lhs, rhs) in &expanded {
                if let [SymbolOrNt::N(b)] = rhs.as_slice() {
                    let reach_b: Vec<NtId> = unit_reach[b.id()].iter().copied().collect();
                    for r in reach_b {
                        if unit_reach[lhs.id()].insert(r) {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut terminal_rules: FxHashSet<(NtId, Symbol)> = FxHashSet::default();
        let mut binary_rules: FxHashSet<(NtId, NtId, NtId)> = FxHashSet::default();
        for (a, reach) in unit_reach.iter().enumerate() {
            let a_id = NtId(a as u32);
            for b in reach.clone() {
                for (lhs, rhs) in &expanded {
                    if *lhs != b {
                        continue;
                    }
                    match rhs.as_slice() {
                        [SymbolOrNt::T(t)] => {
                            terminal_rules.insert((a_id, *t));
                        }
                        [SymbolOrNt::N(x), SymbolOrNt::N(y)] => {
                            binary_rules.insert((a_id, *x, *y));
                        }
                        [SymbolOrNt::N(_)] => {} // unit, already closed
                        [SymbolOrNt::T(_), _] | [_, SymbolOrNt::T(_)] => {
                            unreachable!("TERM pass removed embedded terminals")
                        }
                        _ => unreachable!("BIN pass bounded body length"),
                    }
                }
            }
        }

        let mut terminal_rules: Vec<_> = terminal_rules.into_iter().collect();
        terminal_rules.sort_unstable();
        let mut binary_rules: Vec<_> = binary_rules.into_iter().collect();
        binary_rules.sort_unstable();

        CnfGrammar {
            nt_names,
            start,
            terminal_rules,
            binary_rules,
            start_nullable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyk::cyk_accepts;
    use crate::symbol::SymbolTable;

    #[test]
    fn balanced_brackets_roundtrip() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a S b | S S | eps", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        assert!(cnf.start_nullable());
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        assert!(cyk_accepts(&cnf, &[]));
        assert!(cyk_accepts(&cnf, &[a, b]));
        assert!(cyk_accepts(&cnf, &[a, a, b, b]));
        assert!(cyk_accepts(&cnf, &[a, b, a, b]));
        assert!(!cyk_accepts(&cnf, &[b, a]));
        assert!(!cyk_accepts(&cnf, &[a, a, b]));
    }

    #[test]
    fn long_bodies_are_binarised() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a b c d", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let (a, b, c, d) = (
            t.get("a").unwrap(),
            t.get("b").unwrap(),
            t.get("c").unwrap(),
            t.get("d").unwrap(),
        );
        assert!(cyk_accepts(&cnf, &[a, b, c, d]));
        assert!(!cyk_accepts(&cnf, &[a, b, c]));
        assert!(!cyk_accepts(&cnf, &[]));
        assert!(cnf.binary_rules().iter().all(|_| true));
    }

    #[test]
    fn unit_chains_collapse() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> A\nA -> B\nB -> x", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        let x = t.get("x").unwrap();
        assert!(cyk_accepts(&cnf, &[x]));
        assert!(!cyk_accepts(&cnf, &[x, x]));
    }

    #[test]
    fn cnf_size_exceeds_grammar_size_for_regular_like_query() {
        // A regular-shaped query pays for CNF — the paper's motivation.
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> a b c d e | a S", &mut t).unwrap();
        let cnf = CnfGrammar::from_grammar(&g);
        assert!(cnf.size() > g.size(), "{} vs {}", cnf.size(), g.size());
    }
}
