//! DFA minimisation (Hopcroft's partition refinement).
//!
//! Smaller automata mean smaller Kronecker factors in the RPQ index; the
//! E10-adjacent question "does minimising the Glushkov automaton pay?"
//! is answered by the `ablations` bench using this module.

use rustc_hash::{FxHashMap, FxHashSet};

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::symbol::Symbol;

/// A minimised DFA as an ε-free [`Nfa`] (deterministic by construction),
/// convenient for feeding straight back into the matrix RPQ pipeline.
pub fn minimize(dfa: &Dfa) -> Nfa {
    let n = dfa.n_states() as usize;
    let alphabet: Vec<Symbol> = dfa.alphabet().to_vec();

    // Completed transition table with an explicit dead state `n`.
    let dead = n;
    let total = n + 1;
    let mut delta = vec![vec![dead; alphabet.len()]; total];
    for (si, row) in delta.iter_mut().enumerate().take(n) {
        for (ai, &sym) in alphabet.iter().enumerate() {
            row[ai] = dfa.step(si as u32, sym).map_or(dead, |t| t as usize);
        }
    }
    for row in delta.iter_mut().skip(n) {
        for slot in row.iter_mut() {
            *slot = dead;
        }
    }

    // Hopcroft partition refinement.
    let finals: FxHashSet<usize> = (0..n).filter(|&s| dfa.is_final(s as u32)).collect();
    let nonfinals: FxHashSet<usize> = (0..total).filter(|s| !finals.contains(s)).collect();
    let mut partitions: Vec<FxHashSet<usize>> = Vec::new();
    if !finals.is_empty() {
        partitions.push(finals.clone());
    }
    if !nonfinals.is_empty() {
        partitions.push(nonfinals);
    }
    let mut worklist: Vec<usize> = (0..partitions.len()).collect();

    // Reverse transitions per symbol.
    let mut reverse: Vec<FxHashMap<usize, Vec<usize>>> = vec![FxHashMap::default(); alphabet.len()];
    for (s, row) in delta.iter().enumerate() {
        for (ai, &t) in row.iter().enumerate() {
            reverse[ai].entry(t).or_default().push(s);
        }
    }

    while let Some(splitter_idx) = worklist.pop() {
        let splitter = partitions[splitter_idx].clone();
        for rev in reverse.iter() {
            // X = states leading into the splitter on this symbol.
            let mut x: FxHashSet<usize> = FxHashSet::default();
            for &t in &splitter {
                if let Some(srcs) = rev.get(&t) {
                    x.extend(srcs.iter().copied());
                }
            }
            if x.is_empty() {
                continue;
            }
            let mut p = 0;
            while p < partitions.len() {
                let inter: FxHashSet<usize> = partitions[p].intersection(&x).copied().collect();
                if inter.is_empty() || inter.len() == partitions[p].len() {
                    p += 1;
                    continue;
                }
                let diff: FxHashSet<usize> = partitions[p].difference(&x).copied().collect();
                // Replace partition p with the smaller half; push the
                // larger as a new partition; schedule per Hopcroft.
                let (small, large) = if inter.len() <= diff.len() {
                    (inter, diff)
                } else {
                    (diff, inter)
                };
                partitions[p] = large;
                partitions.push(small);
                worklist.push(partitions.len() - 1);
                p += 1;
            }
        }
    }

    // Build the quotient automaton, dropping the dead class.
    let mut class_of = vec![usize::MAX; total];
    for (ci, part) in partitions.iter().enumerate() {
        for &s in part {
            class_of[s] = ci;
        }
    }
    let dead_class = class_of[dead];
    // Renumber reachable classes except the dead one.
    let mut renumber: FxHashMap<usize, u32> = FxHashMap::default();
    let mut next_id = 0u32;
    let mut id_of = |c: usize, renumber: &mut FxHashMap<usize, u32>| -> u32 {
        *renumber.entry(c).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            id
        })
    };

    let start_class = class_of[0];
    let start_id = id_of(start_class, &mut renumber);
    let mut transitions: Vec<(u32, Symbol, u32)> = Vec::new();
    let mut finals_out: Vec<u32> = Vec::new();
    let mut emitted: FxHashSet<usize> = FxHashSet::default();
    let mut stack = vec![start_class];
    emitted.insert(start_class);
    while let Some(c) = stack.pop() {
        // Representative state of the class.
        let rep = (0..total)
            .find(|&s| class_of[s] == c)
            .expect("non-empty class");
        let cid = id_of(c, &mut renumber);
        if rep < n && dfa.is_final(rep as u32) {
            finals_out.push(cid);
        }
        for (ai, &sym) in alphabet.iter().enumerate() {
            let t_class = class_of[delta[rep][ai]];
            if t_class == dead_class {
                continue;
            }
            let tid = id_of(t_class, &mut renumber);
            transitions.push((cid, sym, tid));
            if emitted.insert(t_class) {
                stack.push(t_class);
            }
        }
    }

    Nfa::new(next_id, vec![start_id], finals_out, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::glushkov::glushkov;
    use crate::regex::Regex;
    use crate::symbol::SymbolTable;

    fn check_equiv(q: &str) {
        let mut t = SymbolTable::new();
        let r = Regex::parse(q, &mut t).unwrap();
        let nfa = glushkov(&r);
        let dfa = Dfa::from_nfa(&nfa);
        let min = minimize(&dfa);
        assert!(min.n_states() <= dfa.n_states(), "minimise grew {q}");
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|n| t.intern(n)).collect();
        // Exhaustive words ≤ 4.
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        let mut frontier: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &frontier {
                for &s in &syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            frontier = next;
        }
        for w in &words {
            assert_eq!(min.accepts(w), nfa.accepts(w), "query {q} word {w:?}");
        }
    }

    #[test]
    fn preserves_language() {
        for q in [
            "a*",
            "(a | b)* . c",
            "a . b* . c*",
            "(a . b)+ | (c . a)+",
            "a? . b*",
            "(a | b | c)+",
        ] {
            check_equiv(q);
        }
    }

    #[test]
    fn collapses_redundant_states() {
        let mut t = SymbolTable::new();
        // (a|b)·(a|b) via Glushkov has 5 states; the minimal DFA has 3.
        let r = Regex::parse("(a | b) . (a | b)", &mut t).unwrap();
        let dfa = Dfa::from_nfa(&glushkov(&r));
        let min = minimize(&dfa);
        assert_eq!(min.n_states(), 3);
    }
}
