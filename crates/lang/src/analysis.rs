//! Grammar analyses: generating/reachable symbols, useless-production
//! elimination, and language emptiness — the sanitisation pass a query
//! engine runs before handing a grammar to the CFPQ machinery (a useless
//! nonterminal would still inflate the RSM's Kronecker factor).

use rustc_hash::FxHashSet;

use crate::cfg::{Grammar, NtId, SymbolOrNt};

/// Nonterminals that derive at least one terminal string.
pub fn generating_set(g: &Grammar) -> FxHashSet<NtId> {
    let mut generating: FxHashSet<NtId> = FxHashSet::default();
    loop {
        let before = generating.len();
        for (lhs, rhs) in g.productions() {
            if rhs.iter().all(|s| match s {
                SymbolOrNt::T(_) => true,
                SymbolOrNt::N(n) => generating.contains(n),
            }) {
                generating.insert(*lhs);
            }
        }
        if generating.len() == before {
            return generating;
        }
    }
}

/// Nonterminals reachable from the start symbol.
pub fn reachable_set(g: &Grammar) -> FxHashSet<NtId> {
    let mut reachable: FxHashSet<NtId> = FxHashSet::default();
    reachable.insert(g.start());
    let mut stack = vec![g.start()];
    while let Some(nt) = stack.pop() {
        for rhs in g.productions_of(nt) {
            for s in rhs {
                if let SymbolOrNt::N(n) = s {
                    if reachable.insert(*n) {
                        stack.push(*n);
                    }
                }
            }
        }
    }
    reachable
}

/// Whether `L(G)` is empty (the start symbol generates nothing).
pub fn is_empty_language(g: &Grammar) -> bool {
    !generating_set(g).contains(&g.start())
}

/// Remove productions that mention non-generating or unreachable
/// nonterminals (the classic two-pass reduction: generating first, then
/// reachable). Nonterminal ids and names are preserved; only productions
/// are dropped. Returns the reduced grammar and the number of dropped
/// productions.
pub fn eliminate_useless(g: &Grammar) -> (Grammar, usize) {
    let generating = generating_set(g);
    let keep1: Vec<(NtId, Vec<SymbolOrNt>)> = g
        .productions()
        .iter()
        .filter(|(lhs, rhs)| {
            generating.contains(lhs)
                && rhs.iter().all(|s| match s {
                    SymbolOrNt::T(_) => true,
                    SymbolOrNt::N(n) => generating.contains(n),
                })
        })
        .cloned()
        .collect();
    let intermediate = Grammar::new(
        (0..g.n_nonterminals())
            .map(|i| g.nt_name(NtId(i as u32)).to_string())
            .collect(),
        g.start(),
        keep1,
    );
    let reachable = reachable_set(&intermediate);
    let keep2: Vec<(NtId, Vec<SymbolOrNt>)> = intermediate
        .productions()
        .iter()
        .filter(|(lhs, _)| reachable.contains(lhs))
        .cloned()
        .collect();
    let dropped = g.productions().len() - keep2.len();
    let reduced = Grammar::new(
        (0..g.n_nonterminals())
            .map(|i| g.nt_name(NtId(i as u32)).to_string())
            .collect(),
        g.start(),
        keep2,
    );
    (reduced, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::CnfGrammar;
    use crate::cyk::cyk_accepts;
    use crate::symbol::SymbolTable;

    #[test]
    fn detects_non_generating() {
        let mut t = SymbolTable::new();
        // U never terminates; S has a terminating alternative.
        let g = Grammar::parse("S -> a | U b\nU -> U a", &mut t).unwrap();
        let gen = generating_set(&g);
        assert!(gen.contains(&NtId(0)));
        assert!(!gen.contains(&NtId(1)));
        assert!(!is_empty_language(&g));
    }

    #[test]
    fn detects_empty_language() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> S a", &mut t).unwrap();
        assert!(is_empty_language(&g));
    }

    #[test]
    fn elimination_preserves_language() {
        let mut t = SymbolTable::new();
        // W unreachable, U non-generating.
        let g = Grammar::parse(
            "S -> a S b | a b | U c\n\
             U -> U a\n\
             W -> a",
            &mut t,
        )
        .unwrap();
        let (reduced, dropped) = eliminate_useless(&g);
        assert_eq!(dropped, 3); // "S -> U c", "U -> U a", "W -> a"
        let cnf_full = CnfGrammar::from_grammar(&g);
        let cnf_red = CnfGrammar::from_grammar(&reduced);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        let c = t.get("c").unwrap();
        for word in [vec![a, b], vec![a, a, b, b], vec![a, c], vec![]] {
            assert_eq!(
                cyk_accepts(&cnf_full, &word),
                cyk_accepts(&cnf_red, &word),
                "word {word:?}"
            );
        }
    }

    #[test]
    fn reachability_from_start() {
        let mut t = SymbolTable::new();
        let g = Grammar::parse("S -> A b\nA -> a\nZ -> c", &mut t).unwrap();
        let r = reachable_set(&g);
        assert!(r.contains(&NtId(0)) && r.contains(&NtId(1)));
        assert!(!r.contains(&NtId(2)));
    }
}
