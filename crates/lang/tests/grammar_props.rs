//! Property tests over grammars: the CNF transformation preserves the
//! language against an independent brute-force derivation oracle, and
//! the RSM encoding accepts exactly the grammar's sentential strings.

use proptest::prelude::*;

use spbla_lang::analysis::{eliminate_useless, is_empty_language};
use spbla_lang::cfg::{Grammar, NtId, SymbolOrNt};
use spbla_lang::cyk::cyk_accepts;
use spbla_lang::{CnfGrammar, Symbol, SymbolTable};

/// Brute-force language enumeration: BFS over sentential forms,
/// collecting terminal strings of length ≤ `max_len`. Exponential; only
/// for tiny grammars.
fn enumerate_language(g: &Grammar, max_len: usize, cap: usize) -> Vec<Vec<Symbol>> {
    let mut results: std::collections::BTreeSet<Vec<Symbol>> = Default::default();
    let start = vec![SymbolOrNt::N(g.start())];
    let mut queue: std::collections::VecDeque<Vec<SymbolOrNt>> = [start].into();
    let mut seen: std::collections::HashSet<Vec<SymbolOrNt>> = Default::default();
    let mut steps = 0usize;
    while let Some(form) = queue.pop_front() {
        steps += 1;
        if steps > cap {
            break;
        }
        // Fully terminal?
        if form.iter().all(|s| matches!(s, SymbolOrNt::T(_))) {
            if form.len() <= max_len {
                results.insert(
                    form.iter()
                        .map(|s| match s {
                            SymbolOrNt::T(t) => *t,
                            _ => unreachable!(),
                        })
                        .collect(),
                );
            }
            continue;
        }
        if form.len() > max_len + 2 {
            continue; // cannot shrink below terminal count bound enough
        }
        // Expand the leftmost nonterminal.
        let pos = form
            .iter()
            .position(|s| matches!(s, SymbolOrNt::N(_)))
            .unwrap();
        let SymbolOrNt::N(nt) = form[pos] else {
            unreachable!()
        };
        for rhs in g.productions_of(nt) {
            let mut next = Vec::with_capacity(form.len() + rhs.len());
            next.extend_from_slice(&form[..pos]);
            next.extend_from_slice(rhs);
            next.extend_from_slice(&form[pos + 1..]);
            let terminal_count = next
                .iter()
                .filter(|s| matches!(s, SymbolOrNt::T(_)))
                .count();
            if terminal_count <= max_len && seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    results.into_iter().collect()
}

/// A small pool of structurally-distinct grammar templates; proptest
/// picks one plus a word to cross-check.
fn grammar_pool(table: &mut SymbolTable, which: u8) -> Grammar {
    let texts = [
        "S -> a S b | a b",
        "S -> a S | b",
        "S -> S S | a S b | eps",
        "S -> a V b\nV -> c V | eps",
        "S -> A B\nA -> a A | a\nB -> b B | b",
        "S -> a S a | b S b | c",
        "S -> V V\nV -> a V | b",
    ];
    Grammar::parse(texts[which as usize % texts.len()], table).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CNF accepts exactly the enumerated language up to length 6.
    #[test]
    fn cnf_matches_bruteforce_language(which in 0u8..7) {
        let mut t = SymbolTable::new();
        let g = grammar_pool(&mut t, which);
        let cnf = CnfGrammar::from_grammar(&g);
        let lang = enumerate_language(&g, 6, 50_000);
        let in_lang: std::collections::HashSet<Vec<Symbol>> =
            lang.iter().cloned().collect();
        // Positive cases.
        for w in &lang {
            prop_assert!(cyk_accepts(&cnf, w), "missing word {w:?} (grammar {which})");
        }
        // Negative cases: mutations of language words must agree with
        // membership in the enumerated set (complete up to length 6).
        let syms: Vec<Symbol> = g.terminals();
        for w in lang.iter().take(12) {
            for &s in &syms {
                let mut m = w.clone();
                m.push(s);
                if m.len() <= 6 {
                    prop_assert_eq!(
                        cyk_accepts(&cnf, &m),
                        in_lang.contains(&m),
                        "word {:?} grammar {}", m, which
                    );
                }
            }
        }
    }

    /// Useless-production elimination never changes CYK answers.
    #[test]
    fn elimination_is_semantics_preserving(which in 0u8..7, extra in 0u8..3) {
        let mut t = SymbolTable::new();
        let base = grammar_pool(&mut t, which);
        // Append a useless nonterminal of one of three shapes.
        let mut nt_names: Vec<String> = (0..base.n_nonterminals())
            .map(|i| base.nt_name(NtId(i as u32)).to_string())
            .collect();
        let mut prods = base.productions().to_vec();
        let u = NtId(nt_names.len() as u32);
        nt_names.push("Useless".into());
        match extra {
            0 => prods.push((u, vec![SymbolOrNt::N(u), SymbolOrNt::T(t.intern("zz"))])),
            1 => prods.push((u, vec![SymbolOrNt::T(t.intern("zz"))])),
            _ => {
                prods.push((u, vec![SymbolOrNt::N(u)]));
            }
        }
        let extended = Grammar::new(nt_names, NtId(0), prods);
        let (reduced, _) = eliminate_useless(&extended);
        let cnf_a = CnfGrammar::from_grammar(&extended);
        let cnf_b = CnfGrammar::from_grammar(&reduced);
        for w in enumerate_language(&base, 5, 20_000) {
            prop_assert!(cyk_accepts(&cnf_a, &w));
            prop_assert!(cyk_accepts(&cnf_b, &w));
        }
        prop_assert_eq!(is_empty_language(&extended), is_empty_language(&reduced));
    }
}

#[test]
fn enumeration_oracle_sanity() {
    let mut t = SymbolTable::new();
    let g = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
    let a = t.get("a").unwrap();
    let b = t.get("b").unwrap();
    let lang = enumerate_language(&g, 6, 10_000);
    let expect: std::collections::BTreeSet<Vec<Symbol>> =
        [vec![a, b], vec![a, a, b, b], vec![a, a, a, b, b, b]]
            .into_iter()
            .collect();
    let got: std::collections::BTreeSet<Vec<Symbol>> = lang.into_iter().collect();
    assert_eq!(got, expect);
}
