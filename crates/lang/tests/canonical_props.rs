//! Plan-cache key correctness: `Regex::canonical` / `Grammar::canonical`
//! must be *stable* (any two spellings of the same query — whitespace,
//! sugar, nonterminal naming — yield the same key, so the engine's plan
//! cache hits) and *injective* (structurally distinct queries never
//! alias, so a cache hit can never hand back the wrong plan).

use proptest::prelude::*;

use spbla_lang::dfa::Dfa;
use spbla_lang::glushkov::glushkov;
use spbla_lang::minimize::minimize;
use spbla_lang::{Grammar, Nfa, Regex, Symbol, SymbolTable};

/// A symbol table pre-seeded with a fixed alphabet so generated ASTs can
/// refer to symbols by stable ids.
fn seeded_table() -> SymbolTable {
    let mut t = SymbolTable::new();
    for name in ["a", "b", "c", "d", "e_", "f"] {
        t.intern(name);
    }
    t
}

/// Deterministic random regex AST from a seed (xorshift-driven): the
/// proptest shim only generates scalars, so structure is derived here.
fn random_regex(seed: u64, depth: u32) -> Regex {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    fn gen(next: &mut impl FnMut() -> u64, depth: u32) -> Regex {
        let choice = if depth == 0 { next() % 3 } else { next() % 6 };
        match choice {
            0 | 1 => Regex::Sym(Symbol((next() % 6) as u32)),
            2 => {
                if next().is_multiple_of(2) {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            3 => gen(next, depth - 1).concat(gen(next, depth - 1)),
            4 => gen(next, depth - 1).alt(gen(next, depth - 1)),
            _ => gen(next, depth - 1).star(),
        }
    }
    gen(&mut next, depth)
}

/// Re-spell `text` with mutated whitespace: every single space becomes
/// `pad` spaces, plus leading and trailing blanks.
fn respace(text: &str, pad: usize) -> String {
    let body = text.split(' ').collect::<Vec<_>>().join(&" ".repeat(pad));
    format!("  {body}\t ")
}

fn minimized(r: &Regex) -> Nfa {
    minimize(&Dfa::from_nfa(&glushkov(r)))
}

fn nfa_eq(a: &Nfa, b: &Nfa) -> bool {
    a.n_states() == b.n_states()
        && a.start_states() == b.start_states()
        && a.final_states() == b.final_states()
        && a.transitions() == b.transitions()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stability: printing a regex and reparsing it — under any
    /// whitespace mutation — lands on the same canonical key, and the
    /// planner pipeline (Glushkov → subset → minimize) built from the
    /// reparse is identical state-for-state. This is exactly the
    /// engine's plan-cache hit path.
    #[test]
    fn regex_canonical_stable_modulo_spelling(seed in 0u64..1_000_000, pad in 1usize..4) {
        let r = random_regex(seed, 4);
        let table = seeded_table();
        let printed = r.display_with(&table);
        // `display_with` uses '∅' for Empty which the parser does not
        // accept; restrict the roundtrip to parseable prints.
        if printed.contains('∅') {
            return Ok(());
        }
        let mut t2 = seeded_table();
        let reparsed = Regex::parse(&respace(&printed, pad), &mut t2).unwrap();
        prop_assert_eq!(r.canonical(&table), reparsed.canonical(&t2));
        prop_assert!(nfa_eq(&minimized(&r), &minimized(&reparsed)));
    }

    /// Injectivity: distinct ASTs never share a key. A collision here
    /// would make the plan cache silently serve the wrong automaton.
    #[test]
    fn regex_canonical_injective(sa in 0u64..1_000_000, sb in 0u64..1_000_000) {
        let a = random_regex(sa, 4);
        let b = random_regex(sb, 4);
        let table = seeded_table();
        if a != b {
            prop_assert_ne!(a.canonical(&table), b.canonical(&table));
        } else {
            prop_assert_eq!(a.canonical(&table), b.canonical(&table));
        }
    }
}

#[test]
fn regex_sugar_normalizes_to_one_key() {
    // Explicit '.', juxtaposition, and the '+' / '?' sugar all desugar
    // to the same AST and therefore the same cache key.
    let spellings = [
        "knows . (likes | knows)*",
        "knows(likes|knows)*",
        "  knows .\t( likes |knows ) *  ",
    ];
    let keys: Vec<String> = spellings
        .iter()
        .map(|s| {
            let mut t = SymbolTable::new();
            t.intern("knows");
            t.intern("likes");
            let r = Regex::parse(s, &mut t).unwrap();
            r.canonical(&t)
        })
        .collect();
    assert!(
        keys.windows(2).all(|w| w[0] == w[1]),
        "keys diverged: {keys:?}"
    );

    // And a genuinely different query gets a different key.
    let mut t = SymbolTable::new();
    t.intern("knows");
    t.intern("likes");
    let other = Regex::parse("knows . likes*", &mut t).unwrap();
    assert_ne!(other.canonical(&t), keys[0]);
}

#[test]
fn grammar_canonical_ignores_naming_and_alt_order() {
    let mut t = SymbolTable::new();
    let g1 = Grammar::parse("S -> a S b | a b", &mut t).unwrap();
    let g2 = Grammar::parse("Expr   ->   a b |  a Expr b", &mut t).unwrap();
    assert_eq!(g1.canonical(&t), g2.canonical(&t));

    // Multi-nonterminal alpha-renaming.
    let g3 = Grammar::parse("S -> a V d\nV -> a V | eps", &mut t).unwrap();
    let g4 = Grammar::parse("Q -> a W d\nW -> eps | a W", &mut t).unwrap();
    assert_eq!(g3.canonical(&t), g4.canonical(&t));
    assert_ne!(g1.canonical(&t), g3.canonical(&t));
}

#[test]
fn grammar_canonical_separates_structures() {
    let mut t = SymbolTable::new();
    let texts = [
        "S -> a S b | a b",
        "S -> a S | b",
        "S -> S S | a S b | eps",
        "S -> a V b\nV -> c V | eps",
        "S -> A B\nA -> a A | a\nB -> b B | b",
        "S -> a S a | b S b | c",
        "S -> V V\nV -> a V | b",
    ];
    let keys: Vec<String> = texts
        .iter()
        .map(|s| Grammar::parse(s, &mut t).unwrap().canonical(&t))
        .collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "{} aliased {}", texts[i], texts[j]);
        }
    }
}

#[test]
fn grammar_canonical_distinguishes_terminal_from_nt_reference() {
    // A terminal that happens to spell like a nonterminal name in the
    // *other* grammar must not alias: `@` is outside the identifier
    // charset, so canonical nonterminal names can never collide with
    // terminals.
    let mut t = SymbolTable::new();
    let g1 = Grammar::parse("S -> V\nV -> a", &mut t).unwrap();
    let g2 = Grammar::parse("S -> V", &mut t).unwrap(); // V is a terminal here
    assert_ne!(g1.canonical(&t), g2.canonical(&t));
}
