//! Property tests over the dataset generators: every generated graph is
//! structurally valid at arbitrary scales/seeds, deterministic given its
//! seed, and survives serialisation.

use proptest::prelude::*;

use spbla_data::alias::{alias_graph, AliasConfig};
use spbla_data::io::{read_triples, write_triples};
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::queries::{generate_queries, TEMPLATES};
use spbla_data::random::two_cycles_graph;
use spbla_data::rdf;
use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

fn check_valid(g: &LabeledGraph) {
    let n = g.n_vertices();
    for label in g.labels() {
        for &(u, v) in g.edges_of(label) {
            assert!(u < n && v < n, "edge ({u},{v}) out of bounds {n}");
        }
    }
    // Per-label counts sum to the edge total.
    let sum: usize = g.labels().iter().map(|&l| g.label_count(l)).sum();
    assert_eq!(sum, g.n_edges());
    // Adjacency builds (validates CSR invariants in debug).
    let adj = g.adjacency_csr();
    assert!(adj.validate().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rdf_generators_valid_and_deterministic(
        seed in 0u64..1000,
        scale_m in 1u32..8,
    ) {
        let scale = scale_m as f64 * 0.0004;
        let mut t = SymbolTable::new();
        for g in [
            rdf::taxonomy_like(scale, &mut t, seed),
            rdf::go_like(scale, &mut t, seed),
            rdf::go_hierarchy_like(scale, &mut t, seed),
            rdf::eclass_like(scale, &mut t, seed),
            rdf::enzyme_like(scale, &mut t, seed),
            rdf::geospecies_like(scale, &mut t, seed),
            rdf::uniprotkb_like(scale * 0.3, &mut t, seed),
            rdf::dbpedia_like(scale * 0.3, &mut t, seed),
        ] {
            check_valid(&g);
        }
        // Determinism.
        let mut t2 = SymbolTable::new();
        let a = rdf::eclass_like(scale, &mut t2, seed);
        let mut t3 = SymbolTable::new();
        let b = rdf::eclass_like(scale, &mut t3, seed);
        prop_assert_eq!(a.adjacency_csr(), b.adjacency_csr());
    }

    #[test]
    fn lubm_and_alias_valid(seed in 0u64..1000, unis in 1usize..4) {
        let mut t = SymbolTable::new();
        let g = lubm_like(unis, &LubmConfig::default(), &mut t, seed);
        check_valid(&g);
        let cfg = AliasConfig {
            units: unis + 1,
            vars_per_unit: 40,
            ..AliasConfig::default()
        };
        let a = alias_graph(&cfg, &mut t, seed);
        check_valid(&a);
        // Inverses double edges and stay valid.
        let ai = a.with_inverses(&mut t);
        check_valid(&ai);
        prop_assert_eq!(ai.n_edges(), 2 * a.n_edges());
    }

    #[test]
    fn queries_generate_for_any_seed(seed in 0u64..10_000) {
        let mut t = SymbolTable::new();
        let g = lubm_like(1, &LubmConfig::default(), &mut t, 1);
        let qs = generate_queries(&g, &mut t, 5, 2, seed);
        prop_assert_eq!(qs.len(), TEMPLATES.len() * 2);
        for (name, regex) in &qs {
            prop_assert!(!name.is_empty());
            prop_assert!(regex.positions() >= 1);
        }
    }

    #[test]
    fn io_roundtrip_arbitrary_graphs(
        edges in proptest::collection::vec((0u32..30, 0u8..4, 0u32..30), 0..80),
    ) {
        let mut t = SymbolTable::new();
        let labels: Vec<_> = ["alpha", "beta", "gamma", "delta"]
            .iter()
            .map(|l| t.intern(l))
            .collect();
        let g = LabeledGraph::from_triples(
            30,
            edges.iter().map(|&(u, l, v)| (u, labels[l as usize], v)),
        );
        let mut buf = Vec::new();
        write_triples(&g, &t, &mut buf).unwrap();
        let mut t2 = SymbolTable::new();
        let g2 = read_triples(&buf[..], &mut t2).unwrap();
        prop_assert_eq!(g2.n_vertices(), g.n_vertices());
        prop_assert_eq!(g2.adjacency_csr(), g.adjacency_csr());
    }

    #[test]
    fn two_cycles_always_share_origin(a_len in 1u32..20, b_len in 1u32..20) {
        let mut t = SymbolTable::new();
        let g = two_cycles_graph(a_len, b_len, &mut t);
        check_valid(&g);
        prop_assert_eq!(g.n_vertices(), a_len + b_len + 1);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        prop_assert_eq!(g.label_count(a), a_len as usize + 1);
        prop_assert_eq!(g.label_count(b), b_len as usize + 1);
    }
}
