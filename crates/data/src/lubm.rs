//! LUBM-like university graphs (Table I's `LUBM1k … LUBM2.3M` family).
//!
//! The Lehigh University Benchmark generates universities populated with
//! departments, faculty, students, courses and publications, linked by a
//! fixed OWL schema. This generator reproduces the schema's relation mix
//! and the benchmark's linear scaling: vertex and edge counts grow
//! proportionally to the university count with the E/V ≈ 4 ratio of
//! Table I, and the relation frequencies follow the original generator's
//! proportions (`type`, `memberOf`, `takesCourse` dominating).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

/// Knobs per university; defaults mirror LUBM's published distributions
/// (scaled down ~10× so benches stay laptop-sized at high university
/// counts — the *shape*, not the absolute size, is what experiments
/// need).
#[derive(Debug, Clone)]
pub struct LubmConfig {
    /// Departments per university.
    pub departments: usize,
    /// Faculty per department.
    pub faculty: usize,
    /// Students per department.
    pub students: usize,
    /// Courses per department.
    pub courses: usize,
    /// Publications per faculty member.
    pub publications: usize,
}

impl Default for LubmConfig {
    fn default() -> Self {
        LubmConfig {
            departments: 3,
            faculty: 5,
            students: 40,
            courses: 6,
            publications: 2,
        }
    }
}

/// Generate a LUBM-like graph over `universities` universities.
pub fn lubm_like(
    universities: usize,
    config: &LubmConfig,
    table: &mut SymbolTable,
    seed: u64,
) -> LabeledGraph {
    let rdf_type = table.intern("type");
    let sub_org = table.intern("subOrganizationOf");
    let member_of = table.intern("memberOf");
    let takes_course = table.intern("takesCourse");
    let teacher_of = table.intern("teacherOf");
    let advisor = table.intern("advisor");
    let works_for = table.intern("worksFor");
    let pub_author = table.intern("publicationAuthor");
    let degree_from = table.intern("undergraduateDegreeFrom");
    let head_of = table.intern("headOf");

    let mut rng = StdRng::seed_from_u64(seed);

    // Pre-compute vertex budget.
    let per_dept = 1
        + config.faculty
        + config.students
        + config.courses
        + config.faculty * config.publications;
    // Class vertices (types targets): a fixed tiny ontology layer.
    const N_CLASSES: u32 = 16;
    let n =
        N_CLASSES as u64 + universities as u64 * (1 + config.departments as u64 * per_dept as u64);
    let n = u32::try_from(n).expect("LUBM scale too large for u32 vertices");

    let mut g = LabeledGraph::new(n);
    let mut next: u32 = N_CLASSES;
    let alloc = |k: usize, next: &mut u32| -> std::ops::Range<u32> {
        let start = *next;
        *next += k as u32;
        start..*next
    };
    let class_of = |kind: u32| kind % N_CLASSES;

    let mut all_universities: Vec<u32> = Vec::with_capacity(universities);
    for _u in 0..universities {
        let univ = alloc(1, &mut next).start;
        all_universities.push(univ);
        g.add_edge(univ, rdf_type, class_of(0));
        for _d in 0..config.departments {
            let dept = alloc(1, &mut next).start;
            g.add_edge(dept, rdf_type, class_of(1));
            g.add_edge(dept, sub_org, univ);

            let faculty = alloc(config.faculty, &mut next);
            let students = alloc(config.students, &mut next);
            let courses = alloc(config.courses, &mut next);
            let pubs = alloc(config.faculty * config.publications, &mut next);

            for (fi, f) in faculty.clone().enumerate() {
                g.add_edge(f, rdf_type, class_of(2 + (fi as u32 % 3)));
                g.add_edge(f, works_for, dept);
                if fi == 0 {
                    g.add_edge(f, head_of, dept);
                }
                // Teaching load.
                for _ in 0..2 {
                    let c = courses.start + rng.gen_range(0..config.courses) as u32;
                    g.add_edge(f, teacher_of, c);
                }
                // Degree from some other university (back-references make
                // the star queries interesting across components).
                if let Some(&other) = all_universities.get(rng.gen_range(0..all_universities.len()))
                {
                    g.add_edge(f, degree_from, other);
                }
            }
            for c in courses.clone() {
                g.add_edge(c, rdf_type, class_of(5));
            }
            for s in students.clone() {
                // Students carry two type assertions (Student plus the
                // graduate/undergraduate subclass), as in real LUBM —
                // this is what makes `type` the most frequent relation.
                g.add_edge(s, rdf_type, class_of(6 + (s % 2)));
                g.add_edge(s, rdf_type, class_of(9));
                g.add_edge(s, member_of, dept);
                let n_courses = 1 + rng.gen_range(0..3);
                for _ in 0..n_courses {
                    let c = courses.start + rng.gen_range(0..config.courses) as u32;
                    g.add_edge(s, takes_course, c);
                }
                if rng.gen_bool(0.3) {
                    let f = faculty.start + rng.gen_range(0..config.faculty) as u32;
                    g.add_edge(s, advisor, f);
                }
            }
            for (pi, p) in pubs.clone().enumerate() {
                g.add_edge(p, rdf_type, class_of(8));
                let author = faculty.start + (pi / config.publications) as u32;
                g.add_edge(p, pub_author, author);
            }
        }
    }
    debug_assert_eq!(next, n);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_linearly() {
        let mut t = SymbolTable::new();
        let g1 = lubm_like(2, &LubmConfig::default(), &mut t, 1);
        let g2 = lubm_like(4, &LubmConfig::default(), &mut t, 1);
        assert!(g2.n_vertices() > g1.n_vertices());
        let ratio = g2.n_edges() as f64 / g1.n_edges() as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn edge_vertex_ratio_matches_table_one() {
        let mut t = SymbolTable::new();
        let g = lubm_like(10, &LubmConfig::default(), &mut t, 2);
        let r = g.n_edges() as f64 / g.n_vertices() as f64;
        // Table I: LUBM has E/V ≈ 4.0 (484 646 / 120 926 ≈ 4.01).
        assert!((2.5..5.5).contains(&r), "E/V ratio {r}");
    }

    #[test]
    fn type_is_most_frequent_relation() {
        let mut t = SymbolTable::new();
        let g = lubm_like(5, &LubmConfig::default(), &mut t, 3);
        let top = g.labels_by_frequency()[0].0;
        assert_eq!(t.name(top), "type");
    }

    #[test]
    fn deterministic() {
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        let a = lubm_like(3, &LubmConfig::default(), &mut t1, 9);
        let b = lubm_like(3, &LubmConfig::default(), &mut t2, 9);
        assert_eq!(a.n_edges(), b.n_edges());
        assert_eq!(a.adjacency_csr(), b.adjacency_csr());
    }
}
