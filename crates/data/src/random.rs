//! Random matrix and graph generators for microbenchmarks and property
//! tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spbla_graph::LabeledGraph;
use spbla_lang::{Symbol, SymbolTable};

/// Uniformly random Boolean matrix coordinates: `nnz` samples (with
/// replacement; duplicates collapse on build) in an `n × n` space.
pub fn random_pairs(n: u32, nnz: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..nnz)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// Random matrix with a fixed expected row degree (uniform column
/// targets) — the standard SpGEMM benchmark input.
pub fn uniform_row_degree(n: u32, degree: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n as usize * degree);
    for i in 0..n {
        for _ in 0..degree {
            out.push((i, rng.gen_range(0..n)));
        }
    }
    out
}

/// Power-law (preferential-attachment flavoured) coordinates: column
/// popularity follows a Zipf-like distribution — models the skewed
/// degree distributions of real RDF graphs.
pub fn power_law_pairs(n: u32, nnz: usize, alpha: f64, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Inverse-CDF sampling of a truncated zeta distribution.
    let sample_zipf = |rng: &mut StdRng| -> u32 {
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        let x = (1.0 - u).powf(-1.0 / (alpha - 1.0));
        ((x - 1.0) as u64).min(n as u64 - 1) as u32
    };
    (0..nnz)
        .map(|_| (rng.gen_range(0..n), sample_zipf(&mut rng)))
        .collect()
}

/// A random edge-labeled graph: `nnz` edges spread over `labels`
/// according to a geometric-ish frequency split (first labels are the
/// most frequent, like real RDF predicates).
pub fn random_labeled_graph(n: u32, nnz: usize, labels: &[Symbol], seed: u64) -> LabeledGraph {
    assert!(!labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    for _ in 0..nnz {
        // Geometric label pick: label i with prob ~ 2^-i (clamped).
        let mut li = 0usize;
        while li + 1 < labels.len() && rng.gen_bool(0.5) {
            li += 1;
        }
        g.add_edge(rng.gen_range(0..n), labels[li], rng.gen_range(0..n));
    }
    g
}

/// The classic CFPQ worst case: an `a`-labeled cycle of length `a_len`
/// and a `b`-labeled cycle of length `b_len` sharing vertex 0. With the
/// grammar `S → a S b | a b`, the answer set depends on
/// `gcd`-arithmetic over the two cycle lengths and the fixpoint needs
/// many iterations — the stress input of the CFPQ literature.
pub fn two_cycles_graph(a_len: u32, b_len: u32, table: &mut SymbolTable) -> LabeledGraph {
    assert!(a_len >= 1 && b_len >= 1);
    let a = table.intern("a");
    let b = table.intern("b");
    let n = a_len + b_len + 1;
    let mut g = LabeledGraph::new(n);
    // a-cycle over vertices {0, 1, …, a_len}.
    for i in 0..=a_len {
        g.add_edge(i, a, if i == a_len { 0 } else { i + 1 });
    }
    // b-cycle over vertices {0, a_len+1, …, a_len+b_len}.
    let base = a_len;
    for i in 0..=b_len {
        let from = if i == 0 { 0 } else { base + i };
        let to = if i == b_len { 0 } else { base + i + 1 };
        g.add_edge(from, b, to);
    }
    g
}

/// Convenience: make `k` labels `l0, l1, …` in a fresh/shared table.
pub fn make_labels(table: &mut SymbolTable, k: usize) -> Vec<Symbol> {
    (0..k).map(|i| table.intern(&format!("l{i}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(random_pairs(100, 50, 7), random_pairs(100, 50, 7));
        assert_ne!(random_pairs(100, 50, 7), random_pairs(100, 50, 8));
    }

    #[test]
    fn uniform_degree_has_exact_row_counts() {
        let pairs = uniform_row_degree(10, 3, 1);
        assert_eq!(pairs.len(), 30);
        for i in 0..10u32 {
            assert_eq!(pairs.iter().filter(|&&(r, _)| r == i).count(), 3);
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let n = 1000;
        let pairs = power_law_pairs(n, 20_000, 2.5, 3);
        let mut counts = vec![0usize; n as usize];
        for &(_, c) in &pairs {
            counts[c as usize] += 1;
        }
        // Head columns should dominate tail columns.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..510].iter().sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn two_cycles_shape() {
        let mut t = SymbolTable::new();
        let g = two_cycles_graph(2, 3, &mut t);
        assert_eq!(g.n_vertices(), 6);
        let a = t.get("a").unwrap();
        let b = t.get("b").unwrap();
        // Cycle lengths: a-cycle has a_len+1 edges, b-cycle b_len+1.
        assert_eq!(g.label_count(a), 3);
        assert_eq!(g.label_count(b), 4);
        // Both cycles pass through vertex 0.
        assert!(g.edges_of(a).iter().any(|&(u, _)| u == 0));
        assert!(g.edges_of(b).iter().any(|&(u, _)| u == 0));
    }

    #[test]
    fn labeled_graph_frequencies_decrease() {
        let mut t = SymbolTable::new();
        let labels = make_labels(&mut t, 4);
        let g = random_labeled_graph(100, 10_000, &labels, 5);
        assert_eq!(g.n_edges(), 10_000);
        let freq = g.labels_by_frequency();
        assert_eq!(freq[0].0, labels[0]);
    }
}
