//! The 28 RPQ query templates of Table II, and the query generator
//! ("10 queries per template per graph, instantiated with the most
//! frequent relations").

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

use spbla_graph::LabeledGraph;
use spbla_lang::{Regex, Symbol, SymbolTable};

/// A Table II template: name, arity (distinct symbols), and the pattern
/// with `{0}, {1}, …` placeholders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTemplate {
    /// Template name as printed in the paper (e.g. `Q4^3`).
    pub name: &'static str,
    /// Number of distinct symbols the template takes.
    pub arity: usize,
    /// Pattern in the `spbla-lang` regex syntax with placeholders.
    pub pattern: &'static str,
}

/// All templates of Table II, in the paper's order.
pub const TEMPLATES: [QueryTemplate; 28] = [
    QueryTemplate {
        name: "Q1",
        arity: 1,
        pattern: "{0}*",
    },
    QueryTemplate {
        name: "Q2",
        arity: 2,
        pattern: "{0} . {1}*",
    },
    QueryTemplate {
        name: "Q3",
        arity: 3,
        pattern: "{0} . {1}* . {2}*",
    },
    QueryTemplate {
        name: "Q4^2",
        arity: 2,
        pattern: "({0} | {1})*",
    },
    QueryTemplate {
        name: "Q4^3",
        arity: 3,
        pattern: "({0} | {1} | {2})*",
    },
    QueryTemplate {
        name: "Q4^4",
        arity: 4,
        pattern: "({0} | {1} | {2} | {3})*",
    },
    QueryTemplate {
        name: "Q4^5",
        arity: 5,
        pattern: "({0} | {1} | {2} | {3} | {4})*",
    },
    QueryTemplate {
        name: "Q5",
        arity: 3,
        pattern: "{0} . {1}* . {2}",
    },
    QueryTemplate {
        name: "Q6",
        arity: 2,
        pattern: "{0}* . {1}*",
    },
    QueryTemplate {
        name: "Q7",
        arity: 3,
        pattern: "{0} . {1} . {2}*",
    },
    QueryTemplate {
        name: "Q8",
        arity: 2,
        pattern: "{0}? . {1}*",
    },
    QueryTemplate {
        name: "Q9^2",
        arity: 2,
        pattern: "({0} | {1})+",
    },
    QueryTemplate {
        name: "Q9^3",
        arity: 3,
        pattern: "({0} | {1} | {2})+",
    },
    QueryTemplate {
        name: "Q9^4",
        arity: 4,
        pattern: "({0} | {1} | {2} | {3})+",
    },
    QueryTemplate {
        name: "Q9^5",
        arity: 5,
        pattern: "({0} | {1} | {2} | {3} | {4})+",
    },
    QueryTemplate {
        name: "Q10^2",
        arity: 3,
        pattern: "({0} | {1}) . {2}*",
    },
    QueryTemplate {
        name: "Q10^3",
        arity: 4,
        pattern: "({0} | {1} | {2}) . {3}*",
    },
    QueryTemplate {
        name: "Q10^4",
        arity: 5,
        pattern: "({0} | {1} | {2} | {3}) . {4}*",
    },
    QueryTemplate {
        name: "Q10^5",
        arity: 6,
        pattern: "({0} | {1} | {2} | {3} | {4}) . {5}*",
    },
    QueryTemplate {
        name: "Q11^2",
        arity: 2,
        pattern: "{0} . {1}",
    },
    QueryTemplate {
        name: "Q11^3",
        arity: 3,
        pattern: "{0} . {1} . {2}",
    },
    QueryTemplate {
        name: "Q11^4",
        arity: 4,
        pattern: "{0} . {1} . {2} . {3}",
    },
    QueryTemplate {
        name: "Q11^5",
        arity: 5,
        pattern: "{0} . {1} . {2} . {3} . {4}",
    },
    QueryTemplate {
        name: "Q12",
        arity: 4,
        pattern: "({0} . {1})+ | ({2} . {3})+",
    },
    QueryTemplate {
        name: "Q13",
        arity: 5,
        pattern: "({0} . ({1} . {2})*)+ | ({3} . {4})+",
    },
    QueryTemplate {
        name: "Q14",
        arity: 6,
        pattern: "({0} . {1} . ({2} . {3})*)+ . ({4} | {5})*",
    },
    QueryTemplate {
        name: "Q15",
        arity: 4,
        pattern: "({0} | {1})+ . ({2} | {3})+",
    },
    QueryTemplate {
        name: "Q16",
        arity: 5,
        pattern: "{0} . {1} . ({2} | {3} | {4})",
    },
];

/// Template names in paper order.
pub fn template_names() -> Vec<&'static str> {
    TEMPLATES.iter().map(|t| t.name).collect()
}

/// Look up a template by name.
pub fn template(name: &str) -> Option<&'static QueryTemplate> {
    TEMPLATES.iter().find(|t| t.name == name)
}

/// Instantiate a template with concrete label names.
///
/// # Panics
/// If fewer labels than the template's arity are supplied.
pub fn instantiate_template(t: &QueryTemplate, labels: &[&str], table: &mut SymbolTable) -> Regex {
    assert!(
        labels.len() >= t.arity,
        "template {} needs {} labels, got {}",
        t.name,
        t.arity,
        labels.len()
    );
    let mut text = t.pattern.to_string();
    for (i, l) in labels.iter().enumerate().take(t.arity) {
        text = text.replace(&format!("{{{i}}}"), l);
    }
    Regex::parse(&text, table).expect("template instantiation parses")
}

/// The paper's query generator: for each template, `per_template`
/// queries drawing symbols from the graph's `top_k` most frequent
/// relations (deterministic given `seed`).
pub fn generate_queries(
    graph: &LabeledGraph,
    table: &mut SymbolTable,
    top_k: usize,
    per_template: usize,
    seed: u64,
) -> Vec<(String, Regex)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let top: Vec<Symbol> = graph
        .labels_by_frequency()
        .into_iter()
        .take(top_k)
        .map(|(s, _)| s)
        .collect();
    assert!(!top.is_empty(), "graph has no labels");
    let mut out = Vec::new();
    for t in &TEMPLATES {
        for q in 0..per_template {
            // Sample arity symbols (with replacement when the pool is
            // smaller than the arity, shuffled otherwise).
            let names: Vec<String> = if top.len() >= t.arity {
                let mut pool = top.clone();
                pool.shuffle(&mut rng);
                pool[..t.arity]
                    .iter()
                    .map(|&s| table.name(s).to_string())
                    .collect()
            } else {
                (0..t.arity)
                    .map(|_| table.name(top[rng.gen_range(0..top.len())]).to_string())
                    .collect()
            };
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let regex = instantiate_template(t, &refs, table);
            out.push((format!("{}#{q}", t.name), regex));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{make_labels, random_labeled_graph};

    #[test]
    fn all_templates_parse() {
        let mut t = SymbolTable::new();
        let labels = ["a", "b", "c", "d", "e", "f"];
        for tmpl in &TEMPLATES {
            let r = instantiate_template(tmpl, &labels, &mut t);
            assert!(r.positions() >= 1, "template {}", tmpl.name);
        }
        assert_eq!(TEMPLATES.len(), 28);
    }

    #[test]
    fn q14_shape() {
        let mut t = SymbolTable::new();
        let r = instantiate_template(
            template("Q14").unwrap(),
            &["a", "b", "c", "d", "e", "f"],
            &mut t,
        );
        let (a, b) = (t.get("a").unwrap(), t.get("b").unwrap());
        let e = t.get("e").unwrap();
        assert!(r.matches(&[a, b]));
        assert!(r.matches(&[a, b, e]));
        assert!(!r.matches(&[a]));
    }

    #[test]
    fn generator_is_deterministic_and_complete() {
        let mut t = SymbolTable::new();
        let labels = make_labels(&mut t, 6);
        let g = random_labeled_graph(50, 500, &labels, 1);
        let qs1 = generate_queries(&g, &mut t, 5, 10, 42);
        assert_eq!(qs1.len(), 28 * 10);
        let mut t2 = SymbolTable::new();
        let labels2 = make_labels(&mut t2, 6);
        let g2 = random_labeled_graph(50, 500, &labels2, 1);
        let qs2 = generate_queries(&g2, &mut t2, 5, 10, 42);
        assert_eq!(qs1.len(), qs2.len());
        for ((n1, r1), (n2, r2)) in qs1.iter().zip(&qs2) {
            assert_eq!(n1, n2);
            assert_eq!(r1, r2);
        }
    }
}
