//! The four CFPQ queries of the evaluation: the same-generation queries
//! `G1` (Eq. 1) and `G2` (Eq. 2), the `Geo` query (Eq. 3), and the
//! memory-alias query `MA` (Eq. 4, binarised from its EBNF form).

use spbla_lang::{Grammar, SymbolTable};

/// `G1`: `S → sco̅ S sco | type̅ S type | sco̅ sco | type̅ type`.
pub fn grammar_g1(table: &mut SymbolTable) -> Grammar {
    Grammar::parse(
        "S -> subClassOf_r S subClassOf | type_r S type | subClassOf_r subClassOf | type_r type",
        table,
    )
    .expect("G1 parses")
}

/// `G2`: `S → sco̅ S sco | sco`.
pub fn grammar_g2(table: &mut SymbolTable) -> Grammar {
    Grammar::parse("S -> subClassOf_r S subClassOf | subClassOf", table).expect("G2 parses")
}

/// `Geo`: `S → bt S bt̅ | bt bt̅`.
pub fn grammar_geo(table: &mut SymbolTable) -> Grammar {
    Grammar::parse(
        "S -> broaderTransitive S broaderTransitive_r | broaderTransitive broaderTransitive_r",
        table,
    )
    .expect("Geo parses")
}

/// `MA` (Eq. 4): `S → d̅ V d`, `V → ((S?) a̅)* (S?) (a (S?))*`,
/// expanded from EBNF to plain BNF:
///
/// ```text
/// S  → d_r V d
/// V  → Ls M Rs
/// Ls → L Ls | eps          (left loop: ((S?) a_r)*)
/// L  → S a_r | a_r
/// M  → S | eps             (the middle (S?))
/// Rs → R Rs | eps          (right loop: (a (S?))*)
/// R  → a S | a
/// ```
pub fn grammar_ma(table: &mut SymbolTable) -> Grammar {
    Grammar::parse(
        "S -> d_r V d\n\
         V -> Ls M Rs\n\
         Ls -> L Ls | eps\n\
         L -> S a_r | a_r\n\
         M -> S | eps\n\
         Rs -> R Rs | eps\n\
         R -> a S | a",
        table,
    )
    .expect("MA parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::cyk::cyk_accepts;
    use spbla_lang::CnfGrammar;

    #[test]
    fn g1_language_samples() {
        let mut t = SymbolTable::new();
        let g = grammar_g1(&mut t);
        let cnf = CnfGrammar::from_grammar(&g);
        let sco = t.get("subClassOf").unwrap();
        let scor = t.get("subClassOf_r").unwrap();
        let ty = t.get("type").unwrap();
        let tyr = t.get("type_r").unwrap();
        assert!(cyk_accepts(&cnf, &[scor, sco]));
        assert!(cyk_accepts(&cnf, &[tyr, ty]));
        assert!(cyk_accepts(&cnf, &[scor, tyr, ty, sco]));
        assert!(!cyk_accepts(&cnf, &[sco, scor]));
        assert!(!cyk_accepts(&cnf, &[]));
    }

    #[test]
    fn g2_is_nested_sco() {
        let mut t = SymbolTable::new();
        let g = grammar_g2(&mut t);
        let cnf = CnfGrammar::from_grammar(&g);
        let sco = t.get("subClassOf").unwrap();
        let scor = t.get("subClassOf_r").unwrap();
        assert!(cyk_accepts(&cnf, &[sco]));
        assert!(cyk_accepts(&cnf, &[scor, sco, sco]));
        assert!(cyk_accepts(&cnf, &[scor, scor, sco, sco, sco]));
        assert!(!cyk_accepts(&cnf, &[scor]));
    }

    #[test]
    fn ma_language_samples() {
        let mut t = SymbolTable::new();
        let g = grammar_ma(&mut t);
        let cnf = CnfGrammar::from_grammar(&g);
        let d = t.get("d").unwrap();
        let dr = t.get("d_r").unwrap();
        let a = t.get("a").unwrap();
        let ar = t.get("a_r").unwrap();
        // Simplest alias: x and y point to the same location: d_r d.
        assert!(cyk_accepts(&cnf, &[dr, d]));
        // With one assignment on each side.
        assert!(cyk_accepts(&cnf, &[dr, ar, d]));
        assert!(cyk_accepts(&cnf, &[dr, a, d]));
        // Nested alias through a dereference chain.
        assert!(cyk_accepts(&cnf, &[dr, dr, d, ar, d]));
        // Ill-formed.
        assert!(!cyk_accepts(&cnf, &[d, dr]));
        assert!(!cyk_accepts(&cnf, &[dr]));
    }

    #[test]
    fn geo_is_bt_palindrome() {
        let mut t = SymbolTable::new();
        let g = grammar_geo(&mut t);
        let cnf = CnfGrammar::from_grammar(&g);
        let bt = t.get("broaderTransitive").unwrap();
        let btr = t.get("broaderTransitive_r").unwrap();
        assert!(cyk_accepts(&cnf, &[bt, btr]));
        assert!(cyk_accepts(&cnf, &[bt, bt, btr, btr]));
        assert!(!cyk_accepts(&cnf, &[btr, bt]));
    }
}
