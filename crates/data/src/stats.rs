//! Graph statistics rows for the Table I / Table III reproductions.

use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

/// One row of a dataset table.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Dataset name.
    pub name: String,
    /// Vertex count.
    pub vertices: u32,
    /// Edge count (all labels, with multiplicity as generated).
    pub edges: usize,
    /// `(label name, edge count)` sorted by descending count.
    pub label_counts: Vec<(String, usize)>,
}

impl GraphStats {
    /// Compute stats for a graph.
    pub fn of(name: &str, graph: &LabeledGraph, table: &SymbolTable) -> GraphStats {
        GraphStats {
            name: name.to_string(),
            vertices: graph.n_vertices(),
            edges: graph.n_edges(),
            label_counts: graph
                .labels_by_frequency()
                .into_iter()
                .map(|(s, c)| (table.name(s).to_string(), c))
                .collect(),
        }
    }

    /// The count of one named label (0 when absent).
    pub fn label(&self, name: &str) -> usize {
        self.label_counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} |V|={:>9} |E|={:>10}",
            self.name, self.vertices, self.edges
        )?;
        for (l, c) in self.label_counts.iter().take(4) {
            write!(f, "  {l}={c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{make_labels, random_labeled_graph};

    #[test]
    fn stats_report_counts() {
        let mut t = SymbolTable::new();
        let labels = make_labels(&mut t, 3);
        let g = random_labeled_graph(20, 100, &labels, 1);
        let s = GraphStats::of("toy", &g, &t);
        assert_eq!(s.vertices, 20);
        assert_eq!(s.edges, 100);
        assert_eq!(s.label_counts.iter().map(|(_, c)| c).sum::<usize>(), 100);
        assert_eq!(s.label("missing"), 0);
        assert!(format!("{s}").contains("toy"));
    }
}
