//! Synthetic equivalents of the real-world RDF graphs of Tables I and
//! III: hierarchy-heavy ontologies (`taxonomy`, `go-hierarchy`, `go`,
//! `eclass`, `enzyme`, `pathways`), the `geospecies` taxonomy, the
//! Uniprot trio, and the DBpedia `mappingbased_properties` dump.
//!
//! Every generator takes a `scale ∈ (0, 1]` factor multiplying the
//! published vertex count, and reproduces the per-label proportions of
//! the corresponding table row (e.g. go-hierarchy is *pure* `subClassOf`
//! with E ≈ 22·V; taxonomy has ~14% `subClassOf`, ~17% `type`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spbla_graph::LabeledGraph;
use spbla_lang::{Symbol, SymbolTable};

fn scaled(published: u64, scale: f64) -> u32 {
    ((published as f64 * scale) as u64).max(8) as u32
}

/// A rooted random forest over `members`, each non-root getting one
/// `label` edge to a parent earlier in the order — the `subClassOf` /
/// `broaderTransitive` hierarchy backbone. `branchiness` < 1 skews
/// parents toward recent nodes (deep chains); > 1 toward old nodes
/// (shallow, wide).
fn hierarchy(
    g: &mut LabeledGraph,
    members: std::ops::Range<u32>,
    label: Symbol,
    branchiness: f64,
    rng: &mut StdRng,
) {
    let start = members.start;
    for v in members.clone().skip(1) {
        let span = (v - start) as f64;
        let r: f64 = rng.gen_range(0.0f64..1.0);
        let parent = start + (span * r.powf(branchiness)) as u32;
        g.add_edge(v, label, parent.min(v - 1));
    }
}

/// Random extra edges with a given label, with RDF-like sink structure:
/// sources are entities (the first 70% of vertices), and most targets
/// (85%) land in the sink block (the last 30% — literals, classes,
/// external references, which carry no out-edges in real dumps). This
/// keeps reachability shallow, as in the originals — uniform random
/// targets would create a giant strongly-connected component whose
/// transitive closure is quadratic, a structure none of the paper's
/// datasets has.
fn sprinkle(
    g: &mut LabeledGraph,
    n: u32,
    count: usize,
    label: Symbol,
    sink_frac: f64,
    rng: &mut StdRng,
) {
    let entity_end = ((n as u64 * 7) / 10).max(1) as u32;
    for _ in 0..count {
        let src = rng.gen_range(0..entity_end);
        let dst = if rng.gen_bool(sink_frac) && entity_end < n {
            rng.gen_range(entity_end..n)
        } else {
            rng.gen_range(0..entity_end)
        };
        g.add_edge(src, label, dst);
    }
}

/// `taxonomy`-like (Table I/III: 5.7M V, 14.9M E, 2.1M sco, 2.5M type).
pub fn taxonomy_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(5_728_398, scale);
    let sco = table.intern("subClassOf");
    let ty = table.intern("type");
    let rank = table.intern("rank");
    let name = table.intern("scientificName");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let classes = (n as f64 * 0.37) as u32; // taxa in the sco hierarchy
    hierarchy(&mut g, 0..classes, sco, 0.35, &mut rng);
    let entity_end = ((n as u64 * 7) / 10).max(classes as u64 + 1) as u32;
    for v in classes..n {
        // Typed subjects are entities; literal/sink vertices (the last
        // 30%) carry no out-edges, as in the real dumps — without this
        // the rank/type relations close a supercritical loop whose
        // closure is quadratic.
        let src = if v < entity_end {
            v
        } else {
            rng.gen_range(classes..entity_end)
        };
        g.add_edge(src, ty, rng.gen_range(0..classes.max(1)));
    }
    sprinkle(&mut g, n, (n as f64 * 0.8) as usize, rank, 1.0, &mut rng);
    sprinkle(&mut g, n, (n as f64 * 0.4) as usize, name, 1.0, &mut rng);
    g
}

/// `go-hierarchy`-like (45k V, 980k E, *all* subClassOf, very dense DAG).
pub fn go_hierarchy_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(45_007, scale);
    let sco = table.intern("subClassOf");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    // Dense DAG: each node gets ~22 parents among earlier nodes.
    let parents_per_node = 22usize;
    for v in 1..n {
        for _ in 0..parents_per_node.min(v as usize) {
            let p = rng.gen_range(0..v);
            g.add_edge(v, sco, p);
        }
    }
    g
}

/// `go`-like (272k V, 534k E, 90k sco, 58k type plus misc relations).
pub fn go_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(272_770, scale);
    let sco = table.intern("subClassOf");
    let ty = table.intern("type");
    let rel = table.intern("relatedTo");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let classes = (n as f64 * 0.33) as u32;
    hierarchy(&mut g, 0..classes, sco, 0.5, &mut rng);
    // `type` sources are instances, never classes — in real dumps the
    // class layer has only `subClassOf` out-edges, which keeps star-query
    // closures shallow instead of quadratic.
    for _ in 0..(n as f64 * 0.21) as usize {
        {
            let entity_end = ((n as u64 * 7) / 10).max(classes as u64 + 1) as u32;
            g.add_edge(
                rng.gen_range(classes..entity_end),
                ty,
                rng.gen_range(0..classes.max(1)),
            );
        }
    }
    sprinkle(&mut g, n, (n as f64 * 1.4) as usize, rel, 0.95, &mut rng);
    g
}

/// `eclass_514en`-like (239k V, 523k E, 90k sco, 72k type).
pub fn eclass_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(239_111, scale);
    let sco = table.intern("subClassOf");
    let ty = table.intern("type");
    let misc = table.intern("property");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let classes = (n as f64 * 0.38) as u32;
    hierarchy(&mut g, 0..classes, sco, 0.45, &mut rng);
    for _ in 0..(n as f64 * 0.30) as usize {
        {
            let entity_end = ((n as u64 * 7) / 10).max(classes as u64 + 1) as u32;
            g.add_edge(
                rng.gen_range(classes..entity_end),
                ty,
                rng.gen_range(0..classes.max(1)),
            );
        }
    }
    sprinkle(&mut g, n, (n as f64 * 1.5) as usize, misc, 1.0, &mut rng);
    g
}

/// `enzyme`-like (48k V, 109k E, 8k sco, 14k type).
pub fn enzyme_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(48_815, scale);
    let sco = table.intern("subClassOf");
    let ty = table.intern("type");
    let misc = table.intern("cofactor");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let classes = (n as f64 * 0.17) as u32;
    hierarchy(&mut g, 0..classes, sco, 0.5, &mut rng);
    for _ in 0..(n as f64 * 0.31) as usize {
        {
            let entity_end = ((n as u64 * 7) / 10).max(classes as u64 + 1) as u32;
            g.add_edge(
                rng.gen_range(classes..entity_end),
                ty,
                rng.gen_range(0..classes.max(1)),
            );
        }
    }
    sprinkle(&mut g, n, (n as f64 * 1.4) as usize, misc, 1.0, &mut rng);
    g
}

/// `pathways`-like (small: 6.2k V, 12k E in CFPQ_Data).
pub fn pathways_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(6_238, scale.max(0.05));
    let sco = table.intern("subClassOf");
    let ty = table.intern("type");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let classes = (n as f64 * 0.3) as u32;
    hierarchy(&mut g, 0..classes, sco, 0.5, &mut rng);
    for _ in 0..n as usize {
        {
            let entity_end = ((n as u64 * 7) / 10).max(classes as u64 + 1) as u32;
            g.add_edge(
                rng.gen_range(classes..entity_end),
                ty,
                rng.gen_range(0..classes.max(1)),
            );
        }
    }
    g
}

/// `geospecies`-like (450k V, 2.2M E; 20.8k broaderTransitive, 89k type,
/// zero subClassOf — which is why G2 answers nothing on it).
pub fn geospecies_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(450_609, scale);
    let bt = table.intern("broaderTransitive");
    let ty = table.intern("type");
    let near = table.intern("isExpectedNear");
    let misc = table.intern("hasName");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let taxa = (n as f64 * 0.046) as u32; // ~20.8k/450k
    hierarchy(&mut g, 0..taxa, bt, 0.3, &mut rng);
    for _ in 0..(n as f64 * 0.197) as usize {
        {
            let entity_end = ((n as u64 * 7) / 10).max(taxa as u64 + 1) as u32;
            g.add_edge(
                rng.gen_range(taxa..entity_end),
                ty,
                rng.gen_range(0..taxa.max(1)),
            );
        }
    }
    sprinkle(&mut g, n, (n as f64 * 2.0) as usize, near, 0.9, &mut rng);
    sprinkle(&mut g, n, (n as f64 * 2.6) as usize, misc, 1.0, &mut rng);
    g
}

/// `uniprotkb`-like (6.4M V, 24.5M E — flat, link-heavy).
pub fn uniprotkb_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(6_442_630, scale);
    let labels: Vec<Symbol> = ["annotation", "sequence", "organism", "citation", "type"]
        .iter()
        .map(|l| table.intern(l))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let per_label = [1.4, 1.0, 0.6, 0.5, 0.3];
    for (l, &f) in labels.iter().zip(&per_label) {
        sprinkle(&mut g, n, (n as f64 * f) as usize, *l, 0.9, &mut rng);
    }
    g
}

/// `proteomes`-like (4.8M V, 12.4M E).
pub fn proteomes_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(4_834_262, scale);
    let labels: Vec<Symbol> = ["proteome", "organism", "component", "type"]
        .iter()
        .map(|l| table.intern(l))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let per_label = [1.0, 0.7, 0.5, 0.36];
    for (l, &f) in labels.iter().zip(&per_label) {
        sprinkle(&mut g, n, (n as f64 * f) as usize, *l, 0.9, &mut rng);
    }
    g
}

/// `mappingbased_properties`-like DBpedia dump (8.3M V, 25.3M E, many
/// predicates with a power-law frequency split).
pub fn dbpedia_like(scale: f64, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let n = scaled(8_332_233, scale);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new(n);
    let total_edges = (n as f64 * 3.04) as usize;
    // 24 predicates, frequency halving.
    let labels: Vec<Symbol> = (0..24).map(|i| table.intern(&format!("dbp{i}"))).collect();
    let entity_end = ((n as u64 * 7) / 10).max(1) as u32;
    for _ in 0..total_edges {
        let mut li = 0usize;
        while li + 1 < labels.len() && rng.gen_bool(0.45) {
            li += 1;
        }
        let src = rng.gen_range(0..entity_end);
        let dst = if rng.gen_bool(0.85) && entity_end < n {
            rng.gen_range(entity_end..n)
        } else {
            rng.gen_range(0..entity_end)
        };
        g.add_edge(src, labels[li], dst);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn go_hierarchy_is_pure_subclass() {
        let mut t = SymbolTable::new();
        let g = go_hierarchy_like(0.02, &mut t, 1);
        assert_eq!(g.labels().len(), 1);
        let density = g.n_edges() as f64 / g.n_vertices() as f64;
        assert!(density > 15.0, "density {density}"); // ~22 in the table
    }

    #[test]
    fn geospecies_has_no_subclassof_but_bt() {
        let mut t = SymbolTable::new();
        let g = geospecies_like(0.01, &mut t, 2);
        assert!(t.get("subClassOf").is_none() || g.label_count(t.get("subClassOf").unwrap()) == 0);
        let bt = t.get("broaderTransitive").unwrap();
        assert!(g.label_count(bt) > 0);
    }

    #[test]
    fn taxonomy_proportions() {
        let mut t = SymbolTable::new();
        let g = taxonomy_like(0.005, &mut t, 3);
        let sco = t.get("subClassOf").unwrap();
        let ty = t.get("type").unwrap();
        // Table III: sco ≈ 0.14·E, type ≈ 0.17·E; generator within 2×.
        let e = g.n_edges() as f64;
        let fs = g.label_count(sco) as f64 / e;
        let ft = g.label_count(ty) as f64 / e;
        assert!((0.07..0.28).contains(&fs), "sco fraction {fs}");
        assert!((0.08..0.34).contains(&ft), "type fraction {ft}");
    }

    #[test]
    fn hierarchy_edges_point_to_earlier_nodes() {
        let mut t = SymbolTable::new();
        let g = go_like(0.01, &mut t, 4);
        let sco = t.get("subClassOf").unwrap();
        for &(u, v) in g.edges_of(sco) {
            assert!(v < u, "sco edge {u}→{v} not ancestor-directed");
        }
    }

    #[test]
    fn scale_controls_size() {
        let mut t = SymbolTable::new();
        let small = enzyme_like(0.01, &mut t, 5);
        let large = enzyme_like(0.02, &mut t, 5);
        assert!(large.n_vertices() > small.n_vertices());
    }
}
