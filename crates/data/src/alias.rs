//! Linux-kernel-like memory-alias (points-to) graphs — the `arch`,
//! `crypto`, `drivers`, `fs` rows of Table III.
//!
//! The CFPQ memory-alias reduction (Zheng & Rugina) encodes a program as
//! a graph with *assignment* edges `a` (x = y) and *dereference* edges
//! `d` (from a pointer expression to the location it dereferences). The
//! published graphs have |d| ≈ 3.4·|a| and E ≈ 1.7·|V| counting both
//! directions; the query `MA` then uses `a`, `d` and their inverses.
//!
//! The generator emulates compilation-unit structure: clusters of
//! variables with local assignment chains (SSA-ish), global variables
//! assigned from many units, and address-taken variables dereferenced by
//! several pointers — the features that give the real graphs their
//! long `MA` runtimes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

/// Shape parameters for an alias graph.
#[derive(Debug, Clone)]
pub struct AliasConfig {
    /// Number of compilation-unit clusters.
    pub units: usize,
    /// Variables per cluster.
    pub vars_per_unit: usize,
    /// Fraction of variables that are pointers (get `d` out-edges).
    pub pointer_fraction: f64,
    /// Assignment edges per variable (within the cluster).
    pub assigns_per_var: f64,
    /// Fraction of cross-cluster assignments (globals).
    pub cross_unit_fraction: f64,
}

impl Default for AliasConfig {
    fn default() -> Self {
        AliasConfig {
            units: 40,
            vars_per_unit: 250,
            pointer_fraction: 0.55,
            assigns_per_var: 0.20,
            cross_unit_fraction: 0.03,
        }
    }
}

/// Generate an alias graph. The `a` and `d` labels are interned as
/// `"a"` / `"d"`; apply
/// [`LabeledGraph::with_inverses`] to add the `a_r`/`d_r` edges the `MA`
/// query consumes.
pub fn alias_graph(config: &AliasConfig, table: &mut SymbolTable, seed: u64) -> LabeledGraph {
    let a = table.intern("a");
    let d = table.intern("d");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_vars = config.units * config.vars_per_unit;
    // Each pointer var dereferences to a memory node; memory nodes are a
    // separate vertex block.
    let n_pointers = (n_vars as f64 * config.pointer_fraction) as usize;
    let n_mem = (n_pointers as f64 * 0.8) as usize;
    let n = (n_vars + n_mem) as u32;
    let mut g = LabeledGraph::new(n);

    for unit in 0..config.units {
        let base = (unit * config.vars_per_unit) as u32;
        let local = config.vars_per_unit as u32;
        // Local assignment chains.
        let n_assign = (config.vars_per_unit as f64 * config.assigns_per_var) as usize;
        for _ in 0..n_assign {
            let x = base + rng.gen_range(0..local);
            let y = if rng.gen_bool(config.cross_unit_fraction) {
                rng.gen_range(0..n_vars as u32)
            } else {
                base + rng.gen_range(0..local)
            };
            if x != y {
                g.add_edge(x, a, y);
            }
        }
    }
    // Dereference edges: pointer var → memory node, with address-taken
    // sharing (several pointers hit the same node).
    for p in 0..n_pointers as u32 {
        let mem = n_vars as u32 + (rng.gen_range(0..n_mem.max(1)) as u32);
        g.add_edge(p, d, mem);
    }
    g
}

/// The four published shapes, scaled by `scale` (1.0 ≈ thousands of
/// vertices here; the real graphs are millions — see DESIGN.md).
pub fn kernel_module_like(
    name: &str,
    scale: f64,
    table: &mut SymbolTable,
    seed: u64,
) -> LabeledGraph {
    let base = AliasConfig::default();
    let units = |k: f64| ((base.units as f64 * k * scale) as usize).max(2);
    let cfg = match name {
        "arch" => AliasConfig {
            units: units(1.0),
            ..base
        },
        "crypto" => AliasConfig {
            units: units(1.05),
            ..base
        },
        "drivers" => AliasConfig {
            units: units(1.55),
            vars_per_unit: 300,
            ..base
        },
        "fs" => AliasConfig {
            units: units(1.30),
            vars_per_unit: 280,
            ..base
        },
        other => panic!("unknown kernel module shape: {other}"),
    };
    alias_graph(&cfg, table, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_edges_dominate_a_edges() {
        let mut t = SymbolTable::new();
        let g = alias_graph(&AliasConfig::default(), &mut t, 1);
        let a = t.get("a").unwrap();
        let d = t.get("d").unwrap();
        // Table III: |d| ≈ 3.4 |a|.
        let ratio = g.label_count(d) as f64 / g.label_count(a) as f64;
        assert!((2.0..6.0).contains(&ratio), "d/a ratio {ratio}");
    }

    #[test]
    fn inverses_double_edges() {
        let mut t = SymbolTable::new();
        let g = alias_graph(&AliasConfig::default(), &mut t, 2);
        let gi = g.with_inverses(&mut t);
        assert_eq!(gi.n_edges(), 2 * g.n_edges());
        assert!(t.get("a_r").is_some() && t.get("d_r").is_some());
    }

    #[test]
    fn module_ordering_matches_table() {
        // drivers > fs > crypto ≈ arch in size, as in Table III.
        let mut t = SymbolTable::new();
        let arch = kernel_module_like("arch", 0.5, &mut t, 3);
        let drivers = kernel_module_like("drivers", 0.5, &mut t, 3);
        let fs = kernel_module_like("fs", 0.5, &mut t, 3);
        assert!(drivers.n_vertices() > fs.n_vertices());
        assert!(fs.n_vertices() > arch.n_vertices());
    }

    #[test]
    #[should_panic(expected = "unknown kernel module")]
    fn unknown_module_panics() {
        let mut t = SymbolTable::new();
        kernel_module_like("sound", 1.0, &mut t, 1);
    }
}
