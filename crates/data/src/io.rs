//! Text serialisation of labeled graphs — the interchange format the
//! evaluation pipelines use (one `src label dst` triple per line, like
//! the edge-list exports of CFPQ_Data).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

/// Write `graph` as triple lines. The header line carries the vertex
/// count (`# vertices N`).
pub fn write_triples<W: Write>(
    graph: &LabeledGraph,
    table: &SymbolTable,
    writer: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {}", graph.n_vertices())?;
    for label in graph.labels() {
        let name = table.name(label);
        for &(u, v) in graph.edges_of(label) {
            writeln!(w, "{u} {name} {v}")?;
        }
    }
    w.flush()
}

/// Read a graph written by [`write_triples`] (labels are interned into
/// `table`). Unknown header lines and blank lines are skipped.
pub fn read_triples<R: std::io::Read>(
    reader: R,
    table: &mut SymbolTable,
) -> std::io::Result<LabeledGraph> {
    let mut n: u32 = 0;
    let mut triples: Vec<(u32, spbla_lang::Symbol, u32)> = Vec::new();
    let mut max_vertex: u32 = 0;
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("vertices") {
                n = v.trim().parse().map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad header: {e}"))
                })?;
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(u), Some(l), Some(v)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed triple line: {line}"),
            ));
        };
        let u: u32 = u.parse().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad vertex: {e}"))
        })?;
        let v: u32 = v.parse().map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad vertex: {e}"))
        })?;
        max_vertex = max_vertex.max(u).max(v);
        triples.push((u, table.intern(l), v));
    }
    let n = n.max(max_vertex.saturating_add(1));
    Ok(LabeledGraph::from_triples(n, triples))
}

/// Save to a filesystem path.
pub fn save_graph(
    graph: &LabeledGraph,
    table: &SymbolTable,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    write_triples(graph, table, std::fs::File::create(path)?)
}

/// Load from a filesystem path.
pub fn load_graph(
    path: impl AsRef<Path>,
    table: &mut SymbolTable,
) -> std::io::Result<LabeledGraph> {
    read_triples(std::fs::File::open(path)?, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{make_labels, random_labeled_graph};

    #[test]
    fn roundtrip_through_memory() {
        let mut t = SymbolTable::new();
        let labels = make_labels(&mut t, 3);
        let g = random_labeled_graph(40, 200, &labels, 7);
        let mut buf = Vec::new();
        write_triples(&g, &t, &mut buf).unwrap();
        let mut t2 = SymbolTable::new();
        let g2 = read_triples(&buf[..], &mut t2).unwrap();
        assert_eq!(g2.n_vertices(), g.n_vertices());
        assert_eq!(g2.n_edges(), g.n_edges());
        // Adjacency identical regardless of symbol ids.
        assert_eq!(g2.adjacency_csr(), g.adjacency_csr());
        for (l, name) in t.iter() {
            if g.label_count(l) > 0 {
                let l2 = t2.get(name).expect("label preserved");
                assert_eq!(g2.label_count(l2), g.label_count(l));
            }
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let mut t = SymbolTable::new();
        let a = t.intern("knows");
        let g = LabeledGraph::from_triples(5, [(0, a, 1), (3, a, 4)]);
        let path = std::env::temp_dir().join("spbla_io_test.triples");
        save_graph(&g, &t, &path).unwrap();
        let mut t2 = SymbolTable::new();
        let g2 = load_graph(&path, &mut t2).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g2.n_vertices(), 5);
        assert_eq!(g2.edges_of(t2.get("knows").unwrap()), &[(0, 1), (3, 4)]);
    }

    #[test]
    fn malformed_input_rejected() {
        let mut t = SymbolTable::new();
        assert!(read_triples("0 a".as_bytes(), &mut t).is_err());
        assert!(read_triples("x a 1".as_bytes(), &mut t).is_err());
        // Vertex count inferred when header missing.
        let g = read_triples("7 rel 9".as_bytes(), &mut t).unwrap();
        assert_eq!(g.n_vertices(), 10);
    }
}
