//! # spbla-data — synthetic equivalents of the paper's datasets
//!
//! The evaluation uses RDF dumps (LUBM, Uniprot, DBpedia, geospecies,
//! gene-ontology, eclass, enzyme), and Linux-kernel points-to graphs —
//! none redistributable here. Each generator below reproduces the
//! *shape* that drives the experiments: vertex/edge scale, per-label
//! edge counts (Tables I and III), and the structural features the
//! queries exercise (deep `subClassOf` hierarchies for the
//! same-generation queries, `broaderTransitive` taxonomies for *Geo*,
//! assignment/dereference structure for *MA*). All generators are
//! deterministic given a seed, and every one supports a `scale` knob so
//! benchmarks can run laptop-sized instances of the same shapes.
//!
//! See DESIGN.md ("Hardware substitution") for the substitution table.

pub mod alias;
pub mod grammars;
pub mod io;
pub mod lubm;
pub mod queries;
pub mod random;
pub mod rdf;
pub mod stats;

pub use grammars::{grammar_g1, grammar_g2, grammar_geo, grammar_ma};
pub use lubm::lubm_like;
pub use queries::{instantiate_template, template_names, QueryTemplate};
pub use stats::GraphStats;
