//! E4 (Figure 3) — RPQ index creation on the real-world RDF suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spbla_bench::rpq_rdf_suite;
use spbla_core::Instance;
use spbla_data::queries::generate_queries;
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_lang::SymbolTable;

fn bench_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_real_index");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let suite = rpq_rdf_suite(&mut table, 0.004);
    let inst = Instance::cuda_sim();
    for (name, graph) in &suite {
        // Three generated queries per graph (most-frequent labels).
        let queries = generate_queries(graph, &mut table, 4, 1, 7);
        for (qname, regex) in queries.iter().filter(|(n, _)| {
            n.starts_with("Q2#") || n.starts_with("Q4^2#") || n.starts_with("Q9^2#")
        }) {
            group.bench_with_input(
                BenchmarkId::new(qname.replace(['^', '#'], "_"), name),
                &(),
                |b, ()| {
                    b.iter(|| {
                        RpqIndex::build(graph, regex, &inst, &RpqOptions::default())
                            .unwrap()
                            .index_nnz()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_real);
criterion_main!(benches);
