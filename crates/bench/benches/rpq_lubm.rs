//! E3 (Figure 2) — RPQ index creation on the LUBM ladder, as Criterion
//! benchmarks over representative Table II templates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spbla_bench::lubm_rung;
use spbla_core::Instance;
use spbla_data::queries::{instantiate_template, template};
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_lang::SymbolTable;

fn bench_lubm(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpq_lubm_index");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    // Cheap (Q2, Q11^3) and expensive (Q4^5, Q14) templates, as in the
    // paper's spread.
    let labels = [
        "type",
        "takesCourse",
        "memberOf",
        "subOrganizationOf",
        "teacherOf",
        "worksFor",
    ];
    for &unis in &[2usize, 10] {
        let graph = lubm_rung(unis, &mut table);
        let inst = Instance::cuda_sim();
        for tname in ["Q2", "Q4^5", "Q11^3", "Q14"] {
            let t = template(tname).unwrap();
            let regex = instantiate_template(t, &labels, &mut table);
            group.bench_with_input(
                BenchmarkId::new(tname.replace('^', "_"), format!("u{unis}")),
                &(),
                |b, ()| {
                    b.iter(|| {
                        RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default())
                            .unwrap()
                            .index_nnz()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lubm);
criterion_main!(benches);
