//! E10 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. hash SpGEMM (cuBool/CSR) vs ESC SpGEMM (clBool/COO);
//! 2. merge-path two-pass addition vs a naive sort-based baseline;
//! 3. transitive-closure schedules (squaring vs single-step vs
//!    incremental after a delta);
//! 4. CNF vs RSM grammar encodings inside the CFPQ engines (Tns on the
//!    raw grammar vs Mtx paying the CNF blow-up on a regular query);
//! 5. from-scratch vs incremental closure inside the Tns fixpoint;
//! 6. naive vs masked vs delta-driven fixpoint schedules on the LUBM
//!    fixture (semi-naïve iteration with complemented-mask SpGEMM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spbla_bench::{naive_add_baseline, upload};
use spbla_core::Instance;
use spbla_data::random::{power_law_pairs, uniform_row_degree};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::closure::{
    closure_delta, closure_incremental, closure_masked, closure_single_step, closure_squaring,
};
use spbla_graph::LabeledGraph;
use spbla_lang::{CnfGrammar, Grammar, SymbolTable};

fn ablate_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_spgemm");
    group.sample_size(10);
    for &(n, deg) in &[(2000u32, 8usize), (2000, 32)] {
        let pa = uniform_row_degree(n, deg, 1);
        let pb = uniform_row_degree(n, deg, 2);
        let label = format!("n{n}_d{deg}");
        let cuda = Instance::cuda_sim();
        let (ha, hb) = (upload(&cuda, n, &pa), upload(&cuda, n, &pb));
        group.bench_with_input(BenchmarkId::new("hash_csr", &label), &(), |b, ()| {
            b.iter(|| ha.mxm(&hb).unwrap().nnz())
        });
        let cl = Instance::cl_sim();
        let (ea, eb) = (upload(&cl, n, &pa), upload(&cl, n, &pb));
        group.bench_with_input(BenchmarkId::new("esc_coo", &label), &(), |b, ()| {
            b.iter(|| ea.mxm(&eb).unwrap().nnz())
        });
    }
    group.finish();
}

fn ablate_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_add");
    group.sample_size(10);
    let n = 20_000u32;
    let pa = power_law_pairs(n, 150_000, 2.2, 5);
    let pb = power_law_pairs(n, 150_000, 2.2, 6);
    let cuda = Instance::cuda_sim();
    let (ba, bb) = (upload(&cuda, n, &pa), upload(&cuda, n, &pb));
    group.bench_function("merge_path_two_pass", |b| {
        b.iter(|| ba.ewise_add(&bb).unwrap().nnz())
    });
    group.bench_function("naive_sort_dedup", |b| {
        b.iter(|| naive_add_baseline(&pa, &pb).len())
    });
    group.finish();
}

fn ablate_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_closure");
    group.sample_size(10);
    // Layered DAG: long diameter stresses single-step; squaring wins.
    let n = 400u32;
    let mut pairs: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    pairs.extend((0..n - 10).step_by(7).map(|i| (i, i + 10)));
    let inst = Instance::cuda_sim();
    let a = upload(&inst, n, &pairs);
    group.bench_function("squaring", |b| {
        b.iter(|| closure_squaring(&a).unwrap().nnz())
    });
    group.bench_function("delta_compmask", |b| {
        b.iter(|| closure_delta(&a).unwrap().nnz())
    });
    // Single-step has O(diameter) rounds — measured on a shorter chain
    // to keep the bench bounded.
    let n2 = 200u32;
    let chain: Vec<(u32, u32)> = (0..n2 - 1).map(|i| (i, i + 1)).collect();
    let a2 = upload(&inst, n2, &chain);
    group.bench_function("single_step_chain200", |b| {
        b.iter(|| closure_single_step(&a2).unwrap().nnz())
    });
    group.bench_function("squaring_chain200", |b| {
        b.iter(|| closure_squaring(&a2).unwrap().nnz())
    });
    // Incremental: closure known, one new bridge edge.
    let t = closure_squaring(&a2).unwrap();
    let delta = upload(&inst, n2, &[(n2 - 1, 0)]);
    group.bench_function("incremental_one_edge", |b| {
        b.iter(|| closure_incremental(&t, &delta).unwrap().nnz())
    });
    group.bench_function("from_scratch_after_edge", |b| {
        let merged = a2.ewise_add(&delta).unwrap();
        b.iter(|| closure_squaring(&merged).unwrap().nnz())
    });
    group.finish();
}

fn regular_query_grammar(table: &mut SymbolTable) -> Grammar {
    // A regular (chain) query as a CFG — where CNF pays most.
    Grammar::parse("S -> a b c d e | a S", table).expect("parses")
}

fn ablate_grammar_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_grammar_encoding");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let grammar = regular_query_grammar(&mut table);
    let cnf = CnfGrammar::from_grammar(&grammar);
    let labels: Vec<_> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(|l| table.get(l).unwrap())
        .collect();
    let g = spbla_data::random::random_labeled_graph(500, 4000, &labels, 9);
    let inst = Instance::cuda_sim();
    group.bench_function("tns_rsm_encoding", |b| {
        b.iter(|| {
            TnsIndex::build(&g, &grammar, &inst, &TnsOptions::default())
                .unwrap()
                .index_nnz()
        })
    });
    group.bench_function("mtx_cnf_encoding", |b| {
        b.iter(|| {
            AzimovIndex::build(&g, &cnf, &inst, &AzimovOptions::default())
                .unwrap()
                .reachable_pairs()
                .len()
        })
    });
    group.finish();
}

fn ablate_tns_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tns_closure_mode");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let grammar = Grammar::parse("S -> a S b | a b", &mut table).expect("parses");
    let a = table.get("a").unwrap();
    let b = table.get("b").unwrap();
    // Two cycles sharing a vertex (the classic worst case driving many
    // fixpoint iterations).
    let mut g = LabeledGraph::new(60);
    for i in 0..30u32 {
        g.add_edge(i, a, (i + 1) % 30);
    }
    for i in 0..30u32 {
        g.add_edge(
            if i == 0 { 0 } else { 29 + i },
            b,
            if i == 29 { 0 } else { 30 + i },
        );
    }
    let inst = Instance::cuda_sim();
    group.bench_function("from_scratch_each_round", |bch| {
        bch.iter(|| {
            TnsIndex::build(&g, &grammar, &inst, &TnsOptions { incremental: false })
                .unwrap()
                .iterations()
        })
    });
    group.bench_function("incremental_between_rounds", |bch| {
        bch.iter(|| {
            TnsIndex::build(&g, &grammar, &inst, &TnsOptions { incremental: true })
                .unwrap()
                .iterations()
        })
    });
    group.finish();
}

fn ablate_sparse_vs_dense(c: &mut Criterion) {
    // Sparse CSR vs the dense bit-parallel backend across densities: the
    // crossover justifies the unified library's "select implementation
    // by task" plan.
    let mut group = c.benchmark_group("ablation_sparse_vs_dense");
    group.sample_size(10);
    let n = 1024u32;
    for &deg in &[4usize, 32, 128] {
        let pa = uniform_row_degree(n, deg, 11);
        let pb = uniform_row_degree(n, deg, 12);
        let label = format!("density_{:.3}", deg as f64 / n as f64);
        let sparse = Instance::cuda_sim();
        let (sa, sb) = (upload(&sparse, n, &pa), upload(&sparse, n, &pb));
        group.bench_with_input(BenchmarkId::new("sparse_csr", &label), &(), |b, ()| {
            b.iter(|| sa.mxm(&sb).unwrap().nnz())
        });
        let dense = Instance::cpu_dense();
        let (da, db) = (upload(&dense, n, &pa), upload(&dense, n, &pb));
        group.bench_with_input(BenchmarkId::new("dense_bit", &label), &(), |b, ()| {
            b.iter(|| da.mxm(&db).unwrap().nnz())
        });
    }
    group.finish();
}

fn ablate_masked_mxm(c: &mut Criterion) {
    // Fused masked SpGEMM vs full product + intersection, on a selective
    // mask (triangle-counting-shaped workload: mask = adjacency).
    let mut group = c.benchmark_group("ablation_masked_mxm");
    group.sample_size(10);
    let n = 3000u32;
    let pa = uniform_row_degree(n, 24, 31);
    let inst = Instance::cuda_sim();
    let a = upload(&inst, n, &pa);
    let mask = upload(&inst, n, &pa);
    group.bench_function("fused_in_kernel", |b| {
        b.iter(|| a.mxm_masked(&a, &mask).unwrap().nnz())
    });
    group.bench_function("product_then_intersect", |b| {
        b.iter(|| a.mxm(&a).unwrap().ewise_mult(&mask).unwrap().nnz())
    });
    group.finish();
}

fn ablate_fixpoint_schedule(c: &mut Criterion) {
    // Naive vs masked vs delta-driven fixpoints on the LUBM fixture —
    // the tentpole's E10.8 ablation. All three compute the identical
    // closure; `report ablations` prints the DeviceStats (launches,
    // allocations, accumulator insertions) behind the timing gap.
    use spbla_bench::lubm_rung;
    let mut group = c.benchmark_group("ablation_fixpoint_schedule");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let graph = lubm_rung(2, &mut table);
    let pairs = graph.adjacency_csr().to_pairs();
    let n = graph.n_vertices();
    for (backend, inst) in [
        ("csr_hash", Instance::cuda_sim()),
        ("coo_esc", Instance::cl_sim()),
    ] {
        let a = upload(&inst, n, &pairs);
        group.bench_with_input(BenchmarkId::new("naive_squaring", backend), &(), |b, ()| {
            b.iter(|| closure_squaring(&a).unwrap().nnz())
        });
        group.bench_with_input(
            BenchmarkId::new("masked_squaring", backend),
            &(),
            |b, ()| b.iter(|| closure_masked(&a).unwrap().nnz()),
        );
        group.bench_with_input(BenchmarkId::new("delta_compmask", backend), &(), |b, ()| {
            b.iter(|| closure_delta(&a).unwrap().nnz())
        });
    }
    group.finish();
}

fn ablate_automaton_kind(c: &mut Criterion) {
    // The automaton's state count is the Kronecker factor: compare the
    // four constructions on an alternation-heavy Table II template.
    use spbla_bench::lubm_rung;
    use spbla_graph::rpq::{AutomatonKind, RpqIndex, RpqOptions};
    let mut group = c.benchmark_group("ablation_automaton_kind");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let graph = lubm_rung(4, &mut table);
    let regex = spbla_data::queries::instantiate_template(
        spbla_data::queries::template("Q14").unwrap(),
        &[
            "type",
            "memberOf",
            "takesCourse",
            "subOrganizationOf",
            "teacherOf",
            "worksFor",
        ],
        &mut table,
    );
    let inst = Instance::cuda_sim();
    for (name, kind) in [
        ("glushkov", AutomatonKind::Glushkov),
        ("thompson", AutomatonKind::Thompson),
        ("derivative_dfa", AutomatonKind::DerivativeDfa),
        ("minimized_dfa", AutomatonKind::MinimizedDfa),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                RpqIndex::build(
                    &graph,
                    &regex,
                    &inst,
                    &RpqOptions {
                        automaton: kind,
                        ..RpqOptions::default()
                    },
                )
                .unwrap()
                .index_nnz()
            })
        });
    }
    group.finish();
}

fn ablate_rpq_strategy(c: &mut Criterion) {
    // End-to-end strategy comparison: all-pairs Kronecker index vs
    // per-source frontier BFS vs derivative propagation, on the same
    // query/graph (single-source workloads don't need the index; the
    // index amortises over all pairs).
    use spbla_bench::lubm_rung;
    use spbla_graph::rpq::{RpqIndex, RpqOptions};
    use spbla_graph::rpq_bfs::rpq_from_sources;
    use spbla_graph::rpq_derivative::rpq_by_derivatives;
    let mut group = c.benchmark_group("ablation_rpq_strategy");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let graph = lubm_rung(4, &mut table);
    let regex = spbla_data::queries::instantiate_template(
        spbla_data::queries::template("Q2").unwrap(),
        &["memberOf", "subOrganizationOf"],
        &mut table,
    );
    let inst = Instance::cuda_sim();
    group.bench_function("all_pairs_index", |b| {
        b.iter(|| {
            RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default())
                .unwrap()
                .index_nnz()
        })
    });
    group.bench_function("single_source_bfs", |b| {
        b.iter(|| {
            rpq_from_sources(&graph, &regex, &[0, 1, 2, 3], &inst)
                .unwrap()
                .len()
        })
    });
    group.bench_function("derivative_all_pairs", |b| {
        b.iter(|| rpq_by_derivatives(&graph, &regex).len())
    });
    group.finish();
}

fn ablate_device_scaling(c: &mut Criterion) {
    // Strong scaling of the flagship kernel with the simulated device's
    // SM count (dedicated pools make sm_count the compute width).
    use spbla_gpu_sim::{Device, DeviceConfig};
    let mut group = c.benchmark_group("ablation_device_scaling");
    group.sample_size(10);
    let n = 3000u32;
    let pa = uniform_row_degree(n, 24, 41);
    let pb = uniform_row_degree(n, 24, 42);
    for sms in [1u32, 2, 4, 8] {
        let dev = Device::new(DeviceConfig {
            sm_count: sms,
            dedicated_pool: true,
            ..DeviceConfig::default()
        });
        let inst = Instance::cuda_sim_on(dev);
        let (a, b) = (upload(&inst, n, &pa), upload(&inst, n, &pb));
        group.bench_function(format!("mxm_sm{sms}"), |bch| {
            bch.iter(|| a.mxm(&b).unwrap().nnz())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_spgemm,
    ablate_add,
    ablate_closure,
    ablate_grammar_encoding,
    ablate_tns_incremental,
    ablate_sparse_vs_dense,
    ablate_masked_mxm,
    ablate_fixpoint_schedule,
    ablate_automaton_kind,
    ablate_rpq_strategy,
    ablate_device_scaling
);
criterion_main!(benches);
