//! E6 (Table IV) — CFPQ index creation: tensor algorithm (`Tns`) vs
//! Azimov's matrix baseline (`Mtx`) on same-generation and memory-alias
//! workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spbla_bench::{alias_suite, cfpq_rdf_suite};
use spbla_core::Instance;
use spbla_data::grammars::{grammar_g1, grammar_g2, grammar_ma};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_lang::{CnfGrammar, SymbolTable};

fn bench_same_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfpq_same_generation");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let g1 = grammar_g1(&mut table);
    let g2 = grammar_g2(&mut table);
    let cnf1 = CnfGrammar::from_grammar(&g1);
    let cnf2 = CnfGrammar::from_grammar(&g2);
    let suite = cfpq_rdf_suite(&mut table, 0.004);
    let inst = Instance::cuda_sim();
    for (name, graph) in suite
        .iter()
        .filter(|(n, _)| n == "eclass_514en" || n == "go-hierarchy" || n == "enzyme")
    {
        for (qname, grammar, cnf) in [("G1", &g1, &cnf1), ("G2", &g2, &cnf2)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{qname}_tns"), name),
                &(),
                |b, ()| {
                    b.iter(|| {
                        TnsIndex::build(graph, grammar, &inst, &TnsOptions::default())
                            .unwrap()
                            .index_nnz()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{qname}_mtx"), name),
                &(),
                |b, ()| {
                    b.iter(|| {
                        AzimovIndex::build(graph, cnf, &inst, &AzimovOptions::default())
                            .unwrap()
                            .reachable_pairs()
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_memory_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfpq_memory_alias");
    group.sample_size(10);
    let mut table = SymbolTable::new();
    let ma = grammar_ma(&mut table);
    let cnf = CnfGrammar::from_grammar(&ma);
    let suite = alias_suite(&mut table, 0.05);
    let inst = Instance::cuda_sim();
    for (name, graph) in &suite {
        group.bench_with_input(BenchmarkId::new("MA_tns", name), &(), |b, ()| {
            b.iter(|| {
                TnsIndex::build(graph, &ma, &inst, &TnsOptions::default())
                    .unwrap()
                    .index_nnz()
            })
        });
        group.bench_with_input(BenchmarkId::new("MA_mtx", name), &(), |b, ()| {
            b.iter(|| {
                AzimovIndex::build(graph, &cnf, &inst, &AzimovOptions::default())
                    .unwrap()
                    .reachable_pairs()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_same_generation, bench_memory_alias);
criterion_main!(benches);
