//! E8 — core-operation benchmarks: Boolean-specialised kernels vs the
//! generic valued library (and the two Boolean backends against each
//! other). Regenerates the abstract's "up to 5× faster" claim as a
//! Criterion comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spbla_bench::upload;
use spbla_core::Instance;
use spbla_data::random::{power_law_pairs, uniform_row_degree};
use spbla_generic::{add, kron as gkron, spgemm, CsrMatrix, PlusTimesF32, PlusTimesF64};

fn bench_mxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxm");
    group.sample_size(10);
    for &(n, deg) in &[(1000u32, 8usize), (4000, 16)] {
        let pa = uniform_row_degree(n, deg, 1);
        let pb = uniform_row_degree(n, deg, 2);
        let label = format!("n{n}_d{deg}");

        let cuda = Instance::cuda_sim();
        let (ba, bb) = (upload(&cuda, n, &pa), upload(&cuda, n, &pb));
        group.bench_with_input(
            BenchmarkId::new("boolean_csr_hash", &label),
            &(),
            |bch, ()| bch.iter(|| ba.mxm(&bb).unwrap().nnz()),
        );

        let cl = Instance::cl_sim();
        let (ca, cb) = (upload(&cl, n, &pa), upload(&cl, n, &pb));
        group.bench_with_input(
            BenchmarkId::new("boolean_coo_esc", &label),
            &(),
            |bch, ()| bch.iter(|| ca.mxm(&cb).unwrap().nnz()),
        );

        let t32a: Vec<_> = pa.iter().map(|&(i, j)| (i, j, 1.0f32)).collect();
        let t32b: Vec<_> = pb.iter().map(|&(i, j)| (i, j, 1.0f32)).collect();
        let (ga, gb) = (
            CsrMatrix::<PlusTimesF32>::from_triples(n, n, &t32a),
            CsrMatrix::<PlusTimesF32>::from_triples(n, n, &t32b),
        );
        group.bench_with_input(BenchmarkId::new("generic_f32", &label), &(), |bch, ()| {
            bch.iter(|| spgemm::mxm(&ga, &gb).nnz())
        });

        let t64a: Vec<_> = pa.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
        let t64b: Vec<_> = pb.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
        let (ha, hb) = (
            CsrMatrix::<PlusTimesF64>::from_triples(n, n, &t64a),
            CsrMatrix::<PlusTimesF64>::from_triples(n, n, &t64b),
        );
        group.bench_with_input(BenchmarkId::new("generic_f64", &label), &(), |bch, ()| {
            bch.iter(|| spgemm::mxm(&ha, &hb).nnz())
        });
    }
    group.finish();
}

fn bench_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("ewise_add");
    group.sample_size(10);
    let n = 20_000u32;
    let pa = power_law_pairs(n, 200_000, 2.2, 3);
    let pb = power_law_pairs(n, 200_000, 2.2, 4);

    let cuda = Instance::cuda_sim();
    let (ba, bb) = (upload(&cuda, n, &pa), upload(&cuda, n, &pb));
    group.bench_function("boolean_csr_merge", |bch| {
        bch.iter(|| ba.ewise_add(&bb).unwrap().nnz())
    });

    let cl = Instance::cl_sim();
    let (ca, cb) = (upload(&cl, n, &pa), upload(&cl, n, &pb));
    group.bench_function("boolean_coo_onepass", |bch| {
        bch.iter(|| ca.ewise_add(&cb).unwrap().nnz())
    });

    let t64a: Vec<_> = pa.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
    let t64b: Vec<_> = pb.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
    let (ga, gb) = (
        CsrMatrix::<PlusTimesF64>::from_triples(n, n, &t64a),
        CsrMatrix::<PlusTimesF64>::from_triples(n, n, &t64b),
    );
    group.bench_function("generic_f64", |bch| {
        bch.iter(|| add::ewise_add(&ga, &gb).nnz())
    });
    group.finish();
}

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("kron");
    group.sample_size(10);
    let pa = uniform_row_degree(100, 4, 5);
    let pb = uniform_row_degree(200, 4, 6);

    let cuda = Instance::cuda_sim();
    let (ba, bb) = (upload(&cuda, 100, &pa), upload(&cuda, 200, &pb));
    group.bench_function("boolean_csr", |bch| {
        bch.iter(|| ba.kron(&bb).unwrap().nnz())
    });

    let cl = Instance::cl_sim();
    let (ca, cb) = (upload(&cl, 100, &pa), upload(&cl, 200, &pb));
    group.bench_function("boolean_coo", |bch| {
        bch.iter(|| ca.kron(&cb).unwrap().nnz())
    });

    let t64a: Vec<_> = pa.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
    let t64b: Vec<_> = pb.iter().map(|&(i, j)| (i, j, 1.0f64)).collect();
    let (ga, gb) = (
        CsrMatrix::<PlusTimesF64>::from_triples(100, 100, &t64a),
        CsrMatrix::<PlusTimesF64>::from_triples(200, 200, &t64b),
    );
    group.bench_function("generic_f64", |bch| {
        bch.iter(|| gkron::kron(&ga, &gb).nnz())
    });
    group.finish();
}

criterion_group!(benches, bench_mxm, bench_add, bench_kron);
criterion_main!(benches);
