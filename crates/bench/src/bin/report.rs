//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p spbla-bench --bin report -- all
//! cargo run --release -p spbla-bench --bin report -- table4
//! cargo run --release -p spbla-bench --bin report -- stream --json BENCH_stream.json
//! SPBLA_BENCH_SCALE=0.05 cargo run --release -p spbla-bench --bin report -- fig3
//! ```
//!
//! Subcommands: `table1 table2 fig2 fig3 table3 table4 paths
//! boolean-vs-generic formats ablations scaling serving stream obs
//! fusion memory frontier load replication condense all`.
//! `obs` additionally writes `BENCH_obs.json` (per-kernel p50/p95 from
//! the profiling histograms plus the measured tracing overhead).
//! `fusion` writes `BENCH_fusion.json` (fused vs unfused delta-closure
//! launches, intermediate-product bytes elided, push/pull direction
//! decisions on LUBM, 1/2/4-device closure checksums) and exits
//! non-zero unless the fused schedule launches ≥ 25% fewer kernels —
//! the CI smoke gate.
//! `memory` writes `BENCH_memory.json` (adaptive tiled block storage vs
//! flat CSR and dense-bit baselines: LUBM closure peak resident bytes,
//! per-tile format census and switch counts, catalog residency under a
//! fixed budget) and exits non-zero unless blocked storage cuts peak
//! bytes ≥ 2× vs flat CSR and fits ≥ 1.5× more graphs — the CI
//! memory-smoke gate.
//! `frontier` writes `BENCH_frontier.json` (per-source frontier BFS vs
//! batched product-machine latency across source counts — the sweep
//! behind the planner's `FRONTIER_MAX_SOURCES` crossover).
//! `load` writes `BENCH_load.json` (open-loop seeded-Poisson saturation
//! sweep plus a two-tier QoS rung) and exits non-zero unless a
//! saturation point is detected, the batch tier bounces before the
//! interactive tier, and interactive p95 stays under its bound — the
//! CI load-smoke gate.
//! `replication` writes `BENCH_replication.json` (1/2/3-replica
//! bit-identity and aggregate read-capacity scaling) and exits non-zero
//! unless all replica checksums agree and capacity at 3 replicas is
//! ≥ 1.8× one — the CI recovery-smoke gate.
//! `condense` writes `BENCH_condense.json` (SCC-condensed closure vs
//! the direct fused delta closure on an SCC-heavy synthetic and LUBM,
//! 1/2/4-device checksum identity, incremental SCC maintenance vs
//! recompute under an insert/delete stream) and exits non-zero unless
//! the condensed schedule launches ≥ 1.5× fewer kernels and performs
//! ≥ 2× fewer accumulator insertions on the SCC-heavy graph with every
//! checksum identical — the CI condense-smoke gate.
//! `--json FILE` additionally writes the machine-readable records the
//! run produced (one JSON object per experiment configuration, with the
//! device counters: launches, accumulator insertions, h2d/d2h/d2d bytes
//! and peak memory). Absolute numbers are CPU-simulator scale;
//! EXPERIMENTS.md records how each reproduced *shape* compares to the
//! paper.

use std::time::Duration;

use spbla_bench::*;
use spbla_core::{CooBool, CsrBool, Instance, Matrix};
use spbla_data::grammars::{grammar_g1, grammar_g2, grammar_geo, grammar_ma};
use spbla_data::queries::{generate_queries, TEMPLATES};
use spbla_data::random::uniform_row_degree;
use spbla_data::stats::GraphStats;
use spbla_generic::{spgemm, CsrMatrix, PlusTimesF32, PlusTimesF64};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_graph::LabeledGraph;
use spbla_lang::{CnfGrammar, SymbolTable};

const RUNS: usize = 3; // paper averages over 5; 3 keeps `all` snappy

/// One machine-readable record of an experiment configuration; the
/// `--json FILE` sink renders these by hand (no serde in the tree).
struct JsonRecord {
    experiment: String,
    config: Vec<(String, String)>,
    launches: u64,
    insertions: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    d2d_bytes: u64,
    peak_bytes: usize,
}

impl JsonRecord {
    fn render(&self) -> String {
        let config: String = self
            .config
            .iter()
            .map(|(k, v)| {
                // Numbers stay numbers, everything else is quoted.
                if v.parse::<f64>().is_ok() {
                    format!(r#""{k}": {v}"#)
                } else {
                    format!(r#""{k}": "{v}""#)
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            r#"{{"experiment": "{}", {config}, "launches": {}, "insertions": {}, "h2d_bytes": {}, "d2h_bytes": {}, "d2d_bytes": {}, "peak_bytes": {}}}"#,
            self.experiment,
            self.launches,
            self.insertions,
            self.h2d_bytes,
            self.d2h_bytes,
            self.d2d_bytes,
            self.peak_bytes
        )
    }
}

fn write_json(path: &str, records: &[JsonRecord]) {
    let body: Vec<String> = records
        .iter()
        .map(|r| format!("  {}", r.render()))
        .collect();
    let text = format!("[\n{}\n]\n", body.join(",\n"));
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {} JSON records to {path}", records.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut subcommand: Option<String> = None;
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(path) => json = Some(path.clone()),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            },
            other if subcommand.is_none() => subcommand = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let arg = subcommand.unwrap_or_else(|| "all".into());
    let mut records: Vec<JsonRecord> = Vec::new();
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "table3" => table3(),
        "table4" => table4(),
        "paths" => paths(),
        "boolean-vs-generic" => boolean_vs_generic(),
        "formats" => formats(),
        "ablations" => ablations(),
        "scaling" => scaling(),
        "serving" => serving(&mut records),
        "stream" => stream(&mut records),
        "obs" => obs(&mut records),
        "fusion" => fusion(&mut records),
        "memory" => memory(&mut records),
        "frontier" => frontier(&mut records),
        "load" => load(&mut records),
        "replication" => replication(&mut records),
        "condense" => condense(&mut records),
        "failover" => failover(&mut records),
        "all" => {
            table1();
            table2();
            fig2();
            fig3();
            table3();
            table4();
            paths();
            boolean_vs_generic();
            formats();
            ablations();
            scaling();
            serving(&mut records);
            stream(&mut records);
            obs(&mut records);
            fusion(&mut records);
            memory(&mut records);
            frontier(&mut records);
            load(&mut records);
            replication(&mut records);
            condense(&mut records);
            failover(&mut records);
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("known: table1 table2 fig2 fig3 table3 table4 paths boolean-vs-generic formats ablations scaling serving stream obs fusion memory frontier load replication condense failover all");
            std::process::exit(2);
        }
    }
    if let Some(path) = json {
        write_json(&path, &records);
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

// ---------------------------------------------------------------- E1
fn table1() {
    header("Table I — graphs for RPQ evaluation (synthetic equivalents)");
    let scale = bench_scale();
    println!("(scale factor {scale}; paper-published sizes in brackets)\n");
    let paper: &[(&str, u64, u64)] = &[
        ("LUBM1k", 120_926, 484_646),
        ("LUBM3.5k", 358_434, 1_449_711),
        ("LUBM5.9k", 596_760, 2_416_513),
        ("LUBM1M", 1_188_340, 4_820_728),
        ("LUBM1.7M", 1_780_956, 7_228_358),
        ("LUBM2.3M", 2_308_385, 9_369_511),
        ("uniprotkb", 6_442_630, 24_465_430),
        ("proteomes", 4_834_262, 12_366_973),
        ("taxonomy", 5_728_398, 14_922_125),
        ("geospecies", 450_609, 2_201_532),
        ("mappingbased", 8_332_233, 25_346_359),
    ];
    let mut table = SymbolTable::new();
    let mut rows: Vec<GraphStats> = Vec::new();
    for (name, unis) in lubm_ladder() {
        rows.push(GraphStats::of(name, &lubm_rung(unis, &mut table), &table));
    }
    for (name, g) in rpq_rdf_suite(&mut table, scale) {
        rows.push(GraphStats::of(&name, &g, &table));
    }
    println!(
        "{:<14} {:>10} {:>12}   {:>12} {:>12}",
        "graph", "|V|", "|E|", "paper |V|", "paper |E|"
    );
    for s in &rows {
        let p = paper.iter().find(|(n, _, _)| s.name.starts_with(n));
        let (pv, pe) = p.map_or((0, 0), |&(_, v, e)| (v, e));
        println!(
            "{:<14} {:>10} {:>12}   {:>12} {:>12}",
            s.name, s.vertices, s.edges, pv, pe
        );
    }
}

// ---------------------------------------------------------------- E2
fn table2() {
    header("Table II — RPQ query templates");
    for chunk in TEMPLATES.chunks(2) {
        for t in chunk {
            print!("{:<7} {:<42}", t.name, t.pattern);
        }
        println!();
    }
    println!("({} templates)", TEMPLATES.len());
}

// ---------------------------------------------------------------- E3
fn run_rpq_suite(name: &str, graph: &LabeledGraph, table: &mut SymbolTable) {
    let inst = Instance::cuda_sim();
    let queries = generate_queries(graph, table, 5, 1, 0xBEEF);
    let mut worst = (String::new(), Duration::ZERO);
    let mut total = Duration::ZERO;
    // Large graphs get one run per query instead of the 5-run average —
    // variance matters less when a single index build takes seconds.
    let runs = if graph.n_edges() > 100_000 { 1 } else { RUNS };
    print!("{name:<14}");
    for (qname, regex) in &queries {
        let d = time_avg(runs, || {
            match RpqIndex::build(graph, regex, &inst, &RpqOptions::default()) {
                Ok(idx) => {
                    std::hint::black_box(idx.index_nnz());
                }
                Err(e) => eprintln!("  [{name}/{qname} failed: {e}]"),
            }
        });
        total += d;
        if d > worst.1 {
            worst = (qname.clone(), d);
        }
    }
    println!(
        "  total {:>8}s  mean {:>8}s  worst {} ({}s)",
        secs(total),
        secs(total / queries.len() as u32),
        worst.0,
        secs(worst.1)
    );
}

fn fig2() {
    header("Figure 2 — RPQ index creation time, LUBM ladder × 28 templates");
    println!("(one instantiation per template, avg of {RUNS} runs; paper shape:");
    println!(" time grows with graph size; Q14-style templates are worst, ≤ seconds)\n");
    let mut table = SymbolTable::new();
    for (name, unis) in lubm_ladder() {
        let graph = lubm_rung(unis, &mut table);
        run_rpq_suite(name, &graph, &mut table);
    }
}

// ---------------------------------------------------------------- E4
fn fig3() {
    header("Figure 3 — RPQ index creation time, real-world RDFs × 28 templates");
    println!("(paper shape: time depends on inner structure more than size;");
    println!(" taxonomy disproportionately slow, geospecies sometimes slower than");
    println!(" graphs 10× larger; nothing beyond ~52 s at full scale)\n");
    let scale = bench_scale();
    let mut table = SymbolTable::new();
    for (name, graph) in rpq_rdf_suite(&mut table, scale) {
        run_rpq_suite(&name, &graph, &mut table);
    }
}

// ---------------------------------------------------------------- E5
fn table3() {
    header("Table III — graphs for CFPQ evaluation (synthetic equivalents)");
    let scale = bench_scale();
    let mut table = SymbolTable::new();
    println!(
        "{:<14} {:>8} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8}",
        "graph", "|V|", "|E|", "#sco", "#type", "#bt", "#a", "#d"
    );
    for (name, g) in cfpq_rdf_suite(&mut table, scale) {
        let s = GraphStats::of(&name, &g, &table);
        println!(
            "{:<14} {:>8} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8}",
            s.name,
            s.vertices,
            s.edges,
            s.label("subClassOf"),
            s.label("type"),
            s.label("broaderTransitive"),
            "-",
            "-"
        );
    }
    for (name, g) in alias_suite(&mut table, scale * 30.0) {
        let s = GraphStats::of(&name, &g, &table);
        println!(
            "{:<14} {:>8} {:>9} {:>8} {:>8} {:>7} {:>8} {:>8}",
            s.name,
            s.vertices,
            s.edges,
            "-",
            "-",
            "-",
            s.label("a"),
            s.label("d")
        );
    }
}

// ---------------------------------------------------------------- E6
fn cfpq_row(
    name: &str,
    graph: &LabeledGraph,
    grammars: &[(&str, &spbla_lang::Grammar)],
    inst: &Instance,
) {
    print!("{name:<14}");
    for (gname, grammar) in grammars {
        let has_labels = grammar
            .terminals()
            .iter()
            .any(|&t| graph.label_count(t) > 0);
        if !has_labels {
            print!("  {gname}: ---");
            continue;
        }
        let tns = time_avg(RUNS, || {
            let idx =
                TnsIndex::build(graph, grammar, inst, &TnsOptions::default()).expect("tns builds");
            std::hint::black_box(idx.index_nnz());
        });
        let cnf = CnfGrammar::from_grammar(grammar);
        let mtx = time_avg(RUNS, || {
            let idx = AzimovIndex::build(graph, &cnf, inst, &AzimovOptions::default())
                .expect("mtx builds");
            std::hint::black_box(idx.reachable_pairs().len());
        });
        print!("  {gname}: Tns {}s Mtx {}s", secs(tns), secs(mtx));
    }
    println!();
}

fn table4() {
    header("Table IV — CFPQ index creation, Tns vs Mtx (seconds)");
    println!("(paper shape: the two are comparable; Mtx somewhat faster on the");
    println!(" large alias graphs (~1.2–1.5×); Tns far faster on go-hierarchy;");
    println!(" note Tns computes the all-paths index, Mtx single-path only)\n");
    let scale = bench_scale();
    let mut table = SymbolTable::new();
    let g1 = grammar_g1(&mut table);
    let g2 = grammar_g2(&mut table);
    let geo = grammar_geo(&mut table);
    let ma = grammar_ma(&mut table);
    let inst = Instance::cuda_sim();

    for (name, graph) in cfpq_rdf_suite(&mut table, scale) {
        let mut gs: Vec<(&str, &spbla_lang::Grammar)> = vec![("G1", &g1), ("G2", &g2)];
        if name == "geospecies" {
            gs.push(("Geo", &geo));
        }
        cfpq_row(&name, &graph, &gs, &inst);
    }
    for (name, graph) in alias_suite(&mut table, scale * 30.0) {
        cfpq_row(&name, &graph, &[("MA", &ma)], &inst);
    }
}

// ---------------------------------------------------------------- E7
fn paths() {
    header("§V-B — all-paths extraction from the Tns index (go & eclass, G1)");
    println!("(paper: avg 2.64 s/pair on go with up to 217 737 paths per pair;");
    println!(" avg 1.27 s/pair on eclass with ~3 paths per pair — i.e. go is");
    println!(" path-dense, eclass path-sparse; the shape to check is that ratio)\n");
    let scale = bench_scale();
    let mut table = SymbolTable::new();
    let g1 = grammar_g1(&mut table);
    let inst = Instance::cuda_sim();
    let suite = cfpq_rdf_suite(&mut table, scale);
    for (name, graph) in suite
        .iter()
        .filter(|(n, _)| n == "go" || n == "eclass_514en")
    {
        let idx = TnsIndex::build(graph, &g1, &inst, &TnsOptions::default()).expect("tns");
        let pairs = idx.reachable_pairs();
        let sample: Vec<(u32, u32)> = pairs.iter().copied().take(20).collect();
        let mut total_paths = 0usize;
        let mut max_paths = 0usize;
        let (elapsed, ()) = time_once(|| {
            for &(u, v) in &sample {
                let ps = idx.extract_paths(u, v, 20, 500);
                total_paths += ps.len();
                max_paths = max_paths.max(ps.len());
            }
        });
        let avg = if sample.is_empty() {
            0.0
        } else {
            total_paths as f64 / sample.len() as f64
        };
        println!(
            "{name:<14} {} reachable pairs; sampled {}: avg {:.1} paths/pair, max {}, {:.1} ms/pair",
            pairs.len(),
            sample.len(),
            avg,
            max_paths,
            if sample.is_empty() { 0.0 } else { elapsed.as_secs_f64() * 1000.0 / sample.len() as f64 }
        );
    }
}

// ---------------------------------------------------------------- E8
fn boolean_vs_generic() {
    header("Abstract claim — Boolean vs generic ops (≤5× faster, ≤4× less memory)");
    println!("(Boolean = spbla-core cuda-sim kernels; generic = valued semiring");
    println!(" library with identical skeletons; both parallel on the same pool)\n");
    let n: u32 = 4000;
    let degree = 16;
    let pairs_a = uniform_row_degree(n, degree, 101);
    let pairs_b = uniform_row_degree(n, degree, 202);

    let inst = Instance::cuda_sim();
    let ba = upload(&inst, n, &pairs_a);
    let bb = upload(&inst, n, &pairs_b);

    let tri_a32: Vec<(u32, u32, f32)> = pairs_a.iter().map(|&(i, j)| (i, j, 1.0)).collect();
    let tri_b32: Vec<(u32, u32, f32)> = pairs_b.iter().map(|&(i, j)| (i, j, 1.0)).collect();
    let ga32 = CsrMatrix::<PlusTimesF32>::from_triples(n, n, &tri_a32);
    let gb32 = CsrMatrix::<PlusTimesF32>::from_triples(n, n, &tri_b32);
    let tri_a64: Vec<(u32, u32, f64)> = pairs_a.iter().map(|&(i, j)| (i, j, 1.0)).collect();
    let tri_b64: Vec<(u32, u32, f64)> = pairs_b.iter().map(|&(i, j)| (i, j, 1.0)).collect();
    let ga64 = CsrMatrix::<PlusTimesF64>::from_triples(n, n, &tri_a64);
    let gb64 = CsrMatrix::<PlusTimesF64>::from_triples(n, n, &tri_b64);

    let t_bool = time_avg(RUNS, || {
        std::hint::black_box(ba.mxm(&bb).expect("bool mxm").nnz());
    });
    let t_f32 = time_avg(RUNS, || {
        std::hint::black_box(spgemm::mxm(&ga32, &gb32).nnz());
    });
    let t_f64 = time_avg(RUNS, || {
        std::hint::black_box(spgemm::mxm(&ga64, &gb64).nnz());
    });
    println!("mxm   n={n} deg={degree}:");
    println!(
        "  boolean {:>9}s | generic f32 {:>9}s ({:.2}x) | generic f64 {:>9}s ({:.2}x)",
        secs(t_bool),
        secs(t_f32),
        t_f32.as_secs_f64() / t_bool.as_secs_f64(),
        secs(t_f64),
        t_f64.as_secs_f64() / t_bool.as_secs_f64()
    );

    let t_badd = time_avg(RUNS, || {
        std::hint::black_box(ba.ewise_add(&bb).expect("bool add").nnz());
    });
    let t_gadd = time_avg(RUNS, || {
        std::hint::black_box(spbla_generic::add::ewise_add(&ga64, &gb64).nnz());
    });
    println!(
        "add:  boolean {:>9}s | generic f64 {:>9}s ({:.2}x)",
        secs(t_badd),
        secs(t_gadd),
        t_gadd.as_secs_f64() / t_badd.as_secs_f64()
    );

    // Memory: result of the product under each representation.
    let c_bool = ba.mxm(&bb).expect("bool mxm");
    let c_f64 = spgemm::mxm(&ga64, &gb64);
    let c_f32 = spgemm::mxm(&ga32, &gb32);
    println!(
        "memory (product): boolean CSR {} B | +f32 values {} B ({:.2}x) | +f64 values {} B ({:.2}x)",
        c_bool.memory_bytes(),
        c_f32.memory_bytes(),
        c_f32.memory_bytes() as f64 / c_bool.memory_bytes() as f64,
        c_f64.memory_bytes(),
        c_f64.memory_bytes() as f64 / c_bool.memory_bytes() as f64
    );
    // COO comparison (the 4x case: 8 B/nnz boolean vs 8+8+16 valued COO
    // with f64 values and padding-free packing assumed).
    let coo_bool = 8usize;
    let coo_f64 = 16usize;
    println!(
        "memory per nnz, COO: boolean {} B vs f64-valued {} B ({:.1}x); row-heavy CSR worst case adds the row_ptr overhead only once",
        coo_bool, coo_f64, coo_f64 as f64 / coo_bool as f64
    );
}

// ---------------------------------------------------------------- E10
fn ablations() {
    header("E10 — design-choice ablations (text summary; criterion for stats)");
    use spbla_data::random::{two_cycles_graph, uniform_row_degree as urd};
    use spbla_graph::cfpq::tensor::{TnsIndex as Tns, TnsOptions as TnsOpt};
    use spbla_graph::closure::{closure_incremental, closure_squaring};
    use spbla_lang::{Grammar, Rsm};

    // 1. hash vs ESC SpGEMM.
    let n = 2000u32;
    let (pa, pb) = (urd(n, 24, 1), urd(n, 24, 2));
    let cuda = Instance::cuda_sim();
    let (ha, hb) = (upload(&cuda, n, &pa), upload(&cuda, n, &pb));
    let t_hash = time_avg(RUNS, || {
        std::hint::black_box(ha.mxm(&hb).unwrap().nnz());
    });
    let cl = Instance::cl_sim();
    let (ea, eb) = (upload(&cl, n, &pa), upload(&cl, n, &pb));
    let t_esc = time_avg(RUNS, || {
        std::hint::black_box(ea.mxm(&eb).unwrap().nnz());
    });
    println!(
        "1. SpGEMM   hash(CSR) {}s vs ESC(COO) {}s ({:.2}x)",
        secs(t_hash),
        secs(t_esc),
        t_esc.as_secs_f64() / t_hash.as_secs_f64()
    );

    // 2. masked mxm fused vs post-intersection.
    let mask = upload(&cuda, n, &pa);
    let t_fused = time_avg(RUNS, || {
        std::hint::black_box(ha.mxm_masked(&ha, &mask).unwrap().nnz());
    });
    let t_post = time_avg(RUNS, || {
        std::hint::black_box(ha.mxm(&ha).unwrap().ewise_mult(&mask).unwrap().nnz());
    });
    println!(
        "2. masked   fused {}s vs product+intersect {}s ({:.2}x)",
        secs(t_fused),
        secs(t_post),
        t_post.as_secs_f64() / t_fused.as_secs_f64()
    );

    // 3. incremental closure after a 1-edge delta.
    let chain: Vec<(u32, u32)> = (0..199u32).map(|i| (i, i + 1)).collect();
    let a2 = upload(&cuda, 200, &chain);
    let t0 = closure_squaring(&a2).unwrap();
    let delta = upload(&cuda, 200, &[(199, 0)]);
    let t_inc = time_avg(RUNS, || {
        std::hint::black_box(closure_incremental(&t0, &delta).unwrap().nnz());
    });
    let merged = a2.ewise_add(&delta).unwrap();
    let t_scr = time_avg(RUNS, || {
        std::hint::black_box(closure_squaring(&merged).unwrap().nnz());
    });
    println!(
        "3. closure  incremental {}s vs from-scratch {}s ({:.0}x) after 1-edge delta",
        secs(t_inc),
        secs(t_scr),
        t_scr.as_secs_f64() / t_inc.as_secs_f64()
    );

    // 4. CNF vs RSM grammar size (the introduction's blow-up claim).
    let mut table = SymbolTable::new();
    let reg = Grammar::parse("S -> a b c d e | a S", &mut table).unwrap();
    let cnf = CnfGrammar::from_grammar(&reg);
    let rsm = Rsm::from_grammar(&reg);
    println!(
        "4. encoding RSM size {} vs CNF size {} ({:.1}x blow-up) on a regular query",
        rsm.size(),
        cnf.size(),
        cnf.size() as f64 / rsm.size() as f64
    );

    // 5. Tns closure mode on the two-cycles worst case.
    let mut t2 = SymbolTable::new();
    let g = two_cycles_graph(24, 35, &mut t2);
    let gram = Grammar::parse("S -> a S b | a b", &mut t2).unwrap();
    let t_tns_inc = time_avg(RUNS, || {
        std::hint::black_box(
            Tns::build(&g, &gram, &cuda, &TnsOpt { incremental: true })
                .unwrap()
                .iterations(),
        );
    });
    let t_tns_scr = time_avg(RUNS, || {
        std::hint::black_box(
            Tns::build(&g, &gram, &cuda, &TnsOpt { incremental: false })
                .unwrap()
                .iterations(),
        );
    });
    println!(
        "5. Tns loop incremental {}s vs from-scratch {}s (two-cycles 24/35)",
        secs(t_tns_inc),
        secs(t_tns_scr)
    );

    // 6. sparse vs dense-bit backend at fixed density.
    let dense = Instance::cpu_dense();
    let (da, db) = (upload(&dense, n, &pa), upload(&dense, n, &pb));
    let t_dense = time_avg(RUNS, || {
        std::hint::black_box(da.mxm(&db).unwrap().nnz());
    });
    println!("6. backend  sparse-CSR {}s vs dense-bit {}s at density {:.3} (dense mem {} B vs sparse {} B)",
        secs(t_hash), secs(t_dense), 24.0 / n as f64, da.memory_bytes(), ha.memory_bytes());

    // 7. fixpoint schedules on the LUBM fixture, with the device
    //    counters behind the timing gap: each schedule runs on a fresh
    //    simulated device so launches / allocations / accumulator
    //    insertions are attributable per schedule.
    use spbla_gpu_sim::Device;
    use spbla_graph::closure::{closure_delta, closure_masked};
    let mut ltable = SymbolTable::new();
    let lubm = lubm_rung(2, &mut ltable);
    let lpairs = lubm.adjacency_csr().to_pairs();
    let ln = lubm.n_vertices();
    println!(
        "7. schedule naive vs masked vs delta closure on LUBM (n={ln}, nnz={}):",
        lpairs.len()
    );
    println!(
        "   {:<16} {:>9} {:>10} {:>8} {:>13} {:>12} {:>10} {:>10} {:>9}",
        "schedule",
        "time",
        "closure",
        "launches",
        "allocations",
        "accum-insert",
        "h2d-bytes",
        "d2h-bytes",
        "d2d-bytes"
    );
    type Schedule = fn(&Matrix) -> spbla_core::Result<Matrix>;
    let schedules: [(&str, Schedule); 3] = [
        ("naive_squaring", closure_squaring),
        ("masked_squaring", closure_masked),
        ("delta_compmask", closure_delta),
    ];
    for (sname, schedule) in schedules {
        let dev = Device::default();
        let inst = Instance::cuda_sim_on(dev.clone());
        let a = upload(&inst, ln, &lpairs);
        let before = dev.stats();
        let (elapsed, nnz) = time_once(|| schedule(&a).unwrap().nnz());
        let after = dev.stats();
        println!(
            "   {:<16} {:>8}s {:>10} {:>8} {:>13} {:>12} {:>10} {:>10} {:>9}",
            sname,
            secs(elapsed),
            nnz,
            after.launches - before.launches,
            after.allocations - before.allocations,
            after.accum_insertions - before.accum_insertions,
            after.h2d_bytes - before.h2d_bytes,
            after.d2h_bytes - before.d2h_bytes,
            after.d2d_bytes - before.d2d_bytes,
        );
    }
}

// ---------------------------------------------------------------- E11
fn scaling() {
    header("E11 — multi-device strong scaling: distributed closure on LUBM");
    println!("(the paper names multi-GPU as SPbLA's next step; the claim to check");
    println!(" is that block-row sharding shrinks the *per-device* memory peak as");
    println!(" the grid grows — the workload spreads instead of replicating — and");
    println!(" that the delta schedule's communication volume stays below the");
    println!(" naive one, since it only all-gathers each round's frontier)\n");
    use spbla_multidev::{DeviceGrid, DistMatrix};
    let mut ltable = SymbolTable::new();
    let lubm = lubm_rung(2, &mut ltable);
    let csr = lubm.adjacency_csr();
    println!("LUBM fixture n={} nnz={}\n", lubm.n_vertices(), csr.nnz());
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>15} {:>13}",
        "schedule", "devices", "time", "closure", "max-dev-peak-B", "total-d2d-B"
    );
    type DistSchedule = fn(&DistMatrix) -> spbla_core::Result<DistMatrix>;
    let schedules: [(&str, DistSchedule); 2] = [
        ("delta_compmask", DistMatrix::closure_delta),
        ("naive_squaring", DistMatrix::closure_squaring),
    ];
    for (sname, schedule) in schedules {
        for devices in [1usize, 2, 4, 8] {
            let grid = DeviceGrid::new(devices);
            let a = DistMatrix::from_csr(&grid, &csr).expect("shard fits");
            let (elapsed, nnz) = time_once(|| schedule(&a).expect("closure runs").nnz());
            println!(
                "{:<16} {:>8} {:>8}s {:>9} {:>15} {:>13}",
                sname,
                devices,
                secs(elapsed),
                nnz,
                grid.max_peak_bytes(),
                grid.total_stats().d2d_bytes
            );
        }
    }
}

// ---------------------------------------------------------------- E12
/// Sum a `spbla_dev_*` counter family over a set of device ordinals,
/// straight from the global metrics registry. Devices are created fresh
/// per configuration, so the registry cells start at zero — no "before"
/// snapshot arithmetic.
fn dev_counter_sum(family: &str, ordinals: &[u64]) -> u64 {
    let reg = spbla_obs::metrics_global();
    ordinals
        .iter()
        .map(|d| {
            reg.counter(&spbla_obs::labeled(family, &[("dev", &d.to_string())]))
                .get()
        })
        .sum()
}

fn dev_gauge_max(family: &str, ordinals: &[u64]) -> u64 {
    let reg = spbla_obs::metrics_global();
    ordinals
        .iter()
        .map(|d| {
            reg.gauge(&spbla_obs::labeled(family, &[("dev", &d.to_string())]))
                .get()
        })
        .max()
        .unwrap_or(0)
}

fn serving(records: &mut Vec<JsonRecord>) {
    header("E12 — serving-layer ablation: same-plan batching × plan cache × grid width");
    println!("(closed loop: 8 clients, 96 mixed requests on the LUBM fixture, 3/4 of");
    println!(" them same-plan single-source RPQs; the claims to check are that");
    println!(" batching cuts kernel launches — one multi-source chain instead of one");
    println!(" chain per request — and that the plan cache converts per-request");
    println!(" compilations into hits; neither may change any answer)\n");
    use spbla_engine::{Engine, EngineConfig, Query};
    use spbla_multidev::DeviceGrid;
    use std::sync::Arc;

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 96;
    const SRC_Q: &str = "memberOf . subOrganizationOf*";

    println!(
        "{:<8} {:<6} {:<6} {:>8} {:>9} {:>8} {:>11} {:>13} {:>10} {:>5}",
        "devices",
        "batch",
        "cache",
        "time",
        "launches",
        "batches",
        "plan-h/m",
        "resid-h/m/e",
        "req/s",
        "hwm"
    );
    let mut checksum: Option<u64> = None;
    for devices in [1usize, 2, 4] {
        for (batching, plan_cache) in [(true, true), (false, true), (true, false), (false, false)] {
            let engine = Engine::new(
                DeviceGrid::new(devices),
                EngineConfig {
                    queue_capacity: 1024,
                    batching,
                    plan_cache,
                    ..EngineConfig::default()
                },
            );
            let graph = engine.with_symbols(|table| lubm_rung(1, table));
            let n_vertices = graph.n_vertices();
            engine.add_graph("lubm", graph);
            let workload: Vec<Query> = (0..REQUESTS)
                .map(|i| match i % 8 {
                    3 => Query::Rpq("headOf . subOrganizationOf".into()),
                    7 => Query::Cfpq("S -> subOrganizationOf S | subOrganizationOf".into()),
                    _ => Query::RpqFromSource {
                        text: SRC_Q.into(),
                        source: (i as u32 * 131) % n_vertices,
                    },
                })
                .collect();
            let engine = Arc::new(engine);
            let workload = Arc::new(workload);
            let started = std::time::Instant::now();
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let engine = Arc::clone(&engine);
                    let workload = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        let mut answers = 0u64;
                        for (i, q) in workload.iter().enumerate() {
                            if i % CLIENTS != c {
                                continue;
                            }
                            let done = engine
                                .submit("lubm", q.clone())
                                .expect("queue sized for the workload")
                                .wait();
                            match done.result.expect("request completes") {
                                spbla_engine::QueryResult::Pairs(p) => answers += p.len() as u64,
                                spbla_engine::QueryResult::Reachable(r) => {
                                    answers += r.len() as u64
                                }
                                spbla_engine::QueryResult::Applied(_) => {
                                    unreachable!("workload submits no updates")
                                }
                            }
                        }
                        answers
                    })
                })
                .collect();
            let answers: u64 = handles
                .into_iter()
                .map(|h| h.join().expect("client ok"))
                .sum();
            let wall = started.elapsed();
            // Every configuration must produce the same answer volume —
            // the ablations change cost, never results.
            match checksum {
                None => checksum = Some(answers),
                Some(expect) => assert_eq!(answers, expect, "ablation changed answers!"),
            }
            let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| unreachable!("clients joined"));
            // Read everything from the metrics registry: the per-device
            // counters by ordinal label, the engine counters through the
            // registry-owned cells `Engine::stats` views.
            let ordinals = engine.device_ordinals();
            let launches = dev_counter_sum("spbla_dev_launches_total", &ordinals);
            let insertions = dev_counter_sum("spbla_dev_accum_insertions_total", &ordinals);
            let h2d_bytes = dev_counter_sum("spbla_dev_h2d_bytes_total", &ordinals);
            let d2h_bytes = dev_counter_sum("spbla_dev_d2h_bytes_total", &ordinals);
            let d2d_bytes = dev_counter_sum("spbla_dev_d2d_bytes_total", &ordinals);
            let peak_bytes = dev_gauge_max("spbla_dev_peak_bytes", &ordinals);
            let stats = engine.shutdown();
            println!(
                "{:<8} {:<6} {:<6} {:>7}s {:>9} {:>8} {:>11} {:>13} {:>10.1} {:>5}",
                devices,
                if batching { "on" } else { "off" },
                if plan_cache { "on" } else { "off" },
                secs(wall),
                launches,
                stats.batches,
                format!("{}/{}", stats.plan_hits, stats.plan_misses),
                format!(
                    "{}/{}/{}",
                    stats.residency_hits, stats.residency_misses, stats.residency_evictions
                ),
                REQUESTS as f64 / wall.as_secs_f64().max(1e-9),
                stats.queue_depth_hwm,
            );
            records.push(JsonRecord {
                experiment: "serving".into(),
                config: vec![
                    ("devices".into(), devices.to_string()),
                    ("batching".into(), batching.to_string()),
                    ("plan_cache".into(), plan_cache.to_string()),
                    ("batches".into(), stats.batches.to_string()),
                    (
                        "batched_requests".into(),
                        stats.batched_requests.to_string(),
                    ),
                    ("plan_hits".into(), stats.plan_hits.to_string()),
                    ("plan_misses".into(), stats.plan_misses.to_string()),
                    ("queue_depth_hwm".into(), stats.queue_depth_hwm.to_string()),
                ],
                launches,
                insertions,
                h2d_bytes,
                d2h_bytes,
                d2d_bytes,
                peak_bytes: peak_bytes as usize,
            });
        }
    }
}

// ---------------------------------------------------------------- E13
fn stream(records: &mut Vec<JsonRecord>) {
    header("E13 — streaming updates: incremental closure maintenance vs per-batch recompute");
    println!("(LUBM base with a deep citation thread; a stream of single-triple insert");
    println!(" batches then small delete batches, replayed identically through the");
    println!(" incremental view — frontier restart for inserts, DRed over-delete and");
    println!(" rederive for deletes — and through a per-batch full recompute; the claims");
    println!(" to check are bit-identical checksums at every version and, over the");
    println!(" insert phase, incremental maintenance paying ≤ 1/3 of recompute's kernel");
    println!(" launches AND accumulator insertions)\n");
    use spbla_multidev::DeviceGrid;
    use spbla_stream::{GraphStream, MaintainConfig, MaintainMode, UpdateBatch};

    const INSERT_BATCHES: usize = 24;
    const DELETE_BATCHES: usize = 5;
    /// Citation-thread depth grafted onto the LUBM base: per-batch full
    /// recompute re-derives this chain's closure from scratch every
    /// version (log_φ(CHAIN) fixpoint rounds), while the incremental
    /// path only touches each batch's frontier.
    const CHAIN: u32 = 60;

    let mut table = SymbolTable::new();
    let mut graph = lubm_rung(1, &mut table);
    let cites = table.intern("cites");
    let n = graph.n_vertices();
    // The chain threads the tail of the vertex range (the last
    // department's publications/courses/students — low in-degree, and
    // never the 16 ontology-class hubs at the front).
    for v in n - CHAIN..n - 1 {
        graph.add_edge(v, cites, v + 1);
    }
    let labels: Vec<_> = graph.labels().into_iter().filter(|&l| l != cites).collect();
    println!(
        "LUBM fixture n={n} nnz={} (+{CHAIN}-deep citation thread); {INSERT_BATCHES} 1-edge insert batches + {DELETE_BATCHES} 2-edge delete batches\n",
        graph.n_edges()
    );

    // Deterministic stream, generated once and replayed by every
    // (devices, mode) configuration. Inserts are fine-grained (one
    // triple per batch — RDF-stream granularity) between instance-level
    // vertices; deletes target edges that exist at their version
    // (tracked by a host mirror).
    let mut rng: u64 = 0xE13 | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    const N_CLASSES: u64 = 16;
    let mut mirror = graph.clone();
    let mut batches: Vec<UpdateBatch> = Vec::new();
    for _ in 0..INSERT_BATCHES {
        let mut b = UpdateBatch::new();
        loop {
            let l = labels[(next() % labels.len() as u64) as usize];
            let u = (N_CLASSES + next() % (n as u64 - N_CLASSES)) as u32;
            let v = (N_CLASSES + next() % (n as u64 - N_CLASSES)) as u32;
            if u != v && !mirror.edges_of(l).contains(&(u, v)) {
                b.insert(u, l, v);
                break;
            }
        }
        b.apply_to(&mut mirror);
        batches.push(b);
    }
    for _ in 0..DELETE_BATCHES {
        let mut b = UpdateBatch::new();
        for _ in 0..2 {
            let l = labels[(next() % labels.len() as u64) as usize];
            let edges = mirror.edges_of(l);
            if edges.is_empty() {
                continue;
            }
            let (u, v) = edges[(next() % edges.len() as u64) as usize];
            b.delete(u, l, v);
        }
        b.apply_to(&mut mirror);
        batches.push(b);
    }

    println!(
        "{:<8} {:<12} {:>9} {:>13} {:>11} {:>13} {:>9}",
        "devices", "mode", "time", "ins-launches", "ins-accum", "total-accum", "peak-B"
    );
    for devices in [1usize, 2, 4] {
        // (per-version checksums, insert-phase Δstats, total Δstats, peak)
        let run = |mode: MaintainMode| {
            let grid = DeviceGrid::new(devices);
            let mut stream = GraphStream::new(&grid, &graph).expect("store builds");
            stream
                .track_closure(MaintainConfig {
                    mode,
                    ..MaintainConfig::default()
                })
                .expect("view builds");
            let base = grid.total_stats();
            let mut checksums = Vec::with_capacity(batches.len());
            let (elapsed, mid) = time_once(|| {
                for b in batches.iter().take(INSERT_BATCHES) {
                    stream.apply(b.clone()).expect("insert batch applies");
                    checksums.push(stream.closure_view().expect("tracked").checksum());
                }
                grid.total_stats()
            });
            for b in batches.iter().skip(INSERT_BATCHES) {
                stream.apply(b.clone()).expect("delete batch applies");
                checksums.push(stream.closure_view().expect("tracked").checksum());
            }
            let end = grid.total_stats();
            let inserts_only = (
                mid.launches - base.launches,
                mid.accum_insertions - base.accum_insertions,
            );
            let total = (
                end.launches - base.launches,
                end.accum_insertions - base.accum_insertions,
                end.h2d_bytes - base.h2d_bytes,
                end.d2h_bytes - base.d2h_bytes,
                end.d2d_bytes - base.d2d_bytes,
            );
            (
                checksums,
                elapsed,
                inserts_only,
                total,
                grid.max_peak_bytes(),
            )
        };
        let (cs_inc, t_inc, ins_inc, tot_inc, peak_inc) = run(MaintainMode::Incremental);
        let (cs_rec, t_rec, ins_rec, tot_rec, peak_rec) = run(MaintainMode::Recompute);

        // Bit-identical results at every version, delete batches included
        // (DRed rederivation must agree with recompute exactly).
        assert_eq!(
            cs_inc, cs_rec,
            "incremental maintenance diverged from recompute on {devices} devices"
        );
        // The headline ratios, over the insert phase.
        assert!(
            ins_inc.0 * 3 <= ins_rec.0,
            "launch ratio blown on {devices} devices: {} vs {}",
            ins_inc.0,
            ins_rec.0
        );
        assert!(
            ins_inc.1 * 3 <= ins_rec.1,
            "insertion ratio blown on {devices} devices: {} vs {}",
            ins_inc.1,
            ins_rec.1
        );
        for (mode, t, ins, tot, peak) in [
            ("incremental", t_inc, ins_inc, tot_inc, peak_inc),
            ("recompute", t_rec, ins_rec, tot_rec, peak_rec),
        ] {
            println!(
                "{:<8} {:<12} {:>8}s {:>13} {:>11} {:>13} {:>9}",
                devices,
                mode,
                secs(t),
                ins.0,
                ins.1,
                tot.1,
                peak
            );
            records.push(JsonRecord {
                experiment: "E13-stream".into(),
                config: vec![
                    ("devices".into(), devices.to_string()),
                    ("mode".into(), mode.into()),
                    ("insert_batches".into(), INSERT_BATCHES.to_string()),
                    ("delete_batches".into(), DELETE_BATCHES.to_string()),
                ],
                launches: tot.0,
                insertions: tot.1,
                h2d_bytes: tot.2,
                d2h_bytes: tot.3,
                d2d_bytes: tot.4,
                peak_bytes: peak,
            });
        }
        println!(
            "         checksums identical at all {} versions; insert-phase ratios: launches {:.3}, insertions {:.3}\n",
            cs_inc.len(),
            ins_inc.0 as f64 / ins_rec.0.max(1) as f64,
            ins_inc.1 as f64 / ins_rec.1.max(1) as f64
        );
    }
}

// ---------------------------------------------------------------- obs
fn obs(records: &mut Vec<JsonRecord>) {
    header("OBS — per-kernel profile histograms and tracing overhead (E10 closure)");
    println!("(the claims to check: the kernel-level tracing layer costs < 3% when");
    println!(" enabled — and nothing but an atomic load when off — and the profiling");
    println!(" histograms carry per-kernel shape distributions for the ablations)\n");
    use spbla_graph::closure::closure_delta;
    use spbla_obs::SampleValue;

    // LUBM's closure converges in a handful of iterations (shallow
    // hierarchy), finishing in ~2 ms — far below timer noise. A sparse
    // uniform random digraph reaches a near-dense closure through many
    // genuinely large SpGEMMs, giving a tens-of-ms workload whose
    // overhead ratio is measurable.
    let n: u32 = 256;
    let inst = Instance::cuda_sim();
    let a = upload(&inst, n, &uniform_row_degree(n, 3, 0xE10));

    // A ms-scale closure is too noisy for a sub-3% overhead claim at
    // the default 3 runs: scheduler jitter between two separated
    // measurement windows masquerades as (anti-)overhead. Interleave
    // off/on sample pairs and compare medians instead, so drift hits
    // both sides equally.
    let pairs = RUNS.max(12);
    let trace = spbla_obs::trace_global();
    trace.disable();
    closure_delta(&a).expect("closure"); // warm-up
    let mut offs = Vec::with_capacity(pairs);
    let mut ons = Vec::with_capacity(pairs);
    let mut sample = |enabled: bool| {
        if enabled {
            trace.enable(1 << 22);
        } else {
            trace.disable();
        }
        let t = time_avg(2, || {
            closure_delta(&a).expect("closure");
        });
        if enabled { &mut ons } else { &mut offs }.push(t);
    };
    for i in 0..pairs {
        // ABBA ordering: whichever side runs second in a pair sits on
        // warmer caches, so alternate which side that is.
        let first_on = i % 2 == 1;
        sample(first_on);
        sample(!first_on);
    }
    let kernel_spans = trace.count_category("kernel");
    trace.disable();
    // The two sides of a pair are adjacent in time, so machine-wide
    // drift (frequency scaling, co-tenant load) cancels inside each
    // pair's ratio; the median ratio is then robust to the occasional
    // pair that caught a scheduler hiccup.
    let mut ratios: Vec<f64> = offs
        .iter()
        .zip(&ons)
        .map(|(off, on)| on.as_secs_f64() / off.as_secs_f64().max(1e-12))
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let (off, on) = (
        offs.iter().min().copied().expect("non-empty"),
        ons.iter().min().copied().expect("non-empty"),
    );
    println!(
        "closure on random n={n} d=3: tracing off {}s, tracing on {}s -> overhead {overhead_pct:+.2}%",
        secs(off),
        secs(on)
    );
    println!("({kernel_spans} kernel spans recorded over the traced runs)\n");

    // Per-kernel shape histograms, fed by every instrumented op above.
    let samples = spbla_obs::metrics_global().snapshot_prefixed("spbla_kernel_");
    println!(
        "{:<64} {:>8} {:>10} {:>10} {:>10}",
        "metric{backend,kernel}", "count", "p50", "p95", "max"
    );
    let mut entries: Vec<String> = Vec::new();
    for s in &samples {
        let SampleValue::Histogram(h) = &s.value else {
            continue;
        };
        println!(
            "{:<64} {:>8} {:>10} {:>10} {:>10}",
            s.name, h.count, h.p50, h.p95, h.max
        );
        entries.push(format!(
            r#"    {{"metric": "{}", "count": {}, "sum": {}, "p50": {}, "p95": {}, "max": {}}}"#,
            s.name.replace('"', "\\\""),
            h.count,
            h.sum,
            h.p50,
            h.p95,
            h.max
        ));
    }
    let json = format!(
        "{{\n  \"tracing_overhead_pct\": {overhead_pct:.2},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_obs.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_obs.json: {e}");
        std::process::exit(1);
    });
    println!(
        "\nwrote BENCH_obs.json ({} kernel histograms, overhead {overhead_pct:+.2}%)",
        entries.len()
    );

    let device = inst.device().expect("cuda-sim has a device");
    let s = device.stats();
    records.push(JsonRecord {
        experiment: "obs".into(),
        config: vec![
            ("tracing_overhead_pct".into(), format!("{overhead_pct:.2}")),
            ("kernel_histograms".into(), entries.len().to_string()),
            ("kernel_spans".into(), kernel_spans.to_string()),
        ],
        launches: s.launches,
        insertions: s.accum_insertions,
        h2d_bytes: s.h2d_bytes,
        d2h_bytes: s.d2h_bytes,
        d2d_bytes: s.d2d_bytes,
        peak_bytes: s.peak_bytes,
    });
}

// ---------------------------------------------------------------- E14
fn fusion(records: &mut Vec<JsonRecord>) {
    header("FUSION — fused accumulating masked SpGEMM vs the unfused composition (E14 gate)");
    println!("(the claims to check: the fused delta closure launches ≥25% fewer");
    println!(" kernels than the unfused mxm_compmask + ewise_add + nnz loop, never");
    println!(" materialises the intermediate product, and the gathered closure is");
    println!(" bit-identical on 1/2/4-device grids; push/pull decisions are counted)\n");
    use spbla_graph::closure::{closure_delta, closure_delta_on_devices};
    use spbla_graph::rpq_bfs::rpq_from_sources;
    use spbla_lang::Regex;

    let mut table = SymbolTable::new();
    let g = lubm_rung(2, &mut table);
    let n = g.n_vertices();
    let adj = g.adjacency_csr();
    let pairs = adj.to_pairs();
    println!("LUBM rung: n={n}, nnz={}", adj.nnz());

    // The schedule the fused kernel replaces, spelled out: one
    // standalone complement-masked product per round (the intermediate
    // this PR elides), a separate union launch, and an nnz-reduction
    // termination probe against an unprimed handle.
    let unfused_closure = |m: &Matrix| -> (Matrix, usize) {
        let mut c = m.duplicate().expect("duplicate");
        let mut delta = m.duplicate().expect("duplicate");
        let mut intermediate_bytes = 0usize;
        loop {
            let fresh = c.mxm_compmask(&delta, &c).expect("masked product");
            intermediate_bytes += fresh.memory_bytes();
            if fresh.nnz() == 0 {
                break;
            }
            c = c.ewise_add(&fresh).expect("union");
            delta = fresh;
        }
        (c, intermediate_bytes)
    };

    let inst = Instance::cuda_sim();
    let m = upload(&inst, n, &pairs);
    let device = inst.device().expect("cuda-sim has a device");

    let s0 = device.stats();
    let (c_unfused, elided_bytes) = unfused_closure(&m);
    let s1 = device.stats();
    let c_fused = closure_delta(&m).expect("fused closure");
    let s2 = device.stats();
    let unfused_launches = s1.launches - s0.launches;
    let fused_launches = s2.launches - s1.launches;
    let fused_insertions = s2.accum_insertions - s1.accum_insertions;
    assert_eq!(
        c_fused.read(),
        c_unfused.read(),
        "fused and unfused closures diverge"
    );
    let t_unfused = time_avg(RUNS, || {
        unfused_closure(&m);
    });
    let t_fused = time_avg(RUNS, || {
        closure_delta(&m).expect("fused closure");
    });
    let reduction_pct = 100.0 * (1.0 - fused_launches as f64 / unfused_launches.max(1) as f64);
    println!(
        "unfused delta closure: {unfused_launches} launches, {elided_bytes} intermediate bytes, {}s",
        secs(t_unfused)
    );
    println!(
        "fused delta closure:   {fused_launches} launches, 0 intermediate bytes, {}s",
        secs(t_fused)
    );
    println!("launch reduction: {reduction_pct:.1}% (gate: >= 25%)");

    // Push/pull direction decisions on a LUBM traversal: single-source
    // frontiers stay under the 1/32 density crossover (push row
    // gathers); saturating the sources from every vertex tips the
    // frontier over it (pull bit-word sweeps).
    let dir_count = |name: &str| {
        spbla_obs::metrics_global()
            .counter(&spbla_obs::labeled(name, &[("backend", "cuda-sim")]))
            .get()
    };
    let (push0, pull0) = (
        dir_count("spbla_frontier_push_total"),
        dir_count("spbla_frontier_pull_total"),
    );
    let query = Regex::parse("memberOf . subOrganizationOf*", &mut table).expect("query parses");
    for src in 0..8u32 {
        rpq_from_sources(&g, &query, &[src * 97 % n], &inst).expect("rpq");
    }
    let everyone: Vec<u32> = (0..n).collect();
    rpq_from_sources(&g, &query, &everyone, &inst).expect("rpq");
    let push_decisions = dir_count("spbla_frontier_push_total") - push0;
    let pull_decisions = dir_count("spbla_frontier_pull_total") - pull0;
    println!("frontier direction decisions: {push_decisions} push, {pull_decisions} pull");

    // The distributed schedule must gather bit-identically on every
    // grid width — same pairs, same checksum.
    let fnv = |pairs: &[(u32, u32)]| -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &(r, c) in pairs {
            for b in r.to_le_bytes().into_iter().chain(c.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    };
    let reference = c_fused.read();
    let reference_sum = fnv(&reference);
    let mut grid_sums: Vec<(usize, u64)> = Vec::new();
    for devices in [1usize, 2, 4] {
        let (closed, _grid) = closure_delta_on_devices(&adj, devices).expect("dist closure");
        let sum = fnv(&closed.to_pairs());
        assert_eq!(
            closed.to_pairs(),
            reference,
            "{devices}-device closure diverges from single-device"
        );
        grid_sums.push((devices, sum));
    }
    println!(
        "closure checksum {reference_sum:#018x} bit-identical on {} grids",
        grid_sums
            .iter()
            .map(|(d, _)| d.to_string())
            .collect::<Vec<_>>()
            .join("/")
    );

    let grids_json = grid_sums
        .iter()
        .map(|(d, s)| format!(r#"    {{"devices": {d}, "checksum": "{s:#018x}"}}"#))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"graph\": \"LUBM\", \"n\": {n}, \"nnz\": {},\n  \
         \"unfused\": {{\"launches\": {unfused_launches}, \"intermediate_bytes\": {elided_bytes}, \"seconds\": {}}},\n  \
         \"fused\": {{\"launches\": {fused_launches}, \"insertions\": {fused_insertions}, \"intermediate_bytes\": 0, \"seconds\": {}}},\n  \
         \"intermediate_bytes_elided\": {elided_bytes},\n  \
         \"launch_reduction_pct\": {reduction_pct:.1},\n  \
         \"push_decisions\": {push_decisions}, \"pull_decisions\": {pull_decisions},\n  \
         \"closure_checksums\": [\n{grids_json}\n  ]\n}}\n",
        adj.nnz(),
        secs(t_unfused),
        secs(t_fused),
    );
    std::fs::write("BENCH_fusion.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_fusion.json: {e}");
        std::process::exit(1);
    });
    println!("\nwrote BENCH_fusion.json");

    let s = device.stats();
    records.push(JsonRecord {
        experiment: "fusion".into(),
        config: vec![
            ("unfused_launches".into(), unfused_launches.to_string()),
            ("fused_launches".into(), fused_launches.to_string()),
            ("launch_reduction_pct".into(), format!("{reduction_pct:.1}")),
            ("intermediate_bytes_elided".into(), elided_bytes.to_string()),
            ("push_decisions".into(), push_decisions.to_string()),
            ("pull_decisions".into(), pull_decisions.to_string()),
        ],
        launches: s.launches,
        insertions: s.accum_insertions,
        h2d_bytes: s.h2d_bytes,
        d2h_bytes: s.d2h_bytes,
        d2d_bytes: s.d2d_bytes,
        peak_bytes: s.peak_bytes,
    });

    // The CI smoke gate: fused must beat unfused by >= 25% launches.
    if fused_launches * 4 > unfused_launches * 3 {
        eprintln!(
            "FUSION GATE FAILED: fused {fused_launches} launches vs unfused {unfused_launches} \
             ({reduction_pct:.1}% reduction, need >= 25%)"
        );
        std::process::exit(2);
    }
    println!("fusion gate passed: {reduction_pct:.1}% >= 25% launch reduction");
}

// ---------------------------------------------------------------- E15
/// FNV-1a over a sorted pair list — the bit-identity witness shared by
/// the fusion and memory gates.
fn fnv_pairs(pairs: &[(u32, u32)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(r, c) in pairs {
        for b in r.to_le_bytes().into_iter().chain(c.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn memory(records: &mut Vec<JsonRecord>) {
    header("MEMORY — adaptive tiled block storage vs flat formats (E15 gate)");
    println!("(the claims to check: per-tile dense-bit/CSR/COO storage with");
    println!(" densify-time format switching answers the LUBM delta closure");
    println!(" bit-identically while holding >= 2x fewer peak resident bytes than");
    println!(" flat CSR, and fits >= 1.5x more graphs into the same catalog");
    println!(" residency budget)\n");
    use spbla_core::Backend;
    use spbla_engine::Catalog;

    // LUBM base plus a deep citation thread through the tail of the
    // vertex range (as in E13): the thread's closure is a triangular
    // block that *densifies* round over round — the workload the
    // densify-time format switching exists for. The shallow ontology
    // hierarchy alone converges while still COO-sparse everywhere.
    const CHAIN: u32 = 192;
    let mut table = SymbolTable::new();
    let mut g = lubm_rung(2, &mut table);
    let cites = table.intern("cites");
    let n = g.n_vertices();
    for v in n - CHAIN..n - 1 {
        g.add_edge(v, cites, v + 1);
    }
    let adj = g.adjacency_csr();
    let pairs = adj.to_pairs();
    println!(
        "LUBM fixture: n={n}, nnz={} (+{CHAIN}-deep citation thread)\n",
        adj.nnz()
    );

    // Part A — the delta-closure working set (accumulator + delta),
    // sampled after every fixpoint round; the peak is what a device
    // must actually hold to finish the query.
    struct ClosureRun {
        peak: usize,
        final_bytes: usize,
        rounds: usize,
        checksum: u64,
        census: Option<(usize, usize, usize)>,
    }
    let run_closure = |inst: &Instance| -> ClosureRun {
        let m = upload(inst, n, &pairs);
        let mut c = m.duplicate().expect("duplicate");
        let mut delta = m;
        let mut peak = c.memory_bytes() + delta.memory_bytes();
        let mut rounds = 0usize;
        loop {
            let step = c
                .mxm_accum_compmask(&c, &delta, true)
                .expect("fused closure step");
            rounds += 1;
            if step.fresh_nnz == 0 {
                break;
            }
            c = step.acc;
            delta = step.fresh.expect("fresh requested");
            peak = peak.max(c.memory_bytes() + delta.memory_bytes());
        }
        ClosureRun {
            peak,
            final_bytes: c.memory_bytes(),
            rounds,
            checksum: fnv_pairs(&c.read()),
            census: c.block_format_census(),
        }
    };

    let switch_counter = spbla_obs::metrics_global().counter("spbla_block_format_switches_total");
    let sw0 = switch_counter.get();
    let blocked = run_closure(&Instance::blocked(Backend::CudaSim));
    let switches = switch_counter.get() - sw0;
    let flat = run_closure(&Instance::cuda_sim());
    let dense = run_closure(&Instance::cpu_dense());
    assert_eq!(
        blocked.checksum, flat.checksum,
        "blocked closure diverges from flat CSR"
    );
    assert_eq!(
        blocked.checksum, dense.checksum,
        "blocked closure diverges from dense-bit"
    );
    println!(
        "{:<12} {:>14} {:>14} {:>7}",
        "storage", "peak-bytes", "final-bytes", "rounds"
    );
    for (name, run) in [
        ("blocked", &blocked),
        ("flat_csr", &flat),
        ("dense_bit", &dense),
    ] {
        println!(
            "{:<12} {:>14} {:>14} {:>7}",
            name, run.peak, run.final_bytes, run.rounds
        );
    }
    let (td, tc, to) = blocked.census.expect("blocked repr reports a census");
    let reduction_csr = flat.peak as f64 / blocked.peak.max(1) as f64;
    let reduction_dense = dense.peak as f64 / blocked.peak.max(1) as f64;
    println!(
        "closure checksum {:#018x} bit-identical across storages; \
         final tile census: {td} dense / {tc} csr / {to} coo; \
         {switches} densify-time format switches",
        blocked.checksum
    );
    println!(
        "peak reduction: {reduction_csr:.2}x vs flat CSR (gate: >= 2.0), {reduction_dense:.2}x vs dense-bit"
    );

    // Part B — graphs resident under one catalog budget. Same budget,
    // same LRU policy, same touch order: the only variable is the
    // storage format beneath `Matrix::from_csr`.
    const GRAPHS: usize = 12;
    let base = g.clone();
    let flat_probe = {
        let cat = Catalog::new(1, usize::MAX);
        cat.add("probe", base.clone());
        cat.resident("probe", 0, &Instance::cuda_sim())
            .expect("probe resides")
            .bytes
    };
    let budget = flat_probe * 4 + flat_probe / 2; // fits ~4.5 flat graphs
    let count_resident = |inst: &Instance| -> usize {
        let cat = Catalog::new(1, budget);
        for i in 0..GRAPHS {
            cat.add(&format!("g{i}"), base.clone());
        }
        for i in 0..GRAPHS {
            cat.resident(&format!("g{i}"), 0, inst).expect("resides");
        }
        cat.resident_count(0)
    };
    let flat_resident = count_resident(&Instance::cuda_sim());
    let blocked_resident = count_resident(&Instance::blocked(Backend::CudaSim));
    let residency_gain = blocked_resident as f64 / flat_resident.max(1) as f64;
    println!(
        "catalog: budget {budget} B ({GRAPHS} graphs offered): flat CSR holds {flat_resident}, \
         blocked holds {blocked_resident} ({residency_gain:.2}x, gate: >= 1.5)"
    );

    let json = format!(
        "{{\n  \"graph\": \"LUBM\", \"n\": {n}, \"nnz\": {},\n  \
         \"closure\": {{\n    \
         \"blocked\": {{\"peak_bytes\": {}, \"final_bytes\": {}, \"rounds\": {}}},\n    \
         \"flat_csr\": {{\"peak_bytes\": {}, \"final_bytes\": {}, \"rounds\": {}}},\n    \
         \"dense_bit\": {{\"peak_bytes\": {}, \"final_bytes\": {}, \"rounds\": {}}}\n  }},\n  \
         \"checksum\": \"{:#018x}\",\n  \
         \"peak_reduction_vs_csr\": {reduction_csr:.2},\n  \
         \"peak_reduction_vs_dense\": {reduction_dense:.2},\n  \
         \"tile_census\": {{\"dense\": {td}, \"csr\": {tc}, \"coo\": {to}}},\n  \
         \"format_switches\": {switches},\n  \
         \"catalog\": {{\"budget_bytes\": {budget}, \"graphs_offered\": {GRAPHS}, \
         \"flat_resident\": {flat_resident}, \"blocked_resident\": {blocked_resident}, \
         \"residency_gain\": {residency_gain:.2}}}\n}}\n",
        adj.nnz(),
        blocked.peak,
        blocked.final_bytes,
        blocked.rounds,
        flat.peak,
        flat.final_bytes,
        flat.rounds,
        dense.peak,
        dense.final_bytes,
        dense.rounds,
        blocked.checksum,
    );
    std::fs::write("BENCH_memory.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_memory.json: {e}");
        std::process::exit(1);
    });
    println!("\nwrote BENCH_memory.json");

    records.push(JsonRecord {
        experiment: "memory".into(),
        config: vec![
            ("blocked_peak_bytes".into(), blocked.peak.to_string()),
            ("flat_csr_peak_bytes".into(), flat.peak.to_string()),
            ("dense_bit_peak_bytes".into(), dense.peak.to_string()),
            (
                "peak_reduction_vs_csr".into(),
                format!("{reduction_csr:.2}"),
            ),
            ("format_switches".into(), switches.to_string()),
            ("flat_resident".into(), flat_resident.to_string()),
            ("blocked_resident".into(), blocked_resident.to_string()),
        ],
        launches: 0,
        insertions: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        d2d_bytes: 0,
        peak_bytes: blocked.peak,
    });

    // The CI memory-smoke gates.
    let mut failed = false;
    if reduction_csr < 2.0 {
        eprintln!(
            "MEMORY GATE FAILED: peak {reduction_csr:.2}x vs flat CSR, need >= 2.0 \
             (blocked {} B vs flat {} B)",
            blocked.peak, flat.peak
        );
        failed = true;
    }
    if residency_gain < 1.5 {
        eprintln!(
            "MEMORY GATE FAILED: residency gain {residency_gain:.2}x, need >= 1.5 \
             (blocked {blocked_resident} vs flat {flat_resident} graphs)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(2);
    }
    println!(
        "memory gates passed: peak {reduction_csr:.2}x >= 2.0, residency {residency_gain:.2}x >= 1.5"
    );
}

// ---------------------------------------------------------------- E16
fn frontier(records: &mut Vec<JsonRecord>) {
    header("FRONTIER — per-source frontier BFS vs batched product machine (crossover sweep)");
    println!("(the measurement behind the planner's FRONTIER_MAX_SOURCES: below the");
    println!(" crossover a batch answers faster as one sparse-vector frontier chase");
    println!(" per source; above it the b x n product machine amortises its");
    println!(" per-round launch chain; answers are bit-identical either way)\n");
    use spbla_graph::rpq_batch::rpq_from_each_source_mats;
    use spbla_graph::rpq_bfs::rpq_from_sources_mats;
    use spbla_lang::glushkov::glushkov;
    use spbla_lang::Regex;

    let mut table = SymbolTable::new();
    let g = lubm_rung(10, &mut table);
    let n = g.n_vertices();
    let query = Regex::parse("memberOf . subOrganizationOf*", &mut table).expect("query parses");
    let nfa = glushkov(&query);
    let inst = Instance::cuda_sim();
    let mats = g.matrices(&inst).expect("labels upload");
    println!(
        "LUBM fixture: n={n}, nnz={}; query memberOf . subOrganizationOf*\n",
        g.n_edges()
    );

    // Single-request latencies sit in the tens of microseconds; average
    // over far more runs than the seconds-scale experiments need.
    let runs = RUNS.max(30);
    println!(
        "{:<8} {:>12} {:>12} {:>8}  winner",
        "sources", "frontier-us", "machine-us", "ratio"
    );
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    let mut crossover: Option<usize> = None;
    for &k in &[1usize, 2, 3, 4, 6, 8, 12, 16, 24] {
        let sources: Vec<u32> = (0..k).map(|i| (i as u32 * 131) % n).collect();
        // Bit-identity first: both paths must answer each source the same.
        let per_source: Vec<Vec<u32>> = sources
            .iter()
            .map(|&s| rpq_from_sources_mats(&mats, n, &nfa, &[s], &inst).expect("frontier"))
            .collect();
        let batched = rpq_from_each_source_mats(&mats, n, &nfa, &sources, &inst).expect("machine");
        assert_eq!(per_source, batched, "paths diverge at {k} sources");
        let t_frontier = time_avg(runs, || {
            for &s in &sources {
                std::hint::black_box(
                    rpq_from_sources_mats(&mats, n, &nfa, &[s], &inst)
                        .expect("frontier")
                        .len(),
                );
            }
        });
        let t_machine = time_avg(runs, || {
            std::hint::black_box(
                rpq_from_each_source_mats(&mats, n, &nfa, &sources, &inst)
                    .expect("machine")
                    .len(),
            );
        });
        let (fs, ms) = (t_frontier.as_secs_f64(), t_machine.as_secs_f64());
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8.2}  {}",
            k,
            fs * 1e6,
            ms * 1e6,
            ms / fs.max(1e-12),
            if fs <= ms { "frontier" } else { "machine" }
        );
        if fs > ms && crossover.is_none() {
            crossover = Some(k);
        }
        sweep.push((k, fs, ms));
    }
    // The recommended constant: the largest swept batch size still won
    // by the frontier path — i.e. one below the first machine win.
    let recommend = match crossover {
        Some(k) => sweep
            .iter()
            .map(|&(b, _, _)| b)
            .take_while(|&b| b < k)
            .last()
            .unwrap_or(1),
        None => sweep.last().map(|&(b, _, _)| b).unwrap_or(1),
    };
    println!(
        "\nfirst machine win at {} sources -> FRONTIER_MAX_SOURCES = {recommend}",
        crossover.map_or("never".into(), |k| k.to_string())
    );

    let rows = sweep
        .iter()
        .map(|(k, fs, ms)| {
            format!(r#"    {{"sources": {k}, "frontier_s": {fs:.6}, "machine_s": {ms:.6}}}"#)
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"graph\": \"LUBM\", \"n\": {n}, \"nnz\": {},\n  \
         \"query\": \"memberOf . subOrganizationOf*\",\n  \
         \"sweep\": [\n{rows}\n  ],\n  \
         \"crossover_sources\": {},\n  \"frontier_max_sources\": {recommend}\n}}\n",
        g.n_edges(),
        crossover.map_or("null".into(), |k| k.to_string()),
    );
    std::fs::write("BENCH_frontier.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_frontier.json: {e}");
        std::process::exit(1);
    });
    println!("wrote BENCH_frontier.json");

    records.push(JsonRecord {
        experiment: "frontier".into(),
        config: vec![
            (
                "crossover_sources".into(),
                crossover.map_or("never".into(), |k| k.to_string()),
            ),
            ("frontier_max_sources".into(), recommend.to_string()),
        ],
        launches: 0,
        insertions: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        d2d_bytes: 0,
        peak_bytes: 0,
    });
}

// ---------------------------------------------------------------- E9
fn formats() {
    header("§IV — CSR vs COO storage across sparsity (format-choice claim)");
    println!("(CSR = (m+1+nnz)·4 B; COO = 2·nnz·4 B; COO wins below 1 nnz/row)\n");
    let m: u32 = 100_000;
    println!(
        "{:>10} {:>12} {:>12}  winner",
        "nnz", "CSR bytes", "COO bytes"
    );
    for nnz in [1_000usize, 10_000, 50_000, 100_000, 500_000, 1_000_000] {
        let pairs = spbla_data::random::random_pairs(m, nnz, 7);
        let csr = CsrBool::from_pairs(m, m, &pairs).expect("in bounds");
        let coo = CooBool::from(&csr);
        println!(
            "{:>10} {:>12} {:>12}  {}",
            csr.nnz(),
            csr.memory_bytes(),
            coo.memory_bytes(),
            if coo.memory_bytes() < csr.memory_bytes() {
                "COO"
            } else {
                "CSR"
            }
        );
    }
    let _ = Matrix::zeros(&Instance::cpu(), 1, 1); // keep Matrix import honest
}

// ---------------------------------------------------------------- E17
fn load(records: &mut Vec<JsonRecord>) {
    header("E17 — open-loop load: saturation sweep + QoS admission tiers");
    println!("(arrivals are drawn up front from a seeded Poisson process and");
    println!(" submitted on schedule whether or not earlier requests finished —");
    println!(" no coordinated omission; latency is charged from the scheduled");
    println!(" arrival, rejections are counted, never retried. The sweep walks an");
    println!(" offered-rate ladder calibrated to the measured service time; the");
    println!(" QoS rung then overloads the engine and checks that batch-tier");
    println!(" admission gives way before the interactive tier does)\n");
    use spbla_durable::{
        run_open_loop, run_open_loop_mixed, saturation_sweep, write_query_templates, LoadConfig,
    };
    use spbla_engine::{Engine, EngineConfig, Query};
    use spbla_multidev::DeviceGrid;

    let engine = Engine::new(
        DeviceGrid::new(2),
        EngineConfig {
            queue_capacity: 16,
            ..EngineConfig::default()
        },
    );
    let graph = engine.with_symbols(|table| lubm_rung(1, table));
    let n_vertices = graph.n_vertices();
    let write_label = *graph.labels().first().expect("lubm has labels");
    engine.add_graph("lubm", graph);
    let queries: Vec<Query> = (0..8u32)
        .map(|i| Query::RpqFromSource {
            text: "memberOf . subOrganizationOf*".into(),
            source: (i * 131) % n_vertices,
        })
        .collect();

    // Calibrate the ladder to this machine: mean closed-loop service
    // time of the template mix sets the rate unit.
    let calib = std::time::Instant::now();
    for q in queries.iter().cycle().take(16) {
        engine
            .submit("lubm", q.clone())
            .expect("calibration fits the queue")
            .wait()
            .result
            .expect("calibration completes");
    }
    let service_s = calib.elapsed().as_secs_f64() / 16.0;
    let unit = 1.0 / service_s.max(1e-6);
    println!(
        "calibration: mean service {:.2} ms -> rate unit {:.0} req/s\n",
        service_s * 1e3,
        unit
    );

    let base = LoadConfig {
        requests: 120,
        interactive_fraction: 0.3,
        interactive_deadline_ms: Some(250),
        batch_deadline_ms: None,
        ..LoadConfig::default()
    };
    let rates: Vec<f64> = [0.4, 0.8, 1.6, 3.2, 6.4].iter().map(|m| m * unit).collect();
    let (points, saturation) = saturation_sweep(&engine, "lubm", &queries, &[], &base, &rates);
    println!(
        "{:>9} {:>9} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9}  sat",
        "rate", "achieved", "rejects", "dead", "int-p50", "int-p95", "bat-p50", "bat-p95"
    );
    for p in &points {
        let r = &p.report;
        println!(
            "{:>9.0} {:>9.1} {:>8} {:>7} {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m  {}",
            p.rate,
            r.achieved_rate,
            r.rejected(),
            r.interactive.deadline_exceeded + r.batch.deadline_exceeded,
            r.interactive.p50_us as f64 / 1e3,
            r.interactive.p95_us as f64 / 1e3,
            r.batch.p50_us as f64 / 1e3,
            r.batch.p95_us as f64 / 1e3,
            if r.saturated() { "yes" } else { "no" }
        );
    }
    match saturation {
        Some(rate) => println!("\nsaturation detected at {rate:.0} req/s offered"),
        None => println!("\nno saturation up to {:.0} req/s", rates[rates.len() - 1]),
    }

    // The QoS rung: well past saturation, where admission is the only
    // thing keeping the interactive tier alive.
    let qos_rate = saturation.unwrap_or(rates[rates.len() - 1]) * 2.0;
    let qos_config = LoadConfig {
        rate_per_sec: qos_rate,
        requests: 160,
        seed: base.seed.wrapping_add(1000),
        ..base.clone()
    };
    let qos = run_open_loop(&engine, "lubm", &queries, &qos_config);
    let int_rej_rate = qos.interactive.rejected as f64 / qos.interactive.offered.max(1) as f64;
    let bat_rej_rate = qos.batch.rejected as f64 / qos.batch.offered.max(1) as f64;
    println!(
        "\nQoS rung at {qos_rate:.0} req/s: interactive {}/{} rejected ({:.0}%), \
         batch {}/{} rejected ({:.0}%), interactive p95 {:.1} ms",
        qos.interactive.rejected,
        qos.interactive.offered,
        int_rej_rate * 100.0,
        qos.batch.rejected,
        qos.batch.offered,
        bat_rej_rate * 100.0,
        qos.interactive.p95_us as f64 / 1e3
    );

    // The write-mix rung: a quarter of arrivals are update batches on
    // the batch tier, offered well below saturation — reads must keep
    // their SLOs and the writes must all land.
    let mix_rate = rates[0]; // 0.4× the calibrated unit: every write
                             // invalidates the cached closure, so the
                             // mixed rung's sustainable rate sits well
                             // below the read-only ladder's
    let mix_config = LoadConfig {
        rate_per_sec: mix_rate,
        requests: 120,
        seed: base.seed.wrapping_add(2000),
        write_fraction: 0.25,
        ..base.clone()
    };
    let write_templates = write_query_templates(write_label, n_vertices, 8, 8, mix_config.seed);
    let mix = run_open_loop_mixed(&engine, "lubm", &queries, &write_templates, &mix_config);
    println!(
        "\nwrite mix at {mix_rate:.0} req/s (25% writes): reads int p50/p95/p99 \
         {:.1}/{:.1}/{:.1} ms, bat {:.1}/{:.1}/{:.1} ms, writes {}/{} completed \
         p50/p95/p99 {:.1}/{:.1}/{:.1} ms, saturated {}",
        mix.interactive.p50_us as f64 / 1e3,
        mix.interactive.p95_us as f64 / 1e3,
        mix.interactive.p99_us as f64 / 1e3,
        mix.batch.p50_us as f64 / 1e3,
        mix.batch.p95_us as f64 / 1e3,
        mix.batch.p99_us as f64 / 1e3,
        mix.writes.completed,
        mix.writes.offered,
        mix.writes.p50_us as f64 / 1e3,
        mix.writes.p95_us as f64 / 1e3,
        mix.writes.p99_us as f64 / 1e3,
        if mix.saturated() { "yes" } else { "no" }
    );
    engine.shutdown();

    let sweep_rows = points
        .iter()
        .map(|p| {
            let r = &p.report;
            format!(
                r#"    {{"rate": {:.1}, "achieved": {:.1}, "offered": {}, "rejected": {}, "deadline_exceeded": {}, "interactive_p50_us": {}, "interactive_p95_us": {}, "interactive_p99_us": {}, "batch_p50_us": {}, "batch_p95_us": {}, "batch_p99_us": {}, "saturated": {}}}"#,
                p.rate,
                r.achieved_rate,
                r.offered(),
                r.rejected(),
                r.interactive.deadline_exceeded + r.batch.deadline_exceeded,
                r.interactive.p50_us,
                r.interactive.p95_us,
                r.interactive.p99_us,
                r.batch.p50_us,
                r.batch.p95_us,
                r.batch.p99_us,
                r.saturated()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // Interactive p95 must stay under the deadline plus scheduling
    // slack while the batch tier is saturated away.
    let p95_bound_us: u64 = 400_000;
    let json = format!(
        "{{\n  \"service_ms\": {:.3}, \"rate_unit\": {:.1},\n  \"sweep\": [\n{sweep_rows}\n  ],\n  \
         \"saturation_rate\": {},\n  \"qos\": {{\"rate\": {qos_rate:.1}, \
         \"interactive_offered\": {}, \"interactive_rejected\": {}, \
         \"interactive_p95_us\": {}, \"batch_offered\": {}, \"batch_rejected\": {}, \
         \"batch_p95_us\": {}}},\n  \"p95_bound_us\": {p95_bound_us},\n  \
         \"write_mix\": {{\"rate\": {mix_rate:.1}, \"write_fraction\": 0.25, \
         \"writes_offered\": {}, \"writes_completed\": {}, \"writes_failed\": {}, \
         \"writes_p50_us\": {}, \"writes_p95_us\": {}, \"writes_p99_us\": {}, \
         \"interactive_p50_us\": {}, \"interactive_p95_us\": {}, \"interactive_p99_us\": {}, \
         \"batch_p50_us\": {}, \"batch_p95_us\": {}, \"batch_p99_us\": {}, \
         \"saturated\": {}}}\n}}\n",
        service_s * 1e3,
        unit,
        saturation.map_or("null".into(), |r| format!("{r:.1}")),
        qos.interactive.offered,
        qos.interactive.rejected,
        qos.interactive.p95_us,
        qos.batch.offered,
        qos.batch.rejected,
        qos.batch.p95_us,
        mix.writes.offered,
        mix.writes.completed,
        mix.writes.failed,
        mix.writes.p50_us,
        mix.writes.p95_us,
        mix.writes.p99_us,
        mix.interactive.p50_us,
        mix.interactive.p95_us,
        mix.interactive.p99_us,
        mix.batch.p50_us,
        mix.batch.p95_us,
        mix.batch.p99_us,
        mix.saturated(),
    );
    std::fs::write("BENCH_load.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_load.json: {e}");
        std::process::exit(1);
    });
    println!("wrote BENCH_load.json");

    records.push(JsonRecord {
        experiment: "load".into(),
        config: vec![
            ("qos_rate".into(), format!("{qos_rate:.1}")),
            (
                "saturation_rate".into(),
                saturation.map_or("never".into(), |r| format!("{r:.1}")),
            ),
            (
                "interactive_p95_us".into(),
                qos.interactive.p95_us.to_string(),
            ),
            ("batch_p95_us".into(), qos.batch.p95_us.to_string()),
            (
                "interactive_rejected".into(),
                qos.interactive.rejected.to_string(),
            ),
            ("batch_rejected".into(), qos.batch.rejected.to_string()),
        ],
        launches: 0,
        insertions: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        d2d_bytes: 0,
        peak_bytes: 0,
    });

    // The CI load-smoke gates.
    let mut failed = false;
    if points.first().map(|p| p.report.saturated()) == Some(true) {
        eprintln!("LOAD GATE FAILED: the lowest rung already saturates — ladder miscalibrated");
        failed = true;
    }
    if saturation.is_none() {
        eprintln!(
            "LOAD GATE FAILED: no saturation point detected up to {:.0} req/s",
            rates[rates.len() - 1]
        );
        failed = true;
    }
    if qos.batch.rejected == 0 {
        eprintln!("LOAD GATE FAILED: batch tier never bounced at the QoS rung — admission idle");
        failed = true;
    }
    if int_rej_rate >= bat_rej_rate {
        eprintln!(
            "LOAD GATE FAILED: interactive rejection rate {:.2} >= batch {:.2} — tiers inverted",
            int_rej_rate, bat_rej_rate
        );
        failed = true;
    }
    if qos.interactive.p95_us > p95_bound_us {
        eprintln!(
            "LOAD GATE FAILED: interactive p95 {} us over the {} us bound under overload",
            qos.interactive.p95_us, p95_bound_us
        );
        failed = true;
    }
    if mix.saturated() {
        eprintln!(
            "LOAD GATE FAILED: write mix saturated at {mix_rate:.0} req/s — \
             writes starve the sub-saturation read path"
        );
        failed = true;
    }
    if mix.writes.offered == 0 || mix.writes.completed == 0 {
        eprintln!(
            "LOAD GATE FAILED: write mix scheduled {} writes, completed {}",
            mix.writes.offered, mix.writes.completed
        );
        failed = true;
    }
    if mix.writes.failed > 0 {
        eprintln!(
            "LOAD GATE FAILED: {} write batches failed outright",
            mix.writes.failed
        );
        failed = true;
    }
    if failed {
        std::process::exit(2);
    }
    println!(
        "load gates passed: saturation at {:.0} req/s, batch bounced first \
         ({:.0}% vs {:.0}%), interactive p95 {:.1} ms <= {:.0} ms",
        saturation.unwrap_or(0.0),
        bat_rej_rate * 100.0,
        int_rej_rate * 100.0,
        qos.interactive.p95_us as f64 / 1e3,
        p95_bound_us as f64 / 1e3
    );
}

// ---------------------------------------------------------------- E18
fn replication(records: &mut Vec<JsonRecord>) {
    header("E18 — replicated grids: bit-identity + read-capacity scaling");
    println!("(R copies of one versioned graph, each on its own device grid,");
    println!(" behind a single write path; updates fan out through the comm");
    println!(" layer at WAL wire size. Every replica must answer with the same");
    println!(" closure checksum, and aggregate read capacity — each replica is");
    println!(" an independent grid, so capacity is the sum of per-replica");
    println!(" measured read rates — must scale with R. A shared lock or");
    println!(" fan-out pollution on the read path would show up here as a");
    println!(" per-replica rate drop and fail the gate)\n");
    use spbla_durable::ReplicaSet;
    use spbla_stream::UpdateBatch;

    let mut table = SymbolTable::new();
    let graph = lubm_rung(1, &mut table);
    let member = table.get("memberOf").expect("lubm label");
    let n = graph.n_vertices();
    println!("LUBM fixture n={n}, nnz={}\n", graph.n_edges());

    const BATCHES: u32 = 6;
    const READS: usize = 8;
    println!(
        "{:>9} {:>12} {:>14} {:>14} {:>16}",
        "replicas", "checksum", "read-ms/rep", "agg-reads/s", "fanout-d2d-B"
    );
    let mut results: Vec<(usize, u64, f64, u64)> = Vec::new();
    for replicas in [1usize, 2, 3] {
        let set = ReplicaSet::new(&graph, replicas, 1).expect("replica set builds");
        for k in 0..BATCHES {
            let mut batch = UpdateBatch::new();
            batch.insert(k % n, member, (k * 17 + 1) % n).insert(
                (k * 31) % n,
                member,
                (k * 7 + 3) % n,
            );
            set.apply(&batch).expect("fan-out applies");
        }
        // Bit-identity across the whole set before anything is timed.
        let reads: Vec<_> = (0..replicas)
            .map(|r| set.read_closure_on(r).expect("replica read"))
            .collect();
        let checksum = reads[0].checksum;
        assert!(
            reads.iter().all(|r| r.checksum == checksum),
            "replica checksums diverged at R={replicas}"
        );
        assert!(reads.iter().all(|r| r.version == BATCHES as u64));
        // Per-replica read rate, measured serially on each replica's own
        // grid (single-core host: wall-clock thread scaling is not
        // available, replica independence is what's being certified).
        let mut per_replica_s = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let t = time_avg(READS, || {
                std::hint::black_box(set.read_closure_on(r).expect("replica read").pairs.len());
            });
            per_replica_s.push(t.as_secs_f64());
        }
        let mean_read_s = per_replica_s.iter().sum::<f64>() / replicas as f64;
        let aggregate = per_replica_s.iter().map(|s| 1.0 / s.max(1e-9)).sum::<f64>();
        // Routed reads: the rotating cursor must spread load.
        let mut served = vec![0usize; replicas];
        for _ in 0..replicas * 4 {
            served[set
                .read_closure(BATCHES as u64)
                .expect("routed read")
                .replica] += 1;
        }
        assert!(
            served.iter().all(|&c| c > 0),
            "routing starved a replica at R={replicas}: {served:?}"
        );
        let fanout = spbla_obs::metrics_global()
            .counter("spbla_replica_fanout_bytes_total")
            .get();
        println!(
            "{:>9} {:>12x} {:>14.2} {:>14.1} {:>16}",
            replicas,
            checksum,
            mean_read_s * 1e3,
            aggregate,
            fanout
        );
        results.push((replicas, checksum, aggregate, fanout));
    }

    let base_checksum = results[0].1;
    assert!(
        results.iter().all(|&(_, c, _, _)| c == base_checksum),
        "checksum changed with replica count"
    );
    let scaling = results[2].2 / results[0].2.max(1e-9);
    println!("\nread-capacity scaling at 3 replicas: {scaling:.2}x vs 1");

    let rows = results
        .iter()
        .map(|(r, c, agg, fanout)| {
            format!(
                r#"    {{"replicas": {r}, "checksum": "{c:016x}", "aggregate_reads_per_s": {agg:.1}, "fanout_d2d_bytes": {fanout}}}"#
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"graph\": \"LUBM\", \"n\": {n}, \"batches\": {BATCHES},\n  \
         \"sets\": [\n{rows}\n  ],\n  \
         \"scaling_3v1\": {scaling:.3}, \"bit_identical\": true\n}}\n"
    );
    std::fs::write("BENCH_replication.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_replication.json: {e}");
        std::process::exit(1);
    });
    println!("wrote BENCH_replication.json");

    records.push(JsonRecord {
        experiment: "replication".into(),
        config: vec![
            ("checksum".into(), format!("{base_checksum:016x}")),
            ("scaling_3v1".into(), format!("{scaling:.3}")),
            ("fanout_d2d_bytes".into(), results[2].3.to_string()),
        ],
        launches: 0,
        insertions: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        d2d_bytes: results[2].3,
        peak_bytes: 0,
    });

    // The CI recovery-smoke gate: replicas must be useful, not just equal.
    if scaling < 1.8 {
        eprintln!(
            "REPLICATION GATE FAILED: read capacity {scaling:.2}x at 3 replicas, need >= 1.8"
        );
        std::process::exit(2);
    }
    println!("replication gates passed: bit-identical checksums, {scaling:.2}x >= 1.8");
}

// ---------------------------------------------------------------- E19
fn condense(records: &mut Vec<JsonRecord>) {
    header("CONDENSE — SCC condensation preprocessing vs direct delta closure (E19 gate)");
    println!("(the claims to check: running the fused fixpoint on the SCC");
    println!(" condensation DAG and expanding back launches >= 1.5x fewer kernels");
    println!(" and performs >= 2x fewer accumulator insertions than the direct");
    println!(" delta closure on an SCC-heavy graph, answers bit-identically on");
    println!(" 1/2/4-device grids, and incremental SCC maintenance under an");
    println!(" insert/delete stream matches per-version recompute exactly)\n");
    use spbla_graph::closure::{closure_delta, closure_delta_on_devices};
    use spbla_prep::condensed_closure;
    use spbla_stream::{MaintainMode, SccView};

    // SCC-heavy synthetic: a chain of cycles. Each block is one strongly
    // connected component; the condensation is a 24-vertex path whose
    // closure the DAG fixpoint settles in O(log levels) rounds, while
    // the direct closure grinds out every dense all-pairs block through
    // the SpGEMM accumulator.
    let blocks = 24u32;
    let cycle = 12u32;
    let n = blocks * cycle;
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for b in 0..blocks {
        let base = b * cycle;
        for k in 0..cycle {
            pairs.push((base + k, base + (k + 1) % cycle));
        }
        if b + 1 < blocks {
            pairs.push((base, base + cycle));
        }
    }
    let inst = Instance::cuda_sim();
    let device = inst.device().expect("cuda-sim has a device");
    let m = upload(&inst, n, &pairs);

    let s0 = device.stats();
    let direct = closure_delta(&m).expect("direct closure");
    let s1 = device.stats();
    let (condensed, stats) = condensed_closure(&inst, n, &pairs).expect("condensed closure");
    let s2 = device.stats();
    let direct_launches = s1.launches - s0.launches;
    let direct_insertions = s1.accum_insertions - s0.accum_insertions;
    let cond_launches = s2.launches - s1.launches;
    let cond_insertions = s2.accum_insertions - s1.accum_insertions;
    let direct_pairs = direct.read();
    assert_eq!(
        condensed.read(),
        direct_pairs,
        "condensed closure diverges from direct"
    );
    let reference_sum = fnv_pairs(&direct_pairs);
    let t_direct = time_avg(RUNS, || {
        closure_delta(&m).expect("direct closure");
    });
    let t_cond = time_avg(RUNS, || {
        condensed_closure(&inst, n, &pairs).expect("condensed closure");
    });
    println!(
        "SCC-heavy synthetic: n={n}, nnz={}, {} SCCs (ratio {:.3}), {} DAG levels",
        pairs.len(),
        stats.n_components,
        stats.condensation_ratio,
        stats.levels
    );
    println!(
        "direct delta closure:    {direct_launches} launches, {direct_insertions} insertions, {}s",
        secs(t_direct)
    );
    println!(
        "condensed delta closure: {cond_launches} launches, {cond_insertions} insertions, \
         {} rounds on the DAG, {}s",
        stats.rounds,
        secs(t_cond)
    );
    let launch_ratio = direct_launches as f64 / cond_launches.max(1) as f64;
    let insertion_ratio = direct_insertions as f64 / cond_insertions.max(1) as f64;
    println!(
        "reductions: {launch_ratio:.2}x launches (gate >= 1.5), \
         {insertion_ratio:.2}x insertions (gate >= 2)"
    );

    // LUBM: almost a DAG already (condensation ratio ~1) — the
    // preprocessing must stay cheap and bit-identical there, not win.
    let mut table = SymbolTable::new();
    let g = lubm_rung(2, &mut table);
    let lubm_n = g.n_vertices();
    let lubm_pairs = g.adjacency_csr().to_pairs();
    let lm = upload(&inst, lubm_n, &lubm_pairs);
    let l0 = device.stats();
    let lubm_direct = closure_delta(&lm).expect("direct closure");
    let l1 = device.stats();
    let (lubm_cond, lubm_stats) =
        condensed_closure(&inst, lubm_n, &lubm_pairs).expect("condensed closure");
    let l2 = device.stats();
    assert_eq!(
        lubm_cond.read(),
        lubm_direct.read(),
        "condensed LUBM closure diverges from direct"
    );
    println!(
        "\nLUBM rung: n={lubm_n}, nnz={}, {} SCCs (ratio {:.3}); \
         direct {} launches vs condensed {} (bit-identical)",
        lubm_pairs.len(),
        lubm_stats.n_components,
        lubm_stats.condensation_ratio,
        l1.launches - l0.launches,
        l2.launches - l1.launches
    );

    // Grid identity: the direct distributed closure on 1/2/4 devices
    // must agree with the condensed single-instance answer bitwise.
    let adj = CsrBool::from_pairs(n, n, &pairs).expect("csr");
    let mut grid_sums: Vec<(usize, u64)> = Vec::new();
    for devices in [1usize, 2, 4] {
        let (closed, _grid) = closure_delta_on_devices(&adj, devices).expect("dist closure");
        let sum = fnv_pairs(&closed.to_pairs());
        assert_eq!(
            sum, reference_sum,
            "{devices}-device closure diverges from condensed answer"
        );
        grid_sums.push((devices, sum));
    }
    println!(
        "closure checksum {reference_sum:#018x} bit-identical on {} grids",
        grid_sums
            .iter()
            .map(|(d, _)| d.to_string())
            .collect::<Vec<_>>()
            .join("/")
    );

    // Incremental SCC maintenance under a LUBM insert/delete stream:
    // the component-graph merge path (with the intra-SCC-delete
    // recompute escape hatch) must land on the same canonical
    // condensation as a fresh Tarjan run at every version.
    let mut incremental = SccView::new(lubm_n, &lubm_pairs, MaintainMode::Incremental);
    let mut recompute = SccView::new(lubm_n, &lubm_pairs, MaintainMode::Recompute);
    let mut present = lubm_pairs.clone();
    let mut state = 0x5bd1_e995u64;
    let mut versions_checked = 0u32;
    for step in 0..40 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((state >> 33) % u64::from(lubm_n)) as u32;
        let v = ((state >> 13) % u64::from(lubm_n)) as u32;
        if step % 4 == 3 && !present.is_empty() {
            // Prefer an intra-component edge so the stream also
            // exercises the recompute escape hatch, not just the cheap
            // component-graph merges.
            let comp_of = &incremental.condensation().comp_of;
            let idx = present
                .iter()
                .position(|&(a, b)| a != b && comp_of[a as usize] == comp_of[b as usize])
                .unwrap_or((state >> 7) as usize % present.len());
            let victim = present.remove(idx);
            incremental.apply(&[], &[victim]);
            recompute.apply(&[], &[victim]);
        } else {
            // Every third insert closes a back-edge over an existing
            // edge, merging components; the rest are random.
            let e = if step % 3 == 0 && !present.is_empty() {
                let (a, b) = present[(state >> 21) as usize % present.len()];
                (b, a)
            } else {
                (u, v)
            };
            present.push(e);
            incremental.apply(&[e], &[]);
            recompute.apply(&[e], &[]);
        }
        assert_eq!(
            incremental.checksum(),
            recompute.checksum(),
            "incremental SCC maintenance diverged at step {step}"
        );
        versions_checked += 1;
    }
    let inc_stats = incremental.stats();
    println!(
        "incremental SCC maintenance: {versions_checked} versions bit-identical to recompute \
         ({} cheap merges, {} recompute fallbacks)",
        inc_stats.incremental, inc_stats.recomputes
    );
    assert!(
        inc_stats.incremental > 0 && inc_stats.recomputes > 0,
        "stream exercised both maintenance paths"
    );

    let grids_json = grid_sums
        .iter()
        .map(|(d, s)| format!(r#"    {{"devices": {d}, "checksum": "{s:#018x}"}}"#))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"graph\": \"scc-chain\", \"n\": {n}, \"nnz\": {}, \"sccs\": {}, \
         \"condensation_ratio\": {:.4}, \"levels\": {},\n  \
         \"direct\": {{\"launches\": {direct_launches}, \"insertions\": {direct_insertions}, \"seconds\": {}}},\n  \
         \"condensed\": {{\"launches\": {cond_launches}, \"insertions\": {cond_insertions}, \"rounds\": {}, \"seconds\": {}}},\n  \
         \"launch_ratio\": {launch_ratio:.2}, \"insertion_ratio\": {insertion_ratio:.2},\n  \
         \"lubm\": {{\"n\": {lubm_n}, \"sccs\": {}, \"condensation_ratio\": {:.4}}},\n  \
         \"incremental_scc\": {{\"versions\": {versions_checked}, \"merges\": {}, \"recomputes\": {}, \"identical\": true}},\n  \
         \"closure_checksums\": [\n{grids_json}\n  ]\n}}\n",
        pairs.len(),
        stats.n_components,
        stats.condensation_ratio,
        stats.levels,
        secs(t_direct),
        stats.rounds,
        secs(t_cond),
        lubm_stats.n_components,
        lubm_stats.condensation_ratio,
        inc_stats.incremental,
        inc_stats.recomputes,
    );
    std::fs::write("BENCH_condense.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_condense.json: {e}");
        std::process::exit(1);
    });
    println!("\nwrote BENCH_condense.json");

    let s = device.stats();
    records.push(JsonRecord {
        experiment: "condense".into(),
        config: vec![
            ("direct_launches".into(), direct_launches.to_string()),
            ("condensed_launches".into(), cond_launches.to_string()),
            ("direct_insertions".into(), direct_insertions.to_string()),
            ("condensed_insertions".into(), cond_insertions.to_string()),
            ("launch_ratio".into(), format!("{launch_ratio:.2}")),
            ("insertion_ratio".into(), format!("{insertion_ratio:.2}")),
            ("sccs".into(), stats.n_components.to_string()),
        ],
        launches: s.launches,
        insertions: s.accum_insertions,
        h2d_bytes: s.h2d_bytes,
        d2h_bytes: s.d2h_bytes,
        d2d_bytes: s.d2d_bytes,
        peak_bytes: s.peak_bytes,
    });

    // The CI condense-smoke gates.
    if launch_ratio < 1.5 {
        eprintln!(
            "CONDENSE GATE FAILED: {direct_launches} direct vs {cond_launches} condensed \
             launches ({launch_ratio:.2}x, need >= 1.5x)"
        );
        std::process::exit(2);
    }
    if insertion_ratio < 2.0 {
        eprintln!(
            "CONDENSE GATE FAILED: {direct_insertions} direct vs {cond_insertions} condensed \
             insertions ({insertion_ratio:.2}x, need >= 2x)"
        );
        std::process::exit(2);
    }
    println!(
        "condense gates passed: {launch_ratio:.2}x >= 1.5x launches, \
         {insertion_ratio:.2}x >= 2x insertions, checksums identical"
    );
}

// ---------------------------------------------------------------- E20
fn failover(records: &mut Vec<JsonRecord>) {
    header("FAILOVER — failure injection, WAL-tail rejoin, group commit (E20 gate)");
    println!("(the claims to check: with 1 of 3 replicas killed mid-stream the");
    println!(" set keeps acknowledging writes and serves every routed read —");
    println!(" zero failures, bit-identical closure checksums against the");
    println!(" primary at every version; the revived replica rejoins by");
    println!(" replaying exactly the log tail it missed, never a full copy;");
    println!(" and group commit spends >= 3x fewer fsyncs than sync-every-");
    println!(" append at equal load while recovery of the acknowledged prefix");
    println!(" stays bit-identical between the two modes)\n");
    use spbla_durable::{recover, DurabilityConfig, DurableLog, RejoinStats, ReplicaSet};
    use spbla_stream::UpdateBatch;

    let mut table = SymbolTable::new();
    let graph = lubm_rung(1, &mut table);
    let member = table.get("memberOf").expect("lubm label");
    let n = graph.n_vertices();
    println!("LUBM fixture n={n}, nnz={}\n", graph.n_edges());

    // ---- rung 1: kill replica 1 mid-stream, revive it, keep serving.
    const BATCHES: u32 = 12;
    const FAIL_AT: u32 = 4; // fail after this batch acks
    const REVIVE_AT: u32 = 10; // revive after this batch acks
    let set = ReplicaSet::new(&graph, 3, 1).expect("replica set builds");
    let mut reads_served = 0u64;
    let mut failed_reads = 0u64;
    let mut served_on_dead = 0u64;
    let mut rejoin: Option<RejoinStats> = None;
    for k in 0..BATCHES {
        let mut batch = UpdateBatch::new();
        batch
            .insert(k % n, member, (k * 17 + 1) % n)
            .insert((k * 31) % n, member, (k * 7 + 3) % n);
        set.apply(&batch)
            .expect("write path keeps acknowledging through the failure");
        // Every write is chased by routed reads at the freshest version;
        // each must land on a live replica and answer bit-identically to
        // the primary.
        let reference = set
            .read_closure_on(0)
            .expect("primary always serves")
            .checksum;
        for _ in 0..3 {
            match set.read_closure(set.version()) {
                Ok(read) => {
                    reads_served += 1;
                    if set.is_failed(read.replica) {
                        served_on_dead += 1;
                    }
                    assert_eq!(
                        read.checksum, reference,
                        "replica {} diverged from primary after batch {k}",
                        read.replica
                    );
                }
                Err(_) => failed_reads += 1,
            }
        }
        if k + 1 == FAIL_AT {
            set.fail(1).expect("failure injection");
            println!("batch {:>2}: replica 1 killed", k + 1);
        }
        if k + 1 == REVIVE_AT {
            let stats = set.revive(1).expect("revive");
            println!(
                "batch {:>2}: replica 1 rejoined, replayed {} batches (full_resync={})",
                k + 1,
                stats.replayed,
                stats.full_resync
            );
            rejoin = Some(stats);
        }
    }
    let missed = (REVIVE_AT - FAIL_AT) as u64;
    let rejoin = rejoin.expect("revive ran");
    let finals: Vec<_> = (0..set.len())
        .map(|r| set.read_closure_on(r).expect("replica read"))
        .collect();
    let checksum = finals[0].checksum;
    let bit_identical = finals
        .iter()
        .all(|r| r.checksum == checksum && r.version == set.version());
    println!(
        "\nstream done: {reads_served} routed reads served, {failed_reads} failed, \
         checksum {checksum:016x} on all {} replicas, log entries left: {}",
        set.len(),
        set.log_entries()
    );

    // ---- rung 2: group commit vs sync-every-append at equal load.
    const APPENDS: u64 = 48;
    const FLUSH_EVERY: u64 = 8;
    let scratch = std::env::temp_dir().join(format!("spbla-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let dir_sync = scratch.join("sync");
    let dir_group = scratch.join("group");
    std::fs::create_dir_all(&dir_sync).expect("scratch dir");
    std::fs::create_dir_all(&dir_group).expect("scratch dir");
    let mk_config = |group_commit| DurabilityConfig {
        checkpoint_every: 0,
        group_commit,
        flush_every: FLUSH_EVERY,
        ..DurabilityConfig::default()
    };
    let mut log_sync =
        DurableLog::open(&dir_sync, mk_config(false), &graph, 0, &table).expect("sync log opens");
    let mut log_group =
        DurableLog::open(&dir_group, mk_config(true), &graph, 0, &table).expect("group log opens");
    for v in 1..=APPENDS {
        let mut batch = UpdateBatch::new();
        let k = v as u32;
        batch.insert(k % n, member, (k * 13 + 5) % n);
        log_sync
            .append(v, &batch, &graph, &table)
            .expect("sync append");
        log_group
            .append(v, &batch, &graph, &table)
            .expect("group append");
    }
    log_sync.flush().expect("sync flush");
    log_group.flush().expect("group flush");
    let (sync_fsyncs, group_fsyncs) = (log_sync.fsyncs(), log_group.fsyncs());
    let economy = sync_fsyncs as f64 / (group_fsyncs as f64).max(1.0);
    assert_eq!(log_sync.acked_version(), APPENDS);
    assert_eq!(log_group.acked_version(), APPENDS);
    let rec_sync = recover(&dir_sync, &mut table).expect("sync recovery");
    let rec_group = recover(&dir_group, &mut table).expect("group recovery");
    let prefixes_identical = rec_sync.head_version == rec_group.head_version
        && rec_sync.tail.len() == rec_group.tail.len()
        && rec_sync
            .tail
            .iter()
            .zip(rec_group.tail.iter())
            .all(|((va, ba), (vb, bb))| va == vb && ba.ops() == bb.ops());
    println!(
        "group commit: {APPENDS} appends — {sync_fsyncs} fsyncs sync-every-append vs \
         {group_fsyncs} grouped ({economy:.1}x), recovered heads {} / {}",
        rec_sync.head_version, rec_group.head_version
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let json = format!(
        "{{\n  \"graph\": \"LUBM\", \"n\": {n}, \"replicas\": {}, \"batches\": {BATCHES},\n  \
         \"fail_at\": {FAIL_AT}, \"revive_at\": {REVIVE_AT},\n  \
         \"reads_served\": {reads_served}, \"failed_reads\": {failed_reads}, \
         \"served_on_dead\": {served_on_dead},\n  \
         \"checksum\": \"{checksum:016x}\", \"bit_identical\": {bit_identical},\n  \
         \"rejoin\": {{\"replayed\": {}, \"missed\": {missed}, \"full_resync\": {}}},\n  \
         \"group_commit\": {{\"appends\": {APPENDS}, \"flush_every\": {FLUSH_EVERY}, \
         \"sync_fsyncs\": {sync_fsyncs}, \"group_fsyncs\": {group_fsyncs}, \
         \"economy\": {economy:.2}, \"prefixes_identical\": {prefixes_identical}}}\n}}\n",
        set.len(),
        rejoin.replayed,
        rejoin.full_resync,
    );
    std::fs::write("BENCH_failover.json", json).unwrap_or_else(|e| {
        eprintln!("cannot write BENCH_failover.json: {e}");
        std::process::exit(1);
    });
    println!("wrote BENCH_failover.json");

    records.push(JsonRecord {
        experiment: "failover".into(),
        config: vec![
            ("checksum".into(), format!("{checksum:016x}")),
            ("failed_reads".into(), failed_reads.to_string()),
            ("replayed".into(), rejoin.replayed.to_string()),
            ("fsync_economy".into(), format!("{economy:.2}")),
        ],
        launches: 0,
        insertions: 0,
        h2d_bytes: 0,
        d2h_bytes: 0,
        d2d_bytes: 0,
        peak_bytes: 0,
    });

    // The CI failover-smoke gates.
    let mut failed = false;
    if failed_reads > 0 || served_on_dead > 0 {
        eprintln!(
            "FAILOVER GATE FAILED: {failed_reads} routed reads failed, \
             {served_on_dead} landed on the dead replica (need 0 / 0)"
        );
        failed = true;
    }
    if !bit_identical {
        eprintln!("FAILOVER GATE FAILED: replica closure checksums diverged after rejoin");
        failed = true;
    }
    if rejoin.replayed != missed || rejoin.full_resync {
        eprintln!(
            "FAILOVER GATE FAILED: rejoin replayed {} of {missed} missed batches \
             (full_resync={}) — must replay exactly the lag, never a full copy",
            rejoin.replayed, rejoin.full_resync
        );
        failed = true;
    }
    if set.log_entries() != 0 {
        eprintln!(
            "FAILOVER GATE FAILED: {} replication-log entries retained after \
             every replica caught up (need 0)",
            set.log_entries()
        );
        failed = true;
    }
    if economy < 3.0 {
        eprintln!(
            "FAILOVER GATE FAILED: group commit saved only {economy:.1}x fsyncs \
             at equal load (need >= 3x)"
        );
        failed = true;
    }
    if !prefixes_identical {
        eprintln!(
            "FAILOVER GATE FAILED: recovered acknowledged prefixes differ \
             between sync and group-commit logs"
        );
        failed = true;
    }
    if failed {
        std::process::exit(2);
    }
    println!(
        "failover gates passed: 0 failed reads, bit-identical checksums, \
         rejoin replayed {missed}/{missed}, {economy:.1}x fsync economy"
    );
}
