//! Shared harness for the paper-reproduction benchmarks: scaled dataset
//! suite, timing helpers, and table formatting used by both the
//! `report` binary (regenerates every table/figure) and the Criterion
//! benches.

use std::time::{Duration, Instant};

use spbla_core::{Instance, Matrix};
use spbla_data::alias::kernel_module_like;
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::rdf;
use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;

/// Run `f` once, returning its wall time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Average wall time over `runs` runs (the paper averages over 5).
pub fn time_avg(runs: usize, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..runs {
        f();
    }
    t0.elapsed() / runs as u32
}

/// Default dataset scale for the report binary: small enough that the
/// whole `report all` run finishes in minutes on a laptop, large enough
/// that the relative shapes of the paper survive. Overridable with the
/// `SPBLA_BENCH_SCALE` environment variable (e.g. `=0.05` for a longer,
/// closer-to-paper run).
pub fn bench_scale() -> f64 {
    std::env::var("SPBLA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// The LUBM ladder of Table I / Figure 2, as university counts chosen to
/// grow linearly like the paper's 1k → 2.3M vertex ladder.
pub fn lubm_ladder() -> Vec<(&'static str, usize)> {
    vec![
        ("LUBM1k", 2),
        ("LUBM3.5k", 6),
        ("LUBM5.9k", 10),
        ("LUBM1M", 20),
        ("LUBM1.7M", 34),
        ("LUBM2.3M", 46),
    ]
}

/// Generate one LUBM ladder rung.
pub fn lubm_rung(universities: usize, table: &mut SymbolTable) -> LabeledGraph {
    lubm_like(universities, &LubmConfig::default(), table, 0xCAFE)
}

/// The real-world RDF suite of Table I (Figure 3's x-axis), scaled.
/// Per-graph factors keep the laptop run bounded: taxonomy's deep
/// `subClassOf` hierarchy makes its star queries disproportionately
/// expensive (visible in the paper's Figure 3 too — it is the slowest
/// graph despite not being the largest), so its rung is kept smaller.
pub fn rpq_rdf_suite(table: &mut SymbolTable, scale: f64) -> Vec<(String, LabeledGraph)> {
    vec![
        (
            "uniprotkb".into(),
            rdf::uniprotkb_like(scale * 0.6, table, 1),
        ),
        (
            "proteomes".into(),
            rdf::proteomes_like(scale * 0.6, table, 2),
        ),
        (
            "taxonomy".into(),
            rdf::taxonomy_like(scale * 0.12, table, 3),
        ),
        (
            "geospecies".into(),
            rdf::geospecies_like(scale * 3.0, table, 4),
        ),
        (
            "mappingbased".into(),
            rdf::dbpedia_like(scale * 0.6, table, 5),
        ),
    ]
}

/// The CFPQ RDF suite of Table III (top half), scaled. Inverse edges are
/// added because the same-generation queries consume `label_r` symbols.
pub fn cfpq_rdf_suite(table: &mut SymbolTable, scale: f64) -> Vec<(String, LabeledGraph)> {
    let raw: Vec<(String, LabeledGraph)> = vec![
        ("eclass_514en".into(), rdf::eclass_like(scale, table, 11)),
        ("enzyme".into(), rdf::enzyme_like(scale * 2.0, table, 12)),
        ("geospecies".into(), rdf::geospecies_like(scale, table, 13)),
        ("go".into(), rdf::go_like(scale, table, 14)),
        // go-hierarchy is a dense DAG whose same-generation relation is
        // near-quadratic; keep its rung smaller so `report all` stays
        // laptop-sized (its *relative* cost still dominates, as in the
        // paper, where it is Mtx's worst RDF case).
        (
            "go-hierarchy".into(),
            rdf::go_hierarchy_like(scale * 0.5, table, 15),
        ),
        ("pathways".into(), rdf::pathways_like(1.0, table, 16)),
        (
            "taxonomy".into(),
            rdf::taxonomy_like(scale * 0.2, table, 17),
        ),
    ];
    raw.into_iter()
        .map(|(n, g)| {
            let gi = g.with_inverses(table);
            (n, gi)
        })
        .collect()
}

/// The kernel-module alias suite of Table III (bottom half), scaled,
/// with inverses.
pub fn alias_suite(table: &mut SymbolTable, scale: f64) -> Vec<(String, LabeledGraph)> {
    ["arch", "crypto", "drivers", "fs"]
        .iter()
        .map(|name| {
            let g = kernel_module_like(name, scale, table, 21).with_inverses(table);
            (name.to_string(), g)
        })
        .collect()
}

/// Upload a pair-list as a Boolean matrix on `inst`.
pub fn upload(inst: &Instance, n: u32, pairs: &[(u32, u32)]) -> Matrix {
    Matrix::from_pairs(inst, n, n, pairs).expect("bench pairs in bounds")
}

/// Naive COO-style addition baseline for the merge-path ablation:
/// concatenate, sort, dedup — no merge path, no two-pass counting.
pub fn naive_add_baseline(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut all: Vec<(u32, u32)> = a.iter().chain(b).copied().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Format a duration as seconds with 3 decimals (paper style).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_generate() {
        let mut t = SymbolTable::new();
        let rungs = lubm_ladder();
        assert_eq!(rungs.len(), 6);
        let g = lubm_rung(rungs[0].1, &mut t);
        assert!(g.n_edges() > 0);
        let cfpq = cfpq_rdf_suite(&mut t, 0.002);
        assert_eq!(cfpq.len(), 7);
        // Inverses present for the same-generation queries.
        assert!(t.get("subClassOf_r").is_some());
        let alias = alias_suite(&mut t, 0.2);
        assert_eq!(alias.len(), 4);
        assert!(t.get("d_r").is_some());
    }

    #[test]
    fn naive_add_matches_set_union() {
        let a = vec![(0, 1), (2, 3)];
        let b = vec![(0, 1), (1, 1)];
        assert_eq!(naive_add_baseline(&a, &b), vec![(0, 1), (1, 1), (2, 3)]);
    }

    #[test]
    fn timing_helpers() {
        let (d, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let avg = time_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        let _ = secs(avg);
    }
}
