//! Property tests over the storage formats: conversions are lossless,
//! invariants hold after every operation, and the memory formulas match
//! the paper's.

use proptest::prelude::*;

use spbla_core::format::bitmat::BitMatrix;
use spbla_core::{CooBool, CsrBool, DenseBool};

fn pairs(n: u32, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_nnz)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conversion_roundtrips(p in pairs(40, 200)) {
        let csr = CsrBool::from_pairs(40, 40, &p).unwrap();
        // CSR → COO → CSR
        let coo = CooBool::from(&csr);
        prop_assert_eq!(&CsrBool::from(&coo), &csr);
        // CSR → Dense → CSR
        let dense = DenseBool::from(&csr);
        prop_assert_eq!(&CsrBool::from(&dense), &csr);
        // CSR → BitMatrix → pairs
        let bit = BitMatrix::from_pairs(40, 40, &csr.to_pairs()).unwrap();
        prop_assert_eq!(bit.to_pairs(), csr.to_pairs());
        // Key roundtrip through COO.
        let keys = coo.to_keys();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(CooBool::from_keys(40, 40, &keys), coo);
    }

    #[test]
    fn invariants_hold_after_ops(pa in pairs(20, 80), pb in pairs(20, 80)) {
        let a = CsrBool::from_pairs(20, 20, &pa).unwrap();
        let b = CsrBool::from_pairs(20, 20, &pb).unwrap();
        for m in [
            a.mxm(&b).unwrap(),
            a.ewise_add(&b).unwrap(),
            a.ewise_mult(&b).unwrap(),
            a.transpose(),
            a.submatrix(3, 5, 10, 12).unwrap(),
        ] {
            prop_assert!(m.validate().is_ok(), "{:?}", m.validate());
        }
        let k = a.kron(&b).unwrap();
        prop_assert!(k.validate().is_ok());
        prop_assert_eq!(k.nnz(), a.nnz() * b.nnz());
    }

    #[test]
    fn memory_formulas(p in pairs(64, 256)) {
        let csr = CsrBool::from_pairs(64, 64, &p).unwrap();
        let coo = CooBool::from(&csr);
        prop_assert_eq!(csr.memory_bytes(), (64 + 1 + csr.nnz()) * 4);
        prop_assert_eq!(coo.memory_bytes(), 2 * csr.nnz() * 4);
        let bit = BitMatrix::from_pairs(64, 64, &csr.to_pairs()).unwrap();
        prop_assert_eq!(bit.memory_bytes(), 64 * 8); // 64 rows × 1 word
    }

    #[test]
    fn submatrix_composition(p in pairs(30, 120)) {
        // (M[2.., 3..])[1.., 1..] == M[3.., 4..] over matching windows.
        let m = CsrBool::from_pairs(30, 30, &p).unwrap();
        let outer = m.submatrix(2, 3, 20, 20).unwrap();
        let nested = outer.submatrix(1, 1, 10, 10).unwrap();
        let direct = m.submatrix(3, 4, 10, 10).unwrap();
        prop_assert_eq!(nested, direct);
    }

    #[test]
    fn transpose_preserves_nnz_and_involutes(p in pairs(25, 120)) {
        let m = CsrBool::from_pairs(25, 25, &p).unwrap();
        let t = m.transpose();
        prop_assert_eq!(t.nnz(), m.nnz());
        let bit = BitMatrix::from_pairs(25, 25, &m.to_pairs()).unwrap();
        prop_assert_eq!(bit.transpose().to_pairs(), t.to_pairs());
        prop_assert_eq!(t.transpose(), m);
    }

    #[test]
    fn reductions_consistent_between_formats(p in pairs(25, 100)) {
        let csr = CsrBool::from_pairs(25, 25, &p).unwrap();
        let bit = BitMatrix::from_pairs(25, 25, &csr.to_pairs()).unwrap();
        prop_assert_eq!(bit.reduce_to_column(), csr.reduce_to_column());
        prop_assert_eq!(bit.reduce_to_row(), csr.reduce_to_row());
        // vxm over a random index set.
        let set: Vec<u32> = (0..25).filter(|v| v % 3 == 0).collect();
        prop_assert_eq!(bit.vxm(&set), csr.vxm(&set));
    }
}
