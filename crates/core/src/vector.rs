//! Sparse Boolean vectors.
//!
//! The paper notes "the sparse vector is partially presented; its full
//! support will be added in the future" — this module provides that
//! support: a sorted index-set representation with the element-wise
//! operations applications need (the `vxm` product lives on
//! [`crate::Matrix`]).

use crate::error::{Result, SpblaError};
use crate::index::Index;
use crate::instance::Instance;

/// A sparse Boolean vector: a sorted, deduplicated set of indices where
/// the vector is `true`.
#[derive(Debug, Clone)]
pub struct Vector {
    instance: Instance,
    len: Index,
    indices: Vec<Index>,
}

impl PartialEq for Vector {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.indices == other.indices
    }
}

impl Eq for Vector {}

impl Vector {
    /// An all-false vector of length `len`.
    pub fn zeros(instance: &Instance, len: Index) -> Vector {
        Vector {
            instance: instance.clone(),
            len,
            indices: Vec::new(),
        }
    }

    /// Build from indices (sorted + deduplicated internally).
    pub fn from_indices(instance: &Instance, len: Index, indices: &[Index]) -> Result<Vector> {
        for &i in indices {
            if i >= len {
                return Err(SpblaError::IndexOutOfBounds {
                    row: i,
                    col: 0,
                    shape: (len, 1),
                });
            }
        }
        let mut idx = indices.to_vec();
        idx.sort_unstable();
        idx.dedup();
        Ok(Vector {
            instance: instance.clone(),
            len,
            indices: idx,
        })
    }

    /// Adopt already-sorted unique indices (used by reductions).
    pub(crate) fn from_sorted_indices(
        instance: &Instance,
        len: Index,
        indices: Vec<Index>,
    ) -> Result<Vector> {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&i| i < len));
        Ok(Vector {
            instance: instance.clone(),
            len,
            indices,
        })
    }

    /// Vector length (dimension, not nnz).
    pub fn len(&self) -> Index {
        self.len
    }

    /// Whether the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `true` entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The sorted `true` indices.
    pub fn indices(&self) -> &[Index] {
        &self.indices
    }

    /// The owning instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Test one entry.
    pub fn get(&self, i: Index) -> bool {
        self.indices.binary_search(&i).is_ok()
    }

    fn check_same(&self, other: &Vector, op: &'static str) -> Result<()> {
        if !self.instance.same_as(&other.instance) {
            return Err(SpblaError::BackendMismatch);
        }
        if self.len != other.len {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: (self.len, 1),
                rhs: (other.len, 1),
            });
        }
        Ok(())
    }

    /// Element-wise or (set union).
    pub fn ewise_add(&self, other: &Vector) -> Result<Vector> {
        self.check_same(other, "v_ewise_add")?;
        let mut out = Vec::with_capacity(self.nnz() + other.nnz());
        let (a, b) = (&self.indices, &other.indices);
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() || y < b.len() {
            let v = if y >= b.len() || (x < a.len() && a[x] <= b[y]) {
                if y < b.len() && a[x] == b[y] {
                    y += 1;
                }
                x += 1;
                a[x - 1]
            } else {
                y += 1;
                b[y - 1]
            };
            out.push(v);
        }
        Vector::from_sorted_indices(&self.instance, self.len, out)
    }

    /// Element-wise and (set intersection).
    pub fn ewise_mult(&self, other: &Vector) -> Result<Vector> {
        self.check_same(other, "v_ewise_mult")?;
        let mut out = Vec::new();
        let (a, b) = (&self.indices, &other.indices);
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.len() && y < b.len() {
            match a[x].cmp(&b[y]) {
                std::cmp::Ordering::Equal => {
                    out.push(a[x]);
                    x += 1;
                    y += 1;
                }
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
            }
        }
        Vector::from_sorted_indices(&self.instance, self.len, out)
    }

    /// Indices in `self` but not in `other` (set difference) — used by
    /// frontier-style algorithms to mask visited vertices.
    pub fn difference(&self, other: &Vector) -> Result<Vector> {
        self.check_same(other, "v_difference")?;
        let out: Vec<Index> = self
            .indices
            .iter()
            .copied()
            .filter(|i| other.indices.binary_search(i).is_err())
            .collect();
        Vector::from_sorted_indices(&self.instance, self.len, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let inst = Instance::cpu();
        let v = Vector::from_indices(&inst, 10, &[5, 2, 5, 9]).unwrap();
        assert_eq!(v.indices(), &[2, 5, 9]);
        assert!(v.get(5) && !v.get(4));
        assert!(Vector::from_indices(&inst, 3, &[3]).is_err());
    }

    #[test]
    fn set_algebra() {
        let inst = Instance::cpu();
        let a = Vector::from_indices(&inst, 8, &[1, 3, 5]).unwrap();
        let b = Vector::from_indices(&inst, 8, &[3, 4]).unwrap();
        assert_eq!(a.ewise_add(&b).unwrap().indices(), &[1, 3, 4, 5]);
        assert_eq!(a.ewise_mult(&b).unwrap().indices(), &[3]);
        assert_eq!(a.difference(&b).unwrap().indices(), &[1, 5]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let inst = Instance::cpu();
        let a = Vector::zeros(&inst, 4);
        let b = Vector::zeros(&inst, 5);
        assert!(a.ewise_add(&b).is_err());
    }
}
