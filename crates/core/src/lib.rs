//! # spbla-core — sparse Boolean linear algebra
//!
//! Rust reproduction of **SPbLA** (Orachev et al., 2021): a library of
//! sparse *Boolean* matrix operations in the style of GraphBLAS, with the
//! two GPGPU backends of the paper mapped onto a simulated device:
//!
//! * [`Backend::CudaSim`] — the *cuBool* design: CSR storage,
//!   Nsparse-style hash SpGEMM with row binning, two-pass merge-path
//!   addition;
//! * [`Backend::ClSim`] — the *clBool* design: COO storage, one-pass
//!   merge addition, ESC (expand–sort–compact) SpGEMM;
//! * [`Backend::Cpu`] — a sequential host reference used as the oracle.
//!
//! The library operates on the Boolean semiring `({0,1}, ∨, ∧)`: `+` is
//! logical *or*, `×` is logical *and*, and matrices store no values at all
//! — a `true` cell is encoded purely by its `(i, j)` coordinates. This is
//! the specialisation the paper benchmarks against generic (valued)
//! sparse libraries.
//!
//! ## Quickstart
//!
//! ```
//! use spbla_core::{Instance, Matrix};
//!
//! let inst = Instance::cuda_sim();
//! let a = Matrix::from_pairs(&inst, 3, 3, &[(0, 1), (1, 2)]).unwrap();
//! let b = Matrix::from_pairs(&inst, 3, 3, &[(1, 2), (2, 0)]).unwrap();
//!
//! // C = A · B over the Boolean semiring.
//! let c = a.mxm(&b).unwrap();
//! assert_eq!(c.read(), vec![(0, 2), (1, 0)]);
//!
//! // K = A ⊗ B (Kronecker product), E = A + B (element-wise or).
//! let k = a.kron(&b).unwrap();
//! assert_eq!(k.nnz(), a.nnz() * b.nnz());
//! let e = a.ewise_add(&b).unwrap();
//! assert_eq!(e.nnz(), 3); // (1, 2) is in both operands
//! ```

pub mod backend;
pub mod block;
pub mod error;
pub mod format;
pub mod index;
pub mod instance;
pub mod matrix;
pub mod vector;

pub use block::{BlockMatrix, K2Tree, TileFormat};
pub use error::{Result, SpblaError};
pub use format::coo::CooBool;
pub use format::csr::CsrBool;
pub use format::dense::DenseBool;
pub use index::{Index, Pair};
pub use instance::{dense_bits_bytes, Backend, Instance};
pub use matrix::{FusedProduct, Matrix};
pub use vector::Vector;
