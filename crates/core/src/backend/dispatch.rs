//! The unified kernel-dispatch trait.
//!
//! Every backend representation — host CSR, dense bit-words, the
//! cuda-sim CSR device matrix, the cl-sim COO device matrix — exposes
//! the same kernel set (SpGEMM and its masked / complement-masked
//! variants, the fused accumulate kernel, merge-add, the frontier
//! SpMSpV, reductions) through [`KernelDispatch`], so the `Matrix`
//! handle writes each operation's dispatch *once* instead of repeating
//! a four-way `match` per op, and fused kernels land on all four
//! backends behind one entry point.
//!
//! Trait methods carry a `k_` prefix so they never shadow (or get
//! shadowed by) the inherent methods they delegate to.

use crate::backend::cl_sim::{self, DeviceCoo};
use crate::backend::cuda_sim::{self, DeviceCsr};
use crate::block::BlockMatrix;
use crate::error::Result;
use crate::format::bitmat::BitMatrix;
use crate::format::csr::CsrBool;
use crate::index::Index;

/// Result of the fused accumulate kernel
/// `fresh = (A · B) ∧ ¬C; C' = C ∪ fresh`: the accumulated matrix, the
/// fresh-entry count (the fixpoint termination signal, produced by the
/// kernel itself — no separate `nnz` pass), and, when requested, the
/// fresh entries as a matrix (the next round's delta).
pub struct FusedAccum<M> {
    /// `C ∪ ((A · B) ∧ ¬C)`.
    pub acc: M,
    /// `nnz((A · B) ∧ ¬C)` — zero means the fixpoint converged.
    pub fresh_nnz: usize,
    /// The fresh entries, materialised only when the caller asked.
    pub fresh: Option<M>,
}

/// The kernel set every backend representation implements.
pub trait KernelDispatch: Sized {
    /// `C = A · B` (Boolean SpGEMM).
    fn k_mxm(&self, b: &Self) -> Result<Self>;
    /// `C = (A · B) ∧ M` (masked SpGEMM, mask applied in-kernel).
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self>;
    /// `C = (A · B) ∧ ¬M` (complement-masked SpGEMM).
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self>;
    /// Fused semi-naïve step: `fresh = (a · b) ∧ ¬self`, accumulate
    /// `self ∪ fresh`, and return the fresh count — one kernel chain,
    /// no standalone intermediate product, no post-hoc `nnz` launch.
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>>;
    /// `C = A + B` (merge-add / set union).
    fn k_ewise_add(&self, b: &Self) -> Result<Self>;
    /// `C = A ∧ B` (set intersection).
    fn k_ewise_mult(&self, b: &Self) -> Result<Self>;
    /// Frontier push `out = ⋃_{i ∈ set} A(i, :)` (row-gather SpMSpV);
    /// `set` is sorted, the result is sorted unique.
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>>;
    /// Frontier pull: same result as [`Self::k_vxm`], but the frontier
    /// arrives as dense bit-words and candidates accumulate into a
    /// dense bit-word accumulator — no sort, no dedup. Preferred when
    /// the frontier is dense enough that the gather multiset would dwarf
    /// the `ncols`-bit accumulator.
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>>;
    /// Indices of non-empty rows.
    fn k_reduce_to_column(&self) -> Result<Vec<Index>>;
    /// Indices of non-empty columns.
    fn k_reduce_to_row(&self) -> Result<Vec<Index>>;
}

/// Enumerate the set bits of a dense bit-word frontier.
fn iter_words(words: &[u64], mut f: impl FnMut(Index)) {
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros();
            f(wi as Index * 64 + b);
            bits &= bits - 1;
        }
    }
}

/// Collect a dense bit-word accumulator back into sorted indices.
fn words_to_indices(words: &[u64]) -> Vec<Index> {
    let mut out = Vec::new();
    iter_words(words, |j| out.push(j));
    out
}

impl KernelDispatch for CsrBool {
    fn k_mxm(&self, b: &Self) -> Result<Self> {
        self.mxm(b)
    }
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_masked(b, mask)
    }
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_compmask(b, mask)
    }
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>> {
        let (acc, fresh_nnz, fresh) = self.mxm_accum_compmask(a, b, want_fresh)?;
        Ok(FusedAccum {
            acc,
            fresh_nnz,
            fresh,
        })
    }
    fn k_ewise_add(&self, b: &Self) -> Result<Self> {
        self.ewise_add(b)
    }
    fn k_ewise_mult(&self, b: &Self) -> Result<Self> {
        self.ewise_mult(b)
    }
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>> {
        Ok(self.vxm(set))
    }
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>> {
        let mut acc = vec![0u64; (self.ncols() as usize).div_ceil(64)];
        iter_words(frontier_words, |i| {
            for &j in self.row(i) {
                acc[j as usize / 64] |= 1u64 << (j % 64);
            }
        });
        Ok(words_to_indices(&acc))
    }
    fn k_reduce_to_column(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_column())
    }
    fn k_reduce_to_row(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_row())
    }
}

impl KernelDispatch for BitMatrix {
    fn k_mxm(&self, b: &Self) -> Result<Self> {
        self.mxm(b)
    }
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_masked(b, mask)
    }
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_compmask(b, mask)
    }
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>> {
        let (acc, fresh_nnz, fresh) = self.mxm_accum_compmask(a, b, want_fresh)?;
        Ok(FusedAccum {
            acc,
            fresh_nnz,
            fresh,
        })
    }
    fn k_ewise_add(&self, b: &Self) -> Result<Self> {
        self.ewise_add(b)
    }
    fn k_ewise_mult(&self, b: &Self) -> Result<Self> {
        self.ewise_mult(b)
    }
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>> {
        Ok(self.vxm(set))
    }
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>> {
        // Dense × dense: OR the selected rows word-parallel.
        let mut acc = vec![0u64; (self.ncols() as usize).div_ceil(64)];
        iter_words(frontier_words, |i| {
            for (a, &w) in acc.iter_mut().zip(self.row_words(i)) {
                *a |= w;
            }
        });
        Ok(words_to_indices(&acc))
    }
    fn k_reduce_to_column(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_column())
    }
    fn k_reduce_to_row(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_row())
    }
}

impl KernelDispatch for BlockMatrix {
    fn k_mxm(&self, b: &Self) -> Result<Self> {
        self.mxm(b)
    }
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_masked(b, mask)
    }
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self> {
        self.mxm_compmask(b, mask)
    }
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>> {
        let (acc, fresh_nnz, fresh) = self.mxm_accum_compmask(a, b, want_fresh)?;
        Ok(FusedAccum {
            acc,
            fresh_nnz,
            fresh,
        })
    }
    fn k_ewise_add(&self, b: &Self) -> Result<Self> {
        self.ewise_add(b)
    }
    fn k_ewise_mult(&self, b: &Self) -> Result<Self> {
        self.ewise_mult(b)
    }
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>> {
        Ok(self.vxm(set))
    }
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>> {
        Ok(self.vxm_pull(frontier_words))
    }
    fn k_reduce_to_column(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_column())
    }
    fn k_reduce_to_row(&self) -> Result<Vec<Index>> {
        Ok(self.reduce_to_row())
    }
}

impl KernelDispatch for DeviceCsr {
    fn k_mxm(&self, b: &Self) -> Result<Self> {
        cuda_sim::spgemm_hash::mxm(self, b)
    }
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self> {
        cuda_sim::spgemm_hash::mxm_masked(self, b, mask)
    }
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self> {
        cuda_sim::spgemm_hash::mxm_compmask(self, b, mask)
    }
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>> {
        let (acc, fresh_nnz, fresh) =
            cuda_sim::spgemm_hash::mxm_accum_compmask(self, a, b, want_fresh)?;
        Ok(FusedAccum {
            acc,
            fresh_nnz,
            fresh,
        })
    }
    fn k_ewise_add(&self, b: &Self) -> Result<Self> {
        cuda_sim::merge_add::ewise_add(self, b)
    }
    fn k_ewise_mult(&self, b: &Self) -> Result<Self> {
        cuda_sim::merge_add::ewise_mult(self, b)
    }
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>> {
        cuda_sim::vector_ops::vxm(self, set)
    }
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>> {
        cuda_sim::vector_ops::vxm_pull(self, frontier_words)
    }
    fn k_reduce_to_column(&self) -> Result<Vec<Index>> {
        cuda_sim::structure::reduce_to_column(self)
    }
    fn k_reduce_to_row(&self) -> Result<Vec<Index>> {
        cuda_sim::structure::reduce_to_row(self)
    }
}

impl KernelDispatch for DeviceCoo {
    fn k_mxm(&self, b: &Self) -> Result<Self> {
        cl_sim::esc_spgemm::mxm(self, b)
    }
    fn k_mxm_masked(&self, b: &Self, mask: &Self) -> Result<Self> {
        cl_sim::esc_spgemm::mxm_masked(self, b, mask)
    }
    fn k_mxm_compmask(&self, b: &Self, mask: &Self) -> Result<Self> {
        cl_sim::esc_spgemm::mxm_compmask(self, b, mask)
    }
    fn k_mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<FusedAccum<Self>> {
        let (acc, fresh_nnz, fresh) =
            cl_sim::esc_spgemm::mxm_accum_compmask(self, a, b, want_fresh)?;
        Ok(FusedAccum {
            acc,
            fresh_nnz,
            fresh,
        })
    }
    fn k_ewise_add(&self, b: &Self) -> Result<Self> {
        cl_sim::merge_add::ewise_add(self, b)
    }
    fn k_ewise_mult(&self, b: &Self) -> Result<Self> {
        cl_sim::merge_add::ewise_mult(self, b)
    }
    fn k_vxm(&self, set: &[Index]) -> Result<Vec<Index>> {
        cl_sim::structure::vxm(self, set)
    }
    fn k_vxm_pull(&self, frontier_words: &[u64]) -> Result<Vec<Index>> {
        cl_sim::structure::vxm_pull(self, frontier_words)
    }
    fn k_reduce_to_column(&self) -> Result<Vec<Index>> {
        cl_sim::structure::reduce_to_column(self)
    }
    fn k_reduce_to_row(&self) -> Result<Vec<Index>> {
        cl_sim::structure::reduce_to_row(self)
    }
}
