//! Backend implementations of the SPbLA operation set.
//!
//! * [`cpu`] — sequential host reference (delegates to the `CsrBool`
//!   methods; the oracle for everything else);
//! * [`cuda_sim`] — the cuBool design on the simulated device: CSR
//!   storage, Nsparse-style hash SpGEMM, two-pass merge addition;
//! * [`cl_sim`] — the clBool design: COO storage, ESC SpGEMM, one-pass
//!   merge-path addition.

pub mod cl_sim;
pub mod cpu;
pub mod cuda_sim;
pub mod dispatch;
