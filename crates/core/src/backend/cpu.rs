//! Sequential CPU reference backend.
//!
//! cuBool ships a CPU fallback next to its Cuda backend; here the fallback
//! doubles as the correctness oracle. All operations are the sequential
//! `CsrBool` methods — this module exists so backend dispatch reads
//! uniformly and so the oracle has a stable, nameable home.

pub use crate::format::csr::CsrBool as CpuMatrix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_matrix_is_csr() {
        let m = CpuMatrix::from_pairs(2, 2, &[(0, 0)]).unwrap();
        assert_eq!(m.nnz(), 1);
    }
}
