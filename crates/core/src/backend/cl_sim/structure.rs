//! Structural COO kernels: Kronecker product, transpose, sub-matrix
//! extraction, reductions. COO's packed-key representation makes these
//! map/sort/compact pipelines.

use spbla_gpu_sim::primitives::compact::compact_flagged;
use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::primitives::sort::sort_u64;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::{Result, SpblaError};
use crate::index::{pack, Index};

use super::DeviceCoo;

/// `K = A ⊗ B`: expand every entry pair to its packed key, then sort.
/// No compaction is needed — the Kronecker coordinate map is injective.
pub fn kron(a: &DeviceCoo, b: &DeviceCoo) -> Result<DeviceCoo> {
    let device = a.device().clone();
    let nrows = (a.nrows() as u64).checked_mul(b.nrows() as u64);
    let ncols = (a.ncols() as u64).checked_mul(b.ncols() as u64);
    let (m, n) = match (nrows, ncols) {
        (Some(r), Some(c)) if r <= u32::MAX as u64 && c <= u32::MAX as u64 => {
            (r as Index, c as Index)
        }
        _ => {
            return Err(SpblaError::InvalidDimension(
                "kron result exceeds Index range".into(),
            ))
        }
    };
    let total = a.nnz() * b.nnz();
    if total == 0 {
        return DeviceCoo::zeros(&device, m, n);
    }

    let mut keys = DeviceBuffer::<u64>::zeroed(&device, total)?;
    {
        let (ar, ac) = (a.rows(), a.cols());
        let (br, bc) = (b.rows(), b.cols());
        let bn = b.nnz();
        let (mb, nb) = (b.nrows() as u64, b.ncols() as u64);
        let cfg = LaunchCfg::grid(&device, a.nnz() as u32);
        device.launch(
            cfg,
            keys.as_mut_slice(),
            |blk| (blk as usize * bn)..((blk as usize + 1) * bn),
            |ctx, out| {
                let e = ctx.block_idx() as usize;
                let (i1, j1) = (ar[e] as u64, ac[e] as u64);
                for (w, (&i2, &j2)) in br.iter().zip(bc.iter()).enumerate() {
                    let row = i1 * mb + i2 as u64;
                    let col = j1 * nb + j2 as u64;
                    out[w] = (row << 32) | col;
                }
            },
        )?;
    }
    let mut key_vec = keys.as_slice().to_vec();
    drop(keys);
    sort_u64(&device, &mut key_vec);
    DeviceCoo::from_keys(&device, m, n, &key_vec)
}

/// `Mᵀ`: swap the halves of every packed key and re-sort.
pub fn transpose(mat: &DeviceCoo) -> Result<DeviceCoo> {
    let device = mat.device().clone();
    let (r, c) = (mat.rows(), mat.cols());
    let mut keys = DeviceBuffer::<u64>::zeroed(&device, mat.nnz())?;
    device.launch_map(keys.as_mut_slice(), |e| pack(c[e], r[e]))?;
    let mut key_vec = keys.as_slice().to_vec();
    drop(keys);
    sort_u64(&device, &mut key_vec);
    DeviceCoo::from_keys(&device, mat.ncols(), mat.nrows(), &key_vec)
}

/// Extract `M[i0 .. i0+nrows, j0 .. j0+ncols]`: flag, compact, remap.
pub fn submatrix(
    mat: &DeviceCoo,
    i0: Index,
    j0: Index,
    nrows: Index,
    ncols: Index,
) -> Result<DeviceCoo> {
    let device = mat.device().clone();
    if i0 as u64 + nrows as u64 > mat.nrows() as u64
        || j0 as u64 + ncols as u64 > mat.ncols() as u64
    {
        return Err(SpblaError::InvalidDimension(format!(
            "submatrix [{i0}+{nrows}, {j0}+{ncols}] exceeds {}x{}",
            mat.nrows(),
            mat.ncols()
        )));
    }
    let (r, c) = (mat.rows(), mat.cols());
    let mut flags = vec![0u8; mat.nnz()];
    device.launch_map(&mut flags, |e| {
        (r[e] >= i0 && r[e] < i0 + nrows && c[e] >= j0 && c[e] < j0 + ncols) as u8
    })?;
    let keys: Vec<u64> = {
        let mut all = DeviceBuffer::<u64>::zeroed(&device, mat.nnz())?;
        device.launch_map(all.as_mut_slice(), |e| pack(r[e], c[e]))?;
        compact_flagged(&device, all.as_slice(), &flags)?
    };
    // Remap into the window's coordinates (order is preserved).
    let remapped: Vec<u64> = {
        let mut out = DeviceBuffer::<u64>::zeroed(&device, keys.len())?;
        device.launch_map(out.as_mut_slice(), |e| {
            let (i, j) = crate::index::unpack(keys[e]);
            pack(i - i0, j - j0)
        })?;
        out.into_vec()
    };
    DeviceCoo::from_keys(&device, nrows, ncols, &remapped)
}

/// Indices of non-empty rows (`reduceToColumn`): rows are sorted, so this
/// is an adjacent-unique compaction over the rows array.
pub fn reduce_to_column(mat: &DeviceCoo) -> Result<Vec<Index>> {
    let device = mat.device().clone();
    let r = mat.rows();
    if r.is_empty() {
        return Ok(Vec::new());
    }
    let mut flags = vec![0u8; r.len()];
    device.launch_map(&mut flags, |e| (e == 0 || r[e] != r[e - 1]) as u8)?;
    compact_flagged(&device, r, &flags).map_err(Into::into)
}

/// Indices of non-empty columns (`reduceToRow`): sort the column array,
/// then adjacent-unique.
pub fn reduce_to_row(mat: &DeviceCoo) -> Result<Vec<Index>> {
    let device = mat.device().clone();
    if mat.nnz() == 0 {
        return Ok(Vec::new());
    }
    let mut keys: Vec<u64> = mat.cols().iter().map(|&j| j as u64).collect();
    sort_u64(&device, &mut keys);
    let mut flags = vec![0u8; keys.len()];
    let ks = &keys;
    device.launch_map(&mut flags, |e| (e == 0 || ks[e] != ks[e - 1]) as u8)?;
    let uniq = compact_flagged(&device, &keys, &flags)?;
    Ok(uniq.into_iter().map(|k| k as Index).collect())
}

/// Frontier-push `vxm` for COO: gather sizes per frontier row (via the
/// derived row offsets), scan, gather the column slices, sort, and
/// adjacent-unique — the COO twin of `cuda_sim::vector_ops::vxm`.
pub fn vxm(mat: &DeviceCoo, set: &[Index]) -> Result<Vec<Index>> {
    let device = mat.device().clone();
    if set.is_empty() || mat.nnz() == 0 {
        return Ok(Vec::new());
    }
    let row_offs = mat.row_offsets();
    let cols = mat.cols();
    let mut sizes = vec![0usize; set.len()];
    device.launch_map(&mut sizes, |k| {
        let i = set[k] as usize;
        row_offs[i + 1] - row_offs[i]
    })?;
    let total = exclusive_scan(&device, &mut sizes)?;
    if total == 0 {
        return Ok(Vec::new());
    }
    let offsets = sizes;
    let mut gathered = DeviceBuffer::<Index>::zeroed(&device, total)?;
    {
        let offs = &offsets;
        let cfg = LaunchCfg::grid(&device, set.len() as u32);
        device.launch(
            cfg,
            gathered.as_mut_slice(),
            |blk| {
                let k = blk as usize;
                let end = if k + 1 < offs.len() {
                    offs[k + 1]
                } else {
                    total
                };
                offs[k]..end
            },
            |ctx, out| {
                let i = set[ctx.block_idx() as usize] as usize;
                out.copy_from_slice(&cols[row_offs[i]..row_offs[i + 1]]);
            },
        )?;
    }
    let mut keys: Vec<u64> = gathered.as_slice().iter().map(|&j| j as u64).collect();
    drop(gathered);
    sort_u64(&device, &mut keys);
    let ks = &keys;
    let mut flags = vec![0u8; ks.len()];
    device.launch_map(&mut flags, |e| (e == 0 || ks[e] != ks[e - 1]) as u8)?;
    let uniq = compact_flagged(&device, &keys, &flags)?;
    Ok(uniq.into_iter().map(|k| k as Index).collect())
}

/// Frontier-pull `vxm` for COO: one sweep over the entries, OR-ing the
/// columns whose row bit is set into a dense bitmap — a single kernel,
/// no gather buffer, no sort.
pub fn vxm_pull(mat: &DeviceCoo, frontier_words: &[u64]) -> Result<Vec<Index>> {
    let device = mat.device().clone();
    let words = (mat.ncols() as usize).div_ceil(64);
    if words == 0 || mat.nnz() == 0 {
        return Ok(Vec::new());
    }
    let rows = mat.rows();
    let cols = mat.cols();
    let mut acc = DeviceBuffer::<u64>::zeroed(&device, words)?;
    let cfg = LaunchCfg::grid(&device, 1);
    device.launch(
        cfg,
        acc.as_mut_slice(),
        |_| 0..words,
        |_, out| {
            for (&i, &j) in rows.iter().zip(cols) {
                let wi = i as usize / 64;
                if wi < frontier_words.len() && frontier_words[wi] >> (i % 64) & 1 == 1 {
                    out[j as usize / 64] |= 1u64 << (j % 64);
                }
            }
        },
    )?;
    let mut out = Vec::new();
    for (wi, &w) in acc.as_slice().iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push(wi as Index * 64 + b);
            bits &= bits - 1;
        }
    }
    Ok(out)
}

/// Compute exclusive scan over host data on the device (helper re-export
/// used by callers assembling pipelines).
pub fn scan_offsets(device: &spbla_gpu_sim::Device, data: &mut [usize]) -> Result<usize> {
    exclusive_scan(device, data).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::coo::CooBool;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    fn pair_csr(pairs: &[(u32, u32)], m: u32, n: u32) -> CsrBool {
        CsrBool::from_pairs(m, n, pairs).unwrap()
    }

    fn upload(dev: &Device, pairs: &[(u32, u32)], m: u32, n: u32) -> DeviceCoo {
        DeviceCoo::upload(dev, &CooBool::from_pairs(m, n, pairs).unwrap()).unwrap()
    }

    #[test]
    fn kron_matches_csr_reference() {
        let dev = Device::default();
        let pa = [(0u32, 1u32), (1, 0)];
        let pb = [(0u32, 0u32), (2, 1)];
        let da = upload(&dev, &pa, 2, 2);
        let db = upload(&dev, &pb, 3, 2);
        let got = kron(&da, &db).unwrap().download().to_pairs();
        let expect = pair_csr(&pa, 2, 2)
            .kron(&pair_csr(&pb, 3, 2))
            .unwrap()
            .to_pairs();
        assert_eq!(got, expect);
    }

    #[test]
    fn transpose_matches_csr_reference() {
        let dev = Device::default();
        let p = [(0u32, 1u32), (0, 3), (2, 0)];
        let d = upload(&dev, &p, 3, 4);
        let got = transpose(&d).unwrap().download().to_pairs();
        assert_eq!(got, pair_csr(&p, 3, 4).transpose().to_pairs());
    }

    #[test]
    fn submatrix_matches_csr_reference() {
        let dev = Device::default();
        let p = [(0u32, 1u32), (1, 1), (2, 2), (3, 0)];
        let d = upload(&dev, &p, 4, 3);
        let got = submatrix(&d, 1, 1, 3, 2).unwrap().download().to_pairs();
        let expect = pair_csr(&p, 4, 3).submatrix(1, 1, 3, 2).unwrap().to_pairs();
        assert_eq!(got, expect);
        assert!(submatrix(&d, 3, 0, 2, 1).is_err());
    }

    #[test]
    fn reductions_match_csr_reference() {
        let dev = Device::default();
        let p = [(0u32, 2u32), (3, 0), (3, 2)];
        let d = upload(&dev, &p, 5, 4);
        let c = pair_csr(&p, 5, 4);
        assert_eq!(reduce_to_column(&d).unwrap(), c.reduce_to_column());
        assert_eq!(reduce_to_row(&d).unwrap(), c.reduce_to_row());
        let empty = upload(&dev, &[], 3, 3);
        assert!(reduce_to_column(&empty).unwrap().is_empty());
        assert!(reduce_to_row(&empty).unwrap().is_empty());
    }
}
