//! ESC (expand–sort–compact) SpGEMM for the COO backend.
//!
//! The draft leaves clBool's multiplication section unfinished ("!!!");
//! we reconstruct it with the classic OpenCL-era ESC scheme (Bell,
//! Dalton, Olson — the CUSP algorithm), which pairs naturally with COO:
//!
//! 1. **expand**: every product pair `A(i,k)·B(k,j)` emits a packed key
//!    `(i << 32) | j` at an offset precomputed by a scan — the
//!    intermediate buffer holds `Σ nnz(A(i,:)) · nnz(B(k,:))` keys, the
//!    format's known memory weakness versus hash SpGEMM (ablation E10.1);
//! 2. **sort**: device radix sort of the keys;
//! 3. **compact**: adjacent-unique compaction yields sorted COO output
//!    (Boolean semiring: duplicates collapse with no accumulation).

use spbla_gpu_sim::primitives::merge::merge_path_partitions;
use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::primitives::sort::sort_u64;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::Result;
use crate::index::pack;

use super::DeviceCoo;

/// How a mask constrains the product's output structure.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MaskMode {
    /// Keep only entries present in the mask (`C = (A·B) ∧ M`).
    Keep,
    /// Keep only entries absent from the mask (`C = (A·B) ∧ ¬M`).
    Drop,
}

/// `C = A · B` over the Boolean semiring (ESC scheme).
pub fn mxm(a: &DeviceCoo, b: &DeviceCoo) -> Result<DeviceCoo> {
    mxm_inner(a, b, None)
}

/// `C = (A · B) ∧ mask`, filtered natively inside the ESC pipeline: the
/// contraction of each A entry against its B row checks every candidate
/// key against the sorted mask row, so rejected products are never packed
/// into the expansion buffer — the format's known memory weakness.
pub fn mxm_masked(a: &DeviceCoo, b: &DeviceCoo, mask: &DeviceCoo) -> Result<DeviceCoo> {
    debug_assert_eq!(a.nrows(), mask.nrows());
    debug_assert_eq!(b.ncols(), mask.ncols());
    let device = a.device().clone();
    if mask.nnz() == 0 {
        return DeviceCoo::zeros(&device, a.nrows(), b.ncols());
    }
    mxm_inner(a, b, Some((mask, MaskMode::Keep)))
}

/// `C = (A · B) ∧ ¬mask` — only entries not already present in `mask`;
/// the semi-naïve fixpoint primitive, see `spgemm_hash::mxm_compmask`.
pub fn mxm_compmask(a: &DeviceCoo, b: &DeviceCoo, mask: &DeviceCoo) -> Result<DeviceCoo> {
    debug_assert_eq!(a.nrows(), mask.nrows());
    debug_assert_eq!(b.ncols(), mask.ncols());
    if mask.nnz() == 0 {
        return mxm_inner(a, b, None);
    }
    mxm_inner(a, b, Some((mask, MaskMode::Drop)))
}

fn mxm_inner(
    a: &DeviceCoo,
    b: &DeviceCoo,
    filter: Option<(&DeviceCoo, MaskMode)>,
) -> Result<DeviceCoo> {
    debug_assert_eq!(a.ncols(), b.nrows(), "caller validates dimensions");
    let device = a.device().clone();
    if a.nnz() == 0 || b.nnz() == 0 {
        return DeviceCoo::zeros(&device, a.nrows(), b.ncols());
    }

    // Row offsets of B (derived, not stored — clBool keeps pure COO).
    let b_offsets = b.row_offsets();

    // Sorted mask rows for the candidate filter.
    let mask_offsets = filter.map(|(m, _)| m.row_offsets());
    let keep = |i: u32, j: u32| -> bool {
        match (filter, &mask_offsets) {
            (Some((m, mode)), Some(mo)) => {
                let mrow = &m.cols()[mo[i as usize]..mo[i as usize + 1]];
                (mrow.binary_search(&j).is_ok()) == (mode == MaskMode::Keep)
            }
            _ => true,
        }
    };

    // Contraction sizes per A entry: surviving candidates only, so the
    // expansion buffer is sized post-filter.
    let a_rows = a.rows();
    let a_cols = a.cols();
    let b_cols = b.cols();
    let mut sizes = vec![0usize; a.nnz()];
    device.launch_map(&mut sizes, |e| {
        let i = a_rows[e];
        let k = a_cols[e] as usize;
        b_cols[b_offsets[k]..b_offsets[k + 1]]
            .iter()
            .filter(|&&j| keep(i, j))
            .count()
    })?;
    let total = exclusive_scan(&device, &mut sizes)?;
    if total == 0 {
        return DeviceCoo::zeros(&device, a.nrows(), b.ncols());
    }
    let offsets = sizes; // exclusive offsets per A entry

    // Every surviving candidate costs one expansion slot.
    device.count_accum_insertions(total as u64);

    // Expand: one block per A entry, writing its surviving product keys.
    let mut expanded = DeviceBuffer::<u64>::zeroed(&device, total)?;
    {
        let offs = &offsets;
        let cfg = LaunchCfg::grid(&device, a.nnz() as u32);
        device.launch(
            cfg,
            expanded.as_mut_slice(),
            |blk| {
                let e = blk as usize;
                let end = if e + 1 < offs.len() {
                    offs[e + 1]
                } else {
                    total
                };
                offs[e]..end
            },
            |ctx, out| {
                let e = ctx.block_idx() as usize;
                let i = a_rows[e];
                let k = a_cols[e] as usize;
                let brow = &b_cols[b_offsets[k]..b_offsets[k + 1]];
                let mut w = 0usize;
                for &j in brow {
                    if keep(i, j) {
                        out[w] = pack(i, j);
                        w += 1;
                    }
                }
                debug_assert_eq!(w, out.len());
            },
        )?;
    }

    // Sort.
    let mut keys = expanded.as_slice().to_vec();
    sort_u64(&device, &mut keys);

    // Compact adjacent duplicates.
    keys.dedup();
    drop(expanded);

    DeviceCoo::from_keys(&device, a.nrows(), b.ncols(), &keys)
}

/// Fused semi-naïve step `fresh = (A · B) ∧ ¬C; C' = C ∪ fresh` with `c`
/// the accumulator. The Drop-filtered ESC product already guarantees
/// `fresh ∩ C = ∅`, so the union is a merge-path merge of the two key
/// streams with *no* adjacent-unique compaction (the flags launch and the
/// compaction of `ewise_add` are elided) — and the fresh count is the
/// product's own key count, no separate `nnz` reduction.
///
/// Returns `(C ∪ fresh, nnz(fresh), fresh if want_fresh)`.
pub fn mxm_accum_compmask(
    c: &DeviceCoo,
    a: &DeviceCoo,
    b: &DeviceCoo,
    want_fresh: bool,
) -> Result<(DeviceCoo, usize, Option<DeviceCoo>)> {
    debug_assert_eq!(a.ncols(), b.nrows(), "caller validates dimensions");
    debug_assert_eq!(a.nrows(), c.nrows());
    debug_assert_eq!(b.ncols(), c.ncols());
    let device = c.device().clone();
    let fresh = if c.nnz() == 0 {
        mxm_inner(a, b, None)?
    } else {
        mxm_inner(a, b, Some((c, MaskMode::Drop)))?
    };
    let fresh_nnz = fresh.nnz();
    if fresh_nnz == 0 {
        // Converged: a real fused kernel leaves C in place, so the
        // unchanged accumulator costs no metered transfer — the copy
        // below only exists because handles are immutable.
        let keys = c.to_keys(&device)?;
        let acc = DeviceCoo::from_keys(&device, c.nrows(), c.ncols(), keys.as_slice())?;
        return Ok((acc, 0, want_fresh.then_some(fresh)));
    }
    if c.nnz() == 0 {
        let keys = fresh.to_keys(&device)?;
        let acc = DeviceCoo::from_keys(&device, c.nrows(), c.ncols(), keys.as_slice())?;
        return Ok((acc, fresh_nnz, want_fresh.then_some(fresh)));
    }
    let ka = c.to_keys(&device)?;
    let kb = fresh.to_keys(&device)?;
    let mut merged = DeviceBuffer::<u64>::zeroed(&device, ka.len() + kb.len())?;
    let parts = (device.config().sm_count as usize * 4).max(1);
    let points = merge_path_partitions(ka.as_slice(), kb.as_slice(), parts);
    {
        let (sa, sb) = (ka.as_slice(), kb.as_slice());
        let pts = &points;
        let cfg = LaunchCfg::grid(&device, parts as u32);
        device.launch(
            cfg,
            merged.as_mut_slice(),
            |blk| {
                let (s, e) = (pts[blk as usize], pts[blk as usize + 1]);
                (s.a_idx + s.b_idx)..(e.a_idx + e.b_idx)
            },
            |ctx, out| {
                let (s, e) = (
                    pts[ctx.block_idx() as usize],
                    pts[ctx.block_idx() as usize + 1],
                );
                let (mut x, mut y, mut w) = (s.a_idx, s.b_idx, 0usize);
                while x < e.a_idx || y < e.b_idx {
                    if y >= e.b_idx || (x < e.a_idx && sa[x] <= sb[y]) {
                        out[w] = sa[x];
                        x += 1;
                    } else {
                        out[w] = sb[y];
                        y += 1;
                    }
                    w += 1;
                }
            },
        )?;
    }
    let acc = DeviceCoo::from_keys(&device, c.nrows(), c.ncols(), merged.as_slice())?;
    Ok((acc, fresh_nnz, want_fresh.then_some(fresh)))
}

/// Size of the ESC intermediate buffer for `A · B` in bytes — exposed for
/// the memory-footprint ablation (E10.1).
pub fn expansion_bytes(a: &DeviceCoo, b: &DeviceCoo) -> usize {
    let b_offsets = b.row_offsets();
    let total: usize = a
        .cols()
        .iter()
        .map(|&k| b_offsets[k as usize + 1] - b_offsets[k as usize])
        .sum();
    total * std::mem::size_of::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::coo::CooBool;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    fn check(a_pairs: &[(u32, u32)], b_pairs: &[(u32, u32)], m: u32, k: u32, n: u32) {
        let dev = Device::default();
        let ha = CooBool::from_pairs(m, k, a_pairs).unwrap();
        let hb = CooBool::from_pairs(k, n, b_pairs).unwrap();
        let da = DeviceCoo::upload(&dev, &ha).unwrap();
        let db = DeviceCoo::upload(&dev, &hb).unwrap();
        let got = mxm(&da, &db).unwrap().download();
        let expect = CsrBool::from_pairs(m, k, a_pairs)
            .unwrap()
            .mxm(&CsrBool::from_pairs(k, n, b_pairs).unwrap())
            .unwrap();
        assert_eq!(got.to_pairs(), expect.to_pairs());
    }

    #[test]
    fn tiny_product() {
        check(&[(0, 1), (1, 2)], &[(1, 2), (2, 0)], 3, 3, 3);
    }

    #[test]
    fn duplicate_heavy_product() {
        // Many A entries hit the same B row: exercises the compaction.
        let a: Vec<(u32, u32)> = (0..50).map(|i| (i, 0)).collect();
        let b: Vec<(u32, u32)> = (0..20).map(|j| (0, j)).collect();
        check(&a, &b, 50, 1, 20);
    }

    #[test]
    fn empty_cases() {
        check(&[], &[(0, 0)], 2, 2, 2);
        check(&[(0, 0)], &[], 2, 2, 2);
        // A entries referencing empty B rows only.
        check(&[(0, 1)], &[(0, 0)], 2, 2, 2);
    }

    #[test]
    fn masked_and_compmask_partition_the_product() {
        let dev = Device::default();
        let pa: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 3) % 10)).collect();
        let pb: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 7 + 1) % 10)).collect();
        let pm: Vec<(u32, u32)> = (0..25).map(|i| (i % 10, (i * 5 + 2) % 10)).collect();
        let da = DeviceCoo::upload(&dev, &CooBool::from_pairs(10, 10, &pa).unwrap()).unwrap();
        let db = DeviceCoo::upload(&dev, &CooBool::from_pairs(10, 10, &pb).unwrap()).unwrap();
        let dm = DeviceCoo::upload(&dev, &CooBool::from_pairs(10, 10, &pm).unwrap()).unwrap();
        let product = mxm(&da, &db).unwrap().download().to_pairs();
        let hm = CsrBool::from_pairs(10, 10, &pm).unwrap();
        let kept = mxm_masked(&da, &db, &dm).unwrap().download().to_pairs();
        let dropped = mxm_compmask(&da, &db, &dm).unwrap().download().to_pairs();
        let expect_kept: Vec<(u32, u32)> = product
            .iter()
            .copied()
            .filter(|&(i, j)| hm.get(i, j))
            .collect();
        let expect_dropped: Vec<(u32, u32)> = product
            .iter()
            .copied()
            .filter(|&(i, j)| !hm.get(i, j))
            .collect();
        assert_eq!(kept, expect_kept);
        assert_eq!(dropped, expect_dropped);
        // Together the two filtered products partition the full product.
        assert_eq!(kept.len() + dropped.len(), product.len());
    }

    #[test]
    fn filtered_expansion_never_packs_rejected_keys() {
        // With the full product as the complemented mask, nothing survives
        // the contraction filter — no expansion slots are charged.
        let dev = Device::default();
        let pa: Vec<(u32, u32)> = (0..30).map(|i| (i % 6, (i * 5) % 6)).collect();
        let da = DeviceCoo::upload(&dev, &CooBool::from_pairs(6, 6, &pa).unwrap()).unwrap();
        let product = mxm(&da, &da).unwrap();
        let before = dev.stats().accum_insertions;
        let diff = mxm_compmask(&da, &da, &product).unwrap();
        assert_eq!(diff.nnz(), 0);
        assert_eq!(dev.stats().accum_insertions, before);
    }

    #[test]
    fn expansion_accounting() {
        let dev = Device::default();
        let a = DeviceCoo::upload(&dev, &CooBool::from_pairs(2, 2, &[(0, 0), (1, 0)]).unwrap())
            .unwrap();
        let b = DeviceCoo::upload(
            &dev,
            &CooBool::from_pairs(2, 3, &[(0, 0), (0, 1), (0, 2)]).unwrap(),
        )
        .unwrap();
        // Both A entries expand B row 0 (3 keys each).
        assert_eq!(expansion_bytes(&a, &b), 6 * 8);
    }
}
