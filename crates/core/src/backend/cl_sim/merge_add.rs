//! One-pass COO addition — clBool's merge.
//!
//! "Since all COO matrix values are stored in the single array, its merge
//! can be completed at single time": both operands' packed keys are
//! merged in one pass into a buffer of exactly `nnz(A) + nnz(B)` slots
//! (allocated *before* the merge — the paper notes this hurts memory on
//! duplicate-heavy inputs), balanced across blocks with GPU Merge Path;
//! a final adjacent-unique compaction removes coordinates present in
//! both operands.

use spbla_gpu_sim::primitives::compact::compact_flagged;
use spbla_gpu_sim::primitives::merge::merge_path_partitions;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::Result;

use super::DeviceCoo;

/// `C = A + B` (element-wise Boolean sum / set union).
pub fn ewise_add(a: &DeviceCoo, b: &DeviceCoo) -> Result<DeviceCoo> {
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let device = a.device().clone();
    if a.nnz() == 0 && b.nnz() == 0 {
        return DeviceCoo::zeros(&device, a.nrows(), a.ncols());
    }

    let ka = a.to_keys(&device)?;
    let kb = b.to_keys(&device)?;

    // The single full-size merge buffer (the format's memory liability).
    let mut merged = DeviceBuffer::<u64>::zeroed(&device, ka.len() + kb.len())?;
    let parts = (device.config().sm_count as usize * 4).max(1);
    let points = merge_path_partitions(ka.as_slice(), kb.as_slice(), parts);
    {
        let (sa, sb) = (ka.as_slice(), kb.as_slice());
        let pts = &points;
        let cfg = LaunchCfg::grid(&device, parts as u32);
        device.launch(
            cfg,
            merged.as_mut_slice(),
            |blk| {
                let (s, e) = (pts[blk as usize], pts[blk as usize + 1]);
                (s.a_idx + s.b_idx)..(e.a_idx + e.b_idx)
            },
            |ctx, out| {
                let (s, e) = (
                    pts[ctx.block_idx() as usize],
                    pts[ctx.block_idx() as usize + 1],
                );
                let (mut x, mut y, mut w) = (s.a_idx, s.b_idx, 0usize);
                while x < e.a_idx || y < e.b_idx {
                    if y >= e.b_idx || (x < e.a_idx && sa[x] <= sb[y]) {
                        out[w] = sa[x];
                        x += 1;
                    } else {
                        out[w] = sb[y];
                        y += 1;
                    }
                    w += 1;
                }
            },
        )?;
    }

    // Compact adjacent duplicates (keys present in both operands).
    let ms = merged.as_slice();
    let mut flags = vec![0u8; ms.len()];
    device.launch_map(&mut flags, |e| (e == 0 || ms[e] != ms[e - 1]) as u8)?;
    let unique = compact_flagged(&device, ms, &flags)?;
    drop(merged);

    DeviceCoo::from_keys(&device, a.nrows(), a.ncols(), &unique)
}

/// `C = A ∧ B` (set intersection): merge both key streams, then keep the
/// keys that appear twice — the dual of [`ewise_add`]'s compaction.
pub fn ewise_mult(a: &DeviceCoo, b: &DeviceCoo) -> Result<DeviceCoo> {
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let device = a.device().clone();
    if a.nnz() == 0 || b.nnz() == 0 {
        return DeviceCoo::zeros(&device, a.nrows(), a.ncols());
    }
    let ka = a.to_keys(&device)?;
    let kb = b.to_keys(&device)?;
    // Operands are individually duplicate-free, so a key occurs at most
    // twice in the merged stream; twice means "in both".
    let mut merged: Vec<u64> = Vec::with_capacity(ka.len() + kb.len());
    {
        let (sa, sb) = (ka.as_slice(), kb.as_slice());
        let (mut x, mut y) = (0usize, 0usize);
        while x < sa.len() || y < sb.len() {
            if y >= sb.len() || (x < sa.len() && sa[x] <= sb[y]) {
                merged.push(sa[x]);
                x += 1;
            } else {
                merged.push(sb[y]);
                y += 1;
            }
        }
    }
    let ms = &merged;
    let mut flags = vec![0u8; ms.len()];
    device.launch_map(&mut flags, |e| (e > 0 && ms[e] == ms[e - 1]) as u8)?;
    let both = compact_flagged(&device, ms, &flags)?;
    DeviceCoo::from_keys(&device, a.nrows(), a.ncols(), &both)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::coo::CooBool;
    use spbla_gpu_sim::Device;

    #[test]
    fn intersection_keeps_common_keys() {
        let dev = Device::default();
        let ha = CooBool::from_pairs(3, 3, &[(0, 0), (0, 2), (1, 1)]).unwrap();
        let hb = CooBool::from_pairs(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let da = DeviceCoo::upload(&dev, &ha).unwrap();
        let db = DeviceCoo::upload(&dev, &hb).unwrap();
        let got = ewise_mult(&da, &db).unwrap().download().to_pairs();
        assert_eq!(got, vec![(0, 0), (1, 1)]);
    }

    fn check(a_pairs: &[(u32, u32)], b_pairs: &[(u32, u32)], m: u32, n: u32) {
        let dev = Device::default();
        let ha = CooBool::from_pairs(m, n, a_pairs).unwrap();
        let hb = CooBool::from_pairs(m, n, b_pairs).unwrap();
        let da = DeviceCoo::upload(&dev, &ha).unwrap();
        let db = DeviceCoo::upload(&dev, &hb).unwrap();
        let got = mxv_like_sorted(ewise_add(&da, &db).unwrap().download().to_pairs());
        let mut expect: Vec<(u32, u32)> = a_pairs.iter().chain(b_pairs).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect);
    }

    fn mxv_like_sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn overlapping_union() {
        check(&[(0, 0), (1, 2)], &[(0, 0), (2, 1)], 3, 3);
    }

    #[test]
    fn one_side_empty() {
        check(&[], &[(1, 1)], 2, 2);
        check(&[(1, 1)], &[], 2, 2);
        check(&[], &[], 2, 2);
    }

    #[test]
    fn large_union_across_partitions() {
        let a: Vec<(u32, u32)> = (0..5000).map(|i| (i % 100, i / 100 * 2)).collect();
        let b: Vec<(u32, u32)> = (0..5000).map(|i| (i % 100, i / 100 * 3)).collect();
        check(&a, &b, 100, 200);
    }

    #[test]
    fn merge_buffer_is_full_size() {
        // The one-pass design allocates nnz(A)+nnz(B) keys even when the
        // operands fully overlap.
        let dev = Device::default();
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let h = CooBool::from_pairs(100, 100, &pairs).unwrap();
        let da = DeviceCoo::upload(&dev, &h).unwrap();
        let db = DeviceCoo::upload(&dev, &h).unwrap();
        dev.reset_peak();
        let before = dev.stats().bytes_in_use;
        let c = ewise_add(&da, &db).unwrap();
        assert_eq!(c.nnz(), 100);
        // Peak must include the 200-key (1600 B) merge buffer.
        assert!(dev.stats().peak_bytes >= before + 1600);
    }
}
