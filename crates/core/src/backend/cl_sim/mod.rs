//! The clBool backend: COO matrices resident on the simulated device.

pub mod esc_spgemm;
pub mod merge_add;
pub mod structure;

use spbla_gpu_sim::{Device, DeviceBuffer};

use crate::error::Result;
use crate::format::coo::CooBool;
use crate::index::{pack, Index};

/// A COO Boolean matrix in simulated device memory: the paper's two
/// arrays `rows` and `cols`, sorted row-major, deduplicated.
#[derive(Debug)]
pub struct DeviceCoo {
    nrows: Index,
    ncols: Index,
    rows: DeviceBuffer<Index>,
    cols: DeviceBuffer<Index>,
}

impl DeviceCoo {
    /// Upload a host COO matrix (counted as H2D traffic).
    pub fn upload(device: &Device, host: &CooBool) -> Result<Self> {
        Ok(DeviceCoo {
            nrows: host.nrows(),
            ncols: host.ncols(),
            rows: DeviceBuffer::from_host(device, host.rows())?,
            cols: DeviceBuffer::from_host(device, host.cols())?,
        })
    }

    /// Assemble from device-produced parts (sorted, deduplicated).
    pub fn from_parts(
        nrows: Index,
        ncols: Index,
        rows: DeviceBuffer<Index>,
        cols: DeviceBuffer<Index>,
    ) -> Self {
        debug_assert_eq!(rows.len(), cols.len());
        DeviceCoo {
            nrows,
            ncols,
            rows,
            cols,
        }
    }

    /// Build from sorted unique packed keys.
    pub fn from_keys(device: &Device, nrows: Index, ncols: Index, keys: &[u64]) -> Result<Self> {
        let mut rows = DeviceBuffer::<Index>::zeroed(device, keys.len())?;
        let mut cols = DeviceBuffer::<Index>::zeroed(device, keys.len())?;
        device.launch_map(rows.as_mut_slice(), |e| (keys[e] >> 32) as Index)?;
        device.launch_map(cols.as_mut_slice(), |e| keys[e] as Index)?;
        Ok(DeviceCoo {
            nrows,
            ncols,
            rows,
            cols,
        })
    }

    /// An empty matrix resident on `device`.
    pub fn zeros(device: &Device, nrows: Index, ncols: Index) -> Result<Self> {
        Ok(DeviceCoo {
            nrows,
            ncols,
            rows: DeviceBuffer::zeroed(device, 0)?,
            cols: DeviceBuffer::zeroed(device, 0)?,
        })
    }

    /// Download to a host COO matrix (counted as D2H traffic).
    pub fn download(&self) -> CooBool {
        CooBool::from_raw(
            self.nrows,
            self.ncols,
            self.rows.to_host(),
            self.cols.to_host(),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Device the matrix lives on.
    pub fn device(&self) -> &Device {
        self.rows.device()
    }

    /// Row indices (device view).
    pub fn rows(&self) -> &[Index] {
        self.rows.as_slice()
    }

    /// Column indices (device view).
    pub fn cols(&self) -> &[Index] {
        self.cols.as_slice()
    }

    /// Entries as packed sorted keys (device temporary, counted).
    pub fn to_keys(&self, device: &Device) -> Result<DeviceBuffer<u64>> {
        let mut keys = DeviceBuffer::<u64>::zeroed(device, self.nnz())?;
        let (r, c) = (self.rows(), self.cols());
        device.launch_map(keys.as_mut_slice(), |e| pack(r[e], c[e]))?;
        Ok(keys)
    }

    /// Offsets of each row's first entry, CSR-style (`nrows + 1` values),
    /// computed by binary searching the sorted rows array. clBool keeps
    /// COO only; kernels that need row access derive offsets on the fly.
    pub fn row_offsets(&self) -> Vec<usize> {
        let rows = self.rows();
        (0..=self.nrows as usize)
            .map(|r| rows.partition_point(|&x| (x as usize) < r))
            .collect()
    }

    /// Device-resident footprint in bytes: `2 · nnz · sizeof(Index)`.
    pub fn memory_bytes(&self) -> usize {
        (self.rows.len() + self.cols.len()) * std::mem::size_of::<Index>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_footprint() {
        let dev = Device::default();
        let host = CooBool::from_pairs(1000, 4, &[(0, 1), (999, 3)]).unwrap();
        let d = DeviceCoo::upload(&dev, &host).unwrap();
        assert_eq!(d.download(), host);
        // COO footprint is row-count independent.
        assert_eq!(d.memory_bytes(), 16);
    }

    #[test]
    fn row_offsets_cover_rows() {
        let dev = Device::default();
        let host = CooBool::from_pairs(4, 4, &[(0, 1), (0, 2), (2, 0), (3, 3)]).unwrap();
        let d = DeviceCoo::upload(&dev, &host).unwrap();
        assert_eq!(d.row_offsets(), vec![0, 2, 2, 3, 4]);
    }

    #[test]
    fn keys_roundtrip() {
        let dev = Device::default();
        let host = CooBool::from_pairs(5, 5, &[(1, 4), (2, 0)]).unwrap();
        let d = DeviceCoo::upload(&dev, &host).unwrap();
        let keys = d.to_keys(&dev).unwrap();
        let d2 = DeviceCoo::from_keys(&dev, 5, 5, keys.as_slice()).unwrap();
        assert_eq!(d2.download(), host);
    }
}
