//! Boolean hash SpGEMM — the Nsparse adaptation the paper uses for
//! cuBool's matrix-matrix multiplication.
//!
//! The algorithm is the standard two-phase (symbolic / numeric) hash
//! SpGEMM of Nagasaka et al., specialised to the Boolean semiring: the
//! hash tables store *column indices only* (no accumulator values), so a
//! "multiply-add" degenerates to set insertion. Structure:
//!
//! 1. **upper bound**: `ub(i) = Σ_{k ∈ A(i,:)} nnz(B(k,:))`;
//! 2. **row binning**: rows are grouped by `ub` into power-of-two bins;
//!    each bin's rows get a shared-memory hash table sized `2·bin`, which
//!    bounds the load factor at ½ (and keeps tables inside the per-block
//!    shared-memory budget — that is *why* Nsparse bins);
//! 3. **symbolic**: per row, insert all candidate columns, producing
//!    `nnz(C(i,:))`; rows whose bound exceeds the largest bin fall back to
//!    a global-memory gather + sort (counted against device memory);
//! 4. an exclusive scan of the row counts gives `C.row_ptr`;
//! 5. **numeric**: per row, re-insert, extract, sort, and write the
//!    column list into its final slice.

use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::Result;
use crate::index::Index;

use super::DeviceCsr;

/// Row-bin upper bounds (shared-memory table = 2 × bin size).
const BINS: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];
/// Sentinel for an empty hash slot (no column index can equal it, since
/// column indices are `< ncols ≤ u32::MAX`).
const EMPTY: Index = Index::MAX;

#[inline]
fn hash(j: Index, mask: usize) -> usize {
    (j as usize).wrapping_mul(0x9E37_79B1) & mask
}

/// Insert `j`; returns `true` iff it was not already present. The table
/// must have a free slot (guaranteed by the ≤ ½ load factor).
#[inline]
fn insert(table: &mut [Index], j: Index) -> bool {
    let mask = table.len() - 1;
    let mut h = hash(j, mask);
    loop {
        let slot = table[h];
        if slot == EMPTY {
            table[h] = j;
            return true;
        }
        if slot == j {
            return false;
        }
        h = (h + 1) & mask;
    }
}

/// `C = A · B` over the Boolean semiring.
pub fn mxm(a: &DeviceCsr, b: &DeviceCsr) -> Result<DeviceCsr> {
    mxm_inner(a, b, None)
}

/// `C = (A · B) ∧ ¬mask` — only entries *not* already present in `mask`.
///
/// The complement is never materialised: candidate columns found in the
/// mask row (binary search, the row is sorted) are rejected before hash
/// insertion, so they cost neither accumulator space nor output. This is
/// the primitive semi-naïve fixpoints are built on — with `mask` the
/// closure-so-far, each round's product only surfaces *new* pairs.
pub fn mxm_compmask(a: &DeviceCsr, b: &DeviceCsr, mask: &DeviceCsr) -> Result<DeviceCsr> {
    debug_assert_eq!(a.nrows(), mask.nrows());
    debug_assert_eq!(b.ncols(), mask.ncols());
    if mask.nnz() == 0 {
        return mxm_inner(a, b, None);
    }
    mxm_inner(a, b, Some(mask))
}

/// Shared two-phase hash SpGEMM; `reject` drops candidates whose column
/// appears in the corresponding reject-matrix row (complemented mask).
fn mxm_inner(a: &DeviceCsr, b: &DeviceCsr, reject: Option<&DeviceCsr>) -> Result<DeviceCsr> {
    debug_assert_eq!(a.ncols(), b.nrows(), "caller validates dimensions");
    let device = a.device().clone();
    let m = a.nrows();
    if m == 0 || a.nnz() == 0 || b.nnz() == 0 {
        return DeviceCsr::zeros(&device, m, b.ncols());
    }
    let reject_row = |i: Index| reject.map_or(&[][..], |r| r.row(i));

    // Phase 1: per-row upper bounds (one map kernel).
    let mut ub = vec![0usize; m as usize];
    device.launch_map(&mut ub, |i| {
        a.row(i as Index).iter().map(|&k| b.row_nnz(k)).sum()
    })?;

    // Phase 2: binning (a bincount + compaction pass on a real device).
    let mut bins: Vec<Vec<Index>> = vec![Vec::new(); BINS.len()];
    let mut global_rows: Vec<Index> = Vec::new();
    for (i, &u) in ub.iter().enumerate() {
        if u == 0 {
            continue;
        }
        match BINS.iter().position(|&cap| u <= cap) {
            Some(bin) => bins[bin].push(i as Index),
            None => global_rows.push(i as Index),
        }
    }

    // Global-fallback rows are processed in bounded chunks: the gather
    // buffer is sized by *upper bounds* (duplicates included), which for
    // dense iterates (e.g. closure squaring) is pessimistic by orders of
    // magnitude — Nsparse likewise batches its global bin rather than
    // allocating the full expansion at once.
    let global_chunks = chunk_global_rows(&global_rows, &ub);

    // Phase 3: symbolic — count distinct columns per row.
    let mut row_nnz = vec![0usize; m as usize];
    for (bin, rows) in bins.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let tsize = BINS[bin] * 2;
        let cfg = LaunchCfg::grid(&device, rows.len() as u32);
        device.launch(
            cfg,
            &mut row_nnz,
            |blk| {
                let r = rows[blk as usize] as usize;
                r..r + 1
            },
            |ctx, out| {
                let row = rows[ctx.block_idx() as usize];
                let rrow = reject_row(row);
                let mut table = ctx.shared_array::<Index>(tsize);
                table.fill(EMPTY);
                let mut count = 0usize;
                for &k in a.row(row) {
                    for &j in b.row(k) {
                        if !rrow.is_empty() && rrow.binary_search(&j).is_ok() {
                            continue;
                        }
                        if insert(&mut table, j) {
                            count += 1;
                        }
                    }
                }
                out[0] = count;
            },
        )?;
    }
    for chunk in &global_chunks {
        let rows = &global_rows[chunk.clone()];
        let (temp, offs) = gather_global_chunk(a, b, rows, &ub)?;
        // Count unique in each pre-sorted gather slice.
        let temp_slice = temp.as_slice();
        let cfg = LaunchCfg::grid(&device, rows.len() as u32);
        device.launch(
            cfg,
            &mut row_nnz,
            |blk| {
                let r = rows[blk as usize] as usize;
                r..r + 1
            },
            |ctx, out| {
                let r = ctx.block_idx() as usize;
                let row = rows[r];
                let rrow = reject_row(row);
                let slice = &temp_slice[offs[r]..offs[r] + ub[row as usize]];
                let mut uniq = 0usize;
                let mut prev = EMPTY;
                for &j in slice {
                    if j != prev {
                        prev = j;
                        if rrow.is_empty() || rrow.binary_search(&j).is_err() {
                            uniq += 1;
                        }
                    }
                }
                out[0] = uniq;
            },
        )?;
    }

    // Phase 4: scan to build C.row_ptr.
    let total = exclusive_scan(&device, &mut row_nnz)?;
    let mut c_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = c_row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[m as usize] = total as Index;
    }
    drop(row_nnz);

    // Phase 5: numeric — fill C.cols.
    let mut c_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = c_row_ptr.as_slice().to_vec();
    for (bin, rows) in bins.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let tsize = BINS[bin] * 2;
        let cfg = LaunchCfg::grid(&device, rows.len() as u32);
        let rp = &rp_host;
        device.launch(
            cfg,
            c_cols.as_mut_slice(),
            |blk| {
                let r = rows[blk as usize] as usize;
                rp[r] as usize..rp[r + 1] as usize
            },
            |ctx, out| {
                let row = rows[ctx.block_idx() as usize];
                let rrow = reject_row(row);
                let mut table = ctx.shared_array::<Index>(tsize);
                table.fill(EMPTY);
                let mut w = 0usize;
                let mut admitted = 0u64;
                for &k in a.row(row) {
                    for &j in b.row(k) {
                        if !rrow.is_empty() && rrow.binary_search(&j).is_ok() {
                            continue;
                        }
                        admitted += 1;
                        if insert(&mut table, j) {
                            out[w] = j;
                            w += 1;
                        }
                    }
                }
                device.count_accum_insertions(admitted);
                debug_assert_eq!(w, out.len());
                out.sort_unstable();
            },
        )?;
    }
    for chunk in &global_chunks {
        let rows = &global_rows[chunk.clone()];
        // Re-gather (the symbolic chunk's buffer was released — bounded
        // memory is bought with recomputation, as on the real device).
        let (temp, offs) = gather_global_chunk(a, b, rows, &ub)?;
        let temp_slice = temp.as_slice();
        let rp = &rp_host;
        let cfg = LaunchCfg::grid(&device, rows.len() as u32);
        device.launch(
            cfg,
            c_cols.as_mut_slice(),
            |blk| {
                let r = rows[blk as usize] as usize;
                rp[r] as usize..rp[r + 1] as usize
            },
            |ctx, out| {
                let r = ctx.block_idx() as usize;
                let row = rows[r];
                let rrow = reject_row(row);
                let slice = &temp_slice[offs[r]..offs[r] + ub[row as usize]];
                let mut w = 0usize;
                let mut prev = EMPTY;
                for &j in slice {
                    if j != prev {
                        prev = j;
                        if rrow.is_empty() || rrow.binary_search(&j).is_err() {
                            out[w] = j;
                            w += 1;
                        }
                    }
                }
                // The gather buffer *is* this row's accumulator: every
                // candidate was materialised before filtering.
                device.count_accum_insertions(slice.len() as u64);
                debug_assert_eq!(w, out.len());
            },
        )?;
    }
    Ok(DeviceCsr::from_parts(m, b.ncols(), c_row_ptr, c_cols))
}

/// `C = (A · B) ∧ mask`, with the mask applied *inside* the kernel: a
/// candidate column is inserted only if the mask row contains it, so the
/// hash tables, row counts, and output never materialise entries the
/// mask would discard. This is the GraphBLAS masked-mxm optimisation —
/// on selective masks it does asymptotically less work than computing
/// the full product and intersecting afterwards (ablated in E10).
pub fn mxm_masked(a: &DeviceCsr, b: &DeviceCsr, mask: &DeviceCsr) -> Result<DeviceCsr> {
    debug_assert_eq!(a.ncols(), b.nrows(), "caller validates dimensions");
    debug_assert_eq!(a.nrows(), mask.nrows());
    debug_assert_eq!(b.ncols(), mask.ncols());
    let device = a.device().clone();
    let m = a.nrows();
    if m == 0 || a.nnz() == 0 || b.nnz() == 0 || mask.nnz() == 0 {
        return DeviceCsr::zeros(&device, m, b.ncols());
    }

    // Symbolic + numeric fused per row (output bounded by the mask row,
    // so the shared-memory budget is the mask row length, not the
    // product's upper bound).
    let mut row_nnz = vec![0usize; m as usize];
    device.launch_map(&mut row_nnz, |i| {
        let i = i as Index;
        let mrow = mask.row(i);
        if mrow.is_empty() || a.row_nnz(i) == 0 {
            return 0;
        }
        let mut count = 0usize;
        let mut seen = vec![false; mrow.len()];
        for &k in a.row(i) {
            for &j in b.row(k) {
                if let Ok(pos) = mrow.binary_search(&j) {
                    if !seen[pos] {
                        seen[pos] = true;
                        count += 1;
                    }
                }
            }
        }
        count
    })?;
    let total = exclusive_scan(&device, &mut row_nnz)?;
    let mut c_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = c_row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[m as usize] = total as Index;
    }
    let mut c_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = c_row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let cfg = LaunchCfg::grid(&device, m);
    device.launch(
        cfg,
        c_cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let i = ctx.block_idx();
            let mrow = mask.row(i);
            if out.is_empty() {
                return;
            }
            let mut seen = ctx.shared_array::<bool>(mrow.len());
            let mut w = 0usize;
            let mut admitted = 0u64;
            for &k in a.row(i) {
                for &j in b.row(k) {
                    if let Ok(pos) = mrow.binary_search(&j) {
                        admitted += 1;
                        if !seen[pos] {
                            seen[pos] = true;
                            out[w] = j;
                            w += 1;
                        }
                    }
                }
            }
            device.count_accum_insertions(admitted);
            debug_assert_eq!(w, out.len());
            out.sort_unstable();
        },
    )?;
    Ok(DeviceCsr::from_parts(m, b.ncols(), c_row_ptr, c_cols))
}

/// Fused semi-naïve step `fresh = (A · B) ∧ ¬C; C' = C ∪ fresh` with
/// `c` the accumulator: the compmask product already rejects known
/// entries in-kernel, so `fresh` and `c` are disjoint row-wise and the
/// union needs no symbolic pass — `C'.row_ptr = C.row_ptr + fresh.row_ptr`
/// is computed on the host from two resident row pointers and the merge
/// is a single launch of per-row two-pointer merges. The fresh count
/// falls out of the product's `row_ptr` (a free host read on the
/// simulator, a single `cudaMemcpy` of one word on a real device) — no
/// separate `nnz` reduction launch.
///
/// Returns `(C ∪ fresh, nnz(fresh), fresh if want_fresh)`.
pub fn mxm_accum_compmask(
    c: &DeviceCsr,
    a: &DeviceCsr,
    b: &DeviceCsr,
    want_fresh: bool,
) -> Result<(DeviceCsr, usize, Option<DeviceCsr>)> {
    debug_assert_eq!(a.ncols(), b.nrows(), "caller validates dimensions");
    debug_assert_eq!(a.nrows(), c.nrows());
    debug_assert_eq!(b.ncols(), c.ncols());
    let device = c.device().clone();
    let m = c.nrows();
    let fresh = mxm_inner(a, b, if c.nnz() > 0 { Some(c) } else { None })?;
    let fresh_nnz = fresh.nnz();
    if fresh_nnz == 0 {
        // Converged: a real fused kernel leaves C in place, so the
        // unchanged accumulator costs no metered transfer — the copy
        // below only exists because handles are immutable.
        let rp = DeviceBuffer::from_host(&device, c.row_ptr())?;
        let cols = DeviceBuffer::from_host(&device, c.cols())?;
        let acc = DeviceCsr::from_parts(m, c.ncols(), rp, cols);
        return Ok((acc, 0, want_fresh.then_some(fresh)));
    }
    // C and fresh are disjoint: the union's row sizes are the sums of the
    // operands', so the output row pointer needs no counting kernel.
    let c_rp = c.row_ptr();
    let f_rp = fresh.row_ptr();
    let mut acc_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = acc_row_ptr.as_mut_slice();
        for i in 0..=m as usize {
            rp[i] = c_rp[i] + f_rp[i];
        }
    }
    let total = c.nnz() + fresh_nnz;
    let mut acc_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = acc_row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let cfg = LaunchCfg::grid(&device, m);
    device.launch(
        cfg,
        acc_cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let i = ctx.block_idx();
            let (crow, frow) = (c.row(i), fresh.row(i));
            let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
            while x < crow.len() && y < frow.len() {
                if crow[x] < frow[y] {
                    out[w] = crow[x];
                    x += 1;
                } else {
                    out[w] = frow[y];
                    y += 1;
                }
                w += 1;
            }
            out[w..w + crow.len() - x].copy_from_slice(&crow[x..]);
            w += crow.len() - x;
            out[w..w + frow.len() - y].copy_from_slice(&frow[y..]);
            w += frow.len() - y;
            debug_assert_eq!(w, out.len());
        },
    )?;
    let acc = DeviceCsr::from_parts(m, c.ncols(), acc_row_ptr, acc_cols);
    Ok((acc, fresh_nnz, want_fresh.then_some(fresh)))
}

/// Entries per global-bin gather chunk (128 MiB of `Index`).
const GLOBAL_CHUNK_ENTRIES: usize = 32 << 20;

/// Split the global-bin rows into contiguous runs whose combined upper
/// bound fits one gather chunk (single oversized rows get a chunk of
/// their own).
fn chunk_global_rows(global_rows: &[Index], ub: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &row) in global_rows.iter().enumerate() {
        let u = ub[row as usize];
        if acc > 0 && acc + u > GLOBAL_CHUNK_ENTRIES {
            chunks.push(start..i);
            start = i;
            acc = 0;
        }
        acc += u;
    }
    if start < global_rows.len() {
        chunks.push(start..global_rows.len());
    }
    chunks
}

/// Gather and sort the candidate columns of a chunk of global-bin rows.
/// Returns the gather buffer plus the per-row exclusive offsets into it.
fn gather_global_chunk(
    a: &DeviceCsr,
    b: &DeviceCsr,
    rows: &[Index],
    ub: &[usize],
) -> Result<(DeviceBuffer<Index>, Vec<usize>)> {
    let device = a.device().clone();
    let mut offs: Vec<usize> = rows.iter().map(|&i| ub[i as usize]).collect();
    let total = exclusive_scan(&device, &mut offs)?;
    let mut temp: DeviceBuffer<Index> = DeviceBuffer::zeroed(&device, total)?;
    let cfg = LaunchCfg::grid(&device, rows.len() as u32);
    let offs_ref = &offs;
    device.launch(
        cfg,
        temp.as_mut_slice(),
        |blk| {
            let r = blk as usize;
            let end = if r + 1 < rows.len() {
                offs_ref[r + 1]
            } else {
                total
            };
            offs_ref[r]..end
        },
        |ctx, slice| {
            let row = rows[ctx.block_idx() as usize];
            let mut w = 0;
            for &k in a.row(row) {
                for &j in b.row(k) {
                    slice[w] = j;
                    w += 1;
                }
            }
            debug_assert_eq!(w, slice.len());
            slice.sort_unstable();
        },
    )?;
    Ok((temp, offs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    fn check(a_pairs: &[(u32, u32)], b_pairs: &[(u32, u32)], m: u32, k: u32, n: u32) {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(m, k, a_pairs).unwrap();
        let hb = CsrBool::from_pairs(k, n, b_pairs).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dc = mxm(&da, &db).unwrap();
        let expect = ha.mxm(&hb).unwrap();
        assert_eq!(dc.download(), expect);
    }

    #[test]
    fn tiny_product() {
        check(&[(0, 1), (1, 2)], &[(1, 2), (2, 0)], 3, 3, 3);
    }

    #[test]
    fn empty_operands() {
        check(&[], &[(0, 0)], 2, 2, 2);
        check(&[(0, 0)], &[], 2, 2, 2);
    }

    #[test]
    fn dense_small_product() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                if (i + j) % 2 == 0 {
                    a.push((i, j));
                }
                if (i * j) % 3 == 0 {
                    b.push((i, j));
                }
            }
        }
        check(&a, &b, 8, 8, 8);
    }

    #[test]
    fn wide_row_hits_global_bin() {
        // One row of A referencing a B row with > 4096 expansion forces
        // the global-memory fallback path.
        let n: u32 = 6000;
        let a: Vec<(u32, u32)> = (0..3).map(|k| (0, k)).collect();
        let mut b = Vec::new();
        for k in 0..3u32 {
            for j in 0..n {
                if (j + k) % 2 == 0 {
                    b.push((k, j));
                }
            }
        }
        check(&a, &b, 1, 3, n);
    }

    #[test]
    fn masked_mxm_matches_post_intersection() {
        let dev = Device::default();
        let pa: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 3) % 10)).collect();
        let pb: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 7 + 1) % 10)).collect();
        let pm: Vec<(u32, u32)> = (0..25).map(|i| (i % 10, (i * 5 + 2) % 10)).collect();
        let ha = CsrBool::from_pairs(10, 10, &pa).unwrap();
        let hb = CsrBool::from_pairs(10, 10, &pb).unwrap();
        let hm = CsrBool::from_pairs(10, 10, &pm).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dm = DeviceCsr::upload(&dev, &hm).unwrap();
        let fused = mxm_masked(&da, &db, &dm).unwrap().download();
        let reference = ha.mxm(&hb).unwrap().ewise_mult(&hm).unwrap();
        assert_eq!(fused, reference);
    }

    #[test]
    fn compmask_mxm_matches_post_subtraction() {
        let dev = Device::default();
        let pa: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 3) % 10)).collect();
        let pb: Vec<(u32, u32)> = (0..40).map(|i| (i % 10, (i * 7 + 1) % 10)).collect();
        let pm: Vec<(u32, u32)> = (0..25).map(|i| (i % 10, (i * 5 + 2) % 10)).collect();
        let ha = CsrBool::from_pairs(10, 10, &pa).unwrap();
        let hb = CsrBool::from_pairs(10, 10, &pb).unwrap();
        let hm = CsrBool::from_pairs(10, 10, &pm).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dm = DeviceCsr::upload(&dev, &hm).unwrap();
        let fused = mxm_compmask(&da, &db, &dm).unwrap().download();
        // Reference: full product minus mask entries.
        let product = ha.mxm(&hb).unwrap();
        let expect: Vec<(u32, u32)> = product
            .to_pairs()
            .into_iter()
            .filter(|&(i, j)| !hm.get(i, j))
            .collect();
        assert_eq!(fused.to_pairs(), expect);
    }

    #[test]
    fn compmask_mxm_empty_mask_is_plain_product() {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(4, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let hm = CsrBool::zeros(4, 4);
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let dm = DeviceCsr::upload(&dev, &hm).unwrap();
        let got = mxm_compmask(&da, &da, &dm).unwrap().download();
        assert_eq!(got, ha.mxm(&ha).unwrap());
    }

    #[test]
    fn compmask_mxm_on_global_bin_rows() {
        // Wide rows force the global-memory gather path; the mask must be
        // honoured there too.
        let n: u32 = 6000;
        let dev = Device::default();
        let a: Vec<(u32, u32)> = (0..3).map(|k| (0, k)).collect();
        let mut b = Vec::new();
        for k in 0..3u32 {
            for j in 0..n {
                if (j + k) % 2 == 0 {
                    b.push((k, j));
                }
            }
        }
        let pm: Vec<(u32, u32)> = (0..n).step_by(3).map(|j| (0, j)).collect();
        let ha = CsrBool::from_pairs(1, 3, &a).unwrap();
        let hb = CsrBool::from_pairs(3, n, &b).unwrap();
        let hm = CsrBool::from_pairs(1, n, &pm).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dm = DeviceCsr::upload(&dev, &hm).unwrap();
        let got = mxm_compmask(&da, &db, &dm).unwrap().download();
        let expect: Vec<(u32, u32)> = ha
            .mxm(&hb)
            .unwrap()
            .to_pairs()
            .into_iter()
            .filter(|&(i, j)| !hm.get(i, j))
            .collect();
        assert_eq!(got.to_pairs(), expect);
    }

    #[test]
    fn compmask_rejects_before_accumulation() {
        // With the full product as mask, nothing is admitted to the
        // accumulator and the insertion counter stays at zero.
        let dev = Device::default();
        let pa: Vec<(u32, u32)> = (0..30).map(|i| (i % 6, (i * 5) % 6)).collect();
        let ha = CsrBool::from_pairs(6, 6, &pa).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let product = mxm(&da, &da).unwrap();
        let before = dev.stats().accum_insertions;
        let diff = mxm_compmask(&da, &da, &product).unwrap();
        assert_eq!(diff.nnz(), 0);
        assert_eq!(dev.stats().accum_insertions, before);
    }

    #[test]
    fn masked_mxm_empty_mask_short_circuits() {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(4, 4, &[(0, 1), (1, 2)]).unwrap();
        let hm = CsrBool::zeros(4, 4);
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let dm = DeviceCsr::upload(&dev, &hm).unwrap();
        assert_eq!(mxm_masked(&da, &da, &dm).unwrap().nnz(), 0);
    }

    #[test]
    fn global_chunking_is_contiguous_and_bounded() {
        // Rows with ub 5 each and a tiny chunk limit exercise the policy
        // indirectly via the helper.
        let rows: Vec<Index> = (0..10).collect();
        let ub: Vec<usize> = vec![GLOBAL_CHUNK_ENTRIES / 3; 10];
        let chunks = chunk_global_rows(&rows, &ub);
        // Each chunk holds at most 3 rows (3·(limit/3) ≤ limit).
        assert!(chunks.iter().all(|c| c.len() <= 3));
        // Chunks cover all rows contiguously.
        let covered: usize = chunks.iter().map(ExactSizeIterator::len).sum();
        assert_eq!(covered, 10);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 10);
        // Oversized single row gets its own chunk.
        let big_ub = vec![GLOBAL_CHUNK_ENTRIES * 2; 2];
        let two = chunk_global_rows(&[0, 1], &big_ub);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn chain_structure() {
        // Path graph adjacency: A^2 shifts by two.
        let n = 500u32;
        let a: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let dev = Device::default();
        let ha = CsrBool::from_pairs(n, n, &a).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let sq = mxm(&da, &da).unwrap().download();
        let expect: Vec<(u32, u32)> = (0..n - 2).map(|i| (i, i + 2)).collect();
        assert_eq!(sq.to_pairs(), expect);
    }
}
