//! Kronecker product on the CSR backend.
//!
//! Each result row `(i1·mB + i2)` is the outer concatenation of A's row
//! `i1` with B's row `i2`; its length `nnz_A(i1) · nnz_B(i2)` is known up
//! front, so the kernel is a size map, a scan, and a perfectly partitioned
//! fill — the cheapest of the three flagship operations, which is why the
//! paper's CFPQ application leans on it.

use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::{Result, SpblaError};
use crate::index::Index;

use super::DeviceCsr;

/// `K = A ⊗ B`, shape `(mA·mB) × (nA·nB)`.
pub fn kron(a: &DeviceCsr, b: &DeviceCsr) -> Result<DeviceCsr> {
    let device = a.device().clone();
    let nrows = (a.nrows() as u64).checked_mul(b.nrows() as u64);
    let ncols = (a.ncols() as u64).checked_mul(b.ncols() as u64);
    let (m, n) = match (nrows, ncols) {
        (Some(r), Some(c)) if r <= u32::MAX as u64 && c <= u32::MAX as u64 => {
            (r as Index, c as Index)
        }
        _ => {
            return Err(SpblaError::InvalidDimension(
                "kron result exceeds Index range".into(),
            ))
        }
    };
    if m == 0 {
        return DeviceCsr::zeros(&device, m, n);
    }

    let mb = b.nrows();
    // Row sizes of K.
    let mut row_nnz = vec![0usize; m as usize];
    device.launch_map(&mut row_nnz, |r| {
        let i1 = (r as u64 / mb as u64) as Index;
        let i2 = (r as u64 % mb as u64) as Index;
        a.row_nnz(i1) * b.row_nnz(i2)
    })?;
    let total = exclusive_scan(&device, &mut row_nnz)?;

    let mut k_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = k_row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[m as usize] = total as Index;
    }

    let mut k_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = k_row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let nb = b.ncols();
    let cfg = LaunchCfg::grid(&device, m);
    device.launch(
        cfg,
        k_cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let r = ctx.block_idx();
            let i1 = (r as u64 / mb as u64) as Index;
            let i2 = (r as u64 % mb as u64) as Index;
            let mut w = 0usize;
            for &j1 in a.row(i1) {
                for &j2 in b.row(i2) {
                    out[w] = j1 * nb + j2;
                    w += 1;
                }
            }
            debug_assert_eq!(w, out.len());
        },
    )?;

    Ok(DeviceCsr::from_parts(m, n, k_row_ptr, k_cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    fn check(a_pairs: &[(u32, u32)], sa: (u32, u32), b_pairs: &[(u32, u32)], sb: (u32, u32)) {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(sa.0, sa.1, a_pairs).unwrap();
        let hb = CsrBool::from_pairs(sb.0, sb.1, b_pairs).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dk = kron(&da, &db).unwrap();
        assert_eq!(dk.download(), ha.kron(&hb).unwrap());
    }

    #[test]
    fn small_kron() {
        check(&[(0, 1), (1, 0)], (2, 2), &[(0, 0), (1, 1)], (2, 2));
    }

    #[test]
    fn rectangular_kron() {
        check(&[(0, 2), (1, 0)], (2, 3), &[(0, 1), (2, 0)], (3, 2));
    }

    #[test]
    fn empty_factor() {
        check(&[], (2, 2), &[(0, 0)], (2, 2));
    }

    #[test]
    fn nnz_is_product_of_nnzs() {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(10, 10, &[(0, 1), (3, 4), (9, 9)]).unwrap();
        let hb = CsrBool::from_pairs(7, 7, &[(1, 1), (6, 0)]).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        assert_eq!(kron(&da, &db).unwrap().nnz(), 6);
    }

    #[test]
    fn overflow_rejected() {
        let dev = Device::default();
        let big = CsrBool::zeros(1 << 20, 1 << 20);
        let d = DeviceCsr::upload(&dev, &big).unwrap();
        assert!(matches!(kron(&d, &d), Err(SpblaError::InvalidDimension(_))));
    }
}
