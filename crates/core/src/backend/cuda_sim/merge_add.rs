//! Element-wise Boolean addition for CSR — the paper's "GPU Merge Path
//! with dynamic work balancing and two-pass processing".
//!
//! Pass 1 counts the union size of each row pair (so the result is
//! allocated exactly — the paper's "more precise memory allocations");
//! pass 2 merges into the final slices. Each row is one block; rows whose
//! combined length exceeds a threshold split their merge across
//! merge-path partitions ([`spbla_gpu_sim::primitives::merge`]) the way
//! the CUDA kernel splits across threads.

use spbla_gpu_sim::primitives::merge::merge_path_partitions;
use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::Result;
use crate::index::Index;

use super::DeviceCsr;

/// Rows longer than this split their merge across merge-path segments.
const MERGE_PATH_THRESHOLD: usize = 1024;

/// Count of the union of two sorted sequences.
fn union_count(a: &[Index], b: &[Index]) -> usize {
    let (mut x, mut y, mut n) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Equal => {
                x += 1;
                y += 1;
            }
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
        }
        n += 1;
    }
    n + (a.len() - x) + (b.len() - y)
}

/// Deduplicating merge of two sorted sequences into `out`; returns the
/// number of elements written.
fn union_merge(a: &[Index], b: &[Index], out: &mut [Index]) -> usize {
    let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        let v = match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Equal => {
                x += 1;
                y += 1;
                a[x - 1]
            }
            std::cmp::Ordering::Less => {
                x += 1;
                a[x - 1]
            }
            std::cmp::Ordering::Greater => {
                y += 1;
                b[y - 1]
            }
        };
        out[w] = v;
        w += 1;
    }
    for &v in &a[x..] {
        out[w] = v;
        w += 1;
    }
    for &v in &b[y..] {
        out[w] = v;
        w += 1;
    }
    w
}

/// `C = A + B` (element-wise Boolean sum / set union).
pub fn ewise_add(a: &DeviceCsr, b: &DeviceCsr) -> Result<DeviceCsr> {
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let device = a.device().clone();
    let m = a.nrows();
    if m == 0 {
        return DeviceCsr::zeros(&device, m, a.ncols());
    }

    // Pass 1: per-row union counts.
    let mut row_nnz = vec![0usize; m as usize];
    device.launch_map(&mut row_nnz, |i| {
        union_count(a.row(i as Index), b.row(i as Index))
    })?;

    let total = exclusive_scan(&device, &mut row_nnz)?;
    let mut c_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = c_row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[m as usize] = total as Index;
    }

    // Pass 2: merge each row into its exact slice.
    let mut c_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = c_row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let cfg = LaunchCfg::grid(&device, m);
    device.launch(
        cfg,
        c_cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let i = ctx.block_idx();
            let (ra, rb) = (a.row(i), b.row(i));
            if ra.len() + rb.len() <= MERGE_PATH_THRESHOLD {
                let w = union_merge(ra, rb, out);
                debug_assert_eq!(w, out.len());
            } else {
                // Long rows: balance the merge across merge-path
                // segments (threads of the block on a real device). The
                // duplicated-column positions are unknown per segment, so
                // each segment merges into scratch sized a+b and the
                // block compacts — mirroring the CUDA kernel's shared
                // staging buffer.
                let parts = ctx.block_dim() as usize;
                let points = merge_path_partitions(ra, rb, parts);
                let mut scratch: Vec<Index> = vec![0; ra.len() + rb.len()];
                ctx.for_threads(|t| {
                    let (s, e) = (points[t as usize], points[t as usize + 1]);
                    let (mut x, mut y) = (s.a_idx, s.b_idx);
                    let mut w = s.a_idx + s.b_idx;
                    while x < e.a_idx || y < e.b_idx {
                        if y >= e.b_idx || (x < e.a_idx && ra[x] <= rb[y]) {
                            scratch[w] = ra[x];
                            x += 1;
                        } else {
                            scratch[w] = rb[y];
                            y += 1;
                        }
                        w += 1;
                    }
                });
                // Compaction phase (after the barrier): drop duplicates.
                let mut w = 0usize;
                let mut prev: Option<Index> = None;
                for &v in scratch.iter() {
                    if Some(v) != prev {
                        out[w] = v;
                        w += 1;
                        prev = Some(v);
                    }
                }
                debug_assert_eq!(w, out.len());
            }
        },
    )?;

    Ok(DeviceCsr::from_parts(m, a.ncols(), c_row_ptr, c_cols))
}

/// Count of the intersection of two sorted sequences.
fn intersect_count(a: &[Index], b: &[Index]) -> usize {
    let (mut x, mut y, mut n) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Equal => {
                x += 1;
                y += 1;
                n += 1;
            }
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
        }
    }
    n
}

/// `C = A ∧ B` (element-wise Boolean product / set intersection), same
/// two-pass structure as [`ewise_add`].
pub fn ewise_mult(a: &DeviceCsr, b: &DeviceCsr) -> Result<DeviceCsr> {
    debug_assert_eq!(a.nrows(), b.nrows());
    debug_assert_eq!(a.ncols(), b.ncols());
    let device = a.device().clone();
    let m = a.nrows();
    if m == 0 || a.nnz() == 0 || b.nnz() == 0 {
        return DeviceCsr::zeros(&device, m, a.ncols());
    }

    let mut row_nnz = vec![0usize; m as usize];
    device.launch_map(&mut row_nnz, |i| {
        intersect_count(a.row(i as Index), b.row(i as Index))
    })?;
    let total = exclusive_scan(&device, &mut row_nnz)?;
    let mut c_row_ptr = DeviceBuffer::<Index>::zeroed(&device, m as usize + 1)?;
    {
        let rp = c_row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[m as usize] = total as Index;
    }
    let mut c_cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = c_row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let cfg = LaunchCfg::grid(&device, m);
    device.launch(
        cfg,
        c_cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let i = ctx.block_idx();
            let (ra, rb) = (a.row(i), b.row(i));
            let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
            while x < ra.len() && y < rb.len() {
                match ra[x].cmp(&rb[y]) {
                    std::cmp::Ordering::Equal => {
                        out[w] = ra[x];
                        w += 1;
                        x += 1;
                        y += 1;
                    }
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                }
            }
            debug_assert_eq!(w, out.len());
        },
    )?;
    Ok(DeviceCsr::from_parts(m, a.ncols(), c_row_ptr, c_cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    #[test]
    fn intersection_matches_reference() {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(3, 3, &[(0, 0), (0, 2), (1, 1), (2, 0)]).unwrap();
        let hb = CsrBool::from_pairs(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        assert_eq!(
            ewise_mult(&da, &db).unwrap().download(),
            ha.ewise_mult(&hb).unwrap()
        );
    }

    fn check(a_pairs: &[(u32, u32)], b_pairs: &[(u32, u32)], m: u32, n: u32) {
        let dev = Device::default();
        let ha = CsrBool::from_pairs(m, n, a_pairs).unwrap();
        let hb = CsrBool::from_pairs(m, n, b_pairs).unwrap();
        let da = DeviceCsr::upload(&dev, &ha).unwrap();
        let db = DeviceCsr::upload(&dev, &hb).unwrap();
        let dc = ewise_add(&da, &db).unwrap();
        assert_eq!(dc.download(), ha.ewise_add(&hb).unwrap());
    }

    #[test]
    fn small_union() {
        check(&[(0, 0), (1, 2)], &[(0, 0), (0, 1), (2, 2)], 3, 3);
    }

    #[test]
    fn disjoint_and_identical() {
        check(&[(0, 0)], &[(1, 1)], 2, 2);
        check(&[(0, 0), (1, 1)], &[(0, 0), (1, 1)], 2, 2);
    }

    #[test]
    fn long_row_uses_merge_path() {
        let n = 10_000u32;
        let a: Vec<(u32, u32)> = (0..n).step_by(2).map(|j| (0, j)).collect();
        let b: Vec<(u32, u32)> = (0..n).step_by(3).map(|j| (0, j)).collect();
        check(&a, &b, 1, n);
    }

    #[test]
    fn empty_matrices() {
        check(&[], &[], 4, 4);
        check(&[(3, 3)], &[], 4, 4);
    }
}
