//! The cuBool backend: CSR matrices resident on the simulated device.

pub mod kron;
pub mod merge_add;
pub mod spgemm_hash;
pub mod structure;
pub mod vector_ops;

use spbla_gpu_sim::{Device, DeviceBuffer};

use crate::error::Result;
use crate::format::csr::CsrBool;
use crate::index::Index;

/// A CSR Boolean matrix in simulated device memory: the two arrays the
/// paper describes (`rowspt` offsets and `cols` indices), nothing else.
#[derive(Debug)]
pub struct DeviceCsr {
    nrows: Index,
    ncols: Index,
    row_ptr: DeviceBuffer<Index>,
    cols: DeviceBuffer<Index>,
}

impl DeviceCsr {
    /// Upload a host CSR matrix (counted as H2D traffic).
    pub fn upload(device: &Device, host: &CsrBool) -> Result<Self> {
        Ok(DeviceCsr {
            nrows: host.nrows(),
            ncols: host.ncols(),
            row_ptr: DeviceBuffer::from_host(device, host.row_ptr())?,
            cols: DeviceBuffer::from_host(device, host.cols())?,
        })
    }

    /// Assemble from device-produced parts.
    pub fn from_parts(
        nrows: Index,
        ncols: Index,
        row_ptr: DeviceBuffer<Index>,
        cols: DeviceBuffer<Index>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows as usize + 1);
        debug_assert_eq!(*row_ptr.as_slice().last().unwrap() as usize, cols.len());
        DeviceCsr {
            nrows,
            ncols,
            row_ptr,
            cols,
        }
    }

    /// An empty matrix resident on `device`.
    pub fn zeros(device: &Device, nrows: Index, ncols: Index) -> Result<Self> {
        Ok(DeviceCsr {
            nrows,
            ncols,
            row_ptr: DeviceBuffer::zeroed(device, nrows as usize + 1)?,
            cols: DeviceBuffer::zeroed(device, 0)?,
        })
    }

    /// Download to a host CSR matrix (counted as D2H traffic).
    pub fn download(&self) -> CsrBool {
        CsrBool::from_raw(
            self.nrows,
            self.ncols,
            self.row_ptr.to_host(),
            self.cols.to_host(),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Device the matrix lives on.
    pub fn device(&self) -> &Device {
        self.row_ptr.device()
    }

    /// Row-pointer array (device view).
    pub fn row_ptr(&self) -> &[Index] {
        self.row_ptr.as_slice()
    }

    /// Column-index array (device view).
    pub fn cols(&self) -> &[Index] {
        self.cols.as_slice()
    }

    /// Column indices of row `i` (device view).
    pub fn row(&self, i: Index) -> &[Index] {
        let lo = self.row_ptr()[i as usize] as usize;
        let hi = self.row_ptr()[i as usize + 1] as usize;
        &self.cols()[lo..hi]
    }

    /// Entries in row `i`.
    pub fn row_nnz(&self, i: Index) -> usize {
        (self.row_ptr()[i as usize + 1] - self.row_ptr()[i as usize]) as usize
    }

    /// Device-resident footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.row_ptr.len() + self.cols.len()) * std::mem::size_of::<Index>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let dev = Device::default();
        let host = CsrBool::from_pairs(3, 4, &[(0, 1), (2, 3)]).unwrap();
        let d = DeviceCsr::upload(&dev, &host).unwrap();
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.download(), host);
        // CSR footprint charged on device: (3+1+2) u32 = 24 bytes.
        assert_eq!(d.memory_bytes(), 24);
        assert!(dev.stats().bytes_in_use >= 24);
    }
}
