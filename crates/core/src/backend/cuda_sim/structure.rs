//! Structural CSR kernels: transpose, sub-matrix extraction, reductions.

use spbla_gpu_sim::primitives::compact::compact_indices;
use spbla_gpu_sim::primitives::histogram::histogram;
use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::primitives::sort::sort_u64;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::{Result, SpblaError};
use crate::index::Index;

use super::DeviceCsr;

/// `Mᵀ` via key re-packing: entries become `(col << 32) | row` keys, a
/// radix sort makes them column-major, and a bincount/scan rebuilds the
/// row pointers — the Thrust-style formulation of CSR transpose.
pub fn transpose(m: &DeviceCsr) -> Result<DeviceCsr> {
    let device = m.device().clone();
    let (rows_out, cols_out) = (m.ncols(), m.nrows());

    // Pack (col, row) keys.
    let mut keys = DeviceBuffer::<u64>::zeroed(&device, m.nnz())?;
    {
        let rp = m.row_ptr();
        // One map over entries; row of entry e found by binary search over
        // row_ptr (the device kernel uses a row-expansion instead; the
        // upper_bound formulation is equivalent and allocation-free).
        let ks = keys.as_mut_slice();
        device.launch_map(ks, |e| {
            // Row of entry e: the r with rp[r] <= e < rp[r+1].
            let row = (rp.partition_point(|&p| p as usize <= e) - 1) as Index;
            let col = m.cols()[e];
            ((col as u64) << 32) | row as u64
        })?;
    }

    let mut key_vec = keys.as_slice().to_vec();
    sort_u64(&device, &mut key_vec);

    // Rebuild CSR of the transpose (device histogram over new rows).
    let new_rows: Vec<u32> = key_vec.iter().map(|&k| (k >> 32) as u32).collect();
    let mut counts = histogram(&device, &new_rows, rows_out as usize);
    let total = exclusive_scan(&device, &mut counts)?;
    debug_assert_eq!(total, key_vec.len());

    let mut row_ptr = DeviceBuffer::<Index>::zeroed(&device, rows_out as usize + 1)?;
    {
        let rp = row_ptr.as_mut_slice();
        for (i, &o) in counts.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[rows_out as usize] = total as Index;
    }
    let mut cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    device.launch_map(cols.as_mut_slice(), |e| key_vec[e] as u32)?;

    Ok(DeviceCsr::from_parts(rows_out, cols_out, row_ptr, cols))
}

/// Extract `M[i0 .. i0+nrows, j0 .. j0+ncols]` (count / scan / fill).
pub fn submatrix(
    m: &DeviceCsr,
    i0: Index,
    j0: Index,
    nrows: Index,
    ncols: Index,
) -> Result<DeviceCsr> {
    let device = m.device().clone();
    if i0 as u64 + nrows as u64 > m.nrows() as u64 || j0 as u64 + ncols as u64 > m.ncols() as u64 {
        return Err(SpblaError::InvalidDimension(format!(
            "submatrix [{i0}+{nrows}, {j0}+{ncols}] exceeds {}x{}",
            m.nrows(),
            m.ncols()
        )));
    }
    if nrows == 0 {
        return DeviceCsr::zeros(&device, nrows, ncols);
    }

    let mut row_nnz = vec![0usize; nrows as usize];
    device.launch_map(&mut row_nnz, |r| {
        let row = m.row(i0 + r as Index);
        let lo = row.partition_point(|&j| j < j0);
        let hi = row.partition_point(|&j| j < j0 + ncols);
        hi - lo
    })?;
    let total = exclusive_scan(&device, &mut row_nnz)?;

    let mut row_ptr = DeviceBuffer::<Index>::zeroed(&device, nrows as usize + 1)?;
    {
        let rp = row_ptr.as_mut_slice();
        for (i, &o) in row_nnz.iter().enumerate() {
            rp[i] = o as Index;
        }
        rp[nrows as usize] = total as Index;
    }

    let mut cols = DeviceBuffer::<Index>::zeroed(&device, total)?;
    let rp_host: Vec<Index> = row_ptr.as_slice().to_vec();
    let rp = &rp_host;
    let cfg = LaunchCfg::grid(&device, nrows);
    device.launch(
        cfg,
        cols.as_mut_slice(),
        |blk| rp[blk as usize] as usize..rp[blk as usize + 1] as usize,
        |ctx, out| {
            let row = m.row(i0 + ctx.block_idx());
            let lo = row.partition_point(|&j| j < j0);
            for (w, &j) in row[lo..lo + out.len()].iter().enumerate() {
                out[w] = j - j0;
            }
        },
    )?;

    Ok(DeviceCsr::from_parts(nrows, ncols, row_ptr, cols))
}

/// Indices of non-empty rows (`reduceToColumn`): a flag map over rows
/// plus a stream compaction.
pub fn reduce_to_column(m: &DeviceCsr) -> Result<Vec<Index>> {
    let device = m.device().clone();
    let mut flags = vec![0u8; m.nrows() as usize];
    device.launch_map(&mut flags, |i| (m.row_nnz(i as Index) > 0) as u8)?;
    Ok(compact_indices(&device, &flags)?
        .into_iter()
        .map(|i| i as Index)
        .collect())
}

/// Indices of non-empty columns (`reduceToRow`), via a column flag pass.
pub fn reduce_to_row(m: &DeviceCsr) -> Result<Vec<Index>> {
    let device = m.device().clone();
    let mut flags = vec![0u8; m.ncols() as usize];
    // Column marking scatters; flags are monotone (0→1 only) so racing
    // blocks are benign — model with per-entry atomic stores.
    let cells: Vec<std::sync::atomic::AtomicU8> = (0..m.ncols() as usize)
        .map(|_| std::sync::atomic::AtomicU8::new(0))
        .collect();
    let cfg = LaunchCfg::cover(m.nnz(), device.config().default_block_dim);
    if m.nnz() > 0 {
        device.launch_read(cfg, |ctx| {
            ctx.grid_stride(m.nnz(), |e| {
                cells[m.cols()[e] as usize].store(1, std::sync::atomic::Ordering::Relaxed);
            });
        })?;
    }
    for (f, c) in flags.iter_mut().zip(&cells) {
        *f = c.load(std::sync::atomic::Ordering::Relaxed);
    }
    Ok(compact_indices(&device, &flags)?
        .into_iter()
        .map(|i| i as Index)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    fn upload(dev: &Device, pairs: &[(u32, u32)], m: u32, n: u32) -> (CsrBool, DeviceCsr) {
        let h = CsrBool::from_pairs(m, n, pairs).unwrap();
        let d = DeviceCsr::upload(dev, &h).unwrap();
        (h, d)
    }

    #[test]
    fn transpose_matches_reference() {
        let dev = Device::default();
        let (h, d) = upload(&dev, &[(0, 1), (0, 3), (1, 0), (2, 2), (2, 3)], 3, 4);
        assert_eq!(transpose(&d).unwrap().download(), h.transpose());
    }

    #[test]
    fn transpose_with_empty_rows() {
        let dev = Device::default();
        let (h, d) = upload(&dev, &[(0, 0), (4, 2)], 5, 3);
        assert_eq!(transpose(&d).unwrap().download(), h.transpose());
    }

    #[test]
    fn submatrix_matches_reference() {
        let dev = Device::default();
        let (h, d) = upload(&dev, &[(0, 1), (1, 1), (2, 2), (3, 0)], 4, 3);
        let got = submatrix(&d, 1, 1, 3, 2).unwrap().download();
        assert_eq!(got, h.submatrix(1, 1, 3, 2).unwrap());
        assert!(submatrix(&d, 3, 0, 2, 1).is_err());
    }

    #[test]
    fn reductions_match_reference() {
        let dev = Device::default();
        let (h, d) = upload(&dev, &[(0, 2), (3, 0), (3, 2)], 5, 4);
        assert_eq!(reduce_to_column(&d).unwrap(), h.reduce_to_column());
        assert_eq!(reduce_to_row(&d).unwrap(), h.reduce_to_row());
    }
}
