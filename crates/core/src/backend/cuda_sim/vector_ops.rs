//! Sparse-vector kernels for the CSR backend — the "full support" for
//! vectors the paper defers to future work: the frontier-push `vxm`
//! (gather the selected rows, sort, unique) expressed as device
//! launches, so vector workloads (BFS, single-source RPQ) hit the same
//! counters as matrix ones.

use spbla_gpu_sim::primitives::compact::compact_flagged;
use spbla_gpu_sim::primitives::scan::exclusive_scan;
use spbla_gpu_sim::primitives::sort::sort_u64;
use spbla_gpu_sim::{DeviceBuffer, LaunchCfg};

use crate::error::Result;
use crate::index::Index;

use super::DeviceCsr;

/// `out = ⋃_{i ∈ set} M(i, :)` — sorted unique column indices reached
/// from the frontier `set` (sorted).
pub fn vxm(m: &DeviceCsr, set: &[Index]) -> Result<Vec<Index>> {
    let device = m.device().clone();
    if set.is_empty() || m.nnz() == 0 {
        return Ok(Vec::new());
    }
    // Gather sizes per frontier row, scan to offsets.
    let mut sizes = vec![0usize; set.len()];
    device.launch_map(&mut sizes, |k| m.row_nnz(set[k]))?;
    let total = exclusive_scan(&device, &mut sizes)?;
    if total == 0 {
        return Ok(Vec::new());
    }
    let offsets = sizes;

    // Gather the rows into one buffer.
    let mut gathered = DeviceBuffer::<Index>::zeroed(&device, total)?;
    {
        let offs = &offsets;
        let cfg = LaunchCfg::grid(&device, set.len() as u32);
        device.launch(
            cfg,
            gathered.as_mut_slice(),
            |blk| {
                let k = blk as usize;
                let end = if k + 1 < offs.len() {
                    offs[k + 1]
                } else {
                    total
                };
                offs[k]..end
            },
            |ctx, out| {
                let row = m.row(set[ctx.block_idx() as usize]);
                out.copy_from_slice(row);
            },
        )?;
    }

    // Sort + adjacent-unique.
    let mut keys: Vec<u64> = gathered.as_slice().iter().map(|&j| j as u64).collect();
    drop(gathered);
    sort_u64(&device, &mut keys);
    let ks = &keys;
    let mut flags = vec![0u8; ks.len()];
    device.launch_map(&mut flags, |e| (e == 0 || ks[e] != ks[e - 1]) as u8)?;
    let uniq = compact_flagged(&device, &keys, &flags)?;
    Ok(uniq.into_iter().map(|k| k as Index).collect())
}

/// Frontier-pull `vxm`: the frontier arrives as dense bit-words and the
/// reached columns accumulate into a dense `⌈n/64⌉`-word bitmap — one
/// kernel (word-wise atomic ORs on a real device), no gather buffer, no
/// sort, no compaction. Preferred for dense frontiers, where the push
/// gather's multiset would dwarf the bitmap.
pub fn vxm_pull(m: &DeviceCsr, frontier_words: &[u64]) -> Result<Vec<Index>> {
    let device = m.device().clone();
    let words = (m.ncols() as usize).div_ceil(64);
    if words == 0 || m.nnz() == 0 {
        return Ok(Vec::new());
    }
    let mut acc = DeviceBuffer::<u64>::zeroed(&device, words)?;
    let cfg = LaunchCfg::grid(&device, 1);
    device.launch(
        cfg,
        acc.as_mut_slice(),
        |_| 0..words,
        |_, out| {
            for (wi, &w) in frontier_words.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    let i = wi as Index * 64 + b;
                    if i < m.nrows() {
                        for &j in m.row(i) {
                            out[j as usize / 64] |= 1u64 << (j % 64);
                        }
                    }
                    bits &= bits - 1;
                }
            }
        },
    )?;
    let mut out = Vec::new();
    for (wi, &w) in acc.as_slice().iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push(wi as Index * 64 + b);
            bits &= bits - 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;
    use spbla_gpu_sim::Device;

    #[test]
    fn device_vxm_matches_host() {
        let dev = Device::default();
        let pairs: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 50, (i * 13) % 90)).collect();
        let host = CsrBool::from_pairs(50, 90, &pairs).unwrap();
        let d = DeviceCsr::upload(&dev, &host).unwrap();
        for set in [vec![], vec![0], vec![1, 7, 33], (0..50).collect::<Vec<_>>()] {
            assert_eq!(vxm(&d, &set).unwrap(), host.vxm(&set), "set {set:?}");
        }
    }

    #[test]
    fn device_vxm_counts_launches() {
        let dev = Device::default();
        let host = CsrBool::from_pairs(10, 10, &[(0, 3), (0, 5), (2, 3)]).unwrap();
        let d = DeviceCsr::upload(&dev, &host).unwrap();
        let before = dev.stats().launches;
        let out = vxm(&d, &[0, 2]).unwrap();
        assert_eq!(out, vec![3, 5]);
        assert!(dev.stats().launches > before);
    }
}
