//! Library instances — backend selection and device ownership.
//!
//! Mirrors `cuBool_Initialize`: an application creates one instance per
//! backend configuration and all matrices/vectors belong to it. The
//! planned SPbLA unification ("automatically select a specific
//! implementation depending on the capabilities of the target device") is
//! modelled by [`Instance::auto`].

use std::sync::Arc;

use spbla_gpu_sim::{Device, DeviceConfig};

use crate::error::{Result, SpblaError};

/// Byte footprint of a dense bit-matrix of `nrows × ncols` (rows padded
/// to whole 64-bit words), with overflow reported as a typed error
/// rather than wrapped arithmetic. Backend selection and admission
/// checks must route shape sizing through here: a wrapping estimate
/// reads as "tiny", which silently green-lights an impossible dense
/// allocation.
pub fn dense_bits_bytes(nrows: u64, ncols: u64) -> Result<u64> {
    let row_bytes = ncols.div_ceil(64).checked_mul(8);
    row_bytes
        .and_then(|rb| rb.checked_mul(nrows))
        .ok_or(SpblaError::FootprintOverflow { nrows, ncols })
}

/// Which implementation executes the operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sequential host reference (cuBool's CPU fallback).
    Cpu,
    /// Dense bit-parallel CPU backend (row-aligned bitsets; quadratic
    /// memory, word-parallel operations — wins on dense operands).
    CpuDense,
    /// cuBool design: CSR + hash SpGEMM + two-pass merge add.
    CudaSim,
    /// clBool design: COO + ESC SpGEMM + one-pass merge add.
    ClSim,
}

impl Backend {
    /// Short static name, also used as the `backend` label on
    /// per-kernel metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Cpu => "cpu",
            Backend::CpuDense => "cpu-dense",
            Backend::CudaSim => "cuda-sim",
            Backend::ClSim => "cl-sim",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parse one `SPBLA_AUTO_BLOCKED` value: `Some(true)` forces blocked
/// storage, `Some(false)` forces flat, `None` leaves the heuristic in
/// charge. Unrecognised values are ignored rather than guessed at.
fn parse_auto_blocked(value: &str) -> Option<bool> {
    match value {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// The `SPBLA_AUTO_BLOCKED` escape hatch, read from the environment.
fn auto_blocked_env() -> Option<bool> {
    parse_auto_blocked(&std::env::var("SPBLA_AUTO_BLOCKED").ok()?)
}

#[derive(Debug)]
struct InstanceInner {
    backend: Backend,
    device: Option<Device>,
    /// Store matrices as adaptive tiled blocks (`BlockMatrix`) instead
    /// of the backend's flat format. Kernels still run — and are
    /// metered — under this backend's label; only the storage layer
    /// changes, so results must stay bit-identical.
    blocked: bool,
}

/// A configured library instance. Cheap to clone (all clones share the
/// backend and device); operations require both operands to come from the
/// same instance.
#[derive(Debug, Clone)]
pub struct Instance {
    inner: Arc<InstanceInner>,
}

impl Instance {
    fn make(backend: Backend, device: Option<Device>) -> Self {
        Instance {
            inner: Arc::new(InstanceInner {
                backend,
                device,
                blocked: false,
            }),
        }
    }

    /// An instance whose matrices use adaptive tiled block storage
    /// (per-tile dense-bit/CSR/COO with densify-time switching) beneath
    /// the given backend. Device backends get a default device, same as
    /// their flat constructors.
    pub fn blocked(backend: Backend) -> Self {
        Instance::blocked_on(
            backend,
            matches!(backend, Backend::CudaSim | Backend::ClSim).then(Device::default),
        )
    }

    /// Blocked-storage instance on a caller-provided device (pass
    /// `None` for the host backends).
    pub fn blocked_on(backend: Backend, device: Option<Device>) -> Self {
        Instance {
            inner: Arc::new(InstanceInner {
                backend,
                device,
                blocked: true,
            }),
        }
    }

    /// Whether matrices of this instance use tiled block storage.
    pub fn is_blocked(&self) -> bool {
        self.inner.blocked
    }

    /// Sequential CPU reference instance.
    pub fn cpu() -> Self {
        Instance::make(Backend::Cpu, None)
    }

    /// Dense bit-parallel CPU instance.
    pub fn cpu_dense() -> Self {
        Instance::make(Backend::CpuDense, None)
    }

    /// cuBool-style instance on a default simulated device.
    pub fn cuda_sim() -> Self {
        Instance::make(Backend::CudaSim, Some(Device::default()))
    }

    /// clBool-style instance on a default simulated device.
    pub fn cl_sim() -> Self {
        Instance::make(Backend::ClSim, Some(Device::default()))
    }

    /// cuBool-style instance on a caller-provided device (e.g. with a
    /// memory cap for failure injection, or shared across instances).
    pub fn cuda_sim_on(device: Device) -> Self {
        Instance::make(Backend::CudaSim, Some(device))
    }

    /// clBool-style instance on a caller-provided device.
    pub fn cl_sim_on(device: Device) -> Self {
        Instance::make(Backend::ClSim, Some(device))
    }

    /// Pick a backend from the device description, the way the unified
    /// SPbLA plans to: hypersparse workloads (expected `nnz ≪ nrows`)
    /// favour COO, otherwise CSR.
    pub fn auto(config: DeviceConfig, expect_hypersparse: bool) -> Self {
        let device = Device::new(config);
        if expect_hypersparse {
            Instance::cl_sim_on(device)
        } else {
            Instance::cuda_sim_on(device)
        }
    }

    /// Density-aware selection from the expected workload shape (the
    /// crossovers measured by ablations E9 and E10.6):
    /// * small-and-dense (the dense bitset fits the device's shared
    ///   budget and density clears ~2 %) → dense bit-parallel backend;
    /// * hypersparse (`nnz < nrows`, COO beats CSR per E9) → COO;
    /// * otherwise → CSR hash backend, under tiled block storage when
    ///   the shape clears [`Instance::blocked_pays_off`].
    ///
    /// The `SPBLA_AUTO_BLOCKED` environment variable overrides the
    /// storage half of the decision for the sparse device backends:
    /// `off`/`0`/`false` forces flat storage, `on`/`1`/`true` forces
    /// blocked, anything else (or unset) keeps the heuristic. The
    /// backend pick itself is never affected.
    pub fn auto_for(config: DeviceConfig, nrows: u32, expected_nnz: usize) -> Self {
        let cells = nrows as f64 * nrows as f64;
        let density = if cells > 0.0 {
            expected_nnz as f64 / cells
        } else {
            0.0
        };
        // Overflowing footprints mean "does not fit" — fall through to
        // the sparse backends rather than picking dense on wrapped math.
        let dense_fits = dense_bits_bytes(nrows as u64, nrows as u64)
            .map(|bytes| bytes <= (64 << 20))
            .unwrap_or(false);
        if density >= 0.02 && dense_fits {
            return Instance::cpu_dense();
        }
        let device = Device::new(config);
        let backend = if expected_nnz < nrows as usize {
            Backend::ClSim
        } else {
            Backend::CudaSim
        };
        let blocked = match auto_blocked_env() {
            Some(forced) => forced,
            None => Instance::blocked_pays_off(nrows, expected_nnz),
        };
        if blocked {
            Instance::blocked_on(backend, Some(device))
        } else {
            Instance::make(backend, Some(device))
        }
    }

    /// Whether adaptive tiled block storage is expected to beat the
    /// flat format for a square matrix of this shape (the E18 gates):
    /// the matrix must span enough 64×64 tiles for per-tile format
    /// switching to amortize (≥ 8 tile rows), and the expected density
    /// must clear 1e-4 so occupied tiles hold real clusters instead of
    /// singleton entries. Dense-bitset and hypersparse shapes are
    /// already routed to their own formats by [`Instance::auto_for`].
    pub fn blocked_pays_off(nrows: u32, expected_nnz: usize) -> bool {
        const MIN_ROWS: u32 = 8 * 64; // eight tile rows
        let cells = nrows as f64 * nrows as f64;
        nrows >= MIN_ROWS && cells > 0.0 && expected_nnz as f64 / cells >= 1e-4
    }

    /// The backend this instance executes on.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The simulated device, if the backend has one.
    pub fn device(&self) -> Option<&Device> {
        self.inner.device.as_ref()
    }

    /// Whether two instance handles refer to the same instance.
    pub fn same_as(&self, other: &Instance) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_are_same_instance() {
        let a = Instance::cuda_sim();
        let b = a.clone();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Instance::cuda_sim()));
    }

    #[test]
    fn auto_for_picks_by_shape() {
        // Dense small square → bit backend.
        let dense = Instance::auto_for(DeviceConfig::default(), 1000, 200_000);
        assert_eq!(dense.backend(), Backend::CpuDense);
        // Hypersparse tall → COO.
        let hyper = Instance::auto_for(DeviceConfig::default(), 1_000_000, 5_000);
        assert_eq!(hyper.backend(), Backend::ClSim);
        // Ordinary sparse → CSR.
        let csr = Instance::auto_for(DeviceConfig::default(), 100_000, 1_000_000);
        assert_eq!(csr.backend(), Backend::CudaSim);
        // Huge dense bitset would exceed the budget → falls back to CSR.
        let big = Instance::auto_for(DeviceConfig::default(), 200_000, 1_000_000_000);
        assert_ne!(big.backend(), Backend::CpuDense);
    }

    #[test]
    fn auto_for_picks_blocked_storage_by_shape() {
        // One test covers heuristic *and* escape hatch: the hatch
        // mutates process environment, so interleaving it with other
        // auto_for tests in this binary would race.

        // LUBM-shaped: thousands of vertices, a handful of edges per
        // vertex — many occupied 64×64 tiles, density ≈ 2e-3.
        let lubm = Instance::auto_for(DeviceConfig::default(), 2_000, 8_000);
        assert_eq!(lubm.backend(), Backend::CudaSim);
        assert!(lubm.is_blocked(), "LUBM shape should pick tiled storage");
        // Too small to amortize tiling (and too sparse for the dense
        // bitset): flat storage.
        let small = Instance::auto_for(DeviceConfig::default(), 300, 400);
        assert_eq!(small.backend(), Backend::CudaSim);
        assert!(!small.is_blocked());
        // Big but far below the tile-occupancy density floor: flat.
        let scattered = Instance::auto_for(DeviceConfig::default(), 100_000, 200_000);
        assert!(!scattered.is_blocked());
        // Hypersparse keeps its COO pick but never blocks (tiles would
        // hold singletons).
        let hyper = Instance::auto_for(DeviceConfig::default(), 1_000_000, 5_000);
        assert_eq!(hyper.backend(), Backend::ClSim);
        assert!(!hyper.is_blocked());

        // The escape-hatch grammar.
        for forced in ["on", "1", "true"] {
            assert_eq!(super::parse_auto_blocked(forced), Some(true));
        }
        for forced in ["off", "0", "false"] {
            assert_eq!(super::parse_auto_blocked(forced), Some(false));
        }
        assert_eq!(super::parse_auto_blocked("banana"), None);

        // And the hatch wired through the environment: force flat on a
        // blocked-favouring shape, force blocked on a flat-favouring
        // one, then restore the heuristic. The backend never moves.
        std::env::set_var("SPBLA_AUTO_BLOCKED", "off");
        let forced_flat = Instance::auto_for(DeviceConfig::default(), 2_000, 8_000);
        assert_eq!(forced_flat.backend(), Backend::CudaSim);
        assert!(!forced_flat.is_blocked());
        std::env::set_var("SPBLA_AUTO_BLOCKED", "on");
        let forced_blocked = Instance::auto_for(DeviceConfig::default(), 300, 400);
        assert_eq!(forced_blocked.backend(), Backend::CudaSim);
        assert!(forced_blocked.is_blocked());
        std::env::remove_var("SPBLA_AUTO_BLOCKED");
        assert!(Instance::auto_for(DeviceConfig::default(), 2_000, 8_000).is_blocked());
    }

    #[test]
    fn dense_bytes_checked_at_overflow_boundary() {
        // Small shapes: exact padded-row arithmetic.
        assert_eq!(dense_bits_bytes(1, 1).unwrap(), 8);
        assert_eq!(dense_bits_bytes(1000, 1000).unwrap(), 16 * 8 * 1000);
        assert_eq!(dense_bits_bytes(0, u64::MAX).unwrap(), 0);
        // Largest row count that still fits for a one-word-wide matrix:
        // 8 * nrows ≤ u64::MAX ⇔ nrows ≤ u64::MAX / 8.
        let max_rows = u64::MAX / 8;
        assert_eq!(dense_bits_bytes(max_rows, 64).unwrap(), max_rows * 8);
        // One past the boundary must fail typed, not wrap.
        assert_eq!(
            dense_bits_bytes(max_rows + 1, 64).unwrap_err(),
            SpblaError::FootprintOverflow {
                nrows: max_rows + 1,
                ncols: 64
            }
        );
        // Wide shapes overflow through the nrows product.
        assert!(matches!(
            dense_bits_bytes(u64::MAX, u64::MAX),
            Err(SpblaError::FootprintOverflow { .. })
        ));
        // auto_for keeps working at shapes whose usize math used to be
        // the only guard: it must fall back to a sparse backend.
        let inst = Instance::auto_for(DeviceConfig::default(), u32::MAX, usize::MAX);
        assert_ne!(inst.backend(), Backend::CpuDense);
    }

    #[test]
    fn backends_and_devices() {
        assert_eq!(Instance::cpu().backend(), Backend::Cpu);
        assert!(Instance::cpu().device().is_none());
        assert!(Instance::cuda_sim().device().is_some());
        assert_eq!(
            Instance::auto(DeviceConfig::default(), true).backend(),
            Backend::ClSim
        );
        assert_eq!(
            Instance::auto(DeviceConfig::default(), false).backend(),
            Backend::CudaSim
        );
    }
}
