//! Library instances — backend selection and device ownership.
//!
//! Mirrors `cuBool_Initialize`: an application creates one instance per
//! backend configuration and all matrices/vectors belong to it. The
//! planned SPbLA unification ("automatically select a specific
//! implementation depending on the capabilities of the target device") is
//! modelled by [`Instance::auto`].

use std::sync::Arc;

use spbla_gpu_sim::{Device, DeviceConfig};

/// Which implementation executes the operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Sequential host reference (cuBool's CPU fallback).
    Cpu,
    /// Dense bit-parallel CPU backend (row-aligned bitsets; quadratic
    /// memory, word-parallel operations — wins on dense operands).
    CpuDense,
    /// cuBool design: CSR + hash SpGEMM + two-pass merge add.
    CudaSim,
    /// clBool design: COO + ESC SpGEMM + one-pass merge add.
    ClSim,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Cpu => write!(f, "cpu"),
            Backend::CpuDense => write!(f, "cpu-dense"),
            Backend::CudaSim => write!(f, "cuda-sim"),
            Backend::ClSim => write!(f, "cl-sim"),
        }
    }
}

#[derive(Debug)]
struct InstanceInner {
    backend: Backend,
    device: Option<Device>,
}

/// A configured library instance. Cheap to clone (all clones share the
/// backend and device); operations require both operands to come from the
/// same instance.
#[derive(Debug, Clone)]
pub struct Instance {
    inner: Arc<InstanceInner>,
}

impl Instance {
    fn make(backend: Backend, device: Option<Device>) -> Self {
        Instance {
            inner: Arc::new(InstanceInner { backend, device }),
        }
    }

    /// Sequential CPU reference instance.
    pub fn cpu() -> Self {
        Instance::make(Backend::Cpu, None)
    }

    /// Dense bit-parallel CPU instance.
    pub fn cpu_dense() -> Self {
        Instance::make(Backend::CpuDense, None)
    }

    /// cuBool-style instance on a default simulated device.
    pub fn cuda_sim() -> Self {
        Instance::make(Backend::CudaSim, Some(Device::default()))
    }

    /// clBool-style instance on a default simulated device.
    pub fn cl_sim() -> Self {
        Instance::make(Backend::ClSim, Some(Device::default()))
    }

    /// cuBool-style instance on a caller-provided device (e.g. with a
    /// memory cap for failure injection, or shared across instances).
    pub fn cuda_sim_on(device: Device) -> Self {
        Instance::make(Backend::CudaSim, Some(device))
    }

    /// clBool-style instance on a caller-provided device.
    pub fn cl_sim_on(device: Device) -> Self {
        Instance::make(Backend::ClSim, Some(device))
    }

    /// Pick a backend from the device description, the way the unified
    /// SPbLA plans to: hypersparse workloads (expected `nnz ≪ nrows`)
    /// favour COO, otherwise CSR.
    pub fn auto(config: DeviceConfig, expect_hypersparse: bool) -> Self {
        let device = Device::new(config);
        if expect_hypersparse {
            Instance::cl_sim_on(device)
        } else {
            Instance::cuda_sim_on(device)
        }
    }

    /// Density-aware selection from the expected workload shape (the
    /// crossovers measured by ablations E9 and E10.6):
    /// * small-and-dense (the dense bitset fits the device's shared
    ///   budget and density clears ~2 %) → dense bit-parallel backend;
    /// * hypersparse (`nnz < nrows`, COO beats CSR per E9) → COO;
    /// * otherwise → CSR hash backend.
    pub fn auto_for(config: DeviceConfig, nrows: u32, expected_nnz: usize) -> Self {
        let cells = nrows as f64 * nrows as f64;
        let density = if cells > 0.0 {
            expected_nnz as f64 / cells
        } else {
            0.0
        };
        let dense_bytes = (nrows as usize).div_ceil(64) * 8 * nrows as usize;
        if density >= 0.02 && dense_bytes <= (64 << 20) {
            return Instance::cpu_dense();
        }
        let device = Device::new(config);
        if expected_nnz < nrows as usize {
            Instance::cl_sim_on(device)
        } else {
            Instance::cuda_sim_on(device)
        }
    }

    /// The backend this instance executes on.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The simulated device, if the backend has one.
    pub fn device(&self) -> Option<&Device> {
        self.inner.device.as_ref()
    }

    /// Whether two instance handles refer to the same instance.
    pub fn same_as(&self, other: &Instance) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_are_same_instance() {
        let a = Instance::cuda_sim();
        let b = a.clone();
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Instance::cuda_sim()));
    }

    #[test]
    fn auto_for_picks_by_shape() {
        // Dense small square → bit backend.
        let dense = Instance::auto_for(DeviceConfig::default(), 1000, 200_000);
        assert_eq!(dense.backend(), Backend::CpuDense);
        // Hypersparse tall → COO.
        let hyper = Instance::auto_for(DeviceConfig::default(), 1_000_000, 5_000);
        assert_eq!(hyper.backend(), Backend::ClSim);
        // Ordinary sparse → CSR.
        let csr = Instance::auto_for(DeviceConfig::default(), 100_000, 1_000_000);
        assert_eq!(csr.backend(), Backend::CudaSim);
        // Huge dense bitset would exceed the budget → falls back to CSR.
        let big = Instance::auto_for(DeviceConfig::default(), 200_000, 1_000_000_000);
        assert_ne!(big.backend(), Backend::CpuDense);
    }

    #[test]
    fn backends_and_devices() {
        assert_eq!(Instance::cpu().backend(), Backend::Cpu);
        assert!(Instance::cpu().device().is_none());
        assert!(Instance::cuda_sim().device().is_some());
        assert_eq!(
            Instance::auto(DeviceConfig::default(), true).backend(),
            Backend::ClSim
        );
        assert_eq!(
            Instance::auto(DeviceConfig::default(), false).backend(),
            Backend::CudaSim
        );
    }
}
